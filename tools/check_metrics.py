#!/usr/bin/env python3
"""Lint the daemon's live telemetry surfaces (PR 10 obs-gate).

Two subcommands:

  prom SCRAPE [SCRAPE2] [--require name,name,...]
      Lint one Prometheus text-exposition file (as returned by the
      serve `metrics` op / `sevuldet top --prom`):
        - metric and label names match the exposition charset
          ([a-zA-Z_:][a-zA-Z0-9_:]* and [a-zA-Z_][a-zA-Z0-9_]*)
        - every sample's metric family has a preceding # TYPE line
        - counter samples are finite and non-negative
        - histogram buckets are cumulative: counts non-decreasing in
          ascending le order, the +Inf bucket present and equal to
          <name>_count, and <name>_sum present
      With a second scrape from the same daemon taken later, counters
      must be monotonic: every counter in SCRAPE must exist in SCRAPE2
      with a value >= the first scrape's (a registry reset or a
      non-monotonic export would break rate() on a real scraper).
      --require fails unless every listed metric family is present in
      (the first) SCRAPE.

  access-log FILE [--expect-trace-id ID]
      Validate a structured access log: every line is a JSON object
      with schema_version 1 and the full v1 field set at the right
      types (trace_id non-empty, timings/bytes non-negative, op known).
      --expect-trace-id fails unless some line carries that trace_id.

Exit codes: 0 ok, 1 validation failure, 2 usage/IO error.
"""

import argparse
import json
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

KNOWN_OPS = {"scan", "explain", "scan-tree", "report-status", "metrics",
             "shutdown", "?"}

ACCESS_LOG_FIELDS = {
    "schema_version": (int,),
    "trace_id": (str,),
    "op": (str,),
    "unix_seconds": (int, float),
    "request_bytes": (int,),
    "response_bytes": (int,),
    "queue_ms": (int, float),
    "infer_ms": (int, float),
    "total_ms": (int, float),
    "batch_size": (int,),
    "precision": (str,),
    "backend": (str,),
    "error": (str,),
}


class Lint:
    def __init__(self):
        self.errors = []

    def error(self, message):
        self.errors.append(message)

    def report(self, what):
        if self.errors:
            for message in self.errors:
                print(f"FAIL [{what}] {message}")
            return 1
        print(f"OK [{what}]")
        return 0


def parse_labels(text, lint, context):
    """Parse the {k="v",...} label block; returns dict or None."""
    labels = {}
    i = 0
    while i < len(text):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[i:])
        if match is None:
            lint.error(f"{context}: malformed label block at '{text[i:]}'")
            return None
        name = match.group(1)
        i += match.end()
        value = []
        while i < len(text):
            c = text[i]
            if c == "\\":
                if i + 1 >= len(text):
                    lint.error(f"{context}: dangling escape in label value")
                    return None
                esc = text[i + 1]
                if esc not in ('\\', '"', 'n'):
                    lint.error(f"{context}: bad escape '\\{esc}' in label value")
                    return None
                value.append({"\\": "\\", '"': '"', "n": "\n"}[esc])
                i += 2
            elif c == '"':
                i += 1
                break
            else:
                value.append(c)
                i += 1
        else:
            lint.error(f"{context}: unterminated label value")
            return None
        labels[name] = "".join(value)
        if i < len(text) and text[i] == ",":
            i += 1
    return labels


def parse_exposition(path, lint):
    """Parse a text exposition into (types, samples).

    types: family name -> declared type.
    samples: list of (name, labels-dict, float value, line number).
    """
    types = {}
    samples = []
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = re.match(r"^# TYPE (\S+) (counter|gauge|histogram|summary|untyped)$", line)
            if match:
                name, family_type = match.groups()
                if not METRIC_NAME_RE.match(name):
                    lint.error(f"{path}:{lineno}: bad metric name '{name}'")
                if name in types:
                    lint.error(f"{path}:{lineno}: duplicate TYPE for '{name}'")
                types[name] = family_type
            elif not line.startswith("# HELP"):
                lint.error(f"{path}:{lineno}: unrecognized comment '{line}'")
            continue
        match = re.match(r"^(\S+?)(\{(.*)\})? (\S+)$", line)
        if match is None:
            lint.error(f"{path}:{lineno}: unparseable sample line '{line}'")
            continue
        name, _, label_text, value_text = match.groups()
        if not METRIC_NAME_RE.match(name):
            lint.error(f"{path}:{lineno}: bad metric name '{name}'")
            continue
        labels = {}
        if label_text is not None:
            labels = parse_labels(label_text, lint, f"{path}:{lineno}")
            if labels is None:
                continue
            for label_name in labels:
                if not LABEL_NAME_RE.match(label_name):
                    lint.error(f"{path}:{lineno}: bad label name '{label_name}'")
        try:
            value = float(value_text)
        except ValueError:
            lint.error(f"{path}:{lineno}: bad sample value '{value_text}'")
            continue
        samples.append((name, labels, value, lineno))
    return types, samples


def family_of(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint_exposition(path, lint):
    types, samples = parse_exposition(path, lint)
    counters = {}
    histograms = {}
    for name, labels, value, lineno in samples:
        family = family_of(name)
        declared = types.get(name) or types.get(family)
        if declared is None:
            lint.error(f"{path}:{lineno}: sample '{name}' has no # TYPE line")
            continue
        if declared == "counter":
            if not math.isfinite(value) or value < 0:
                lint.error(f"{path}:{lineno}: counter '{name}' value {value} "
                           "is not finite/non-negative")
            counters[name] = value
        if declared == "histogram":
            hist = histograms.setdefault(family, {"buckets": [], "sum": None,
                                                  "count": None})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    lint.error(f"{path}:{lineno}: bucket without le label")
                    continue
                le = labels["le"]
                bound = math.inf if le == "+Inf" else float(le)
                hist["buckets"].append((bound, value, lineno))
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = value
            else:
                lint.error(f"{path}:{lineno}: histogram family '{family}' has "
                           f"a bare sample '{name}'")
    for family, hist in sorted(histograms.items()):
        buckets = hist["buckets"]
        if not buckets:
            lint.error(f"{path}: histogram '{family}' has no buckets")
            continue
        bounds = [b[0] for b in buckets]
        if bounds != sorted(bounds):
            lint.error(f"{path}: histogram '{family}' buckets not in "
                       "ascending le order")
        for (lo_bound, lo_count, _), (hi_bound, hi_count, lineno) in zip(
                buckets, buckets[1:]):
            if hi_count < lo_count:
                lint.error(f"{path}:{lineno}: histogram '{family}' bucket "
                           f"le={hi_bound} count {hi_count} < le={lo_bound} "
                           f"count {lo_count} (not cumulative)")
        if buckets[-1][0] != math.inf:
            lint.error(f"{path}: histogram '{family}' missing +Inf bucket")
        if hist["count"] is None:
            lint.error(f"{path}: histogram '{family}' missing _count")
        elif buckets[-1][0] == math.inf and buckets[-1][1] != hist["count"]:
            lint.error(f"{path}: histogram '{family}' +Inf bucket "
                       f"{buckets[-1][1]} != _count {hist['count']}")
        if hist["sum"] is None:
            lint.error(f"{path}: histogram '{family}' missing _sum")
    return types, counters


def cmd_prom(args):
    lint = Lint()
    types, counters = lint_exposition(args.scrape, lint)
    if args.require:
        for name in args.require.split(","):
            name = name.strip()
            if name and name not in types:
                lint.error(f"{args.scrape}: required metric '{name}' missing")
    if args.scrape2:
        lint2 = Lint()
        _, counters2 = lint_exposition(args.scrape2, lint2)
        lint.errors.extend(lint2.errors)
        for name, value in sorted(counters.items()):
            if name not in counters2:
                lint.error(f"{args.scrape2}: counter '{name}' present in first "
                           "scrape but missing from second")
            elif counters2[name] < value:
                lint.error(f"{args.scrape2}: counter '{name}' decreased "
                           f"({value} -> {counters2[name]}) — not monotonic")
    return lint.report("prom")


def cmd_access_log(args):
    lint = Lint()
    try:
        with open(args.log) as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        print(f"error: cannot read {args.log}: {error}", file=sys.stderr)
        return 2
    if not any(line.strip() for line in lines):
        lint.error(f"{args.log}: empty access log")
    seen_trace_ids = set()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            lint.error(f"{args.log}:{lineno}: not valid JSON ({error})")
            continue
        if not isinstance(record, dict):
            lint.error(f"{args.log}:{lineno}: line is not a JSON object")
            continue
        for field, field_types in ACCESS_LOG_FIELDS.items():
            if field not in record:
                lint.error(f"{args.log}:{lineno}: missing field '{field}'")
            elif not isinstance(record[field], field_types) or isinstance(
                    record[field], bool):
                lint.error(f"{args.log}:{lineno}: field '{field}' has type "
                           f"{type(record[field]).__name__}")
        for field in set(record) - set(ACCESS_LOG_FIELDS):
            lint.error(f"{args.log}:{lineno}: unknown field '{field}'")
        if record.get("schema_version") != 1:
            lint.error(f"{args.log}:{lineno}: schema_version "
                       f"{record.get('schema_version')!r} != 1")
        if not record.get("trace_id"):
            lint.error(f"{args.log}:{lineno}: empty trace_id")
        else:
            seen_trace_ids.add(record["trace_id"])
        if record.get("op") not in KNOWN_OPS:
            lint.error(f"{args.log}:{lineno}: unknown op {record.get('op')!r}")
        for field in ("request_bytes", "response_bytes", "queue_ms",
                      "infer_ms", "total_ms", "batch_size", "unix_seconds"):
            value = record.get(field)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if not math.isfinite(value) or value < 0:
                    lint.error(f"{args.log}:{lineno}: field '{field}' value "
                               f"{value} is not finite/non-negative")
    if args.expect_trace_id and args.expect_trace_id not in seen_trace_ids:
        lint.error(f"{args.log}: expected trace_id '{args.expect_trace_id}' "
                   "not found in any line")
    return lint.report("access-log")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    prom = sub.add_parser("prom", help="lint Prometheus exposition file(s)")
    prom.add_argument("scrape")
    prom.add_argument("scrape2", nargs="?", default=None,
                      help="later scrape for counter-monotonicity check")
    prom.add_argument("--require", default="",
                      help="comma-separated metric families that must exist")
    prom.set_defaults(func=cmd_prom)
    access = sub.add_parser("access-log", help="validate access-log JSON lines")
    access.add_argument("log")
    access.add_argument("--expect-trace-id", default=None)
    access.set_defaults(func=cmd_access_log)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
