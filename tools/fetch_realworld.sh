#!/usr/bin/env sh
# Fetch a pinned real-world C project snapshot for scan benchmarking.
#
#   tools/fetch_realworld.sh [DEST]
#
# Clones the pinned tag below into DEST (default: third_party/realworld,
# git-ignored). Offline — CI runners and the build container have no
# network — it falls back to copying the committed seed tree
# (examples/realworld_seed), so every consumer (`sevuldet scan DEST`,
# bench/micro_realworld) works identically either way; only the tree
# size changes. The pin is a tag, not a branch: the same command always
# yields the same bytes, which is what lets drop rates gate in CI.
set -eu

DEST="${1:-third_party/realworld}"
PIN_REPO="https://github.com/madler/zlib.git"
PIN_TAG="v1.3.1"
SEED="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)/examples/realworld_seed"

if [ -e "$DEST" ]; then
  echo "fetch_realworld: $DEST already exists; leaving it untouched" >&2
  exit 0
fi

if git clone --quiet --depth 1 --branch "$PIN_TAG" "$PIN_REPO" "$DEST" \
    2>/dev/null; then
  rm -rf "$DEST/.git"
  echo "fetch_realworld: pinned $PIN_REPO @ $PIN_TAG -> $DEST"
else
  mkdir -p "$DEST"
  cp -R "$SEED"/. "$DEST"/
  echo "fetch_realworld: offline; copied committed seed tree -> $DEST"
fi
