#!/usr/bin/env python3
"""Perf-regression gate over benchmark JSON files.

Two subcommands:

  compare BASELINE CURRENT [--max-regress 0.25] [--summary FILE]
      Compare a freshly measured file against the committed baseline and
      exit 1 on regression. Handles both JSON dialects the repo emits:
        - google-benchmark output ("benchmarks": [...]): per-benchmark
          real_time must stay within (1 + max-regress) of the baseline;
          hit_rate counters must not drop below the baseline and
          allocs_per_step counters must not rise above it. When a file
          was recorded with --benchmark_repetitions, the minimum across
          repetitions is compared: scheduler noise on shared runners is
          strictly additive, so min-of-N is the stable estimator of the
          true cost (record baselines and CI runs with the same
          repetition flags, without --benchmark_report_aggregates_only).
        - metrics-registry snapshots ("schema_version": 1, see
          util/metrics.hpp): gauges ending in "_seconds" or "p95_ms"
          follow the wall-time rule, gauges ending in "hit_rate" must
          not drop, gauges ending in "_rps"/"_qps" (throughput) must
          stay above base*(1 - max-regress), counters containing
          "allocs" must not rise, and labels (e.g. corpus.fingerprint,
          bench.findings_identical) must match exactly. Other "_ms"
          gauges (p50/p99 tails) are informational only — they are too
          noisy on shared runners to gate without flaking.
          A baseline may additionally carry a top-level "speedups"
          section declaring machine-independent ratio floors:

              "speedups": {
                "batched_vs_single": {
                  "numerator": "bench.batch32.fp32_scans_per_s",
                  "denominator": "bench.single.fp32_scans_per_s",
                  "floor": 2.0
                }
              }

          Each entry is evaluated on the CURRENT snapshot only:
          current[numerator] / current[denominator] must be >= floor.
          Because both gauges come from the same run on the same host,
          the ratio cancels machine speed — this is how the batched
          inference path's ">= 2x over per-gadget scoring" contract is
          enforced without the committed absolute numbers ever gating.
          A baseline may also carry a top-level "max_rates" section
          declaring ceilings on CURRENT gauges (machine-independent
          fractions such as scan drop rates):

              "max_rates": {
                "parse_drop": {
                  "gauge": "scan.parse_drop_rate",
                  "max": 0.05
                }
              }

          Each entry fails the gate when current[gauge] > max (or the
          gauge is missing). This is how the real-world scan frontend's
          "graceful degradation stays bounded" contract is enforced: the
          rate is a property of the pinned input tree and the frontend,
          not of the machine, so the ceiling gates absolutely.
      A comparison table in GitHub-flavored markdown is printed, and
      appended to --summary when given (CI points this at
      $GITHUB_STEP_SUMMARY).

  validate FILE [--require-spans a,b,c] [--spans-manifest FILE]
           [--spans-key spans] [--counters-key K] [--gauges-key K]
      Check that FILE is a schema-valid metrics snapshot and that each
      required span has a "span.<name>" histogram with count > 0. The
      span list comes from --require-spans (comma-separated, ad-hoc
      runs) and/or --spans-manifest (a committed JSON file with one or
      more string arrays of span names, e.g. bench/SPANS_manifest.json
      — the single source of truth for CI, so adding a pipeline phase
      means updating the manifest instead of a workflow command line).
      --spans-key selects which array of the manifest to require
      (default "spans"; the serve-gate job uses "serve_spans" against
      the daemon's own metrics snapshot). --counters-key / --gauges-key
      name additional manifest arrays whose entries must be present in
      the snapshot's "counters" / "gauges" sections (the obs-gate job
      uses telemetry_counters/telemetry_gauges to pin the resource
      snapshotter's output to the manifest).

Benchmarks present on only one side are reported but never fail the
gate, so adding a benchmark does not require touching the baseline in
the same commit.
"""

import argparse
import json
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float) and value != int(value):
        return f"{value:.4g}"
    return str(int(value)) if isinstance(value, (int, float)) else str(value)


class Gate:
    """Accumulates comparison rows and the overall pass/fail verdict."""

    def __init__(self):
        self.rows = []  # (name, baseline, current, rule, verdict)
        self.failed = False

    def check(self, name, baseline, current, rule, ok):
        verdict = "ok" if ok else "FAIL"
        if not ok:
            self.failed = True
        self.rows.append((name, fmt(baseline), fmt(current), rule, verdict))

    def note(self, name, baseline, current, rule):
        self.rows.append((name, fmt(baseline), fmt(current), rule, "skip"))

    def table(self):
        lines = [
            "| metric | baseline | current | rule | verdict |",
            "|---|---|---|---|---|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        return "\n".join(lines)


def is_google_benchmark(doc):
    return isinstance(doc.get("benchmarks"), list)


def is_metrics_snapshot(doc):
    return "schema_version" in doc


def real_time_ns(entry):
    unit = entry.get("time_unit", "ns")
    return float(entry["real_time"]) * TIME_UNIT_NS.get(unit, 1.0)


def benchmark_entries(doc):
    """Index benchmarks by name, taking the fastest repetition of each.

    With --benchmark_repetitions google-benchmark emits one entry per
    repetition (same name, distinct repetition_index). Wall-time noise
    on a shared runner is strictly additive, so the minimum over
    repetitions is the stable estimator of the true cost; medians and
    means still drift by 2x when the host is contended for the whole
    run. Aggregate entries (_mean/_median/...) are used only when no
    per-repetition entries are present.
    """
    entries = doc["benchmarks"]
    reps = {}
    for b in entries:
        if b.get("run_type", "iteration") != "aggregate":
            reps.setdefault(b["name"], []).append(b)
    if reps:
        return {name: min(bs, key=real_time_ns) for name, bs in reps.items()}
    medians = [b for b in entries
               if b.get("run_type") == "aggregate"
               and b.get("aggregate_name") == "median"]
    suffix = "_median"
    return {b["name"][:-len(suffix)] if b["name"].endswith(suffix)
            else b["name"]: b for b in medians}


def compare_google_benchmark(base, cur, max_regress, gate):
    base_by_name = benchmark_entries(base)
    cur_by_name = benchmark_entries(cur)
    wall_rule = f"time <= base*{1 + max_regress:.2f}"
    for name, b in base_by_name.items():
        c = cur_by_name.get(name)
        if c is None:
            gate.note(name, real_time_ns(b), None, "missing in current")
            continue
        bt, ct = real_time_ns(b), real_time_ns(c)
        gate.check(name, bt, ct, wall_rule, ct <= bt * (1.0 + max_regress))
        for counter, bval in b.items():
            if counter not in c:
                continue
            if counter.endswith("hit_rate"):
                gate.check(f"{name}:{counter}", bval, c[counter],
                           "rate >= base", float(c[counter]) >= float(bval) - 1e-9)
            elif "allocs" in counter:
                gate.check(f"{name}:{counter}", bval, c[counter],
                           "allocs <= base", float(c[counter]) <= float(bval) + 1e-9)
    for name in cur_by_name:
        if name not in base_by_name:
            gate.note(name, None, real_time_ns(cur_by_name[name]),
                      "new benchmark (no baseline)")


def compare_metrics_snapshot(base, cur, max_regress, gate):
    wall_rule = f"time <= base*{1 + max_regress:.2f}"
    floor_rule = f"rate >= base*{1 - max_regress:.2f}"
    for name, bval in base.get("gauges", {}).items():
        cval = cur.get("gauges", {}).get(name)
        if cval is None:
            gate.note(name, bval, None, "missing in current")
        elif name.endswith("_seconds") or name.endswith("p95_ms"):
            gate.check(name, bval, cval, wall_rule,
                       float(cval) <= float(bval) * (1.0 + max_regress))
        elif name.endswith("hit_rate"):
            gate.check(name, bval, cval, "rate >= base",
                       float(cval) >= float(bval) - 1e-9)
        elif name.endswith("_rps") or name.endswith("_qps"):
            gate.check(name, bval, cval, floor_rule,
                       float(cval) >= float(bval) * (1.0 - max_regress))
        else:
            gate.note(name, bval, cval, "informational")
    for name, bval in base.get("counters", {}).items():
        if "allocs" not in name:
            continue
        cval = cur.get("counters", {}).get(name)
        if cval is None:
            gate.note(name, bval, None, "missing in current")
        else:
            gate.check(name, bval, cval, "allocs <= base",
                       float(cval) <= float(bval) + 1e-9)
    for name, bval in base.get("labels", {}).items():
        cval = cur.get("labels", {}).get(name)
        gate.check(name, bval, cval, "exact match", cval == bval)
    for name, spec in base.get("speedups", {}).items():
        num = cur.get("gauges", {}).get(spec["numerator"])
        den = cur.get("gauges", {}).get(spec["denominator"])
        floor = float(spec["floor"])
        rule = f"{spec['numerator']}/{spec['denominator']} >= {floor:g}"
        if num is None or den is None or float(den) == 0.0:
            gate.check(f"speedup:{name}", floor, None, rule, False)
        else:
            ratio = float(num) / float(den)
            gate.check(f"speedup:{name}", floor, ratio, rule, ratio >= floor)
    for name, spec in base.get("max_rates", {}).items():
        cval = cur.get("gauges", {}).get(spec["gauge"])
        ceiling = float(spec["max"])
        rule = f"{spec['gauge']} <= {ceiling:g}"
        if cval is None:
            gate.check(f"max_rate:{name}", ceiling, None, rule, False)
        else:
            gate.check(f"max_rate:{name}", ceiling, cval, rule,
                       float(cval) <= ceiling + 1e-9)


def cmd_compare(args):
    base, cur = load(args.baseline), load(args.current)
    gate = Gate()
    if is_google_benchmark(base) and is_google_benchmark(cur):
        compare_google_benchmark(base, cur, args.max_regress, gate)
    elif is_metrics_snapshot(base) and is_metrics_snapshot(cur):
        compare_metrics_snapshot(base, cur, args.max_regress, gate)
    else:
        print(f"error: {args.baseline} and {args.current} are not the same "
              "benchmark JSON dialect", file=sys.stderr)
        return 2
    table = f"### {args.baseline} vs {args.current}\n\n{gate.table()}\n"
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as f:
            f.write(table + "\n")
    if gate.failed:
        print("FAIL: perf gate: regression against baseline", file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


def manifest_array(path, key):
    """Read a string array named `key` from the manifest at `path`."""
    manifest = load(path)
    listed = manifest.get(key)
    if not isinstance(listed, list) or not all(
            isinstance(s, str) for s in listed):
        raise SystemExit(f"FAIL: {path}: {key!r} must be a string array")
    return listed


def required_spans(args):
    """Union of --require-spans and the --spans-manifest file, in order."""
    spans = [s for s in (args.require_spans or "").split(",") if s]
    if args.spans_manifest:
        spans.extend(s for s in manifest_array(args.spans_manifest,
                                               args.spans_key or "spans")
                     if s not in spans)
    return spans


def cmd_validate(args):
    doc = load(args.file)
    spans = required_spans(args)
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(f"schema_version is {doc.get('schema_version')!r}, want 1")
    for section in ("counters", "gauges", "labels", "histograms"):
        if not isinstance(doc.get(section), dict):
            errors.append(f"missing section {section!r}")
    histograms = doc.get("histograms", {})
    for span in spans:
        h = histograms.get(f"span.{span}")
        if h is None:
            errors.append(f"no span.{span} histogram")
        elif not h.get("count", 0) > 0:
            errors.append(f"span.{span} has count 0")
        elif not all(k in h for k in ("p50", "p95", "p99", "buckets")):
            errors.append(f"span.{span} missing percentile/bucket fields")
    checked = []
    if args.counters_key:
        if not args.spans_manifest:
            raise SystemExit("FAIL: --counters-key needs --spans-manifest")
        counters = doc.get("counters", {})
        for name in manifest_array(args.spans_manifest, args.counters_key):
            if name not in counters:
                errors.append(f"no counter {name!r}")
            elif not isinstance(counters[name], (int, float)) \
                    or counters[name] < 0:
                errors.append(f"counter {name!r} is {counters[name]!r}, "
                              "want a non-negative number")
            else:
                checked.append(name)
    if args.gauges_key:
        if not args.spans_manifest:
            raise SystemExit("FAIL: --gauges-key needs --spans-manifest")
        gauges = doc.get("gauges", {})
        for name in manifest_array(args.spans_manifest, args.gauges_key):
            if name not in gauges:
                errors.append(f"no gauge {name!r}")
            elif not isinstance(gauges[name], (int, float)):
                errors.append(f"gauge {name!r} is {gauges[name]!r}, "
                              "want a number")
            else:
                checked.append(name)
    if errors:
        for e in errors:
            print(f"FAIL: {args.file}: {e}", file=sys.stderr)
        return 1
    print(f"{args.file}: valid metrics snapshot"
          + (f", spans ok ({','.join(spans)})" if spans else "")
          + (f", metrics ok ({','.join(checked)})" if checked else ""))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    compare = sub.add_parser("compare", help="gate CURRENT against BASELINE")
    compare.add_argument("baseline")
    compare.add_argument("current")
    compare.add_argument("--max-regress", type=float, default=0.25,
                         help="allowed fractional wall-time increase (default 0.25)")
    compare.add_argument("--summary", default="",
                         help="append the markdown table to this file")
    compare.set_defaults(func=cmd_compare)
    validate = sub.add_parser("validate", help="schema-check a metrics snapshot")
    validate.add_argument("file")
    validate.add_argument("--require-spans", default="",
                          help="comma-separated span names that must have data")
    validate.add_argument("--spans-manifest", default="",
                          help="JSON file with arrays of required span names")
    validate.add_argument("--spans-key", default="spans",
                          help="which manifest array to require (default: spans)")
    validate.add_argument("--counters-key", default="",
                          help="manifest array of counters that must be present")
    validate.add_argument("--gauges-key", default="",
                          help="manifest array of gauges that must be present")
    validate.set_defaults(func=cmd_validate)
    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
