#!/usr/bin/env python3
"""Model-quality gate and report renderer over `sevuldet report` JSON.

Two subcommands:

  gate BASELINE CURRENT [--f1-slack 0.05] [--auc-slack 0.05] [--summary FILE]
      Compare a freshly measured quality report against the committed
      baseline (bench/QUALITY_baseline.json) and exit 1 on degradation.
      Two kinds of rules, matching what is and is not deterministic
      across machines:
        - exact: the corpus fingerprint (content-addressed, identical on
          every machine for the same config) and the sample counts. Any
          mismatch means the gate measured a different corpus than the
          baseline, which would make the float comparison meaningless.
        - floors: held-out F1 and ROC AUC must stay within the slack of
          the baseline (training is deterministic per machine but libm
          differences drift the floats across toolchains, so equality
          would be flaky). Improvements never fail the gate; re-record
          the baseline to ratchet.
      ECE and the per-breakdown rows are reported as informational.

  render REPORT [--out FILE.md] [--html FILE.html]
      Render the JSON report as GitHub-flavored markdown (stdout or
      --out) and/or a self-contained HTML page (inline CSS + SVG charts,
      no external assets) for CI artifact upload.

The JSON contract is core/introspect.hpp (kReportSchemaVersion).
"""

import argparse
import html
import json
import sys

SCHEMA_VERSION = 1


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise SystemExit(
            f"FAIL: {path}: schema_version {doc.get('schema_version')!r}, "
            f"want {SCHEMA_VERSION}")
    return doc


def pct(x):
    return f"{100.0 * x:.1f}%"


class Gate:
    """Accumulates comparison rows and the overall pass/fail verdict."""

    def __init__(self):
        self.rows = []
        self.failed = False

    def check(self, name, baseline, current, rule, ok):
        if not ok:
            self.failed = True
        self.rows.append((name, baseline, current, rule, "ok" if ok else "FAIL"))

    def note(self, name, baseline, current, rule):
        self.rows.append((name, baseline, current, rule, "info"))

    def table(self):
        lines = [
            "| metric | baseline | current | rule | verdict |",
            "|---|---|---|---|---|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        return "\n".join(lines)


def cmd_gate(args):
    base, cur = load(args.baseline), load(args.current)
    gate = Gate()

    # Exact rules: same corpus or the comparison is meaningless.
    for key in ("fingerprint", "total_samples", "vulnerable_samples",
                "train_samples", "test_samples"):
        bval = base["corpus"].get(key)
        cval = cur["corpus"].get(key)
        gate.check(f"corpus.{key}", bval, cval, "exact match", bval == cval)

    # Floors with slack: quality must not degrade.
    bf1 = base["evaluation"]["confusion"]["f1"]
    cf1 = cur["evaluation"]["confusion"]["f1"]
    gate.check("f1", f"{bf1:.4f}", f"{cf1:.4f}",
               f"f1 >= base - {args.f1_slack}", cf1 >= bf1 - args.f1_slack)
    bauc = base["evaluation"]["auc"]
    cauc = cur["evaluation"]["auc"]
    gate.check("auc", f"{bauc:.4f}", f"{cauc:.4f}",
               f"auc >= base - {args.auc_slack}", cauc >= bauc - args.auc_slack)

    # Informational: calibration and the drop accounting. Drops are
    # deterministic but legitimately change when the pipeline changes;
    # surfacing them in the table makes an accidental change visible in
    # review without blocking it.
    gate.note("ece", f"{base['calibration']['ece']:.4f}",
              f"{cur['calibration']['ece']:.4f}", "informational")
    for name in sorted(set(base.get("drops", {})) | set(cur.get("drops", {}))):
        gate.note(f"drops.{name}", base.get("drops", {}).get(name, 0),
                  cur.get("drops", {}).get(name, 0), "informational")

    table = f"### quality gate: {args.baseline} vs {args.current}\n\n{gate.table()}\n"
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as f:
            f.write(table + "\n")
    if gate.failed:
        print("FAIL: quality gate: degradation against baseline", file=sys.stderr)
        return 1
    print("quality gate: ok")
    return 0


# ---------------------------------------------------------------- render

def confusion_row(c):
    return [c["tp"], c["fp"], c["tn"], c["fn"],
            pct(c["precision"]), pct(c["recall"]), pct(c["f1"])]


def md_table(header, rows):
    lines = ["| " + " | ".join(str(h) for h in header) + " |",
             "|" + "---|" * len(header)]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def render_markdown(doc):
    corpus = doc["corpus"]
    training = doc["training"]
    evaluation = doc["evaluation"]
    confusion = evaluation["confusion"]
    calibration = doc["calibration"]

    out = ["# SEVulDet quality report", ""]
    out.append(f"Corpus `{corpus['fingerprint']}`: "
               f"{corpus['total_samples']} gadgets "
               f"({corpus['vulnerable_samples']} vulnerable), "
               f"{corpus['train_samples']} train / "
               f"{corpus['test_samples']} test "
               f"(trained in {training['seconds']:.1f}s).")
    out.append("")

    out.append("## Training curve")
    out.append("")
    epochs = range(1, len(training["epoch_losses"]) + 1)
    out.append(md_table(
        ["epoch", "loss", "accuracy"],
        [[e, f"{loss:.4f}", pct(acc)] for e, loss, acc in
         zip(epochs, training["epoch_losses"], training["epoch_accuracies"])]))
    out.append("")

    out.append("## Held-out fold")
    out.append("")
    out.append(md_table(["TP", "FP", "TN", "FN", "P", "R", "F1"],
                        [confusion_row(confusion)]))
    out.append("")
    out.append(f"Accuracy {pct(confusion['accuracy'])}, "
               f"FPR {pct(evaluation['fpr'])}, "
               f"FNR {pct(evaluation['fnr'])}, "
               f"ROC AUC {evaluation['auc']:.3f}, "
               f"ECE {calibration['ece']:.3f}.")
    out.append("")

    out.append("## Per-CWE breakdown")
    out.append("")
    out.append("Each row scores one flaw class against the shared clean "
               "background, so TN/FP repeat across rows.")
    out.append("")
    out.append(md_table(["CWE", "TP", "FP", "TN", "FN", "P", "R", "F1"],
                        [[r["key"]] + confusion_row(r)
                         for r in evaluation["by_cwe"]]))
    out.append("")

    out.append("## Per-gadget-length breakdown")
    out.append("")
    out.append(md_table(["tokens", "TP", "FP", "TN", "FN", "P", "R", "F1"],
                        [[r["key"]] + confusion_row(r)
                         for r in evaluation["by_length"]]))
    out.append("")

    out.append("## Calibration (reliability table)")
    out.append("")
    out.append(md_table(
        ["bin", "count", "confidence", "vulnerable"],
        [[f"{b['lower']:.1f}-{b['upper']:.1f}", b["count"],
          pct(b["mean_probability"]), pct(b["frac_positive"])]
         for b in calibration["bins"]]))
    out.append("")

    out.append("## Pipeline drop accounting")
    out.append("")
    drops = doc.get("drops", {})
    if drops:
        out.append(md_table(["counter", "count"], sorted(drops.items())))
    else:
        out.append("No gadgets were dropped or truncated during this run.")
    out.append("")
    return "\n".join(out)


def svg_bars(pairs, width=560, height=160, color="#4c78a8"):
    """Inline SVG bar chart for (label, value-in-[0,1]) pairs."""
    if not pairs:
        return ""
    n = len(pairs)
    pad, label_h = 4, 18
    bar_w = (width - pad * (n + 1)) / n
    parts = [f'<svg width="{width}" height="{height + label_h}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    for i, (label, value) in enumerate(pairs):
        v = max(0.0, min(1.0, float(value)))
        x = pad + i * (bar_w + pad)
        h = v * (height - 20)
        parts.append(f'<rect x="{x:.1f}" y="{height - h:.1f}" '
                     f'width="{bar_w:.1f}" height="{h:.1f}" fill="{color}"/>')
        parts.append(f'<text x="{x + bar_w / 2:.1f}" y="{height + 12}" '
                     f'font-size="9" text-anchor="middle">'
                     f'{html.escape(str(label))}</text>')
    parts.append("</svg>")
    return "".join(parts)


HTML_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 52em; color: #24292f; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #d0d7de; padding: 4px 10px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f6f8fa; }
code { background: #f6f8fa; padding: 1px 4px; border-radius: 4px; }
h1, h2 { border-bottom: 1px solid #d0d7de; padding-bottom: 0.2em; }
p.note { color: #57606a; font-size: 0.9em; }
"""


def html_table(header, rows):
    out = ["<table><tr>" + "".join(f"<th>{html.escape(str(h))}</th>"
                                   for h in header) + "</tr>"]
    for row in rows:
        out.append("<tr>" + "".join(f"<td>{html.escape(str(c))}</td>"
                                    for c in row) + "</tr>")
    out.append("</table>")
    return "\n".join(out)


def render_html(doc):
    corpus = doc["corpus"]
    training = doc["training"]
    evaluation = doc["evaluation"]
    confusion = evaluation["confusion"]
    calibration = doc["calibration"]

    epochs = range(1, len(training["epoch_losses"]) + 1)
    max_loss = max(training["epoch_losses"], default=1.0) or 1.0
    out = ["<!DOCTYPE html><html><head><meta charset='utf-8'>",
           "<title>SEVulDet quality report</title>",
           f"<style>{HTML_CSS}</style></head><body>",
           "<h1>SEVulDet quality report</h1>",
           f"<p>Corpus <code>{html.escape(corpus['fingerprint'])}</code>: "
           f"{corpus['total_samples']} gadgets "
           f"({corpus['vulnerable_samples']} vulnerable), "
           f"{corpus['train_samples']} train / {corpus['test_samples']} test "
           f"(trained in {training['seconds']:.1f}s).</p>",
           "<h2>Training curve</h2>",
           html_table(["epoch", "loss", "accuracy"],
                      [[e, f"{loss:.4f}", pct(acc)] for e, loss, acc in
                       zip(epochs, training["epoch_losses"],
                           training["epoch_accuracies"])]),
           "<p class='note'>Loss per epoch (scaled to the first epoch):</p>",
           svg_bars([(e, loss / max_loss) for e, loss in
                     zip(epochs, training["epoch_losses"])], width=280),
           "<h2>Held-out fold</h2>",
           html_table(["TP", "FP", "TN", "FN", "P", "R", "F1"],
                      [confusion_row(confusion)]),
           f"<p>Accuracy {pct(confusion['accuracy'])}, "
           f"FPR {pct(evaluation['fpr'])}, FNR {pct(evaluation['fnr'])}, "
           f"ROC AUC {evaluation['auc']:.3f}, "
           f"ECE {calibration['ece']:.3f}.</p>",
           "<h2>Per-CWE breakdown</h2>",
           "<p class='note'>Each row scores one flaw class against the "
           "shared clean background, so TN/FP repeat across rows.</p>",
           html_table(["CWE", "TP", "FP", "TN", "FN", "P", "R", "F1"],
                      [[r["key"]] + confusion_row(r)
                       for r in evaluation["by_cwe"]]),
           "<h2>Per-gadget-length breakdown</h2>",
           html_table(["tokens", "TP", "FP", "TN", "FN", "P", "R", "F1"],
                      [[r["key"]] + confusion_row(r)
                       for r in evaluation["by_length"]]),
           "<h2>Calibration</h2>",
           html_table(["bin", "count", "confidence", "vulnerable"],
                      [[f"{b['lower']:.1f}-{b['upper']:.1f}", b["count"],
                        pct(b["mean_probability"]), pct(b["frac_positive"])]
                       for b in calibration["bins"]]),
           "<p class='note'>Empirical vulnerable fraction per confidence "
           "bin (a calibrated model climbs the diagonal):</p>",
           svg_bars([(f"{b['lower']:.1f}", b["frac_positive"])
                     for b in calibration["bins"]]),
           "<h2>Pipeline drop accounting</h2>"]
    drops = doc.get("drops", {})
    if drops:
        out.append(html_table(["counter", "count"], sorted(drops.items())))
    else:
        out.append("<p>No gadgets were dropped or truncated during this "
                   "run.</p>")
    out.append("</body></html>")
    return "\n".join(out)


def cmd_render(args):
    doc = load(args.report)
    markdown = render_markdown(doc)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(markdown + "\n")
    else:
        print(markdown)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as f:
            f.write(render_html(doc) + "\n")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    gate = sub.add_parser("gate", help="gate CURRENT against BASELINE")
    gate.add_argument("baseline")
    gate.add_argument("current")
    gate.add_argument("--f1-slack", type=float, default=0.05,
                      help="allowed F1 drop below baseline (default 0.05)")
    gate.add_argument("--auc-slack", type=float, default=0.05,
                      help="allowed AUC drop below baseline (default 0.05)")
    gate.add_argument("--summary", default="",
                      help="append the markdown table to this file")
    gate.set_defaults(func=cmd_gate)
    render = sub.add_parser("render", help="render a report as markdown/HTML")
    render.add_argument("report")
    render.add_argument("--out", default="", help="write markdown here")
    render.add_argument("--html", default="", help="write standalone HTML here")
    render.set_defaults(func=cmd_render)
    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
