// Table VII: which systems detect the three planted real-world
// vulnerabilities (modeled on CVE-2016-4453 / CVE-2016-9104 /
// CVE-2016-9776). Detectors: an AFL-like coverage-guided fuzzer run on
// the interpreter substrate, plus VulDeePecker / SySeVR / SEVulDet
// pre-trained on the SARD-like corpus.
#include "bench_common.hpp"

#include "sevuldet/baselines/fuzzer.hpp"
#include "sevuldet/dataset/realworld.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/normalize/normalize.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  namespace sb = sevuldet::baselines;
  print_header("Table VII — planted real-world CVE discovery", "Table VII");

  auto train_cases = mixed_training_cases();
  auto realworld = sd::generate_realworld({});

  // --- train the three DL frameworks -------------------------------------
  struct Framework {
    std::string name;
    Representation representation;
    std::unique_ptr<sm::Detector> model;
    sd::Corpus train_corpus;
  };
  std::vector<Framework> frameworks;
  frameworks.push_back({"VulDeePecker", Representation::DataOnly, nullptr, {}});
  frameworks.push_back({"SySeVR", Representation::ControlAndData, nullptr, {}});
  frameworks.push_back({"SEVulDet", Representation::PathSensitive, nullptr, {}});

  for (auto& fw : frameworks) {
    fw.train_corpus = sd::build_corpus(train_cases, corpus_options(fw.representation));
    sd::encode_corpus(fw.train_corpus);
    auto refs = split_corpus(fw.train_corpus);
    sc::SampleRefs train_set = refs.train;
    if (fw.name == "VulDeePecker") {
      train_set = sc::filter_category(train_set, ss::TokenCategory::FunctionCall);
      fw.model = sm::make_vuldeepecker(base_model_config(fw.train_corpus.vocab.size()));
    } else if (fw.name == "SySeVR") {
      fw.model = sm::make_sysevr(base_model_config(fw.train_corpus.vocab.size()));
    } else {
      fw.model = make_sevuldet(fw.train_corpus.vocab.size());
    }
    std::printf("training %s...\n", fw.name.c_str());
    pretrain_embeddings(*fw.model, fw.train_corpus, train_set);
    sc::TrainConfig tc;
    tc.epochs = bench_epochs();
    tc.lr = 0.002f;
    sc::train_detector(*fw.model, train_set, tc);
  }

  // --- evaluate every detector on every planted bug -----------------------
  // Returns the maximum probability over gadgets covering the flagged
  // lines (printed as the decision margin; detection = above threshold).
  auto dl_max_probability = [&](Framework& fw, const sd::TestCase& tc) {
    auto program = sevuldet::graph::build_program_graph(tc.source);
    float best = 0.0f;
    for (const auto& token : sevuldet::slicer::find_special_tokens(program)) {
      if (fw.name == "VulDeePecker" &&
          token.category != ss::TokenCategory::FunctionCall) {
        continue;
      }
      auto gadget = sevuldet::slicer::generate_gadget(
          program, token, corpus_options(fw.representation).gadget);
      bool covers_flaw = false;
      for (const auto& line : gadget.lines) {
        if (tc.vulnerable_lines.contains(line.line)) covers_flaw = true;
      }
      if (!covers_flaw) continue;
      auto norm = sevuldet::normalize::normalize_gadget(gadget);
      auto ids = fw.train_corpus.vocab.encode(norm.tokens);
      best = std::max(best, fw.model->predict(ids));
    }
    return best;
  };

  su::Table table({"Planted bug", "Modeled CVE", "File", "AFL", "VulDeePecker",
                   "SySeVR", "SEVulDet"});
  for (const auto& bug : realworld.planted) {
    auto unit = sevuldet::frontend::parse(bug.testcase.source);
    sb::FuzzConfig fuzz;
    fuzz.executions = env_int("SEVULDET_BENCH_FUZZ_EXECS", 20000);
    fuzz.step_limit = 100000;
    auto fuzz_report = sb::fuzz_program(unit, fuzz);
    std::vector<std::string> row = {bug.name, bug.cve, bug.file,
                                    fuzz_report.found ? "yes" : "no"};
    for (auto& fw : frameworks) {
      const float p = dl_max_probability(fw, bug.testcase);
      const bool hit = p > fw.model->config().threshold;
      row.push_back(std::string(hit ? "yes" : "no") + " (p=" +
                    sevuldet::util::fmt(p, 2) + ")");
    }
    table.add_row(row);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("paper Table VII: 4453 found by AFL+SySeVR+SEVulDet; 9104 by\n"
              "VulDeePecker+SEVulDet (AFL defeated by the special offset /\n"
              "trigger distance); 9776 by AFL+SEVulDet. SEVulDet finds all 3.\n");
  return 0;
}
