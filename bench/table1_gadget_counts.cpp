// Table I: counts of the four path-sensitive code-gadget categories,
// vulnerable vs non-vulnerable, over the full synthetic corpus.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Table I — path-sensitive code gadgets by category",
               "Table I of the paper");

  sd::SardConfig config;
  config.pairs_per_category = bench_pairs();
  auto cases = sd::generate_sard_like(config);
  auto corpus = sd::build_corpus(cases, corpus_options(Representation::PathSensitive));

  su::Table table({"Categories", "Vulnerable", "Non-vulnerable", "Total", "Vuln%"});
  long long vuln_total = 0, all_total = 0;
  for (auto category :
       {ss::TokenCategory::FunctionCall, ss::TokenCategory::ArrayUsage,
        ss::TokenCategory::PointerUsage, ss::TokenCategory::ArithExpr}) {
    auto it = corpus.stats.by_category.find(category);
    if (it == corpus.stats.by_category.end()) continue;
    const auto [vulnerable, total] = it->second;
    vuln_total += vulnerable;
    all_total += total;
    table.add_row({ss::category_long_name(category), std::to_string(vulnerable),
                   std::to_string(total - vulnerable), std::to_string(total),
                   su::fmt(100.0 * static_cast<double>(vulnerable) /
                               static_cast<double>(total),
                           1)});
  }
  table.add_row({"All", std::to_string(vuln_total),
                 std::to_string(all_total - vuln_total), std::to_string(all_total),
                 su::fmt(100.0 * static_cast<double>(vuln_total) /
                             static_cast<double>(all_total),
                         1)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("programs: %zu  parse failures: %lld\n", cases.size(),
              corpus.stats.parse_failures);
  std::printf("paper's regime: 5.5%% - 10.2%% vulnerable per category "
              "(strong minority); ours should land in the same regime.\n");
  return 0;
}
