// Fig. 6: the path-sensitive code gadget for the CVE-2016-9776-like
// infinite-loop bug, and the ten tokens the trained token-attention
// layer weighs highest (percentages normalized to the maximum weight) —
// the paper's interpretability analysis (RQ4).
#include "bench_common.hpp"

#include <algorithm>
#include <map>

#include "sevuldet/dataset/realworld.hpp"
#include "sevuldet/normalize/normalize.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Fig. 6 — attention visualization on the 9776-like gadget",
               "Fig. 6");

  // Train on SARD-like + NVD-like, as in Tables VI/VII (the paper's
  // Fig. 6 model is the pre-trained detector that found the bug).
  auto train_cases = mixed_training_cases();

  auto corpus = build_encoded_corpus(train_cases, Representation::PathSensitive);
  auto refs = split_corpus(corpus);
  auto model = make_sevuldet(corpus.vocab.size());
  std::printf("training SEVulDet...\n");
  train_and_eval(*model, corpus, refs, 0.002f);

  auto realworld = sd::generate_realworld({});
  const auto& fec = realworld.planted[0];  // the 9776-like bug

  // The gadget whose slice covers the flagged loop lines.
  auto program = sevuldet::graph::build_program_graph(fec.testcase.source);
  sevuldet::slicer::CodeGadget gadget;
  for (const auto& token : sevuldet::slicer::find_special_tokens(program)) {
    auto candidate = sevuldet::slicer::generate_gadget(program, token);
    bool covers = false;
    for (const auto& line : candidate.lines) {
      if (fec.testcase.vulnerable_lines.contains(line.line)) covers = true;
    }
    if (covers && candidate.lines.size() > gadget.lines.size()) {
      gadget = std::move(candidate);
    }
  }

  std::printf("\npath-sensitive gadget for %s (%s), %zu lines "
              "('+' = Algorithm 1 boundary):\n",
              fec.cve.c_str(), fec.file.c_str(), gadget.lines.size());
  for (const auto& line : gadget.lines) {
    std::printf("  %3d %s %s\n", line.line, line.is_boundary ? "+" : " ",
                line.text.c_str());
  }

  auto norm = sevuldet::normalize::normalize_gadget(gadget);
  auto ids = corpus.vocab.encode(norm.tokens);
  const float probability = model->predict(ids);
  std::printf("\ngadget tokens: %zu (no truncation — flexible length)\n",
              ids.size());
  std::printf("SEVulDet probability: %.3f (threshold %.1f)\n", probability,
              model->config().threshold);

  // Top-10 attention tokens by distinct spelling (max weight per
  // spelling), normalized to the maximum — the Fig. 6 right panel.
  const auto& weights = model->last_token_weights();
  std::map<std::string, float> by_token;
  for (std::size_t i = 0; i < weights.size() && i < norm.tokens.size(); ++i) {
    float& w = by_token[norm.tokens[i]];
    w = std::max(w, weights[i]);
  }
  std::vector<std::pair<std::string, float>> ranked(by_token.begin(),
                                                    by_token.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  const float max_w = ranked.empty() ? 1.0f : ranked[0].second;

  std::printf("\ntop-10 attention tokens (distinct spellings):\n");
  for (std::size_t rank = 0; rank < 10 && rank < ranked.size(); ++rank) {
    const float pct = 100.0f * ranked[rank].second / max_w;
    std::string bar(static_cast<std::size_t>(pct / 4), '#');
    std::printf("  %2zu. %-12s %5.1f%% %s\n", rank + 1,
                ranked[rank].first.c_str(), pct, bar.c_str());
  }
  std::printf("\npaper Fig. 6: the most-weighted tokens cluster on the loop\n"
              "header and the size-update lines (the vulnerability logic), with\n"
              "a block bracket in the top ten (path semantics noticed).\n");
  return 0;
}
