// Extension (beyond the paper's binary head; μVulDeePecker direction and
// the Fig. 2b promise of "output vulnerability type"): multiclass CWE-type
// detection on path-sensitive gadgets — per-class precision/recall/F1 and
// the overall accuracy/macro-F1.
#include "bench_common.hpp"

#include "sevuldet/core/multiclass.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Extension — multiclass vulnerability-type detection",
               "Fig. 2b (type output) / μVulDeePecker direction");

  sd::SardConfig config;
  config.pairs_per_category = bench_pairs();
  auto cases = sd::generate_sard_like(config);
  auto corpus = build_encoded_corpus(cases, Representation::PathSensitive);
  auto refs = split_corpus(corpus);

  auto classes = sc::CweClassMap::from_samples(refs.train);
  std::printf("classes: %d (", classes.num_classes());
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("%s%s", c > 0 ? ", " : "", classes.name_of(c).c_str());
  }
  std::printf(")\n");

  auto model_config = base_model_config(corpus.vocab.size());
  model_config.num_classes = classes.num_classes();
  sm::SeVulDetNet net(model_config);
  pretrain_embeddings(net, corpus, refs.train);
  sc::TrainConfig tc;
  tc.epochs = bench_epochs();
  tc.lr = 0.002f;
  tc.verbose = true;
  sc::train_multiclass(net, refs.train, classes, tc);
  auto eval = sc::evaluate_multiclass(net, refs.test, classes);

  su::Table table({"Class", "Precision(%)", "Recall(%)", "F1(%)"});
  for (int c = 0; c < classes.num_classes(); ++c) {
    table.add_row({classes.name_of(c),
                   su::fmt(eval.per_class_precision[static_cast<std::size_t>(c)] * 100, 1),
                   su::fmt(eval.per_class_recall[static_cast<std::size_t>(c)] * 100, 1),
                   su::fmt(eval.per_class_f1[static_cast<std::size_t>(c)] * 100, 1)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("accuracy %.1f%%  macro-F1 %.1f%%\n", eval.accuracy * 100,
              eval.macro_f1 * 100);
  return 0;
}
