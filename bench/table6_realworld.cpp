// Table VI: the three frameworks on real-world software (the Xen-like
// corpus), each trained on the synthetic SARD-like corpus and evaluated
// on gadgets extracted from the device-emulator programs — the transfer
// setting where every framework degrades and SEVulDet degrades least.
#include "bench_common.hpp"

#include "sevuldet/dataset/realworld.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Table VI — real-world (Xen-like) evaluation", "Table VI");

  auto train_cases = mixed_training_cases();

  sd::RealWorldConfig rw_config;
  rw_config.variant_pairs = env_int("SEVULDET_BENCH_RW_PAIRS", 10);
  auto realworld = sd::generate_realworld(rw_config);
  std::printf("real-world programs: %zu\n", realworld.cases.size());

  su::Table table({"Work", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"});

  struct Framework {
    const char* name;
    Representation representation;
  };
  for (const Framework& fw :
       {Framework{"VulDeePecker", Representation::DataOnly},
        Framework{"SySeVR", Representation::ControlAndData},
        Framework{"SEVulDet", Representation::PathSensitive}}) {
    // Train corpus (SARD-like) and test corpus (Xen-like) share the
    // representation and the vocabulary (built from training samples).
    auto train_corpus = sd::build_corpus(train_cases, corpus_options(fw.representation));
    sd::encode_corpus(train_corpus);
    auto test_corpus =
        sd::build_corpus(realworld.cases, corpus_options(fw.representation));
    test_corpus.vocab = train_corpus.vocab;
    for (auto& sample : test_corpus.samples) {
      sample.ids = test_corpus.vocab.encode(sample.tokens);
    }

    auto train_refs = split_corpus(train_corpus).train;
    sc::SampleRefs train_set = train_refs;
    sc::SampleRefs test_set = sc::all_sample_refs(test_corpus);
    if (std::string(fw.name) == "VulDeePecker") {
      train_set = sc::filter_category(train_set, ss::TokenCategory::FunctionCall);
      test_set = sc::filter_category(test_set, ss::TokenCategory::FunctionCall);
    }

    std::unique_ptr<sm::Detector> model;
    if (std::string(fw.name) == "VulDeePecker") {
      model = sm::make_vuldeepecker(base_model_config(train_corpus.vocab.size()));
    } else if (std::string(fw.name) == "SySeVR") {
      model = sm::make_sysevr(base_model_config(train_corpus.vocab.size()));
    } else {
      model = make_sevuldet(train_corpus.vocab.size());
    }
    pretrain_embeddings(*model, train_corpus, train_set);
    sc::TrainConfig tc;
    tc.epochs = bench_epochs();
    tc.lr = 0.002f;
    tc.verbose = true;
    sc::train_detector(*model, train_set, tc);
    auto confusion = sc::evaluate_detector(*model, test_set);
    table.add_row(metric_row(fw.name, confusion));
    std::printf("  %s on %zu real-world gadgets: %s\n", fw.name, test_set.size(),
                confusion.summary().c_str());
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("expected shape (paper Table VI): every framework degrades on the\n"
              "real-world corpus relative to Table V; SEVulDet keeps the best\n"
              "FNR and F1 (paper: 60.6 / 67.9 / 73.4 F1).\n");
  return 0;
}
