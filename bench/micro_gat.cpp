// Graph message-passing microbenchmark + correctness harness for the
// GAT backend. Before timing anything it proves two bitwise contracts
// and exits nonzero if either breaks:
//
//   exit 4  blocked graph kernels != their naive oracles
//           (gather/scatter/segment-softmax/segment-mean over
//           corpus-shaped random graphs)
//   exit 5  GatNet node-bucketed predict_batch != the per-item
//           predict_captured_item loop (probability or token weights)
//
// Then it records throughput gauges (absolute scans/s never gate; the
// committed BENCH_gat.json baseline gates the machine-independent
// batch_vs_single ratio floor instead), alloc-counts a warm batched
// pass (operator-new override, counter bench.gat.allocs_per_pass —
// check_bench.py fails the gate if it rises above the baseline), and
// emits the gat.forward / gat.batch spans the CI perf gate validates
// against bench/SPANS_manifest.json (--spans-key gat_spans).
//
//   micro_gat [--gadgets N] [--secs S] [--reps R] [--json PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sevuldet/models/gat_net.hpp"
#include "sevuldet/nn/autograd.hpp"
#include "sevuldet/nn/graph_kernels.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/rng.hpp"

// --- allocation counter ----------------------------------------------------
// Same replacement-operator pattern as micro_kernels / micro_batch.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

namespace sg = sevuldet::graph;
namespace sm = sevuldet::models;
namespace nn = sevuldet::nn;
namespace nk = sevuldet::nn::kernels;
namespace su = sevuldet::util;
using Clock = std::chrono::steady_clock;

bool bits_equal(float a, float b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// One deterministic corpus-shaped sample: `nodes` gadget lines of 2-9
/// tokens each, with a chain of control edges, a scattering of data
/// edges (def -> later use), and the occasional call edge — the same
/// edge mix build_gadget_graph emits, stored in its (to, from, type)
/// sort order.
struct Sample {
  std::vector<int> tokens;
  sg::GadgetGraph graph;
};

Sample make_sample(int nodes, int vocab, su::Rng& rng) {
  Sample sample;
  sample.graph.node_offsets.push_back(0);
  for (int n = 0; n < nodes; ++n) {
    const int len = 2 + static_cast<int>(rng.uniform(8));
    for (int t = 0; t < len; ++t) {
      sample.tokens.push_back(
          2 + static_cast<int>(rng.uniform(static_cast<std::uint64_t>(vocab - 4))));
    }
    sample.graph.node_offsets.push_back(
        static_cast<std::uint32_t>(sample.tokens.size()));
  }
  for (int d = 1; d < nodes; ++d) {
    sample.graph.edges.push_back({static_cast<std::uint32_t>(d - 1),
                                  static_cast<std::uint32_t>(d),
                                  sg::GadgetEdgeType::kControl});
    if (d >= 2 && rng.bernoulli(0.6)) {
      sample.graph.edges.push_back(
          {static_cast<std::uint32_t>(rng.uniform(static_cast<std::uint64_t>(d))),
           static_cast<std::uint32_t>(d), sg::GadgetEdgeType::kData});
    }
    if (rng.bernoulli(0.2)) {
      sample.graph.edges.push_back(
          {static_cast<std::uint32_t>(rng.uniform(static_cast<std::uint64_t>(d))),
           static_cast<std::uint32_t>(d), sg::GadgetEdgeType::kCall});
    }
  }
  std::sort(sample.graph.edges.begin(), sample.graph.edges.end(),
            [](const sg::GadgetEdge& a, const sg::GadgetEdge& b) {
              if (a.to != b.to) return a.to < b.to;
              if (a.from != b.from) return a.from < b.from;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });
  return sample;
}

/// Blocked kernels vs naive oracles on random instances. Returns false
/// (after printing the first divergence) on any bit mismatch.
bool kernels_match_oracles() {
  su::Rng rng(1234);
  for (int round = 0; round < 8; ++round) {
    const std::size_t rows = 3 + rng.uniform(60);
    const std::size_t cols = 1 + rng.uniform(48);
    const std::size_t n = 1 + rng.uniform(4 * rows);
    std::vector<float> src(rows * cols), edge_vals(n * cols), scores(n);
    for (float& v : src) v = static_cast<float>(rng.uniform_real(-2.0, 2.0));
    for (float& v : edge_vals) {
      v = static_cast<float>(rng.uniform_real(-2.0, 2.0));
    }
    for (float& v : scores) v = static_cast<float>(rng.uniform_real(-4.0, 4.0));
    std::vector<int> idx(n);
    for (int& i : idx) i = static_cast<int>(rng.uniform(rows));

    std::vector<float> a(n * cols), b(n * cols);
    nk::gather_rows(n, cols, idx.data(), src.data(), a.data());
    nk::gather_rows_naive(n, cols, idx.data(), src.data(), b.data());
    if (a != b) {
      std::fprintf(stderr, "round %d: gather_rows != naive\n", round);
      return false;
    }

    std::vector<float> sa(rows * cols, 0.5f), sb(rows * cols, 0.5f);
    nk::scatter_add_rows(n, cols, idx.data(), edge_vals.data(), sa.data());
    nk::scatter_add_rows_naive(n, cols, idx.data(), edge_vals.data(),
                               sb.data());
    if (sa != sb) {
      std::fprintf(stderr, "round %d: scatter_add_rows != naive\n", round);
      return false;
    }

    // Random segmentation of [0, n), empty segments included.
    std::vector<int> offsets = {0};
    while (offsets.back() < static_cast<int>(n)) {
      offsets.push_back(std::min<int>(
          static_cast<int>(n), offsets.back() + static_cast<int>(rng.uniform(7))));
    }
    const std::size_t segs = offsets.size() - 1;
    std::vector<float> fa(n, -1.0f), fb(n, -1.0f);
    nk::segment_softmax(segs, offsets.data(), scores.data(), fa.data());
    nk::segment_softmax_naive(segs, offsets.data(), scores.data(), fb.data());
    if (fa != fb) {
      std::fprintf(stderr, "round %d: segment_softmax != naive\n", round);
      return false;
    }

    // Segment-mean over a row matrix segmented the same way (offsets
    // must end at the row count, so rebuild for `rows`).
    std::vector<int> moff = {0};
    while (moff.back() < static_cast<int>(rows)) {
      moff.push_back(std::min<int>(static_cast<int>(rows),
                                   moff.back() + 1 + static_cast<int>(rng.uniform(5))));
    }
    const std::size_t msegs = moff.size() - 1;
    std::vector<float> ma(msegs * cols), mb(msegs * cols);
    nk::segment_mean(msegs, moff.data(), cols, src.data(), ma.data());
    nk::segment_mean_naive(msegs, moff.data(), cols, src.data(), mb.data());
    if (ma != mb) {
      std::fprintf(stderr, "round %d: segment_mean != naive\n", round);
      return false;
    }
  }
  return true;
}

template <typename Pass>
double measure_scans_per_s(Pass&& pass, int gadgets_per_pass, double secs) {
  pass();  // warmup
  const auto start = Clock::now();
  long long scored = 0;
  double elapsed = 0.0;
  do {
    pass();
    scored += gadgets_per_pass;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < secs);
  return static_cast<double>(scored) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  int gadget_count = 96;
  double secs = 0.4;
  int reps = bench::env_int("SEVULDET_BENCH_REPS", 3);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--gadgets") == 0) {
      gadget_count = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--secs") == 0) secs = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  gadget_count = std::max(1, gadget_count);
  reps = std::max(1, reps);
  if (!json_path.empty()) su::metrics::set_enabled(true);
  namespace metrics = su::metrics;

  // --- correctness 1: blocked kernels == naive oracles, bitwise -------
  const bool kernels_ok = kernels_match_oracles();
  metrics::label_set("bench.gat.kernels_identical",
                     kernels_ok ? "true" : "false");
  std::printf("blocked graph kernels bit-identical to naive oracles: %s\n",
              kernels_ok ? "yes" : "NO");
  if (!kernels_ok) return 4;

  sm::ModelConfig config;
  config.vocab_size = 500;
  sm::GatNet net(config);

  // Corpus-shaped graph sizes: mostly small gadgets (3-10 lines) with a
  // tail of larger slices, shuffled so bucketing has work to do.
  su::Rng rng(99);
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(gadget_count));
  for (int i = 0; i < gadget_count; ++i) {
    const int nodes = i % 5 == 4 ? 16 + static_cast<int>(rng.uniform(24))
                                 : 3 + static_cast<int>(rng.uniform(8));
    samples.push_back(make_sample(nodes, config.vocab_size, rng));
  }
  std::vector<sm::BatchItem> items;
  items.reserve(samples.size());
  for (const Sample& sample : samples) {
    items.push_back({&sample.tokens, false, &sample.graph});
  }
  std::vector<sm::Prediction> batched(items.size());
  std::vector<sm::Prediction> single(items.size());

  // --- correctness 2: bucketed batch == per-item loop, bitwise --------
  net.predict_batch(items.data(), items.size(), batched.data());
  {
    nn::Graph graph;
    for (std::size_t i = 0; i < items.size(); ++i) {
      nn::GraphScope scope(graph);
      single[i] = net.predict_captured_item(items[i]);
    }
  }
  bool identical = true;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!bits_equal(batched[i].probability, single[i].probability) ||
        !bits_equal(batched[i].token_weights, single[i].token_weights)) {
      identical = false;
      std::fprintf(stderr, "gadget %zu: batched %a != single %a\n", i,
                   static_cast<double>(batched[i].probability),
                   static_cast<double>(single[i].probability));
    }
  }
  metrics::label_set("bench.gat.batched_identical",
                     identical ? "true" : "false");
  std::printf("bucketed predict_batch bit-identical to per-item loop: %s\n",
              identical ? "yes" : "NO");
  if (!identical) return 5;

  auto best_of_reps = [&](auto&& pass) {
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      best = std::max(best, measure_scans_per_s(pass, gadget_count, secs));
    }
    return best;
  };

  su::Table table({"path", "scans/s"});
  auto record = [&](const std::string& name, double value) {
    table.add_row({name, su::fmt(value, 0)});
    metrics::gauge_set(name, value);
  };

  record("bench.gat.single_scans_per_s", best_of_reps([&] {
           nn::Graph graph;
           for (const sm::BatchItem& item : items) {
             nn::GraphScope scope(graph);
             net.predict_captured_item(item);
           }
         }));
  auto batched_pass = [&] {
    net.predict_batch(items.data(), items.size(), batched.data());
  };
  record("bench.gat.batch_scans_per_s", best_of_reps(batched_pass));

  // Steady-state allocations of a warm bucketed pass. The GAT forward
  // builds an autograd graph per gadget, but the recycled arena
  // (GraphScope over batch_graph_) absorbs node shells and tensor
  // storage alike, so a warm pass is allocation-free — the committed
  // baseline pins 0 and check_bench.py fails if it ever rises.
  {
    batched_pass();  // warm
    const long long before = g_allocs.load(std::memory_order_relaxed);
    constexpr int kPasses = 5;
    for (int i = 0; i < kPasses; ++i) batched_pass();
    const long long after = g_allocs.load(std::memory_order_relaxed);
    const long long per_pass = (after - before) / kPasses;
    metrics::counter_add("bench.gat.allocs_per_pass", per_pass);
    table.add_row({"bench.gat.allocs_per_pass", std::to_string(per_pass)});
  }

  metrics::gauge_set("bench.gadgets", gadget_count);
  metrics::gauge_set("bench.secs_per_row", secs);
  std::printf("%s", table.to_string().c_str());
  if (!json_path.empty()) {
    metrics::write_json(json_path);
    std::printf("recorded %s\n", json_path.c_str());
  }
  return 0;
}
