// Ablation: sequential vs parallel arrangement of CBAM channel and
// spatial attention. The paper: "the sequential alignment of the two
// modules gives better results than parallel alignment."
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Ablation — CBAM sequential vs parallel", "Section III-C a)");

  sd::SardConfig config;
  config.pairs_per_category = std::max(20, bench_pairs() / 2);  // ablation scale
  auto cases = sd::generate_sard_like(config);
  auto corpus = build_encoded_corpus(cases, Representation::PathSensitive);
  auto refs = split_corpus(corpus);

  su::Table table({"CBAM arrangement", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"});
  for (bool sequential : {true, false}) {
    auto model_config = base_model_config(corpus.vocab.size());
    model_config.cbam_sequential = sequential;
    sm::SeVulDetNet net(model_config);
    auto c = train_and_eval(net, corpus, refs, 0.002f);
    table.add_row(metric_row(sequential ? "sequential (paper)" : "parallel", c));
  }
  std::printf("\n%s\n", table.to_string().c_str());
  return 0;
}
