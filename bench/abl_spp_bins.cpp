// Ablation (beyond the paper, called out in DESIGN.md): the SPP bin
// structure. The paper fixes {4,2,1}; this sweep compares a single
// global max-pool {1}, the paper's pyramid, and a deeper pyramid.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Ablation — SPP bin structure", "Section III-C (SPP design)");

  sd::SardConfig config;
  config.pairs_per_category = std::max(20, bench_pairs() / 2);  // ablation scale
  auto cases = sd::generate_sard_like(config);
  auto corpus = build_encoded_corpus(cases, Representation::PathSensitive);
  auto refs = split_corpus(corpus);

  su::Table table({"SPP bins", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"});
  struct Variant {
    const char* name;
    std::vector<int> bins;
  };
  for (const Variant& variant :
       {Variant{"{1} (global max)", {1}}, Variant{"{4,2,1} (paper)", {4, 2, 1}},
        Variant{"{8,4,2,1}", {8, 4, 2, 1}}}) {
    auto model_config = base_model_config(corpus.vocab.size());
    model_config.spp_bins = variant.bins;
    sm::SeVulDetNet net(model_config);
    auto c = train_and_eval(net, corpus, refs, 0.002f);
    table.add_row(metric_row(variant.name, c));
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("expected: the pyramid beats a single global pool (positional\n"
              "information matters for path semantics); deeper pyramids give\n"
              "diminishing returns at this scale.\n");
  return 0;
}
