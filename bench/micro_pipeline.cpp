// Microbenchmarks (google-benchmark) for the preprocessing pipeline and
// network stages: lexing, parsing, PDG construction, path-sensitive
// slicing, normalization, and the SPP-CNN forward pass across sequence
// lengths — plus the end-to-end phase split (preprocess cold/warm
// through the corpus cache, train, evaluate, model save/load v1 vs v2)
// that tracks the pipeline's perf trajectory. Record a machine's
// baseline with:
//   ./bench/micro_pipeline --benchmark_format=json > bench/BENCH_pipeline.json
// These measure library throughput, not paper tables.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>

#include "bench_observability.hpp"
#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/core/trainer.hpp"
#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/nn/word2vec.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/slicer/gadget.hpp"

namespace {

using namespace sevuldet;

const dataset::TestCase& sample_case() {
  static dataset::TestCase tc = [] {
    dataset::TemplateSpec spec;
    spec.category = slicer::TokenCategory::FunctionCall;
    spec.vulnerable = true;
    spec.long_variant = true;
    spec.filler = 25;
    spec.seed = 9;
    return dataset::generate_case(spec);
  }();
  return tc;
}

void BM_Lex(benchmark::State& state) {
  const auto& tc = sample_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(frontend::lex_tokens(tc.source));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tc.source.size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  const auto& tc = sample_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(frontend::parse(tc.source));
  }
}
BENCHMARK(BM_Parse);

void BM_BuildProgramGraph(benchmark::State& state) {
  const auto& tc = sample_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_program_graph(tc.source));
  }
}
BENCHMARK(BM_BuildProgramGraph);

void BM_PathSensitiveGadgets(benchmark::State& state) {
  const auto& tc = sample_case();
  auto program = graph::build_program_graph(tc.source);
  for (auto _ : state) {
    benchmark::DoNotOptimize(slicer::generate_gadgets(program));
  }
}
BENCHMARK(BM_PathSensitiveGadgets);

void BM_Normalize(benchmark::State& state) {
  const auto& tc = sample_case();
  auto program = graph::build_program_graph(tc.source);
  auto gadgets = slicer::generate_gadgets(program);
  for (auto _ : state) {
    for (const auto& g : gadgets) {
      benchmark::DoNotOptimize(normalize::normalize_gadget(g));
    }
  }
}
BENCHMARK(BM_Normalize);

void BM_SeVulDetForward(benchmark::State& state) {
  models::ModelConfig config;
  config.vocab_size = 200;
  config.embed_dim = 24;
  config.conv_channels = 16;
  config.attn_dim = 24;
  config.dense1 = 64;
  config.dense2 = 32;
  models::SeVulDetNet net(config);
  std::vector<int> ids(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = 2 + static_cast<int>(i % 190);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(ids));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SeVulDetForward)->Arg(30)->Arg(100)->Arg(300)->Arg(1000);

// --- end-to-end phase split ------------------------------------------------
// One small fixed workload (generated once) timed phase by phase:
// preprocessing with a cold vs warm corpus cache, detector training per
// epoch, evaluation, and model persistence in both formats. Together the
// rows give the preprocess / train / eval wall-clock split a full run
// pays.

const std::vector<dataset::TestCase>& phase_cases() {
  static const std::vector<dataset::TestCase> cases = [] {
    dataset::SardConfig config;
    config.pairs_per_category = 6;
    return dataset::generate_sard_like(config);
  }();
  return cases;
}

std::filesystem::path bench_tmp(const char* name) {
  return std::filesystem::temp_directory_path() /
         ("sevuldet-micro-pipeline." + std::to_string(::getpid()) + "." + name);
}

void BM_BuildCorpusCold(benchmark::State& state) {
  const auto& cases = phase_cases();
  dataset::CorpusOptions options;  // no cache: every iteration re-slices
  std::size_t samples = 0;
  for (auto _ : state) {
    dataset::Corpus corpus = dataset::build_corpus(cases, options);
    samples = corpus.samples.size();
    benchmark::DoNotOptimize(corpus.samples.data());
  }
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_BuildCorpusCold)->Unit(benchmark::kMillisecond);

void BM_BuildCorpusWarm(benchmark::State& state) {
  const auto& cases = phase_cases();
  const auto dir = bench_tmp("warm-cache");
  std::filesystem::remove_all(dir);
  dataset::CorpusOptions options;
  options.cache_dir = dir.string();
  dataset::build_corpus(cases, options);  // populate
  double hit_rate = 0.0;
  for (auto _ : state) {
    dataset::Corpus corpus = dataset::build_corpus(cases, options);
    const long long probes = corpus.stats.cache_hits + corpus.stats.cache_misses;
    hit_rate = probes == 0 ? 0.0
                           : static_cast<double>(corpus.stats.cache_hits) /
                                 static_cast<double>(probes);
    benchmark::DoNotOptimize(corpus.samples.data());
  }
  state.counters["hit_rate"] = hit_rate;
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_BuildCorpusWarm)->Unit(benchmark::kMillisecond);

core::PipelineConfig phase_pipeline_config() {
  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  config.train.epochs = 1;
  config.pretrain_embeddings = false;
  return config;
}

const dataset::Corpus& phase_corpus() {
  static const dataset::Corpus corpus = [] {
    dataset::Corpus c = dataset::build_corpus(phase_cases());
    dataset::encode_corpus(c);
    return c;
  }();
  return corpus;
}

void BM_Word2Vec(benchmark::State& state) {
  const dataset::Corpus& corpus = phase_corpus();
  std::vector<std::vector<int>> sentences;
  sentences.reserve(corpus.samples.size());
  for (const auto& s : corpus.samples) sentences.push_back(s.ids);
  nn::Word2VecConfig config;
  config.dim = 24;
  config.epochs = 1;
  for (auto _ : state) {
    nn::Word2Vec w2v(corpus.vocab, config);
    w2v.train(sentences);
    benchmark::DoNotOptimize(&w2v.embeddings());
  }
  state.counters["sentences"] = static_cast<double>(sentences.size());
}
BENCHMARK(BM_Word2Vec)->Unit(benchmark::kMillisecond);

void BM_TrainEpoch(benchmark::State& state) {
  const dataset::Corpus& corpus = phase_corpus();
  const core::SampleRefs refs = core::all_sample_refs(corpus);
  for (auto _ : state) {
    core::SeVulDet detector(phase_pipeline_config());
    auto result = detector.train_on_corpus(corpus, refs);
    benchmark::DoNotOptimize(result.epoch_losses.data());
  }
  state.counters["gadgets"] = static_cast<double>(phase_corpus().samples.size());
}
BENCHMARK(BM_TrainEpoch)->Unit(benchmark::kMillisecond);

core::SeVulDet& phase_detector() {
  static core::SeVulDet detector = [] {
    core::SeVulDet d(phase_pipeline_config());
    d.train_on_corpus(phase_corpus(), core::all_sample_refs(phase_corpus()));
    return d;
  }();
  return detector;
}

void BM_Evaluate(benchmark::State& state) {
  core::SeVulDet& detector = phase_detector();
  const core::SampleRefs refs = core::all_sample_refs(phase_corpus());
  for (auto _ : state) {
    auto confusion = core::evaluate_detector(detector.model(), refs);
    benchmark::DoNotOptimize(confusion.tp);
  }
}
BENCHMARK(BM_Evaluate)->Unit(benchmark::kMillisecond);

// Detection with and without attention provenance on one vulnerable
// program. The pair keeps the explain read-out honest: capture is a copy
// of already-computed weights, so the explain variant must track the
// plain one (and both feed the detect/detect.explain phase spans the CI
// span manifest requires).
const std::string& detect_source() {
  static const std::string source = [] {
    for (const auto& tc : phase_cases()) {
      if (tc.vulnerable) return tc.source;
    }
    return phase_cases().front().source;
  }();
  return source;
}

void BM_Detect(benchmark::State& state) {
  core::SeVulDet& detector = phase_detector();
  for (auto _ : state) {
    auto findings = detector.detect(detect_source());
    benchmark::DoNotOptimize(findings.data());
  }
}
BENCHMARK(BM_Detect)->Unit(benchmark::kMillisecond);

void BM_DetectExplain(benchmark::State& state) {
  // Threshold 0 so every gadget becomes a finding: the benchmark then
  // measures the attribution path itself (and reliably feeds the
  // detect.explain span) instead of depending on what the quickly
  // trained phase model happens to flag.
  static core::SeVulDet& detector = []() -> core::SeVulDet& {
    static core::PipelineConfig config = phase_pipeline_config();
    config.model.threshold = 0.0f;
    static core::SeVulDet d(config);
    d.train_on_corpus(phase_corpus(), core::all_sample_refs(phase_corpus()));
    return d;
  }();
  core::DetectOptions options;
  options.explain = true;
  std::size_t attributions = 0;
  for (auto _ : state) {
    auto findings = detector.detect(detect_source(), options);
    attributions = 0;
    for (const auto& f : findings) attributions += f.attributions.size();
    benchmark::DoNotOptimize(findings.data());
  }
  state.counters["attributions"] = static_cast<double>(attributions);
  if (attributions == 0) {
    state.SkipWithError("explain produced no attributions");
  }
}
BENCHMARK(BM_DetectExplain)->Unit(benchmark::kMillisecond);

// Model persistence: v1 self-describing text vs the v2 checksummed
// binary fast path (same trained detector, same temp file).
void BM_ModelSaveV1(benchmark::State& state) {
  const auto path = bench_tmp("model-v1").string();
  for (auto _ : state) phase_detector().save_text_v1(path);
  std::filesystem::remove(path);
}
BENCHMARK(BM_ModelSaveV1)->Unit(benchmark::kMillisecond);

void BM_ModelSaveV2(benchmark::State& state) {
  const auto path = bench_tmp("model-v2").string();
  for (auto _ : state) phase_detector().save(path);
  std::filesystem::remove(path);
}
BENCHMARK(BM_ModelSaveV2)->Unit(benchmark::kMillisecond);

void BM_ModelLoadV1(benchmark::State& state) {
  const auto path = bench_tmp("model-v1-load").string();
  phase_detector().save_text_v1(path);
  core::SeVulDet restored(phase_pipeline_config());
  for (auto _ : state) restored.load(path);
  std::filesystem::remove(path);
}
BENCHMARK(BM_ModelLoadV1)->Unit(benchmark::kMillisecond);

void BM_ModelLoadV2(benchmark::State& state) {
  const auto path = bench_tmp("model-v2-load").string();
  phase_detector().save(path);
  core::SeVulDet restored(phase_pipeline_config());
  for (auto _ : state) restored.load(path);
  std::filesystem::remove(path);
}
BENCHMARK(BM_ModelLoadV2)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() with observability in front: strip
// --metrics-out/--trace-out (enabling the registries and arranging the
// atexit write) before benchmark::Initialize sees argv.
int main(int argc, char** argv) {
  bench::strip_observability_flags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
