// Microbenchmarks (google-benchmark) for the preprocessing pipeline and
// network stages: lexing, parsing, PDG construction, path-sensitive
// slicing, normalization, and the SPP-CNN forward pass across sequence
// lengths. These measure library throughput, not paper tables.
#include <benchmark/benchmark.h>

#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/slicer/gadget.hpp"

namespace {

using namespace sevuldet;

const dataset::TestCase& sample_case() {
  static dataset::TestCase tc = [] {
    dataset::TemplateSpec spec;
    spec.category = slicer::TokenCategory::FunctionCall;
    spec.vulnerable = true;
    spec.long_variant = true;
    spec.filler = 25;
    spec.seed = 9;
    return dataset::generate_case(spec);
  }();
  return tc;
}

void BM_Lex(benchmark::State& state) {
  const auto& tc = sample_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(frontend::lex_tokens(tc.source));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tc.source.size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  const auto& tc = sample_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(frontend::parse(tc.source));
  }
}
BENCHMARK(BM_Parse);

void BM_BuildProgramGraph(benchmark::State& state) {
  const auto& tc = sample_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_program_graph(tc.source));
  }
}
BENCHMARK(BM_BuildProgramGraph);

void BM_PathSensitiveGadgets(benchmark::State& state) {
  const auto& tc = sample_case();
  auto program = graph::build_program_graph(tc.source);
  for (auto _ : state) {
    benchmark::DoNotOptimize(slicer::generate_gadgets(program));
  }
}
BENCHMARK(BM_PathSensitiveGadgets);

void BM_Normalize(benchmark::State& state) {
  const auto& tc = sample_case();
  auto program = graph::build_program_graph(tc.source);
  auto gadgets = slicer::generate_gadgets(program);
  for (auto _ : state) {
    for (const auto& g : gadgets) {
      benchmark::DoNotOptimize(normalize::normalize_gadget(g));
    }
  }
}
BENCHMARK(BM_Normalize);

void BM_SeVulDetForward(benchmark::State& state) {
  models::ModelConfig config;
  config.vocab_size = 200;
  config.embed_dim = 24;
  config.conv_channels = 16;
  config.attn_dim = 24;
  config.dense1 = 64;
  config.dense2 = 32;
  models::SeVulDetNet net(config);
  std::vector<int> ids(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = 2 + static_cast<int>(i % 190);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(ids));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SeVulDetForward)->Arg(30)->Arg(100)->Arg(300)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
