// Load generator for the `sevuldet serve` daemon: drives scan requests
// at several offered-QPS levels (open loop, coordinated-omission-free:
// latency is measured from each request's *scheduled* send time) plus
// one closed-loop saturation pass, and reports p50/p95/p99 latency and
// achieved throughput per level. Every response is byte-compared
// against the in-process detect() findings for the same source, so the
// bench doubles as the daemon-equivalence check — it exits nonzero on
// any mismatch, and CI runs it as the serve-gate.
//
//   micro_serve --model MODEL [--socket SOCK] [--qps "50,100,200"]
//               [--secs S] [--clients C] [--reps R] [--json PATH]
//               [--precision fp32|fp16|int8]
//               [--telemetry] [--telemetry-compare]
//
// --telemetry self-hosts the daemon with the live telemetry plane on
// (snapshotter thread + structured access log + per-request trace IDs)
// and records rows under bench.telemetry.* instead of bench.*.
// --telemetry-compare runs the closed-loop saturation pass twice on
// self-hosted daemons — telemetry off, then on — and records both
// bench.closed.* and bench.telemetry.closed.* into ONE snapshot, so
// check_bench.py's machine-independent `speedups` ratio rule
// (BENCH_telemetry.json: on/off >= 0.99) gates the < 1% exposition
// overhead without wall-clock flakiness.
//
// --precision runs the whole sweep at that forward precision: the
// in-process reference findings AND the self-hosted daemon both use it,
// so the byte-equivalence check still gates (quantized daemon replies
// must match quantized in-process replies exactly — same clone, same
// arithmetic). Non-fp32 runs record their rows under bench.<precision>.*
// so BENCH_serve.json can hold fp32 and int8 rows side by side.
//
// When a daemon is already listening on --socket the bench drives it
// (the CI mode — a separate `sevuldet serve` process); otherwise it
// hosts a Server on a background thread in-process. --json records the
// results in the metrics-registry schema: gauges bench.qps<N>.p50_ms /
// .p95_ms / .p99_ms / .achieved_rps, bench.closed.*, and the label
// bench.findings_identical — tools/check_bench.py gates the *_p95_ms
// (wall rule) and *_rps (floor rule) gauges against BENCH_serve.json.
// Reps keep the recorded numbers stable: best (min latency / max
// throughput) of --reps sweeps, so scheduler noise only ever slows a
// rep, never improves the recorded value past the machine's ability.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sevuldet/serve/client.hpp"
#include "sevuldet/serve/server.hpp"
#include "sevuldet/util/metrics.hpp"

namespace {

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;
namespace serve = sevuldet::serve;
namespace su = sevuldet::util;

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

struct LevelResult {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double achieved_rps = 0.0;
};

struct Workload {
  std::vector<std::string> sources;
  std::vector<std::string> expected;  // findings_to_json per source
};

/// A handful of scan inputs with their in-process reference findings.
/// Deterministic (fixed seed), so every rep and every CI run scans the
/// same programs. The reference scans run at the sweep's precision so
/// the daemon-equivalence check compares like with like.
Workload build_workload(sc::SeVulDet& detector,
                        sevuldet::models::Precision precision) {
  sd::SardConfig config;
  config.pairs_per_category = 3;
  config.long_fraction = 0.0;
  config.seed = 404;
  sc::DetectOptions detect_options;
  detect_options.precision = precision;
  Workload workload;
  for (const auto& tc : sd::generate_sard_like(config)) {
    if (workload.sources.size() >= 4) break;
    if (!tc.vulnerable) continue;
    workload.sources.push_back(tc.source);
    workload.expected.push_back(
        serve::findings_to_json(detector.detect(tc.source, detect_options)));
  }
  if (workload.sources.empty()) {
    std::fprintf(stderr, "workload generation produced no sources\n");
    std::exit(3);
  }
  return workload;
}

/// Open-loop sweep at `qps`: requests fire on a fixed schedule split
/// round-robin over `clients` connections; latency for each request is
/// measured from its scheduled tick, so a backed-up daemon accumulates
/// queueing delay in the histogram instead of silently slowing the
/// offered rate.
LevelResult run_open_loop(const std::string& socket_path,
                          const Workload& workload, int qps, double secs,
                          int clients, std::atomic<long long>& mismatches) {
  const int total = std::max(1, static_cast<int>(qps * secs));
  const auto interval =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          1.0 / static_cast<double>(qps)));
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<long long> failures{0};
  const auto start = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = serve::Client::connect(socket_path);
      if (!client.has_value()) {
        ++failures;
        return;
      }
      auto& lane = latencies[static_cast<std::size_t>(c)];
      for (int i = c; i < total; i += clients) {
        const auto scheduled = start + interval * i;
        std::this_thread::sleep_until(scheduled);
        const std::size_t which =
            static_cast<std::size_t>(i) % workload.sources.size();
        try {
          const auto findings = client->scan(workload.sources[which]);
          if (serve::findings_to_json(findings) != workload.expected[which]) {
            ++mismatches;
          }
        } catch (const std::exception&) {
          ++failures;
          continue;
        }
        lane.push_back(std::chrono::duration<double, std::milli>(Clock::now() -
                                                                 scheduled)
                           .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (auto& lane : latencies) {
    all.insert(all.end(), lane.begin(), lane.end());
  }
  if (failures.load() > 0) {
    std::fprintf(stderr, "open loop qps=%d: %lld failed requests\n", qps,
                 failures.load());
    std::exit(3);
  }
  std::sort(all.begin(), all.end());
  LevelResult result;
  result.p50_ms = percentile(all, 50);
  result.p95_ms = percentile(all, 95);
  result.p99_ms = percentile(all, 99);
  result.achieved_rps = static_cast<double>(all.size()) / elapsed;
  return result;
}

/// Closed-loop saturation: `clients` connections scanning back-to-back
/// for `secs`. Throughput here is the daemon's capacity ceiling with
/// cross-request batching; latency is per-request round-trip.
LevelResult run_closed_loop(const std::string& socket_path,
                            const Workload& workload, double secs, int clients,
                            std::atomic<long long>& mismatches) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<long long> failures{0};
  const auto start = Clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(secs));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = serve::Client::connect(socket_path);
      if (!client.has_value()) {
        ++failures;
        return;
      }
      auto& lane = latencies[static_cast<std::size_t>(c)];
      std::size_t i = static_cast<std::size_t>(c);
      while (Clock::now() < stop_at) {
        const std::size_t which = i++ % workload.sources.size();
        const auto sent = Clock::now();
        try {
          const auto findings = client->scan(workload.sources[which]);
          if (serve::findings_to_json(findings) != workload.expected[which]) {
            ++mismatches;
          }
        } catch (const std::exception&) {
          ++failures;
          break;
        }
        lane.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (failures.load() > 0) {
    std::fprintf(stderr, "closed loop: %lld failed requests\n",
                 failures.load());
    std::exit(3);
  }
  std::vector<double> all;
  for (auto& lane : latencies) {
    all.insert(all.end(), lane.begin(), lane.end());
  }
  std::sort(all.begin(), all.end());
  LevelResult result;
  result.p50_ms = percentile(all, 50);
  result.p95_ms = percentile(all, 95);
  result.p99_ms = percentile(all, 99);
  result.achieved_rps = static_cast<double>(all.size()) / elapsed;
  return result;
}

void keep_best(LevelResult& best, const LevelResult& rep, bool first) {
  if (first) {
    best = rep;
    return;
  }
  best.p50_ms = std::min(best.p50_ms, rep.p50_ms);
  best.p95_ms = std::min(best.p95_ms, rep.p95_ms);
  best.p99_ms = std::min(best.p99_ms, rep.p99_ms);
  best.achieved_rps = std::max(best.achieved_rps, rep.achieved_rps);
}

void record_level(const std::string& prefix, const LevelResult& result) {
  namespace metrics = sevuldet::util::metrics;
  metrics::gauge_set(prefix + ".p50_ms", result.p50_ms);
  metrics::gauge_set(prefix + ".p95_ms", result.p95_ms);
  metrics::gauge_set(prefix + ".p99_ms", result.p99_ms);
  metrics::gauge_set(prefix + ".achieved_rps", result.achieved_rps);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  const char* model_path = nullptr;
  std::string socket_path =
      "/tmp/sevuldet_micro_serve_" + std::to_string(::getpid()) + ".sock";
  std::string qps_list = "50,100,200";
  std::string json_path;
  double secs = 2.0;
  int clients = 4;
  int reps = bench::env_int("SEVULDET_BENCH_REPS", 2);
  sevuldet::models::Precision precision = sevuldet::models::Precision::kFp32;
  bool telemetry = false;
  bool telemetry_compare = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) telemetry = true;
    if (std::strcmp(argv[i], "--telemetry-compare") == 0) {
      telemetry_compare = true;
    }
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0) model_path = argv[i + 1];
    if (std::strcmp(argv[i], "--socket") == 0) socket_path = argv[i + 1];
    if (std::strcmp(argv[i], "--qps") == 0) qps_list = argv[i + 1];
    if (std::strcmp(argv[i], "--secs") == 0) secs = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--clients") == 0) clients = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--precision") == 0 &&
        !sevuldet::models::parse_precision(argv[i + 1], &precision)) {
      std::fprintf(stderr, "bad --precision '%s' (expected fp32|fp16|int8)\n",
                   argv[i + 1]);
      return 2;
    }
  }
  if (model_path == nullptr) {
    std::fprintf(stderr,
                 "usage: micro_serve --model MODEL [--socket SOCK] "
                 "[--qps LIST] [--secs S] [--clients C] [--reps R] "
                 "[--json PATH] [--precision fp32|fp16|int8]\n");
    return 2;
  }
  clients = std::max(1, clients);
  reps = std::max(1, reps);
  if (!json_path.empty()) sevuldet::util::metrics::set_enabled(true);

  std::vector<int> levels;
  for (std::size_t pos = 0; pos < qps_list.size();) {
    const std::size_t comma = qps_list.find(',', pos);
    levels.push_back(std::atoi(qps_list.substr(pos, comma - pos).c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  // The in-process reference detector — also hosts the daemon when no
  // external one is listening on --socket.
  sc::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  sc::SeVulDet detector(config);
  detector.load(model_path);
  const Workload workload = build_workload(detector, precision);

  // Self-hosted daemon options; `telemetry_on` adds the live plane the
  // way the obs-gate runs it: snapshotter + access log (slow tracing
  // stays off — it only triggers on outliers and is gated separately).
  auto server_options = [&](bool telemetry_on) {
    serve::ServeOptions options;
    options.socket_path = socket_path;
    options.threads = std::max(2, bench::bench_threads());
    options.queue_depth = 256;
    options.precision = precision;
    if (telemetry_on) {
      options.telemetry = true;
      options.telemetry_interval_ms = 250.0;
      options.access_log_path = socket_path + ".access.log";
    }
    return options;
  };

  if (telemetry_compare) {
    // Paired closed-loop pass: same process, same workload, back to
    // back — only the telemetry plane differs. Both rows land in one
    // snapshot so the BENCH_telemetry.json speedups rule can hold the
    // on/off throughput ratio >= 0.99 machine-independently.
    std::atomic<long long> compare_mismatches{0};
    auto closed_reps = [&](bool telemetry_on) {
      serve::Server server(detector, server_options(telemetry_on));
      std::thread thread([&] { server.run(); });
      for (int i = 0; i < 500 && ::access(socket_path.c_str(), F_OK) != 0;
           ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      LevelResult best;
      for (int rep = 0; rep < reps; ++rep) {
        keep_best(best,
                  run_closed_loop(socket_path, workload, secs, clients,
                                  compare_mismatches),
                  rep == 0);
      }
      server.request_shutdown();
      thread.join();
      return best;
    };
    std::printf(
        "telemetry-compare: closed loop, telemetry off then on "
        "(%d client(s), %d rep(s), %.1fs each)\n",
        clients, reps, secs);
    const LevelResult off = closed_reps(false);
    const LevelResult on = closed_reps(true);
    std::remove((socket_path + ".access.log").c_str());
    record_level("bench.closed", off);
    record_level("bench.telemetry.closed", on);
    const double ratio =
        off.achieved_rps > 0.0 ? on.achieved_rps / off.achieved_rps : 0.0;
    sevuldet::util::Table table(
        {"telemetry", "p50 ms", "p95 ms", "p99 ms", "achieved rps"});
    table.add_row({"off", sevuldet::util::fmt(off.p50_ms, 2),
                   sevuldet::util::fmt(off.p95_ms, 2),
                   sevuldet::util::fmt(off.p99_ms, 2),
                   sevuldet::util::fmt(off.achieved_rps, 1)});
    table.add_row({"on", sevuldet::util::fmt(on.p50_ms, 2),
                   sevuldet::util::fmt(on.p95_ms, 2),
                   sevuldet::util::fmt(on.p99_ms, 2),
                   sevuldet::util::fmt(on.achieved_rps, 1)});
    std::printf("%s", table.to_string().c_str());
    std::printf("telemetry-on/off throughput ratio: %.4f\n", ratio);
    const bool identical = compare_mismatches.load() == 0;
    sevuldet::util::metrics::label_set("bench.findings_identical",
                                       identical ? "true" : "false");
    sevuldet::util::metrics::gauge_set("bench.clients", clients);
    sevuldet::util::metrics::gauge_set("bench.secs_per_level", secs);
    std::printf("findings identical to in-process detect: %s\n",
                identical ? "yes" : "NO");
    if (!json_path.empty()) {
      sevuldet::util::metrics::write_json(json_path);
      std::printf("recorded %s\n", json_path.c_str());
    }
    return identical ? 0 : 4;
  }

  std::optional<serve::Server> self_hosted;
  std::thread server_thread;
  const bool external = serve::Client::connect(socket_path).has_value();
  if (!external) {
    self_hosted.emplace(detector, server_options(telemetry));
    server_thread = std::thread([&] { self_hosted->run(); });
    for (int i = 0; i < 500 && ::access(socket_path.c_str(), F_OK) != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  std::printf(
      "driving %s daemon at %s (%d client(s), %d rep(s), %.1fs/level, %s)\n",
      external ? "external" : "self-hosted", socket_path.c_str(), clients, reps,
      secs, sevuldet::models::precision_name(precision));

  std::atomic<long long> mismatches{0};
  std::vector<LevelResult> open_best(levels.size());
  LevelResult closed_best;
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < levels.size(); ++i) {
      keep_best(open_best[i],
                run_open_loop(socket_path, workload, levels[i], secs, clients,
                              mismatches),
                rep == 0);
    }
    keep_best(closed_best,
              run_closed_loop(socket_path, workload, secs, clients, mismatches),
              rep == 0);
  }

  if (self_hosted.has_value()) {
    self_hosted->request_shutdown();
    server_thread.join();
  }

  // fp32 rows keep the historical bench.* names; quantized sweeps nest
  // under bench.<precision>.*, telemetry-on sweeps under
  // <prefix>.telemetry.*, so one baseline holds the variants side by
  // side.
  std::string row_prefix =
      precision == sevuldet::models::Precision::kFp32
          ? std::string("bench")
          : std::string("bench.") + sevuldet::models::precision_name(precision);
  if (telemetry && !external) row_prefix += ".telemetry";
  sevuldet::util::Table table(
      {"load", "p50 ms", "p95 ms", "p99 ms", "achieved rps"});
  for (std::size_t i = 0; i < levels.size(); ++i) {
    table.add_row({"open " + std::to_string(levels[i]) + " qps",
                   sevuldet::util::fmt(open_best[i].p50_ms, 2),
                   sevuldet::util::fmt(open_best[i].p95_ms, 2),
                   sevuldet::util::fmt(open_best[i].p99_ms, 2),
                   sevuldet::util::fmt(open_best[i].achieved_rps, 1)});
    record_level(row_prefix + ".qps" + std::to_string(levels[i]), open_best[i]);
  }
  table.add_row({"closed loop", sevuldet::util::fmt(closed_best.p50_ms, 2),
                 sevuldet::util::fmt(closed_best.p95_ms, 2),
                 sevuldet::util::fmt(closed_best.p99_ms, 2),
                 sevuldet::util::fmt(closed_best.achieved_rps, 1)});
  record_level(row_prefix + ".closed", closed_best);
  std::printf("%s", table.to_string().c_str());

  const bool identical = mismatches.load() == 0;
  sevuldet::util::metrics::label_set("bench.findings_identical",
                                     identical ? "true" : "false");
  sevuldet::util::metrics::gauge_set("bench.clients", clients);
  sevuldet::util::metrics::gauge_set("bench.secs_per_level", secs);
  std::printf("findings identical to in-process detect: %s\n",
              identical ? "yes" : "NO");
  if (!json_path.empty()) {
    sevuldet::util::metrics::write_json(json_path);
    std::printf("recorded %s\n", json_path.c_str());
  }
  return identical ? 0 : 4;
}
