// Frontend lexing microbenchmark: the zero-copy string_view lexer
// (lex_into reusing one LexResult's vectors and arena) vs the copying
// lexer it replaced (std::string per token, fresh result per file —
// ported verbatim into this TU so the baseline stays measurable after
// the replacement). Records BENCH_frontend.json in the metrics-registry
// schema; absolute tokens/s and bytes/s gauges are informational
// (machine-dependent, never gated), the committed baseline's "speedups"
// section gates the machine-independent ratio instead:
//
//   sv_vs_copy   zero-copy tokens/s / copying tokens/s   >= 2.0
//
// The bench is also a correctness harness: before timing anything it
// lexes the whole corpus through both paths and exits 4 unless every
// token (kind, spelling, line, column) and directive agrees, and lexes
// one corpus file through an MmapFile mapping and exits 5 unless the
// mmap-backed stream is identical to the in-memory one. The steady-
// state zero-copy pass is alloc-counted (this TU overrides operator
// new) — after warmup a full-corpus sweep must allocate nothing
// (counter bench.frontend.allocs_per_file stays 0: vectors and arena
// chunks are recycled across files).
//
//   micro_frontend [--files N] [--secs S] [--reps R] [--json PATH]
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/util/mmap_file.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/table.hpp"

// --- allocation counter ----------------------------------------------------
// Same replacement-operator pattern as micro_kernels/micro_batch (and
// the same GCC false-positive suppression for inlined replacements).
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

namespace sf = sevuldet::frontend;
namespace su = sevuldet::util;
using Clock = std::chrono::steady_clock;

// --- copying baseline ------------------------------------------------------
// The pre-zero-copy lexer, kept byte-for-byte in behavior: every token
// owns a std::string spelling, directives are owned strings, and each
// file gets a fresh result vector. Only the namespace differs.
namespace copying {

// The pre-PR hash-set keyword lookup (the zero-copy lexer switched to
// length-bucketed comparison chains).
bool is_c_keyword(std::string_view word) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "auto",     "break",   "case",     "char",   "const",    "continue",
      "default",  "do",      "double",   "else",   "enum",     "extern",
      "float",    "for",     "goto",     "if",     "inline",   "int",
      "long",     "register","restrict", "return", "short",    "signed",
      "sizeof",   "static",  "struct",   "switch", "typedef",  "union",
      "unsigned", "void",    "volatile", "while",  "_Bool",    "bool",
  };
  return kKeywords.contains(word);
}

struct Token {
  sf::TokenKind kind = sf::TokenKind::EndOfFile;
  std::string text;
  int line = 0;
  int column = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<std::string> directives;
};

constexpr std::string_view kPuncts3[] = {
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=",
};
constexpr std::string_view kPuncts2Extra[] = {"&=", "|=", "^="};

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  LexResult run() {
    LexResult result;
    for (;;) {
      skip_trivia(result);
      if (at_end()) break;
      result.tokens.push_back(next_token());
    }
    Token eof;
    eof.kind = sf::TokenKind::EndOfFile;
    eof.line = line_;
    eof.column = column_;
    result.tokens.push_back(std::move(eof));
    return result;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_trivia(LexResult& result) {
    for (;;) {
      if (at_end()) return;
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        for (;;) {
          if (at_end()) {
            throw sf::LexError("unterminated block comment", line_, column_);
          }
          if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            break;
          }
          advance();
        }
      } else if (c == '#' && column_ == 1) {
        std::string directive;
        while (!at_end() && peek() != '\n') {
          if (peek() == '\\' && peek(1) == '\n') {
            advance();
            advance();
            directive += ' ';
            continue;
          }
          directive += advance();
        }
        result.directives.push_back(std::move(directive));
      } else {
        return;
      }
    }
  }

  Token next_token() {
    Token tok;
    tok.line = line_;
    tok.column = column_;
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (!at_end() &&
             (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        word += advance();
      }
      tok.kind = is_c_keyword(word) ? sf::TokenKind::Keyword
                                    : sf::TokenKind::Identifier;
      tok.text = std::move(word);
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return lex_number(tok);
    }
    if (c == '"') return lex_string(tok);
    if (c == '\'') return lex_char(tok);
    return lex_punct(tok);
  }

  Token lex_number(Token tok) {
    std::string text;
    bool is_float = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      text += advance();
      text += advance();
      while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek()))) {
        text += advance();
      }
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text += advance();
      }
      if (peek() == '.') {
        is_float = true;
        text += advance();
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text += advance();
      }
      }
      if (peek() == 'e' || peek() == 'E') {
        char after = peek(1);
        if (std::isdigit(static_cast<unsigned char>(after)) || after == '+' ||
            after == '-') {
          is_float = true;
          text += advance();
          if (peek() == '+' || peek() == '-') text += advance();
          while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text += advance();
      }
        }
      }
    }
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L' ||
           peek() == 'f' || peek() == 'F') {
      if (peek() == 'f' || peek() == 'F') is_float = true;
      text += advance();
    }
    tok.kind = is_float ? sf::TokenKind::FloatLiteral : sf::TokenKind::IntLiteral;
    tok.text = std::move(text);
    return tok;
  }

  Token lex_string(Token tok) {
    std::string text;
    text += advance();
    for (;;) {
      if (at_end() || peek() == '\n') {
        throw sf::LexError("unterminated string literal", tok.line, tok.column);
      }
      char c = advance();
      text += c;
      if (c == '\\') {
        if (at_end()) throw sf::LexError("unterminated escape", tok.line, tok.column);
        text += advance();
      } else if (c == '"') {
        break;
      }
    }
    tok.kind = sf::TokenKind::StringLiteral;
    tok.text = std::move(text);
    return tok;
  }

  Token lex_char(Token tok) {
    std::string text;
    text += advance();
    for (;;) {
      if (at_end() || peek() == '\n') {
        throw sf::LexError("unterminated char literal", tok.line, tok.column);
      }
      char c = advance();
      text += c;
      if (c == '\\') {
        if (at_end()) throw sf::LexError("unterminated escape", tok.line, tok.column);
        text += advance();
      } else if (c == '\'') {
        break;
      }
    }
    tok.kind = sf::TokenKind::CharLiteral;
    tok.text = std::move(text);
    return tok;
  }

  Token lex_punct(Token tok) {
    std::string_view rest = src_.substr(pos_);
    for (std::string_view p : kPuncts3) {
      if (rest.substr(0, p.size()) == p) {
        for (std::size_t i = 0; i < p.size(); ++i) advance();
        tok.kind = sf::TokenKind::Punct;
        tok.text = std::string(p);
        return tok;
      }
    }
    for (std::string_view p : kPuncts2Extra) {
      if (rest.substr(0, 2) == p) {
        advance();
        advance();
        tok.kind = sf::TokenKind::Punct;
        tok.text = std::string(p);
        return tok;
      }
    }
    static constexpr std::string_view kSingles = "+-*/%<>=!&|^~?:;,.()[]{}";
    char c = peek();
    if (kSingles.find(c) != std::string_view::npos) {
      advance();
      tok.kind = sf::TokenKind::Punct;
      tok.text = std::string(1, c);
      return tok;
    }
    throw sf::LexError(std::string("unexpected character '") + c + "'", line_,
                       column_);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

LexResult lex(std::string_view source) { return Scanner(source).run(); }

}  // namespace copying

// --- corpus ----------------------------------------------------------------
// Deterministic C-like files shaped like the real-world targets the
// scan frontend sees: helper functions over stack buffers with risky
// library calls, string and numeric literals, comments, and a handful
// of preprocessor directives per file. Both lexers must accept every
// construct here (no continuations outside directives: the copying
// baseline never supported those).
std::vector<std::string> make_corpus(int files) {
  static constexpr const char* kCalls[] = {"strcpy",  "memcpy", "sprintf",
                                           "strncat", "memmove", "snprintf"};
  std::vector<std::string> corpus;
  corpus.reserve(static_cast<std::size_t>(files));
  for (int f = 0; f < files; ++f) {
    std::string src;
    src += "// bench corpus file " + std::to_string(f) + "\n";
    src += "#include <string.h>\n#include <stdio.h>\n";
    src += "#define LIMIT_" + std::to_string(f) + " " +
           std::to_string(64 + f * 8) + "\n";
    const int functions = 6 + f % 9;
    for (int i = 0; i < functions; ++i) {
      const std::string id = std::to_string(f) + "_" + std::to_string(i);
      const char* call = kCalls[(f + i) % 6];
      src += "\n/* helper " + id + ": copies into a fixed buffer */\n";
      src += "static int helper_" + id + "(const char *input, size_t n) {\n";
      src += "  char buffer[" + std::to_string(32 + (i * 17) % 96) + "];\n";
      src += "  double scale = " + std::to_string(i) + ".5e-" +
             std::to_string(1 + i % 4) + ";\n";
      src += "  if (n >= sizeof(buffer)) { return -1; }\n";
      src += "  " + std::string(call) + "(buffer, input);\n";
      src += "  for (int k = 0; k < (int)n; ++k) {\n";
      src += "    buffer[k] ^= (char)(k * 31 + " + std::to_string(i) + ");\n";
      src += "  }\n";
      src += "  printf(\"helper " + id + ": %s scale=%f\\n\", buffer, scale);\n";
      src += "  return buffer[0] != '\\0' && scale > 0.0 ? (int)n : 0;\n";
      src += "}\n";
    }
    corpus.push_back(std::move(src));
  }
  return corpus;
}

bool streams_agree(const copying::LexResult& a, const sf::LexResult& b) {
  if (a.tokens.size() != b.tokens.size()) return false;
  if (a.directives.size() != b.directives.size()) return false;
  for (std::size_t i = 0; i < a.tokens.size(); ++i) {
    const copying::Token& x = a.tokens[i];
    const sf::Token& y = b.tokens[i];
    if (x.kind != y.kind || x.text != y.text || x.line != y.line ||
        x.column != y.column) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.directives.size(); ++i) {
    if (a.directives[i] != b.directives[i]) return false;
  }
  return true;
}

/// Wall-clock `pass` repeated until `secs` elapse; returns passes/sec
/// scaled by `units_per_pass` (tokens or bytes). One warmup pass first.
template <typename Pass>
double measure_rate(Pass&& pass, double units_per_pass, double secs) {
  pass();
  const auto start = Clock::now();
  double units = 0.0;
  double elapsed = 0.0;
  do {
    pass();
    units += units_per_pass;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < secs);
  return units / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  int files = 48;
  double secs = 0.4;
  int reps = bench::env_int("SEVULDET_BENCH_REPS", 3);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--files") == 0) files = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--secs") == 0) secs = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  files = std::max(1, files);
  reps = std::max(1, reps);
  if (!json_path.empty()) su::metrics::set_enabled(true);
  namespace metrics = su::metrics;

  const std::vector<std::string> corpus = make_corpus(files);
  long long total_bytes = 0;
  long long total_tokens = 0;
  for (const std::string& src : corpus) {
    total_bytes += static_cast<long long>(src.size());
    total_tokens += static_cast<long long>(sf::lex(src).tokens.size()) - 1;
  }

  // --- correctness: both lexers must agree on the whole corpus --------
  bool agree = true;
  for (const std::string& src : corpus) {
    if (!streams_agree(copying::lex(src), sf::lex(src))) agree = false;
  }
  metrics::label_set("bench.lexers_agree", agree ? "true" : "false");
  std::printf("copying and zero-copy lexers agree on %d files: %s\n", files,
              agree ? "yes" : "NO");
  if (!agree) return 4;

  // --- correctness: mmap-backed lexing is identical to in-memory ------
  bool mmap_identical = true;
  {
    namespace fs = std::filesystem;
    const fs::path tmp =
        fs::temp_directory_path() / "sevuldet_micro_frontend.c";
    std::ofstream(tmp, std::ios::binary) << corpus[0];
    su::MmapFile mapped = su::MmapFile::open(tmp.string());
    sf::LexResult from_map = sf::lex(mapped.view());
    sf::LexResult from_mem = sf::lex(corpus[0]);
    if (from_map.tokens.size() != from_mem.tokens.size()) {
      mmap_identical = false;
    } else {
      for (std::size_t i = 0; i < from_map.tokens.size(); ++i) {
        const sf::Token& x = from_map.tokens[i];
        const sf::Token& y = from_mem.tokens[i];
        if (x.kind != y.kind || x.text != y.text || x.line != y.line ||
            x.column != y.column) {
          mmap_identical = false;
        }
      }
    }
    fs::remove(tmp);
  }
  metrics::label_set("bench.mmap_identical",
                     mmap_identical ? "true" : "false");
  std::printf("mmap-backed token stream identical to in-memory: %s\n",
              mmap_identical ? "yes" : "NO");
  if (!mmap_identical) return 5;

  // --- throughput -----------------------------------------------------
  auto best_of_reps = [&](auto&& pass) {
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      best = std::max(
          best, measure_rate(pass, static_cast<double>(total_tokens), secs));
    }
    return best;
  };

  sf::LexResult reused;  // the zero-copy steady-state result
  auto sv_pass = [&] {
    for (const std::string& src : corpus) sf::lex_into(src, reused);
  };
  auto copy_pass = [&] {
    for (const std::string& src : corpus) {
      copying::LexResult result = copying::lex(src);
      (void)result;
    }
  };

  su::Table table({"path", "tokens/s", "MB/s"});
  const double bytes_per_token =
      static_cast<double>(total_bytes) / static_cast<double>(total_tokens);
  auto record = [&](const std::string& name, double tokens_per_s) {
    metrics::gauge_set("bench." + name + ".tokens_per_s", tokens_per_s);
    metrics::gauge_set("bench." + name + ".bytes_per_s",
                       tokens_per_s * bytes_per_token);
    table.add_row({name, su::fmt(tokens_per_s, 0),
                   su::fmt(tokens_per_s * bytes_per_token / 1e6, 1)});
  };
  record("copy", best_of_reps(copy_pass));
  record("sv", best_of_reps(sv_pass));

  // --- steady-state allocations --------------------------------------
  // After one warm sweep the reused result's vectors and arena chunks
  // cover the largest file, so further full-corpus sweeps must not
  // touch the heap at all.
  {
    sv_pass();  // warm
    const long long before = g_allocs.load(std::memory_order_relaxed);
    constexpr int kPasses = 5;
    for (int i = 0; i < kPasses; ++i) sv_pass();
    const long long after = g_allocs.load(std::memory_order_relaxed);
    const long long per_file =
        (after - before) / (static_cast<long long>(kPasses) * files);
    metrics::counter_add("bench.frontend.allocs_per_file", per_file);
    table.add_row({"sv allocs/file", std::to_string(per_file), "-"});
  }

  metrics::gauge_set("bench.frontend.files", files);
  metrics::gauge_set("bench.frontend.corpus_bytes",
                     static_cast<double>(total_bytes));
  metrics::gauge_set("bench.frontend.corpus_tokens",
                     static_cast<double>(total_tokens));
  std::printf("%s", table.to_string().c_str());
  if (!json_path.empty()) {
    metrics::write_json(json_path);
    std::printf("recorded %s\n", json_path.c_str());
  }
  return 0;
}
