// Shared plumbing for the table/figure benchmarks: corpus construction
// in the three gadget representations the paper compares (PS-CG, CG,
// data-dependence-only CG), train/evaluate helpers, and consistent table
// printing. Every bench is deterministic for a fixed scale.
//
// Scale: benches default to a laptop-scale corpus so the full suite runs
// in tens of minutes; set SEVULDET_BENCH_PAIRS to trade time for tighter
// numbers (the paper trains on 30,000 gadgets per category on GPUs; see
// EXPERIMENTS.md for the scale mapping).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench_observability.hpp"
#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/core/trainer.hpp"
#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/kfold.hpp"
#include "sevuldet/dataset/realworld.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/models/birnn_net.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/nn/word2vec.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/table.hpp"

namespace bench {

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;
namespace sm = sevuldet::models;
namespace ss = sevuldet::slicer;
namespace su = sevuldet::util;

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// Default corpus scale (pairs per category). 60 pairs -> roughly 9-10k
/// gadget samples across the four categories.
inline int bench_pairs() { return env_int("SEVULDET_BENCH_PAIRS", 60); }
inline int bench_epochs() { return env_int("SEVULDET_BENCH_EPOCHS", 6); }
/// Cap on training-set size per model (keeps RNN baselines tractable).
inline int bench_train_cap() { return env_int("SEVULDET_BENCH_TRAIN_CAP", 2500); }

/// Worker threads for corpus construction and evaluation (1 = serial;
/// 0 = all cores). Settable via --threads (see parse_bench_flags) or
/// SEVULDET_BENCH_THREADS. Every bench stays deterministic regardless:
/// only preprocessing and eval-mode inference parallelize, never
/// training or word2vec.
inline int& bench_threads_ref() {
  static int threads = env_int("SEVULDET_BENCH_THREADS", 1);
  return threads;
}
inline int bench_threads() { return bench_threads_ref(); }

/// Content-addressed preprocessing cache directory for corpus builds
/// ("" = no cache, the default). Settable via --corpus-cache DIR or
/// SEVULDET_BENCH_CORPUS_CACHE. Cached builds are byte-identical to
/// uncached ones, so every bench row is unchanged; only Steps I-III time
/// drops on repeat runs.
inline std::string& bench_corpus_cache_ref() {
  static std::string dir = [] {
    const char* value = std::getenv("SEVULDET_BENCH_CORPUS_CACHE");
    return std::string(value != nullptr ? value : "");
  }();
  return dir;
}
inline const std::string& bench_corpus_cache() { return bench_corpus_cache_ref(); }

/// Parse flags shared by every experiment bench (--threads N,
/// --corpus-cache DIR, --metrics-out FILE, --trace-out FILE); call first
/// thing in main(). The observability flags enable the process-wide
/// metrics/trace registries and flush them to the named files at exit
/// (bench_observability.hpp).
inline void parse_bench_flags(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      bench_threads_ref() = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--corpus-cache") == 0) {
      bench_corpus_cache_ref() = argv[i + 1];
    }
  }
  handle_observability_flags(argc, argv);
}

/// Training set for the real-world experiments (Tables VI, VII): the
/// SARD-like corpus plus a small NVD-like slice of device-flavored
/// vulnerable/patched pairs, mirroring the paper's merged SARD + NVD
/// training data ("these cases contain complex semantics in real
/// software, facilitating transfer learning between domains"). The slice
/// is generated with a DIFFERENT seed than the Xen-like evaluation
/// corpus, so evaluation programs are never seen in training.
inline std::vector<sd::TestCase> mixed_training_cases() {
  sd::SardConfig sard;
  sard.pairs_per_category = bench_pairs();
  auto cases = sd::generate_sard_like(sard);
  sd::RealWorldConfig nvd;
  nvd.variant_pairs = env_int("SEVULDET_BENCH_NVD_PAIRS", 1);
  nvd.clean_functions = 24;  // teach device texture as mostly-clean
  nvd.seed = 999;  // evaluation corpus uses the default seed 77
  auto slice = sd::generate_realworld(nvd);
  for (auto& tc : slice.cases) cases.push_back(std::move(tc));
  return cases;
}

enum class Representation { PathSensitive, ControlAndData, DataOnly };

inline const char* representation_name(Representation r) {
  switch (r) {
    case Representation::PathSensitive: return "PS-CG";
    case Representation::ControlAndData: return "CG";
    case Representation::DataOnly: return "CG(data-only)";
  }
  return "?";
}

inline sd::CorpusOptions corpus_options(Representation r) {
  sd::CorpusOptions options;
  options.threads = bench_threads();
  options.cache_dir = bench_corpus_cache();
  switch (r) {
    case Representation::PathSensitive:
      options.gadget.path_sensitive = true;
      options.gadget.slice.use_control_dep = true;
      break;
    case Representation::ControlAndData:
      options.gadget.path_sensitive = false;
      options.gadget.slice.use_control_dep = true;
      break;
    case Representation::DataOnly:
      options.gadget.path_sensitive = false;
      options.gadget.slice.use_control_dep = false;
      break;
  }
  return options;
}

/// Build + encode a corpus for one representation over the given cases.
inline sd::Corpus build_encoded_corpus(const std::vector<sd::TestCase>& cases,
                                       Representation representation) {
  sd::Corpus corpus = sd::build_corpus(cases, corpus_options(representation));
  sd::encode_corpus(corpus);
  return corpus;
}

struct SplitRefs {
  sc::SampleRefs train;
  sc::SampleRefs test;
};

/// Deterministic 5-fold fold-0 split, with the training side capped (and
/// the cap applied AFTER shuffling so class balance is preserved).
inline SplitRefs split_corpus(const sd::Corpus& corpus, std::uint64_t seed = 5) {
  auto folds = sd::k_fold_splits(corpus.samples.size(), 5, seed);
  auto train_idx = folds[0].train;
  const std::size_t cap = static_cast<std::size_t>(bench_train_cap());
  if (train_idx.size() > cap) train_idx.resize(cap);
  SplitRefs refs;
  refs.train = sc::sample_refs(corpus, train_idx);
  refs.test = sc::sample_refs(corpus, folds[0].test);
  return refs;
}

/// Per-category split: restrict the UNCAPPED fold split to one category,
/// then cap the training side — otherwise small categories starve when
/// the cap is applied to the mixed pool first.
inline SplitRefs split_corpus_category(const sd::Corpus& corpus,
                                       ss::TokenCategory category,
                                       std::uint64_t seed = 5) {
  auto folds = sd::k_fold_splits(corpus.samples.size(), 5, seed);
  SplitRefs refs;
  refs.train = sc::filter_category(sc::sample_refs(corpus, folds[0].train), category);
  refs.test = sc::filter_category(sc::sample_refs(corpus, folds[0].test), category);
  const std::size_t cap = static_cast<std::size_t>(bench_train_cap());
  if (refs.train.size() > cap) refs.train.resize(cap);
  return refs;
}

/// Pre-train word2vec on the train split and copy vectors into the model.
inline void pretrain_embeddings(sm::Detector& detector, const sd::Corpus& corpus,
                                const sc::SampleRefs& train) {
  sevuldet::nn::Word2VecConfig config;
  config.dim = detector.config().embed_dim;
  config.epochs = 2;
  sevuldet::nn::Word2Vec w2v(corpus.vocab, config);
  std::vector<std::vector<int>> sentences;
  sentences.reserve(train.size());
  for (const auto* s : train) sentences.push_back(s->ids);
  w2v.train(sentences);
  sm::load_pretrained_embeddings(detector.params(), "embedding", w2v.embeddings());
}

/// Train a detector on a split and return its test confusion.
inline sd::Confusion train_and_eval(sm::Detector& detector, const sd::Corpus& corpus,
                                    const SplitRefs& refs, float lr,
                                    bool verbose = true) {
  pretrain_embeddings(detector, corpus, refs.train);
  sc::TrainConfig config;
  config.epochs = bench_epochs();
  config.lr = lr;
  config.verbose = verbose;
  sc::train_detector(detector, refs.train, config);
  return sc::evaluate_detector(detector, refs.test, bench_threads());
}

/// Model factory helpers with bench-scale hyper-parameters. The paper's
/// Table IV values are kept where scale-free (dropout, relative dims);
/// absolute sizes are reduced to CPU scale (documented in EXPERIMENTS.md).
inline sm::ModelConfig base_model_config(int vocab_size) {
  sm::ModelConfig config;
  config.vocab_size = vocab_size;
  config.embed_dim = 24;
  config.conv_channels = 16;
  config.attn_dim = 24;
  config.dense1 = 64;
  config.dense2 = 32;
  config.rnn_hidden = 24;
  config.fixed_length = env_int("SEVULDET_BENCH_FIXED_LEN", 60);
  return config;
}

inline std::unique_ptr<sm::SeVulDetNet> make_sevuldet(int vocab_size) {
  return std::make_unique<sm::SeVulDetNet>(base_model_config(vocab_size));
}

inline std::vector<std::string> metric_row(const std::string& name,
                                           const sd::Confusion& c) {
  return {name,
          su::fmt(c.fpr() * 100, 1),
          su::fmt(c.fnr() * 100, 1),
          su::fmt(c.accuracy() * 100, 1),
          su::fmt(c.precision() * 100, 1),
          su::fmt(c.f1() * 100, 1)};
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n(reproduces %s; shapes comparable, absolute values are\n"
              "CPU-scale — see EXPERIMENTS.md)\n", title, paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace bench
