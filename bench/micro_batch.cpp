// Batched-inference microbenchmark: the length-bucketed predict_batch
// engine vs the per-gadget autograd forward, across batch sizes and
// forward precisions, plus the load-time tile autotuner vs the
// compiled-in default tiles. Records BENCH_batch.json in the
// metrics-registry schema; absolute scans/s gauges are informational
// (suffix _scans_per_s never gates), the committed baseline's
// "speedups" section gates the machine-independent ratios instead:
//
//   batched_vs_single   batch-32 fp32 / per-gadget fp32   >= 1.02
//   autotuned_vs_fixed  autotuned tiles / default tiles   >= 0.9
//
// Why the batched floor is ~1.05x and not the 2x a batching engine
// usually promises: the per-gadget forward is ALREADY a batched
// computation — a gadget's T padded tokens are the GEMM row dimension
// (m = 60..120 for corpus-shaped slices), and measured gemm_blocked
// throughput at the model's conv shapes (k=90/96, n=32) is flat
// (~25 GFLOP/s) from m=13 to m=2400, so stacking gadgets adds no
// per-FLOP speed to the conv GEMMs that dominate (~60% of) runtime.
// Stacking only accelerates the m=1 FC head (measured 14.5 -> 24.7
// GFLOP/s) and removes the autograd graph bookkeeping, worth a
// consistent 6-11% end to end. The gate pins that structural gain
// (batched must never fall behind the loop it replaced); the absolute
// throughput win of this PR comes from the engine's zero-allocation
// steady state and from the serve/eval paths no longer building an
// autograd graph per gadget.
// The bench is also a correctness harness: before timing anything it
// scores every gadget once through predict_batch and once through
// predict_captured and exits 4 unless the fp32 results (probability and
// attention read-outs) are bit-identical. The steady-state batched pass
// is alloc-counted (this TU overrides operator new) — after warmup a
// batch must allocate nothing (counter bench.batch32.allocs_per_pass).
//
//   micro_batch [--gadgets N] [--secs S] [--reps R] [--json PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/nn/autograd.hpp"
#include "sevuldet/nn/kernels.hpp"
#include "sevuldet/util/metrics.hpp"

// --- allocation counter ----------------------------------------------------
// Same replacement-operator pattern as micro_kernels (and the same GCC
// false-positive suppression for inlined replacement operators).
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

namespace sm = sevuldet::models;
namespace nn = sevuldet::nn;
namespace su = sevuldet::util;
using Clock = std::chrono::steady_clock;

/// Deterministic gadget set mirroring a corpus-shaped length
/// distribution: most gadgets land on one of a handful of template
/// lengths (SARD-style generated cases share slice shapes, so scans see
/// heavy length collisions -> multi-gadget buckets), with a minority of
/// odd one-off lengths so single-segment buckets and short-sequence
/// padding stay exercised too.
std::vector<std::vector<int>> make_gadgets(int count, int vocab) {
  constexpr int kTemplateLens[] = {12, 20, 28, 40, 52, 60, 80, 120};
  std::vector<std::vector<int>> gadgets;
  gadgets.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int len = i % 4 == 3 ? 8 + (i * 37) % 152
                               : kTemplateLens[(i / 4) % 8];
    std::vector<int> ids(static_cast<std::size_t>(len));
    for (int j = 0; j < len; ++j) {
      ids[static_cast<std::size_t>(j)] = 2 + (i * 31 + j * 13) % (vocab - 10);
    }
    gadgets.push_back(std::move(ids));
  }
  return gadgets;
}

bool bits_equal(float a, float b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Wall-clock a scoring pass repeated until `secs` elapse; returns
/// gadgets scored per second. The pass runs once as warmup first.
template <typename Pass>
double measure_scans_per_s(Pass&& pass, int gadgets_per_pass, double secs) {
  pass();  // warmup: scratch/arena reach steady state
  const auto start = Clock::now();
  long long scored = 0;
  double elapsed = 0.0;
  do {
    pass();
    scored += gadgets_per_pass;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < secs);
  return static_cast<double>(scored) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  int gadget_count = 96;
  double secs = 0.4;
  int reps = bench::env_int("SEVULDET_BENCH_REPS", 3);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--gadgets") == 0) {
      gadget_count = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--secs") == 0) secs = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  gadget_count = std::max(1, gadget_count);
  reps = std::max(1, reps);
  if (!json_path.empty()) su::metrics::set_enabled(true);
  namespace metrics = su::metrics;
  namespace kernels = nn::kernels;

  sm::ModelConfig config;
  config.vocab_size = 500;  // paper-scale net, small vocab for fast init
  sm::SeVulDetNet net(config);
  const auto gadgets = make_gadgets(gadget_count, config.vocab_size);
  std::vector<sm::BatchItem> items;
  items.reserve(gadgets.size());
  for (const auto& ids : gadgets) items.push_back({&ids, false});
  std::vector<sm::Prediction> batched(gadgets.size());
  std::vector<sm::Prediction> single(gadgets.size());

  // --- correctness: batched fp32 must be bit-identical to per-gadget --
  net.predict_batch(items.data(), items.size(), batched.data());
  {
    nn::Graph graph;
    for (std::size_t i = 0; i < gadgets.size(); ++i) {
      nn::GraphScope scope(graph);
      single[i] = net.predict_captured(gadgets[i]);
    }
  }
  bool identical = true;
  for (std::size_t i = 0; i < gadgets.size(); ++i) {
    if (!bits_equal(batched[i].probability, single[i].probability) ||
        !bits_equal(batched[i].token_weights, single[i].token_weights)) {
      identical = false;
      std::fprintf(stderr, "gadget %zu: batched %a != single %a\n", i,
                   static_cast<double>(batched[i].probability),
                   static_cast<double>(single[i].probability));
    }
  }
  metrics::label_set("bench.batched_identical", identical ? "true" : "false");
  std::printf("batched fp32 bit-identical to per-gadget: %s\n",
              identical ? "yes" : "NO");
  if (!identical) return 4;

  // Install the autotuned tiles up front — that is what `sevuldet scan`
  // runs after load — so every throughput row below measures the
  // production configuration. The fixed-vs-autotuned comparison swaps
  // the default tiles back in for its one row.
  const kernels::GemmTiles tuned =
      kernels::autotune_gemm_tiles(net.batch_gemm_shapes(256));
  kernels::set_gemm_tiles(tuned);

  auto batched_pass = [&](int batch) {
    for (std::size_t off = 0; off < items.size();
         off += static_cast<std::size_t>(batch)) {
      const std::size_t n =
          std::min(static_cast<std::size_t>(batch), items.size() - off);
      net.predict_batch(items.data() + off, n, batched.data() + off);
    }
  };
  auto best_of_reps = [&](auto&& pass) {
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      best = std::max(best, measure_scans_per_s(pass, gadget_count, secs));
    }
    return best;
  };

  su::Table table({"path", "scans/s"});
  auto record = [&](const std::string& name, double value) {
    table.add_row({name, su::fmt(value, 0)});
    metrics::gauge_set(name, value);
  };

  // Per-gadget fp32 reference (the pre-batching serve/eval loop).
  net.set_precision(sm::Precision::kFp32);
  record("bench.single.fp32_scans_per_s", best_of_reps([&] {
           nn::Graph graph;
           for (const auto& ids : gadgets) {
             nn::GraphScope scope(graph);
             net.predict_captured(ids);
           }
         }));

  // Batch-size sweep at fp32, then the quantized paths at batch 32.
  for (const int batch : {8, 32, gadget_count}) {
    const std::string name = batch == gadget_count
                                 ? "bench.batchfull.fp32_scans_per_s"
                                 : "bench.batch" + std::to_string(batch) +
                                       ".fp32_scans_per_s";
    record(name, best_of_reps([&] { batched_pass(batch); }));
  }
  for (const sm::Precision precision :
       {sm::Precision::kFp16, sm::Precision::kInt8}) {
    net.set_precision(precision);
    record(std::string("bench.batch32.") + sm::precision_name(precision) +
               "_scans_per_s",
           best_of_reps([&] { batched_pass(32); }));
  }
  net.set_precision(sm::Precision::kFp32);

  // Steady-state allocation count: one warm batched pass must not touch
  // the heap (scratch and bucket vectors are recycled).
  {
    batched_pass(32);  // warm
    const long long before = g_allocs.load(std::memory_order_relaxed);
    constexpr int kPasses = 5;
    for (int i = 0; i < kPasses; ++i) batched_pass(32);
    const long long after = g_allocs.load(std::memory_order_relaxed);
    const long long per_pass = (after - before) / kPasses;
    metrics::counter_add("bench.batch32.allocs_per_pass", per_pass);
    table.add_row(
        {"bench.batch32.allocs_per_pass", std::to_string(per_pass)});
  }

  // Default tiles vs autotuned tiles, same batched fp32 pass. The floor
  // is 0.9 (not 1.0): on shapes this small the candidates are close and
  // scheduler noise can flip a few percent either way — the gate only
  // rejects an autotuner that picks a clearly losing configuration.
  kernels::set_gemm_tiles(kernels::default_gemm_tiles());
  record("bench.tiles.fixed_scans_per_s",
         best_of_reps([&] { batched_pass(32); }));
  kernels::set_gemm_tiles(tuned);
  record("bench.tiles.autotuned_scans_per_s",
         best_of_reps([&] { batched_pass(32); }));
  kernels::reset_gemm_tiles();

  metrics::gauge_set("bench.gadgets", gadget_count);
  metrics::gauge_set("bench.secs_per_row", secs);
  std::printf("%s", table.to_string().c_str());
  if (!json_path.empty()) {
    metrics::write_json(json_path);
    std::printf("recorded %s\n", json_path.c_str());
  }
  return 0;
}
