// Table II: the value of (a) path semantics (CG vs PS-CG) and (b)
// flexible input length (fixed-length BLSTM/BGRU vs the SPP-CNN).
// Six training runs: {BLSTM, BGRU, SEVulDet network} x {CG, PS-CG}.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Table II — path semantics + flexible length", "Table II");

  sd::SardConfig config;
  config.pairs_per_category = bench_pairs();
  auto cases = sd::generate_sard_like(config);

  su::Table table(
      {"Network", "Flexible-length", "Kind", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"});

  for (auto representation :
       {Representation::ControlAndData, Representation::PathSensitive}) {
    auto corpus = build_encoded_corpus(cases, representation);
    auto refs = split_corpus(corpus);
    const char* kind = representation == Representation::PathSensitive ? "PS-CG" : "CG";
    std::printf("[%s] %zu samples, vocab %d, train %zu / test %zu\n", kind,
                corpus.samples.size(), corpus.vocab.size(), refs.train.size(),
                refs.test.size());

    {
      auto blstm = sm::make_blstm(base_model_config(corpus.vocab.size()));
      auto c = train_and_eval(*blstm, corpus, refs, 0.002f);
      auto m = metric_row("BLSTM", c);
      table.add_row({"BLSTM", "no", kind, m[1], m[2], m[3], m[4], m[5]});
    }
    {
      auto bgru = sm::make_bgru(base_model_config(corpus.vocab.size()));
      auto c = train_and_eval(*bgru, corpus, refs, 0.002f);
      auto m = metric_row("BGRU", c);
      table.add_row({"BGRU", "no", kind, m[1], m[2], m[3], m[4], m[5]});
    }
    {
      auto net = make_sevuldet(corpus.vocab.size());
      auto c = train_and_eval(*net, corpus, refs, 0.002f);
      auto m = metric_row("SEVulDet", c);
      table.add_row({"SEVulDet", "yes", kind, m[1], m[2], m[3], m[4], m[5]});
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("expected shape (paper): PS-CG beats CG for every network; the\n"
              "flexible-length SEVulDet network beats both fixed-length RNNs.\n");
  return 0;
}
