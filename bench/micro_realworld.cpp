// End-to-end real-world scan harness: run the parallel directory-scan
// frontend (core::scan_tree — mmap + preprocess + error-resilient parse
// + slice + batched scoring per file) over the pinned seed tree and
// record what real scans are gated on: files scanned, findings, and the
// parse/preprocess drop rates that measure graceful degradation.
// Records BENCH_realworld.json in the metrics-registry schema; the CI
// realworld-gate job holds the drop-rate gauges to the committed
// baseline's "max_rates" ceilings (machine-independent: the rates are
// properties of the pinned tree + frontend, not the host).
//
// The bench is also a correctness harness: the tree is scanned twice,
// serially and with a thread pool, and the run exits 4 unless the two
// serialized trees (findings, per-file stats, drop counters) are
// byte-identical — the parallel frontend must never change results.
//
//   micro_realworld --model MODEL [--root DIR] [--threads N]
//                   [--reps R] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "sevuldet/core/scan.hpp"
#include "sevuldet/serve/protocol.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/table.hpp"

namespace {

namespace sc = sevuldet::core;
namespace su = sevuldet::util;
using Clock = std::chrono::steady_clock;

double scan_ms(sc::SeVulDet& detector, const std::string& root,
               const sc::ScanOptions& options, int reps,
               sc::TreeScanResult* out) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    sc::TreeScanResult tree = sc::scan_tree(detector, root, options);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    best = std::min(best, ms);
    if (out != nullptr) *out = std::move(tree);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  const char* model_path = nullptr;
  std::string root = "examples/realworld_seed";
  int threads = std::max(2, bench::bench_threads());
  int reps = bench::env_int("SEVULDET_BENCH_REPS", 3);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0) model_path = argv[i + 1];
    if (std::strcmp(argv[i], "--root") == 0) root = argv[i + 1];
    if (std::strcmp(argv[i], "--threads") == 0) threads = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  if (model_path == nullptr) {
    std::fprintf(stderr,
                 "usage: micro_realworld --model MODEL [--root DIR] "
                 "[--threads N] [--reps R] [--json PATH]\n");
    return 2;
  }
  threads = std::max(2, threads);
  reps = std::max(1, reps);
  if (!json_path.empty()) su::metrics::set_enabled(true);
  namespace metrics = su::metrics;
  namespace serve = sevuldet::serve;

  sc::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  sc::SeVulDet detector(config);
  detector.load(model_path);

  // --- correctness: parallel scan must equal the serial scan ----------
  sc::ScanOptions serial_options;
  serial_options.threads = 1;
  sc::ScanOptions parallel_options;
  parallel_options.threads = threads;

  sc::TreeScanResult serial;
  sc::TreeScanResult parallel;
  const double serial_ms = scan_ms(detector, root, serial_options, reps,
                                   &serial);
  const double parallel_ms = scan_ms(detector, root, parallel_options, reps,
                                     &parallel);
  const bool identical =
      serve::tree_scan_to_json(serial) == serve::tree_scan_to_json(parallel);
  metrics::label_set("bench.trees_identical", identical ? "true" : "false");
  std::printf("parallel (%d threads) tree identical to serial: %s\n", threads,
              identical ? "yes" : "NO");
  if (!identical) return 4;

  const sc::TreeScanStats& stats = parallel.stats;
  su::Table table({"metric", "value"});
  auto record = [&](const std::string& name, double value, int decimals) {
    metrics::gauge_set(name, value);
    table.add_row({name, su::fmt(value, decimals)});
  };
  record("bench.realworld.files", stats.files, 0);
  record("bench.realworld.files_failed", stats.files_failed, 0);
  record("bench.realworld.files_recovered", stats.files_recovered, 0);
  record("bench.realworld.findings", stats.findings, 0);
  record("bench.realworld.fallback_findings", stats.fallback_findings, 0);
  record("bench.realworld.bytes", static_cast<double>(stats.bytes), 0);
  record("bench.realworld.serial_scan_ms", serial_ms, 2);
  record("bench.realworld.parallel_scan_ms", parallel_ms, 2);
  // The gated degradation rates (also set by scan_tree itself; repeated
  // here so the table and snapshot stay self-contained).
  record("scan.parse_drop_rate", stats.parse_drop_rate, 4);
  record("scan.preprocess_drop_rate", stats.preprocess_drop_rate, 4);

  std::printf("%s", table.to_string().c_str());
  if (!json_path.empty()) {
    metrics::write_json(json_path);
    std::printf("recorded %s\n", json_path.c_str());
  }
  return 0;
}
