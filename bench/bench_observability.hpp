// Shared --metrics-out/--trace-out handling for every bench binary.
//
// Both flags enable the corresponding subsystem (util/metrics.hpp,
// util/trace.hpp) for the whole process and register an atexit writer,
// so the output file is flushed on every exit path — including the
// nonzero-exit equivalence failures CI cares about. Instrumentation
// stays off (one relaxed atomic load per record call) when neither flag
// is given.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/trace.hpp"

namespace bench {

inline std::string& metrics_out_ref() {
  static std::string path;
  return path;
}
inline std::string& trace_out_ref() {
  static std::string path;
  return path;
}

inline void write_observability_outputs() {
  try {
    if (!metrics_out_ref().empty()) {
      sevuldet::util::metrics::write_json(metrics_out_ref());
    }
    if (!trace_out_ref().empty()) {
      sevuldet::util::trace::write_json(trace_out_ref());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error writing observability output: %s\n", e.what());
  }
}

/// Scan argv for --metrics-out FILE / --trace-out FILE, enable the
/// subsystems, and arrange for the files to be written at exit. Safe to
/// call more than once.
inline void handle_observability_flags(int argc, char** argv) {
  bool any = false;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out_ref() = argv[i + 1];
      sevuldet::util::metrics::set_enabled(true);
      any = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out_ref() = argv[i + 1];
      sevuldet::util::trace::set_enabled(true);
      any = true;
    }
  }
  if (any) {
    static bool registered = false;
    if (!registered) {
      registered = true;
      std::atexit(write_observability_outputs);
    }
  }
}

/// For google-benchmark mains: handle the flags, then remove them from
/// argv so benchmark::Initialize does not reject them as unrecognized.
inline void strip_observability_flags(int* argc, char** argv) {
  handle_observability_flags(*argc, argv);
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if ((std::strcmp(argv[i], "--metrics-out") == 0 ||
         std::strcmp(argv[i], "--trace-out") == 0) &&
        i + 1 < *argc) {
      ++i;  // skip the value too
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
}

}  // namespace bench
