// Table V: VulDeePecker / SySeVR / SEVulDet per gadget category (FC, AU,
// PU, AE) and on all categories together. Each framework uses its own
// gadget representation: VulDeePecker = data-dependence-only gadgets,
// FC only; SySeVR = data+control gadgets; SEVulDet = path-sensitive
// gadgets. All trained on the same underlying programs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Table V — deep-learning framework comparison", "Table V");

  sd::SardConfig config;
  config.pairs_per_category = bench_pairs();
  auto cases = sd::generate_sard_like(config);

  auto dd_corpus = build_encoded_corpus(cases, Representation::DataOnly);
  auto cg_corpus = build_encoded_corpus(cases, Representation::ControlAndData);
  auto ps_corpus = build_encoded_corpus(cases, Representation::PathSensitive);

  su::Table table({"Work - Kind", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"});

  auto cg_refs = split_corpus(cg_corpus);
  auto ps_refs = split_corpus(ps_corpus);

  // VulDeePecker: FC-only, data-dependence gadgets, BLSTM.
  {
    auto refs =
        split_corpus_category(dd_corpus, ss::TokenCategory::FunctionCall);
    auto model = sm::make_vuldeepecker(base_model_config(dd_corpus.vocab.size()));
    auto c = train_and_eval(*model, dd_corpus, refs, 0.002f);
    table.add_row(metric_row("VulDeePecker-FC", c));
  }

  const std::pair<ss::TokenCategory, const char*> categories[] = {
      {ss::TokenCategory::FunctionCall, "FC"},
      {ss::TokenCategory::ArrayUsage, "AU"},
      {ss::TokenCategory::PointerUsage, "PU"},
      {ss::TokenCategory::ArithExpr, "AE"},
  };

  for (const auto& [category, tag] : categories) {
    {
      auto refs = split_corpus_category(cg_corpus, category);
      auto model = sm::make_sysevr(base_model_config(cg_corpus.vocab.size()));
      auto c = train_and_eval(*model, cg_corpus, refs, 0.002f);
      table.add_row(metric_row(std::string("SySeVR-") + tag, c));
    }
    {
      auto refs = split_corpus_category(ps_corpus, category);
      auto model = make_sevuldet(ps_corpus.vocab.size());
      auto c = train_and_eval(*model, ps_corpus, refs, 0.002f);
      table.add_row(metric_row(std::string("SEVulDet-") + tag, c));
    }
  }

  // All four categories together.
  {
    auto model = sm::make_sysevr(base_model_config(cg_corpus.vocab.size()));
    auto c = train_and_eval(*model, cg_corpus, cg_refs, 0.002f);
    table.add_row(metric_row("SySeVR-All", c));
  }
  {
    auto model = make_sevuldet(ps_corpus.vocab.size());
    auto c = train_and_eval(*model, ps_corpus, ps_refs, 0.002f);
    table.add_row(metric_row("SEVulDet-All", c));
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("expected shape (paper Table V): SEVulDet > SySeVR on every\n"
              "category; both > VulDeePecker on FC; single-category F1 above\n"
              "the All-categories F1 for SEVulDet.\n");
  return 0;
}
