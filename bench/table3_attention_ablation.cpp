// Table III: ablation of the multilayer attention mechanism — a plain
// CNN+SPP, a CNN with token attention only, and the full CNN-MultiATT
// (token + CBAM channel/spatial attention), identical data and
// hyper-parameters.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Table III — multilayer-attention ablation", "Table III");

  sd::SardConfig config;
  config.pairs_per_category = bench_pairs();
  auto cases = sd::generate_sard_like(config);
  auto corpus = build_encoded_corpus(cases, Representation::PathSensitive);
  auto refs = split_corpus(corpus);
  std::printf("%zu samples, vocab %d\n", corpus.samples.size(), corpus.vocab.size());

  su::Table table({"Neural network", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"});

  struct Variant {
    const char* name;
    bool token_attn;
    bool multi_attn;
  };
  for (const Variant& variant : {Variant{"CNN", false, false},
                                 Variant{"CNN-TokenATT", true, false},
                                 Variant{"CNN-MultiATT", true, true}}) {
    auto model_config = base_model_config(corpus.vocab.size());
    model_config.token_attention = variant.token_attn;
    model_config.multilayer_attention = variant.multi_attn;
    sm::SeVulDetNet net(model_config);
    auto c = train_and_eval(net, corpus, refs, 0.002f);
    auto m = metric_row(variant.name, c);
    table.add_row(m);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("expected shape (paper Table III): CNN < CNN-TokenATT < CNN-MultiATT\n"
              "(paper: F1 89.1 -> 91.0 -> 94.2).\n");
  return 0;
}
