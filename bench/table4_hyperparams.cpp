// Table IV: the hyper-parameters of VulDeePecker, SySeVR, and SEVulDet —
// both the paper's published values and the CPU-scale values this
// reproduction trains with (the mapping is part of the experiment record).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Table IV — hyper-parameters", "Table IV");

  su::Table paper({"Parameters", "VulDeePecker", "SySeVR", "SEVulDet"});
  paper.add_row({"Dimension", "50", "30", "30"});
  paper.add_row({"Flexible-length", "no", "no", "yes"});
  paper.add_row({"Batch size", "64", "16", "16"});
  paper.add_row({"Learning rate", "0.001", "0.002", "0.0001"});
  paper.add_row({"Dropout", "0.5", "0.2", "0.2"});
  paper.add_row({"Epochs", "4", "20", "20"});
  std::printf("paper values:\n%s\n", paper.to_string().c_str());

  const auto vdp = sm::make_vuldeepecker(base_model_config(100))->config();
  const auto sys = sm::make_sysevr(base_model_config(100))->config();
  const auto sev = base_model_config(100);
  su::Table ours({"Parameters", "VulDeePecker", "SySeVR", "SEVulDet"});
  ours.add_row({"Dimension", std::to_string(vdp.embed_dim),
                std::to_string(sys.embed_dim), std::to_string(sev.embed_dim)});
  ours.add_row({"Flexible-length", "no", "no", "yes"});
  ours.add_row({"Fixed time steps", std::to_string(vdp.fixed_length),
                std::to_string(sys.fixed_length), "-"});
  ours.add_row({"Batch size (per-sample Adam)", "1", "1", "1"});
  ours.add_row({"Learning rate", "0.002", "0.002", "0.002"});
  ours.add_row({"Dropout", su::fmt(vdp.dropout, 1), su::fmt(sys.dropout, 1),
                su::fmt(sev.dropout, 1)});
  ours.add_row({"Epochs", std::to_string(bench_epochs()),
                std::to_string(bench_epochs()), std::to_string(bench_epochs())});
  ours.add_row({"Decision threshold", su::fmt(vdp.threshold, 1),
                su::fmt(sys.threshold, 1), su::fmt(sev.threshold, 1)});
  std::printf("this reproduction (CPU scale):\n%s\n", ours.to_string().c_str());
  return 0;
}
