// Microbenchmarks for the blocked kernel library and the tensor-arena
// train step (google-benchmark). Three question groups:
//   1. GEMM family throughput, blocked vs naive, at the exact shapes the
//      SEVulDetNet hot path produces (GFLOP/s counter);
//   2. end-to-end train-step latency, heap autograd vs arena autograd;
//   3. heap allocations per train step — this TU overrides global
//      operator new/delete with a counter, and the arena steady state
//      must report 0 (the "allocs_per_step" counter).
// Record a machine's results with:
//   ./bench/micro_kernels --benchmark_format=json > bench/BENCH_kernels.json
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_observability.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/nn/autograd.hpp"
#include "sevuldet/nn/kernels.hpp"
#include "sevuldet/nn/optim.hpp"
#include "sevuldet/util/rng.hpp"

// --- allocation counter ----------------------------------------------------
// Counts every global new/delete in this binary. Relaxed atomics: the
// benchmarks of interest are single-threaded; the counter only needs to
// be exact there.
//
// GCC inlines the replaced operators into call sites and then warns that
// malloc/free are mismatched with new/delete — a false positive for
// replacement operators (they are the matching pair by definition).
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

using namespace sevuldet;
namespace kernels = nn::kernels;

std::vector<float> random_vec(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// --- GEMM throughput -------------------------------------------------------
// Shapes: (m, k, n) as matmul([m,k],[k,n]). T=200 stands in for a typical
// gadget length feeding the conv layers (im2row rows x kernel*channels),
// the [1,*] rows are the dense head.
void gemm_args(benchmark::internal::Benchmark* b) {
  b->Args({200, 90, 32});    // conv1 after 3x30 im2row
  b->Args({200, 96, 32});    // conv2 after 3x32 im2row
  b->Args({1, 224, 256});    // fc1 (7 SPP bins x 32 channels -> 256)
  b->Args({1, 256, 64});     // fc2
  b->Args({256, 256, 256});  // square reference point
}

template <void (*Gemm)(int, int, int, const float*, const float*, float*)>
void BM_Gemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  util::Rng rng(42);
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  for (auto _ : state) {
    Gemm(m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  const double flops = 2.0 * m * n * k;
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_GemmNaive(benchmark::State& state) { BM_Gemm<kernels::gemm_naive>(state); }
void BM_GemmBlocked(benchmark::State& state) { BM_Gemm<kernels::gemm>(state); }
BENCHMARK(BM_GemmNaive)->Apply(gemm_args);
BENCHMARK(BM_GemmBlocked)->Apply(gemm_args);

// Backward-pass forms at a representative conv shape: dB = A^T(kxm) * G
// and dA = G * B^T(nxk).
void BM_GemmAtBNaive(benchmark::State& state) {
  BM_Gemm<kernels::gemm_at_b_naive>(state);
}
void BM_GemmAtBBlocked(benchmark::State& state) {
  BM_Gemm<kernels::gemm_at_b>(state);
}
BENCHMARK(BM_GemmAtBNaive)->Args({90, 200, 32});
BENCHMARK(BM_GemmAtBBlocked)->Args({90, 200, 32});

void BM_GemmABtNaive(benchmark::State& state) {
  BM_Gemm<kernels::gemm_a_bt_naive>(state);
}
void BM_GemmABtBlocked(benchmark::State& state) {
  BM_Gemm<kernels::gemm_a_bt>(state);
}
BENCHMARK(BM_GemmABtNaive)->Args({200, 32, 90});
BENCHMARK(BM_GemmABtBlocked)->Args({200, 32, 90});

// --- end-to-end train step -------------------------------------------------

models::ModelConfig bench_config() {
  models::ModelConfig config;
  config.vocab_size = 500;  // paper-scale net, small vocab to keep init fast
  return config;
}

std::vector<int> bench_ids(int t) {
  std::vector<int> ids(static_cast<std::size_t>(t));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = 2 + static_cast<int>((i * 13) % 490);
  }
  return ids;
}

// One forward+backward+Adam step on the full SEVulDetNet. `use_arena`
// switches between the seed's per-node heap allocation and the recycled
// Graph/TensorArena storage; results are bitwise identical (kernels_test
// proves it), only the allocator traffic differs.
void train_step_bench(benchmark::State& state, bool use_arena) {
  models::SeVulDetNet net(bench_config());
  nn::Adam opt(net.params(), 1e-3f);
  const auto ids = bench_ids(static_cast<int>(state.range(0)));
  nn::Graph graph;

  auto one_step = [&]() {
    nn::NodePtr loss =
        nn::bce_with_logits(net.forward_logit(ids, /*train=*/true), 1.0f);
    opt.zero_grad();
    nn::backward(loss);
    opt.clip_grad_norm(5.0f);
    opt.step();
    benchmark::DoNotOptimize(loss->value.data());
  };

  // Warm up outside measurement so the arena/pool reach steady state.
  for (int i = 0; i < 3; ++i) {
    if (use_arena) {
      nn::GraphScope scope(graph);
      one_step();
    } else {
      one_step();
    }
  }

  const long long allocs_before = g_allocs.load(std::memory_order_relaxed);
  long long steps = 0;
  for (auto _ : state) {
    if (use_arena) {
      nn::GraphScope scope(graph);
      one_step();
    } else {
      one_step();
    }
    ++steps;
  }
  const long long allocs_after = g_allocs.load(std::memory_order_relaxed);
  state.counters["allocs_per_step"] = benchmark::Counter(
      steps == 0 ? 0.0
                 : static_cast<double>(allocs_after - allocs_before) /
                       static_cast<double>(steps));
  state.SetItemsProcessed(steps);
}

void BM_TrainStepHeap(benchmark::State& state) {
  train_step_bench(state, /*use_arena=*/false);
}
void BM_TrainStepArena(benchmark::State& state) {
  train_step_bench(state, /*use_arena=*/true);
}
BENCHMARK(BM_TrainStepHeap)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainStepArena)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

// Inference-only variant (what evaluation and `sevuldet detect` run).
void BM_PredictArena(benchmark::State& state) {
  models::SeVulDetNet net(bench_config());
  const auto ids = bench_ids(static_cast<int>(state.range(0)));
  nn::Graph graph;
  for (int i = 0; i < 3; ++i) {
    nn::GraphScope scope(graph);
    benchmark::DoNotOptimize(net.predict(ids));
  }
  const long long allocs_before = g_allocs.load(std::memory_order_relaxed);
  long long steps = 0;
  for (auto _ : state) {
    nn::GraphScope scope(graph);
    benchmark::DoNotOptimize(net.predict(ids));
    ++steps;
  }
  const long long allocs_after = g_allocs.load(std::memory_order_relaxed);
  state.counters["allocs_per_step"] = benchmark::Counter(
      steps == 0 ? 0.0
                 : static_cast<double>(allocs_after - allocs_before) /
                       static_cast<double>(steps));
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_PredictArena)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() with observability in front: strip
// --metrics-out/--trace-out (enabling the registries and arranging the
// atexit write) before benchmark::Initialize sees argv.
int main(int argc, char** argv) {
  bench::strip_observability_flags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
