// Fig. 5: FPR/FNR of classical static tools (Flawfinder, RATS,
// Checkmarx, VUDDY) against SEVulDet, program-level verdicts over the
// synthetic SARD-like corpus (a tool flags a program iff it reports any
// finding; SEVulDet flags iff any gadget classifies vulnerable).
#include "bench_common.hpp"

#include "sevuldet/baselines/static_tool.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  namespace sb = sevuldet::baselines;
  print_header("Fig. 5 — classical static tools vs SEVulDet", "Fig. 5");

  sd::SardConfig config;
  config.pairs_per_category = bench_pairs();
  auto cases = sd::generate_sard_like(config);

  // Program-level split: 80% train (VUDDY fingerprints + SEVulDet
  // training), 20% test. Cases come in adjacent good/bad pairs and are
  // generated per category, so shuffle PAIRS deterministically before the
  // cut — otherwise the test split is a single category.
  std::vector<std::size_t> pair_order(cases.size() / 2);
  for (std::size_t i = 0; i < pair_order.size(); ++i) pair_order[i] = i;
  sevuldet::util::Rng shuffle_rng(4242);
  shuffle_rng.shuffle(pair_order);
  std::vector<sd::TestCase> train_cases, test_cases;
  const std::size_t train_pairs = pair_order.size() * 4 / 5;
  for (std::size_t k = 0; k < pair_order.size(); ++k) {
    auto& dest = k < train_pairs ? train_cases : test_cases;
    dest.push_back(cases[pair_order[k] * 2]);
    dest.push_back(cases[pair_order[k] * 2 + 1]);
  }
  std::printf("programs: %zu train / %zu test\n", train_cases.size(),
              test_cases.size());

  su::Table table({"Tool", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"});

  auto eval_tool = [&](sb::StaticTool& tool) {
    sd::Confusion c;
    for (const auto& tc : test_cases) c.record(tool.flags(tc.source), tc.vulnerable);
    table.add_row(metric_row(tool.name(), c));
    return c;
  };

  sb::FlawfinderLike flawfinder;
  sb::RatsLike rats;
  sb::CheckmarxLike checkmarx;
  sb::VuddyLike vuddy;
  vuddy.train(train_cases);

  eval_tool(flawfinder);
  eval_tool(rats);
  eval_tool(checkmarx);
  eval_tool(vuddy);

  // SEVulDet, program-level: any finding above threshold => vulnerable.
  sc::PipelineConfig pipeline_config;
  pipeline_config.model = base_model_config(0);  // vocab filled by pipeline
  pipeline_config.train.epochs = bench_epochs();
  pipeline_config.train.lr = 0.002f;
  sc::SeVulDet detector(pipeline_config);
  std::printf("training SEVulDet...\n");
  detector.train(train_cases);
  sd::Confusion sevuldet_confusion;
  for (const auto& tc : test_cases) {
    sevuldet_confusion.record(!detector.detect(tc.source).empty(), tc.vulnerable);
  }
  table.add_row(metric_row("SEVulDet", sevuldet_confusion));

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("expected shape (paper Fig. 5): Flawfinder/RATS high FPR AND FNR;\n"
              "Checkmarx better but still double-digit; VUDDY lowest FPR with the\n"
              "highest FNR; SEVulDet dominates on both axes.\n");
  return 0;
}
