// Ablation: the fixed-length trade-off of Definition 8 — sweep the RNN
// time-step count and show that short windows truncate discriminative
// semantics on long gadgets while long windows waste padding on short
// ones; the flexible-length SEVulDet network is the reference line.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  using namespace bench;
  print_header("Ablation — RNN time-step sweep vs flexible length",
               "Section II-D / Definition 8");

  sd::SardConfig config;
  config.pairs_per_category = std::max(20, bench_pairs() / 2);  // ablation scale
  config.long_fraction = 0.35;  // emphasize the over-length regime
  auto cases = sd::generate_sard_like(config);
  auto corpus = build_encoded_corpus(cases, Representation::PathSensitive);
  auto refs = split_corpus(corpus);

  std::size_t over = 0;
  for (const auto* s : refs.test) {
    if (s->ids.size() > 60) ++over;
  }
  std::printf("test gadgets longer than 60 tokens: %zu / %zu\n", over,
              refs.test.size());

  su::Table table({"Network", "Time steps", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"});
  for (int steps : {20, 60, 150}) {
    auto model_config = base_model_config(corpus.vocab.size());
    model_config.fixed_length = steps;
    auto model = sm::make_bgru(model_config);
    auto c = train_and_eval(*model, corpus, refs, 0.002f);
    auto m = metric_row("BGRU", c);
    table.add_row({"BGRU", std::to_string(steps), m[1], m[2], m[3], m[4], m[5]});
  }
  {
    auto model = make_sevuldet(corpus.vocab.size());
    auto c = train_and_eval(*model, corpus, refs, 0.002f);
    auto m = metric_row("SEVulDet", c);
    table.add_row({"SEVulDet", "flexible", m[1], m[2], m[3], m[4], m[5]});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("expected: very short windows hurt most (truncation); the\n"
              "flexible-length network needs no window at all.\n");
  return 0;
}
