// Serial vs parallel corpus construction on the standard SARD-generated
// workload: times dataset::build_corpus at 1/2/4/--threads workers,
// reports the speedup over the serial path, and verifies that every
// parallel corpus is byte-identical to the serial one (samples, labels,
// stats) — the determinism contract of util::ThreadPool.
//
//   micro_parallel_corpus [--threads N] [--reps R]
//
// Scale follows SEVULDET_BENCH_PAIRS like every other bench. Exits
// nonzero if any parallel corpus differs from the serial corpus, so CI
// can run it as a determinism check; the speedup itself depends on the
// machine (a single-core runner cannot show one).
#include <chrono>
#include <set>
#include <vector>

#include "bench_common.hpp"
#include "sevuldet/util/thread_pool.hpp"

namespace {

namespace sd = sevuldet::dataset;

bool same_sample(const sd::GadgetSample& a, const sd::GadgetSample& b) {
  return a.tokens == b.tokens && a.ids == b.ids && a.label == b.label &&
         a.cwe == b.cwe && a.category == b.category && a.case_id == b.case_id &&
         a.from_ambiguous == b.from_ambiguous && a.from_long == b.from_long;
}

bool same_corpus(const sd::Corpus& a, const sd::Corpus& b) {
  if (a.samples.size() != b.samples.size()) return false;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (!same_sample(a.samples[i], b.samples[i])) return false;
  }
  return a.stats.by_category == b.stats.by_category &&
         a.stats.parse_failures == b.stats.parse_failures;
}

double time_build(const std::vector<sd::TestCase>& cases,
                  const sd::CorpusOptions& options, int reps, sd::Corpus& out) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    sd::Corpus corpus = sd::build_corpus(cases, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (r == 0 || seconds < best) best = seconds;
    out = std::move(corpus);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  int reps = bench::env_int("SEVULDET_BENCH_REPS", 3);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
  }

  sd::SardConfig config;
  config.pairs_per_category = bench::bench_pairs();
  const auto cases = sd::generate_sard_like(config);

  sd::CorpusOptions options;
  options.gadget.path_sensitive = true;
  options.gadget.slice.use_control_dep = true;
  options.deduplicate = true;  // exercises the ordered-merge dedup path

  std::printf("parallel corpus construction — %zu test cases, %d hardware thread(s), "
              "best of %d rep(s)\n\n",
              cases.size(), sevuldet::util::hardware_threads(), reps);

  options.threads = 1;
  sd::Corpus serial;
  const double serial_seconds = time_build(cases, options, reps, serial);

  std::set<int> thread_counts = {2, 4};
  if (bench::bench_threads() > 1) thread_counts.insert(bench::bench_threads());

  sevuldet::util::Table table({"threads", "seconds", "speedup", "identical"});
  table.add_row({"1", sevuldet::util::fmt(serial_seconds, 3), "1.00x", "baseline"});

  bool all_identical = true;
  for (int threads : thread_counts) {
    options.threads = threads;
    sd::Corpus parallel;
    const double seconds = time_build(cases, options, reps, parallel);
    const bool identical = same_corpus(serial, parallel);
    all_identical = all_identical && identical;
    table.add_row({std::to_string(threads), sevuldet::util::fmt(seconds, 3),
                   sevuldet::util::fmt(serial_seconds / seconds, 2) + "x",
                   identical ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\n%zu samples, %lld vulnerable, %lld parse failures\n",
              serial.samples.size(), serial.stats.vulnerable(),
              serial.stats.parse_failures);
  if (!all_identical) {
    std::printf("FAIL: parallel corpus differs from serial corpus\n");
    return 1;
  }
  std::printf("all parallel corpora byte-identical to serial\n");
  return 0;
}
