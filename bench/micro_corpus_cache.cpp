// Cold-vs-warm corpus construction through the content-addressed
// preprocessing cache (dataset/cache.hpp), on the standard SARD-generated
// workload:
//   - no-cache baseline build (what every run cost before the cache);
//   - cold build into an empty cache (pays Steps I-III plus the writes);
//   - warm serial rebuild (every case served from the cache);
//   - warm parallel rebuild (cache hits + threaded merge).
// Verifies the equivalence contract — every build's corpus fingerprint
// (dataset/corpus_io.hpp) must be identical, and a warm build must hit on
// 100% of cases — and exits nonzero otherwise, so CI runs this binary as
// the cache-equivalence check. Timings and hit rates are printed as a
// table and optionally recorded as JSON in the metrics-registry schema
// (util/metrics.hpp: gauges "bench.*", label "corpus.fingerprint",
// plus every pipeline counter/histogram the builds produced):
//   ./bench/micro_corpus_cache --json bench/BENCH_corpus_cache.json
//
//   micro_corpus_cache [--threads N] [--reps R] [--cache-dir DIR]
//                      [--json PATH] [--expect-prepopulated]
//
// --cache-dir persists the cache across invocations (CI reuses it to
// prove cross-process reuse); the default is a throwaway directory under
// std::filesystem::temp_directory_path(), removed on exit.
// --expect-prepopulated additionally requires the FIRST build to be
// all-hits — pass it on a second invocation against the same --cache-dir.
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "sevuldet/dataset/corpus_io.hpp"
#include "sevuldet/util/binary_io.hpp"
#include "sevuldet/util/metrics.hpp"

namespace fs = std::filesystem;

namespace {

namespace sd = sevuldet::dataset;
namespace su = sevuldet::util;

struct BuildResult {
  double seconds = 0.0;
  sd::Corpus corpus;
  double hit_rate() const {
    const long long probes = corpus.stats.cache_hits + corpus.stats.cache_misses;
    return probes == 0
               ? 0.0
               : static_cast<double>(corpus.stats.cache_hits) /
                     static_cast<double>(probes);
  }
};

/// Best-of-reps build. Reps > 1 only make sense for already-warm or
/// no-cache configurations; the cold build always runs once (a second
/// "cold" rep would hit the cache the first rep populated).
BuildResult time_build(const std::vector<sd::TestCase>& cases,
                       const sd::CorpusOptions& options, int reps) {
  BuildResult result;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    sd::Corpus corpus = sd::build_corpus(cases, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (r == 0 || seconds < result.seconds) result.seconds = seconds;
    result.corpus = std::move(corpus);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_flags(argc, argv);
  int reps = bench::env_int("SEVULDET_BENCH_REPS", 3);
  std::string cache_dir;
  std::string json_path;
  bool expect_prepopulated = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      cache_dir = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--expect-prepopulated") == 0) {
      expect_prepopulated = true;
    }
  }
  // The JSON report is a metrics-registry snapshot, so the registry has
  // to be live while the builds run to capture the cache counters.
  namespace sum = sevuldet::util::metrics;
  if (!json_path.empty()) sum::set_enabled(true);

  const bool throwaway_dir = cache_dir.empty();
  if (throwaway_dir) {
    cache_dir = (fs::temp_directory_path() /
                 ("sevuldet-corpus-cache-bench." + std::to_string(::getpid())))
                    .string();
    fs::remove_all(cache_dir);
  }

  sd::SardConfig config;
  config.pairs_per_category = bench::bench_pairs();
  const auto cases = sd::generate_sard_like(config);

  sd::CorpusOptions options;
  options.gadget.path_sensitive = true;
  options.gadget.slice.use_control_dep = true;

  std::printf("corpus cache cold/warm — %zu test cases, cache at %s\n\n",
              cases.size(), cache_dir.c_str());

  // Reference: no cache at all.
  const BuildResult uncached = time_build(cases, options, reps);

  // Cold: empty (or prepopulated, under --expect-prepopulated) cache.
  options.cache_dir = cache_dir;
  const BuildResult cold = time_build(cases, options, 1);

  // Warm serial and warm parallel.
  const BuildResult warm = time_build(cases, options, reps);
  sd::CorpusOptions parallel_options = options;
  parallel_options.threads = bench::bench_threads() > 1 ? bench::bench_threads() : 4;
  const BuildResult warm_parallel = time_build(cases, parallel_options, reps);

  const std::uint64_t reference = sd::corpus_fingerprint(uncached.corpus);
  auto fingerprint_row = [&](const BuildResult& r) {
    return sd::corpus_fingerprint(r.corpus) == reference ? "yes" : "NO";
  };

  su::Table table({"build", "seconds", "speedup", "hit rate", "identical"});
  auto add = [&](const char* name, const BuildResult& r, bool cached) {
    table.add_row({name, su::fmt(r.seconds, 4),
                   su::fmt(uncached.seconds / r.seconds, 2) + "x",
                   cached ? su::fmt(r.hit_rate() * 100.0, 1) + "%" : "-",
                   fingerprint_row(r)});
  };
  add("no cache", uncached, false);
  add("cold", cold, true);
  add("warm serial", warm, true);
  add(("warm x" + std::to_string(parallel_options.threads)).c_str(),
      warm_parallel, true);
  std::printf("%s", table.to_string().c_str());
  std::printf("\n%zu samples, fingerprint %s\n", uncached.corpus.samples.size(),
              su::hex64(reference).c_str());

  bool ok = true;
  for (const BuildResult* r : {&cold, &warm, &warm_parallel}) {
    if (sd::corpus_fingerprint(r->corpus) != reference) {
      std::printf("FAIL: cached corpus fingerprint differs from uncached build\n");
      ok = false;
      break;
    }
  }
  if (warm.hit_rate() < 1.0 || warm_parallel.hit_rate() < 1.0) {
    std::printf("FAIL: warm build missed the cache (hit rate %.1f%% / %.1f%%)\n",
                warm.hit_rate() * 100.0, warm_parallel.hit_rate() * 100.0);
    ok = false;
  }
  if (expect_prepopulated && cold.hit_rate() < 1.0) {
    std::printf("FAIL: --expect-prepopulated but first build hit rate was %.1f%%\n",
                cold.hit_rate() * 100.0);
    ok = false;
  }

  if (!json_path.empty()) {
    sum::gauge_set("bench.cases", static_cast<double>(cases.size()));
    sum::gauge_set("bench.samples",
                   static_cast<double>(uncached.corpus.samples.size()));
    sum::gauge_set("bench.pairs_per_category",
                   static_cast<double>(config.pairs_per_category));
    sum::gauge_set("bench.no_cache_seconds", uncached.seconds);
    sum::gauge_set("bench.cold_seconds", cold.seconds);
    sum::gauge_set("bench.warm_seconds", warm.seconds);
    sum::gauge_set("bench.warm_parallel_seconds", warm_parallel.seconds);
    sum::gauge_set("bench.warm_parallel_threads",
                   static_cast<double>(parallel_options.threads));
    sum::gauge_set("bench.warm_speedup_vs_no_cache",
                   uncached.seconds / warm.seconds);
    sum::gauge_set("bench.cold_hit_rate", cold.hit_rate());
    sum::gauge_set("bench.warm_hit_rate", warm.hit_rate());
    sum::label_set("corpus.fingerprint", su::hex64(reference));
    sum::label_set("bench.all_identical", ok ? "true" : "false");
    sum::write_json(json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (throwaway_dir) {
    std::error_code ec;
    fs::remove_all(cache_dir, ec);
  }
  if (!ok) return 1;
  std::printf("cold, warm, and warm-parallel corpora all fingerprint-identical\n");
  return 0;
}
