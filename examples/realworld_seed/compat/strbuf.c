/* Compatibility shims in a subdirectory: exercises recursive tree
 * walking and a quote-include resolved against the scan root rather
 * than the including file's directory. */
#include <string.h>

#include "minibuf.h"

size_t compat_strlcpy(char *dst, const char *src, size_t size) {
  size_t n = strlen(src);
  if (size != 0) {
    size_t take = n < size - 1 ? n : size - 1;
    memcpy(dst, src, take);
    dst[take] = '\0';
  }
  return n;
}

int compat_join(char *dst, const char *a, const char *b) {
  strcpy(dst, a);
  strcat(dst, b);
  return (int)strlen(dst);
}
