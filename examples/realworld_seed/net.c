/* Packet framing with a platform #if the evaluator cannot decide (the
 * defined() conjunction references macros the tree never defines): the
 * region must be kept, counted as an unresolved conditional, and the
 * code inside still scanned. */
#include <string.h>

#include "minibuf.h"

#define FRAME_HEADER 4

#if defined(MINIBUF_WIN32) && MINIBUF_WINVER >= 0x0601
typedef unsigned long frame_size_t;
#else
typedef unsigned int frame_size_t;
#endif

int net_frame_payload(minibuf *out, const char *packet, frame_size_t n) {
  char header[FRAME_HEADER];
  if (n < FRAME_HEADER) {
    return -1;
  }
  memcpy(header, packet, FRAME_HEADER);
  if (header[0] != 'M' || header[1] != 'B') {
    return -2;
  }
  return mb_append(out, packet + FRAME_HEADER, n - FRAME_HEADER);
}

int net_describe(char *dst, const char *peer) {
  /* No bound on peer: the scanner should flag this line. */
  strcpy(dst, peer);
  return (int)strlen(dst);
}
