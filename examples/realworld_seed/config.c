/* Configuration loader: classic strcpy-into-fixed-buffer sink behind a
 * conditional region. The "platform_tuning.h" include does not exist in
 * the tree — the preprocessor must count it unresolved and keep going. */
#include <string.h>
#include <stdlib.h>

#include "minibuf.h"
#include "platform_tuning.h"

#define ENV_KEY "MINIBUF_PROFILE"

static char profile_name[32];

int config_load_profile(const char *override) {
  const char *chosen = override;
  if (chosen == 0) {
    chosen = getenv(ENV_KEY);
  }
  if (chosen == 0) {
    chosen = "default";
  }
  strcpy(profile_name, chosen);
  return (int)strlen(profile_name);
}

const char *config_profile(void) {
#ifdef MINIBUF_TRACE
  return "traced";
#else
  return profile_name;
#endif
}
