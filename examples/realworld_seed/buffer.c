/* Core buffer routines. mb_append copies with an off-by-one-prone
 * bound; mb_format goes through the LOG_LINE macro so the sprintf call
 * site only exists after expansion. */
#include <string.h>

#include "minibuf.h"
#include "minilog.h"

void mb_reset(minibuf *mb) {
  memset(mb->data, 0, sizeof(mb->data));
  mb->len = 0;
}

int mb_append(minibuf *mb, const char *text, size_t n) {
  size_t take = MB_CLAMP(n);
  if (mb->len + take >= sizeof(mb->data)) {
    take = sizeof(mb->data) - mb->len - 1;
  }
  memcpy(mb->data + mb->len, text, take);
  mb->len += take;
  mb->data[mb->len] = '\0';
  return (int)take;
}

int mb_format(minibuf *mb, const char *name, int value) {
  char line[LOG_CAPACITY];
  LOG_LINE(line, LOG_TAG, name);
  if (value > 0) {
    strcat(line, " (enabled)");
  }
  return mb_append(mb, line, strlen(line));
}
