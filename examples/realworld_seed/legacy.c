/* Pre-ANSI code the C-subset parser cannot represent: the K&R
 * definition below is unparseable, so the recovery path must drop only
 * this region, count the lost lines, and still surface the strcpy
 * inside it through the lex-fallback gadget path. */
#include <string.h>

int legacy_checksum(const char *p, unsigned n) {
  unsigned sum = 0;
  while (n--) {
    sum = sum * 31u + (unsigned char)*p++;
  }
  return (int)sum;
}

int legacy_copy(dst, src)
char *dst;
char *src;
{
  strcpy(dst, src);
  return legacy_checksum(dst, (unsigned)strlen(dst));
}

int legacy_sum_pair(const char *a, const char *b) {
  return legacy_checksum(a, (unsigned)strlen(a)) +
         legacy_checksum(b, (unsigned)strlen(b));
}
