/* Fixed-capacity byte buffer used across the seed tree. The header is
 * deliberately macro-heavy: the scan frontend's preprocessor has to
 * expand MB_MIN/MB_CLAMP call sites and evaluate the include guard. */
#ifndef MINIBUF_H
#define MINIBUF_H

#include <stddef.h>

#define MINIBUF_VERSION 2
#define MINIBUF_MAX 256

#define MB_MIN(a, b) ((a) < (b) ? (a) : (b))
#define MB_CLAMP(n) \
  MB_MIN((n), (size_t)MINIBUF_MAX - 1)

typedef struct minibuf {
  char data[MINIBUF_MAX];
  size_t len;
} minibuf;

int mb_append(minibuf *mb, const char *text, size_t n);
int mb_format(minibuf *mb, const char *name, int value);
void mb_reset(minibuf *mb);

#endif /* MINIBUF_H */
