/* Report rendering: sprintf/strcat sinks with attacker-adjacent input,
 * plus a multi-line macro (backslash continuations inside a directive)
 * the lexer must splice before the preprocessor sees it. */
#include <stdio.h>
#include <string.h>

#include "minibuf.h"

#define REPORT_ROW(buf, label, count) \
  sprintf((buf) + strlen(buf),        \
          "%s=%d;", (label), (count))

int report_render(char *out, const char *title, int hits, int misses) {
  char row[96];
  sprintf(out, "report: %s\n", title);
  row[0] = '\0';
  REPORT_ROW(row, "hits", hits);
  REPORT_ROW(row, "misses", misses);
  strcat(out, row);
  return (int)strlen(out);
}

int report_total(int hits, int misses) {
  return hits + misses;
}
