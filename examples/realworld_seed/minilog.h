/* Logging shim. LOG_LINE is a function-like macro wrapping sprintf into
 * a stack buffer — expanded at call sites, the risky call must still be
 * attributed to the caller's line. */
#ifndef MINILOG_H
#define MINILOG_H

#include <stdio.h>

#define LOG_CAPACITY 128
#define LOG_LINE(buf, tag, msg) sprintf((buf), "[%s] %s", (tag), (msg))

#if MINIBUF_VERSION >= 2
#define LOG_TAG "minibuf2"
#else
#define LOG_TAG "minibuf"
#endif

#endif /* MINILOG_H */
