/* Clean helpers: no preprocessor tricks, no parse hazards, no risky
 * sinks. This file pins the frontend's false-positive floor — a scan
 * that drops or flags anything here is regressing. */
#include "minibuf.h"

size_t util_span_digits(const char *s) {
  size_t i = 0;
  while (s[i] >= '0' && s[i] <= '9') {
    ++i;
  }
  return i;
}

int util_parse_uint(const char *s, unsigned *out) {
  unsigned value = 0;
  size_t digits = util_span_digits(s);
  size_t i;
  if (digits == 0 || digits > 9) {
    return -1;
  }
  for (i = 0; i < digits; ++i) {
    value = value * 10u + (unsigned)(s[i] - '0');
  }
  *out = value;
  return 0;
}
