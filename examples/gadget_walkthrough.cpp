// Fig. 3 walkthrough: every intermediate artifact on the way from source
// to a path-sensitive code gadget — the PDG (Step I.1), the special
// tokens (Step I.2), the forward+backward slice (Step I.3), the key
// nodes and bound control ranges, and the final gadget (Step I.4).
//
//   ./build/examples/gadget_walkthrough
#include <cstdio>

#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/slicer/control_ranges.hpp"
#include "sevuldet/slicer/gadget.hpp"
#include "sevuldet/slicer/slice.hpp"

using namespace sevuldet;

namespace {

// Shaped like the paper's Fig. 3 sample (if / else-if / else chain with
// the criterion inside the else block).
const char* kProgram = R"(void handle(char *data, int n) {
  char dest[100];
  int len = (int)strlen(data);
  if (n < 0) {
    report(n);
  } else if (n > 100) {
    n = 100;
    report(n);
  } else {
    strncpy(dest, data, n);
  }
  printf("%s %d", dest, len);
})";

}  // namespace

int main() {
  std::printf("== source ==\n%s\n", kProgram);
  graph::ProgramGraph program = graph::build_program_graph(kProgram);
  const graph::FunctionPdg& pdg = program.functions[0];

  std::printf("\n== Step I.1: PDG nodes (statement units) ==\n");
  for (const auto& unit : pdg.units) {
    std::printf("  node %-2d line %-3d [%-8s] %s\n", unit.id, unit.line,
                graph::unit_kind_name(unit.kind), unit.text.c_str());
  }
  std::printf("\n   data-dependence edges:\n");
  for (const auto& edge : pdg.data.edges) {
    std::printf("    %d -> %d  (via %s)\n", edge.from, edge.to, edge.var.c_str());
  }
  std::printf("   control-dependence edges:\n");
  for (const auto& unit : pdg.units) {
    for (int dep : pdg.control.deps[static_cast<std::size_t>(unit.id)]) {
      std::printf("    %d -> %d\n", dep, unit.id);
    }
  }

  std::printf("\n== Step I.2: special tokens ==\n");
  slicer::SpecialToken criterion;
  for (const auto& token : slicer::find_special_tokens(program)) {
    std::printf("  line %-3d %-2s  %s\n", token.line,
                slicer::category_name(token.category), token.text.c_str());
    if (token.text == "strncpy") criterion = token;
  }

  std::printf("\n== Step I.3: forward + backward slice of strncpy ==\n");
  slicer::Slice slice =
      slicer::compute_slice(program, criterion.function, criterion.unit);
  for (const auto& [fn, units] : slice.units_by_fn) {
    for (int id : units) {
      std::printf("  %s: line %d  %s\n", fn.c_str(),
                  pdg.units[static_cast<std::size_t>(id)].line,
                  pdg.units[static_cast<std::size_t>(id)].text.c_str());
    }
  }

  std::printf("\n== Step I.4: key nodes and bound control ranges ==\n");
  for (const auto& range :
       slicer::compute_control_ranges(*pdg.fn, program.source_lines)) {
    std::printf("  %-8s key line %-3d range [%d, %d]  group %d\n",
                slicer::range_kind_name(range.kind), range.key_line,
                range.begin_line, range.end_line, range.group);
  }

  std::printf("\n== final path-sensitive code gadget ('+' = inserted) ==\n");
  slicer::CodeGadget gadget = slicer::generate_gadget(program, criterion);
  for (const auto& line : gadget.lines) {
    std::printf("  %3d %s %s\n", line.line, line.is_boundary ? "+" : " ",
                line.text.c_str());
  }
  return 0;
}
