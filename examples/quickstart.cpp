// Quickstart: train SEVulDet on a synthetic SARD-like corpus, then run
// the detection phase on an unlabeled vulnerable program and print the
// findings with their attention explanations.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/dataset/sard_generator.hpp"

using namespace sevuldet;

int main() {
  // 1. A labeled training corpus (stand-in for SARD; see DESIGN.md).
  dataset::SardConfig corpus_config;
  corpus_config.pairs_per_category = 40;
  corpus_config.seed = 1;
  std::vector<dataset::TestCase> programs =
      dataset::generate_sard_like(corpus_config);
  std::printf("generated %zu labeled programs\n", programs.size());

  // 2. Configure and train the pipeline (Steps I-V of the paper).
  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  config.train.epochs = 4;
  config.train.lr = 0.002f;
  config.train.verbose = true;

  core::SeVulDet detector(config);
  core::TrainResult result = detector.train(programs);
  std::printf("trained on %zu gadgets in %.1fs (final loss %.4f)\n",
              result.samples, result.seconds, result.epoch_losses.back());

  // 3. Detection phase on a new, unlabeled program.
  const char* suspicious = R"(void parse_packet(char *payload) {
  char header[64];
  int length = (int)strlen(payload);
  strcpy(header, payload);
  header[0] = (char)length;
  printf("%s", header);
})";
  std::printf("\nscanning program:\n%s\n", suspicious);

  std::vector<core::Finding> findings = detector.detect(suspicious);
  if (findings.empty()) {
    std::printf("no findings above threshold %.2f\n", config.model.threshold);
    return 0;
  }
  for (const auto& finding : findings) {
    std::printf("FINDING: %s() line %d  token '%s' (%s)  p=%.3f\n",
                finding.function.c_str(), finding.line, finding.token.c_str(),
                slicer::category_name(finding.category), finding.probability);
    std::printf("  top attention tokens:");
    for (const auto& [token, weight] : finding.top_tokens) {
      std::printf(" %s(%.0f%%)", token.c_str(), weight * 100.0f);
    }
    std::printf("\n");
  }
  return 0;
}
