// Real-world scan: train SEVulDet on the SARD-like corpus, then scan the
// Xen-like device-emulator corpus. Reports which of the three planted
// CVE-shaped bugs (Table VII) the detector finds, compares against an
// AFL-like fuzzing run on the same programs, and prints the Fig. 6-style
// attention visualization for the CVE-2016-9776-like gadget.
//
//   ./build/examples/realworld_scan
#include <cstdio>

#include "sevuldet/baselines/fuzzer.hpp"
#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/dataset/realworld.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/parser.hpp"

using namespace sevuldet;

int main() {
  // Train on the synthetic SARD-like corpus plus a small NVD-like slice
  // of device-flavored pairs (differently seeded than the evaluation
  // corpus) — the paper also trains on merged SARD + NVD.
  dataset::SardConfig sard;
  sard.pairs_per_category = 60;
  auto cases = dataset::generate_sard_like(sard);
  dataset::RealWorldConfig nvd;
  nvd.variant_pairs = 1;
  nvd.clean_functions = 24;
  nvd.seed = 999;
  for (auto& tc : dataset::generate_realworld(nvd).cases) {
    cases.push_back(std::move(tc));
  }

  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  config.train.epochs = 6;
  config.train.lr = 0.002f;
  core::SeVulDet detector(config);
  std::printf("training on SARD-like + NVD-like corpus...\n");
  core::TrainResult trained = detector.train(cases);
  std::printf("trained on %zu gadgets in %.1fs\n\n", trained.samples,
              trained.seconds);

  // Scan the Xen-like corpus.
  dataset::RealWorldCorpus realworld = dataset::generate_realworld({});
  for (const auto& bug : realworld.planted) {
    std::printf("== planted %s (%s, %s) ==\n", bug.cve.c_str(),
                bug.name.c_str(), bug.file.c_str());

    // SEVulDet detection phase.
    auto findings = detector.detect(bug.testcase.source);
    bool hit = false;
    for (const auto& finding : findings) {
      if (bug.testcase.vulnerable_lines.contains(finding.line)) hit = true;
    }
    std::printf("  SEVulDet: %zu finding(s)%s\n", findings.size(),
                hit ? " — flagged the planted line" : "");
    if (!findings.empty() && bug.cve == "CVE-2016-9776") {
      std::printf("  Fig.6-style attention (top tokens of first finding):\n   ");
      for (const auto& [token, weight] : findings[0].top_tokens) {
        std::printf(" %s(%.0f%%)", token.c_str(), weight * 100.0f);
      }
      std::printf("\n");
    }

    // AFL-like fuzzing on the same program.
    auto unit = frontend::parse(bug.testcase.source);
    baselines::FuzzConfig fuzz;
    fuzz.executions = 20000;
    fuzz.step_limit = 100000;
    auto report = baselines::fuzz_program(unit, fuzz);
    if (report.found) {
      std::printf("  AFL-like: %s after %d execs (fault line %d)\n",
                  interp::outcome_name(report.outcome), report.executions_used,
                  report.fault_line);
    } else {
      std::printf("  AFL-like: nothing within %d execs (%zu coverage edges)\n",
                  fuzz.executions, report.coverage_edges);
    }
    std::printf("\n");
  }
  return 0;
}
