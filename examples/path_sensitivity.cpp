// The paper's motivating example (Fig. 1): a correct and a vulnerable
// program whose dependence-only code gadgets are IDENTICAL, so any
// classifier is stuck at 50% accuracy on the pair — and how the
// path-sensitive gadget (Algorithm 1) resolves the ambiguity by
// preserving control-range boundary lines.
//
//   ./build/examples/path_sensitivity
#include <cstdio>

#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/slicer/gadget.hpp"

using namespace sevuldet;

namespace {

const char* kGood = R"(void copy_data(char *data, int n) {
  char dest[100];
  if (n < 100) {
    strncpy(dest, data, n);
  } else {
    report(n);
  }
})";

const char* kBad = R"(void copy_data(char *data, int n) {
  char dest[100];
  if (n < 100) {
    report(n);
  } else {
    strncpy(dest, data, n);
  }
})";

slicer::CodeGadget gadget_for_strncpy(const graph::ProgramGraph& program,
                                      bool path_sensitive) {
  for (const auto& token : slicer::find_special_tokens(program)) {
    if (token.category == slicer::TokenCategory::FunctionCall &&
        token.text == "strncpy") {
      slicer::GadgetOptions options;
      options.path_sensitive = path_sensitive;
      return slicer::generate_gadget(program, token, options);
    }
  }
  return {};
}

void print_gadget(const char* title, const slicer::CodeGadget& gadget) {
  std::printf("%s\n", title);
  for (const auto& line : gadget.lines) {
    std::printf("  %3d %s %s\n", line.line, line.is_boundary ? "+" : " ",
                line.text.c_str());
  }
}

}  // namespace

int main() {
  std::printf("== correct program ==\n%s\n", kGood);
  std::printf("== vulnerable program ==\n%s\n", kBad);

  graph::ProgramGraph good = graph::build_program_graph(kGood);
  graph::ProgramGraph bad = graph::build_program_graph(kBad);

  // Step III of Fig. 1: plain code gadgets (data + control dependence).
  auto good_cg = gadget_for_strncpy(good, /*path_sensitive=*/false);
  auto bad_cg = gadget_for_strncpy(bad, /*path_sensitive=*/false);
  print_gadget("\n-- plain code gadget (correct program) --", good_cg);
  print_gadget("-- plain code gadget (vulnerable program) --", bad_cg);

  auto norm_good = normalize::normalize_text(good_cg.text()).text();
  auto norm_bad = normalize::normalize_text(bad_cg.text()).text();
  std::printf("\nnormalized plain gadgets identical: %s\n",
              norm_good == norm_bad ? "YES (the Fig. 1 problem)" : "no");

  // Algorithm 1: path-sensitive gadgets ('+' marks inserted boundaries).
  auto good_ps = gadget_for_strncpy(good, /*path_sensitive=*/true);
  auto bad_ps = gadget_for_strncpy(bad, /*path_sensitive=*/true);
  print_gadget("\n-- path-sensitive gadget (correct program) --", good_ps);
  print_gadget("-- path-sensitive gadget (vulnerable program) --", bad_ps);

  auto ps_good = normalize::normalize_text(good_ps.text()).text();
  auto ps_bad = normalize::normalize_text(bad_ps.text()).text();
  std::printf("\nnormalized path-sensitive gadgets identical: %s\n",
              ps_good == ps_bad ? "yes" : "NO (ambiguity resolved)");
  return ps_good == ps_bad ? 1 : 0;
}
