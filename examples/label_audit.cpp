// Step II label auditing (the paper: heuristic labels are sometimes
// wrong; k-fold cross-validation narrows the manual-check range). This
// example injects label noise into a corpus, runs the k-fold audit, and
// prints the review list a human would inspect.
//
//   ./build/examples/label_audit
#include <cstdio>

#include "sevuldet/core/relabel.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/models/sevuldet_net.hpp"

using namespace sevuldet;

int main() {
  dataset::SardConfig gen_config;
  gen_config.pairs_per_category = 25;
  gen_config.ambiguous_fraction = 0.0;  // auditing wants learnable samples
  gen_config.long_fraction = 0.0;
  auto corpus = dataset::build_corpus(dataset::generate_sard_like(gen_config));
  dataset::encode_corpus(corpus);
  std::printf("corpus: %zu gadgets (%lld flagged)\n", corpus.samples.size(),
              corpus.stats.vulnerable());

  // Inject label noise: flip some clean gadgets to "vulnerable" — the
  // kind of mistake Step II's heuristic labeling makes.
  std::vector<std::size_t> flipped;
  for (std::size_t i = 0; i < corpus.samples.size() && flipped.size() < 12;
       i += 131) {
    if (corpus.samples[i].label == 0) {
      corpus.samples[i].label = 1;
      flipped.push_back(i);
    }
  }
  std::printf("injected %zu wrong labels\n\n", flipped.size());

  core::RelabelConfig audit;
  audit.folds = 5;
  audit.confidence = 0.85f;
  audit.train.epochs = 5;
  audit.train.lr = 0.002f;
  auto factory = [](int vocab_size) -> std::unique_ptr<models::Detector> {
    models::ModelConfig config;
    config.vocab_size = vocab_size;
    config.embed_dim = 16;
    config.conv_channels = 12;
    config.attn_dim = 12;
    config.dense1 = 32;
    config.dense2 = 16;
    return std::make_unique<models::SeVulDetNet>(config);
  };

  std::printf("running %d-fold audit...\n", audit.folds);
  auto suspects = core::find_suspect_labels(corpus, factory, audit);

  std::size_t caught = 0;
  std::printf("\nreview list (%zu entries):\n", suspects.size());
  for (const auto& suspect : suspects) {
    const bool was_injected =
        std::find(flipped.begin(), flipped.end(), suspect.sample_index) !=
        flipped.end();
    if (was_injected) ++caught;
    std::printf("  gadget #%zu  label=%d  model p=%.3f  %s%s\n",
                suspect.sample_index, suspect.label, suspect.probability,
                corpus.samples[suspect.sample_index].case_id.c_str(),
                was_injected ? "  <-- injected noise" : "");
  }
  std::printf("\ncaught %zu of %zu injected flips; review list is %.1f%% of "
              "the corpus (the paper's 'narrowed check range').\n",
              caught, flipped.size(),
              100.0 * static_cast<double>(suspects.size()) /
                  static_cast<double>(corpus.samples.size()));
  return 0;
}
