#include <gtest/gtest.h>

#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/cfg.hpp"
#include "sevuldet/graph/stmt_units.hpp"

namespace sf = sevuldet::frontend;
namespace sg = sevuldet::graph;

namespace {

struct Built {
  sf::TranslationUnit unit;
  std::vector<sg::StmtUnit> units;
  sg::Cfg cfg;
};

Built build(const char* src) {
  Built b;
  b.unit = sf::parse(src);
  b.units = sg::flatten_function(b.unit.functions[0]);
  b.cfg = sg::build_cfg(b.unit.functions[0], b.units);
  return b;
}

int unit_by_text(const Built& b, std::string_view text) {
  for (const auto& u : b.units) {
    if (u.text == text) return u.id;
  }
  return -1;
}

}  // namespace

TEST(Flatten, StraightLine) {
  auto b = build("void f() { int a = 1; int c = a + 1; return; }");
  ASSERT_EQ(b.units.size(), 3u);
  EXPECT_EQ(b.units[0].kind, sg::UnitKind::Decl);
  EXPECT_EQ(b.units[2].kind, sg::UnitKind::Return);
}

TEST(Flatten, IfProducesPredicateUnit) {
  auto b = build("void f(int n) { if (n > 0) { n = 1; } else { n = 2; } }");
  ASSERT_EQ(b.units.size(), 3u);
  EXPECT_EQ(b.units[0].kind, sg::UnitKind::IfPred);
  EXPECT_TRUE(sg::is_control_predicate(b.units[0].kind));
  EXPECT_FALSE(sg::is_control_predicate(b.units[1].kind));
}

TEST(Flatten, ForProducesInitAndPred) {
  auto b = build("void f(int n) { for (int i = 0; i < n; i++) { n--; } }");
  ASSERT_EQ(b.units.size(), 3u);
  EXPECT_EQ(b.units[0].kind, sg::UnitKind::ForInit);
  EXPECT_EQ(b.units[1].kind, sg::UnitKind::ForPred);
}

TEST(Flatten, DoWhilePredAfterBody) {
  auto b = build("void f(int n) { do { n--; } while (n > 0); }");
  ASSERT_EQ(b.units.size(), 2u);
  EXPECT_EQ(b.units[0].kind, sg::UnitKind::Expr);
  EXPECT_EQ(b.units[1].kind, sg::UnitKind::DoWhilePred);
}

TEST(Cfg, StraightLineChain) {
  auto b = build("void f() { int a = 1; int c = a + 1; }");
  EXPECT_TRUE(b.cfg.has_edge(b.cfg.entry(), 0));
  EXPECT_TRUE(b.cfg.has_edge(0, 1));
  EXPECT_TRUE(b.cfg.has_edge(1, b.cfg.exit()));
}

TEST(Cfg, IfBranchesAndJoins) {
  auto b = build("void f(int n) { if (n > 0) { n = 1; } n = 2; }");
  int pred = unit_by_text(b, "if (n > 0)");
  int then_s = unit_by_text(b, "n = 1");
  int after = unit_by_text(b, "n = 2");
  EXPECT_TRUE(b.cfg.has_edge(pred, then_s));
  EXPECT_TRUE(b.cfg.has_edge(pred, after));   // false edge
  EXPECT_TRUE(b.cfg.has_edge(then_s, after)); // join
}

TEST(Cfg, IfElse) {
  auto b = build("void f(int n) { if (n) { n = 1; } else { n = 2; } n = 3; }");
  int pred = unit_by_text(b, "if (n)");
  EXPECT_TRUE(b.cfg.has_edge(pred, unit_by_text(b, "n = 1")));
  EXPECT_TRUE(b.cfg.has_edge(pred, unit_by_text(b, "n = 2")));
  EXPECT_FALSE(b.cfg.has_edge(pred, unit_by_text(b, "n = 3")));
  EXPECT_TRUE(b.cfg.has_edge(unit_by_text(b, "n = 1"), unit_by_text(b, "n = 3")));
  EXPECT_TRUE(b.cfg.has_edge(unit_by_text(b, "n = 2"), unit_by_text(b, "n = 3")));
}

TEST(Cfg, WhileLoop) {
  auto b = build("void f(int n) { while (n > 0) { n--; } n = 5; }");
  int pred = unit_by_text(b, "while (n > 0)");
  int body = unit_by_text(b, "n--");
  int after = unit_by_text(b, "n = 5");
  EXPECT_TRUE(b.cfg.has_edge(pred, body));
  EXPECT_TRUE(b.cfg.has_edge(body, pred));  // back edge
  EXPECT_TRUE(b.cfg.has_edge(pred, after));
}

TEST(Cfg, ForLoop) {
  auto b = build("void f(int n) { for (int i = 0; i < n; i++) { n += i; } }");
  int init = unit_by_text(b, "int i = 0");
  int pred = 1;  // ForPred
  int body = unit_by_text(b, "n += i");
  EXPECT_TRUE(b.cfg.has_edge(init, pred));
  EXPECT_TRUE(b.cfg.has_edge(pred, body));
  EXPECT_TRUE(b.cfg.has_edge(body, pred));
  EXPECT_TRUE(b.cfg.has_edge(pred, b.cfg.exit()));
}

TEST(Cfg, DoWhileExecutesBodyFirst) {
  auto b = build("void f(int n) { do { n--; } while (n > 0); }");
  int body = unit_by_text(b, "n--");
  int pred = unit_by_text(b, "do ... while (n > 0)");
  EXPECT_TRUE(b.cfg.has_edge(b.cfg.entry(), body));
  EXPECT_TRUE(b.cfg.has_edge(body, pred));
  EXPECT_TRUE(b.cfg.has_edge(pred, body));  // loop back
  EXPECT_TRUE(b.cfg.has_edge(pred, b.cfg.exit()));
}

TEST(Cfg, BreakExitsLoop) {
  auto b = build(R"(void f(int n) {
    while (n > 0) {
      if (n == 3) break;
      n--;
    }
    n = 9;
  })");
  int brk = unit_by_text(b, "break");
  int after = unit_by_text(b, "n = 9");
  EXPECT_TRUE(b.cfg.has_edge(brk, after));
}

TEST(Cfg, ContinueReturnsToPredicate) {
  auto b = build(R"(void f(int n) {
    while (n > 0) {
      if (n == 3) continue;
      n--;
    }
  })");
  int cont = unit_by_text(b, "continue");
  int pred = unit_by_text(b, "while (n > 0)");
  EXPECT_TRUE(b.cfg.has_edge(cont, pred));
}

TEST(Cfg, ReturnGoesToExit) {
  auto b = build("void f(int n) { if (n) return; n = 1; }");
  int ret = unit_by_text(b, "return");
  EXPECT_TRUE(b.cfg.has_edge(ret, b.cfg.exit()));
  EXPECT_FALSE(b.cfg.has_edge(ret, unit_by_text(b, "n = 1")));
}

TEST(Cfg, SwitchWithFallthroughAndDefault) {
  auto b = build(R"(void f(int m, int x) {
    switch (m) {
      case 1:
        x = 1;
      case 2:
        x = 2;
        break;
      default:
        x = 0;
    }
    x = 9;
  })");
  int pred = unit_by_text(b, "switch (m)");
  int c1 = unit_by_text(b, "case 1:");
  int c2 = unit_by_text(b, "case 2:");
  int cd = unit_by_text(b, "default:");
  int x1 = unit_by_text(b, "x = 1");
  int x2 = unit_by_text(b, "x = 2");
  int after = unit_by_text(b, "x = 9");
  EXPECT_TRUE(b.cfg.has_edge(pred, c1));
  EXPECT_TRUE(b.cfg.has_edge(pred, c2));
  EXPECT_TRUE(b.cfg.has_edge(pred, cd));
  EXPECT_TRUE(b.cfg.has_edge(c1, x1));
  EXPECT_TRUE(b.cfg.has_edge(x1, c2));  // fall through
  int brk = unit_by_text(b, "break");
  EXPECT_TRUE(b.cfg.has_edge(x2, brk));
  EXPECT_TRUE(b.cfg.has_edge(brk, after));
  // With a default, the switch predicate has no direct edge to `after`.
  EXPECT_FALSE(b.cfg.has_edge(pred, after));
}

TEST(Cfg, GotoJumpsToLabel) {
  auto b = build(R"(void f(int x) {
    if (x < 0) goto fail;
    x = x + 1;
  fail:
    x = 0;
  })");
  int gt = unit_by_text(b, "goto fail");
  int label = unit_by_text(b, "fail:");
  EXPECT_TRUE(b.cfg.has_edge(gt, label));
  EXPECT_FALSE(b.cfg.has_edge(gt, unit_by_text(b, "x = x + 1")));
}

TEST(Cfg, InfiniteLoopStillReachesExit) {
  auto b = build("void f(int n) { for (;;) { n++; } }");
  // Synthetic closure: some node links to exit so post-dominance works.
  bool exit_reachable = false;
  for (int n = 0; n < b.cfg.num_nodes(); ++n) {
    if (b.cfg.has_edge(n, b.cfg.exit())) exit_reachable = true;
  }
  EXPECT_TRUE(exit_reachable);
}

TEST(Cfg, DotOutputContainsNodes) {
  auto b = build("void f(int n) { if (n) n = 1; }");
  std::string dot = sg::cfg_to_dot(b.cfg, b.units);
  EXPECT_NE(dot.find("digraph cfg"), std::string::npos);
  EXPECT_NE(dot.find("if (n)"), std::string::npos);
  EXPECT_NE(dot.find("entry ->"), std::string::npos);
}
