#include <gtest/gtest.h>

#include <algorithm>

#include "sevuldet/graph/dominance.hpp"
#include "sevuldet/graph/pdg.hpp"

namespace sg = sevuldet::graph;

namespace {

int unit_by_text(const sg::FunctionPdg& pdg, std::string_view text) {
  for (const auto& u : pdg.units) {
    if (u.text == text) return u.id;
  }
  return -1;
}

bool has_data_dep(const sg::FunctionPdg& pdg, int from, int to) {
  const auto& d = pdg.data.deps[static_cast<std::size_t>(to)];
  return std::find(d.begin(), d.end(), from) != d.end();
}

bool has_control_dep(const sg::FunctionPdg& pdg, int on, int node) {
  const auto& d = pdg.control.deps[static_cast<std::size_t>(node)];
  return std::find(d.begin(), d.end(), on) != d.end();
}

}  // namespace

TEST(Dominance, LinearChain) {
  auto graph = sg::build_program_graph("void f() { int a = 1; int c = a; int d = c; }");
  const auto& pdg = graph.functions[0];
  auto dom = sg::compute_dominators(pdg.cfg);
  EXPECT_TRUE(dom.dominates(0, 2));
  EXPECT_TRUE(dom.dominates(pdg.cfg.entry(), 0));
  EXPECT_FALSE(dom.dominates(2, 0));
}

TEST(Dominance, PostDominators) {
  auto graph = sg::build_program_graph(
      "void f(int n) { if (n) { n = 1; } else { n = 2; } n = 3; }");
  const auto& pdg = graph.functions[0];
  auto pdom = sg::compute_post_dominators(pdg.cfg);
  int join = unit_by_text(pdg, "n = 3");
  int pred = unit_by_text(pdg, "if (n)");
  int then_s = unit_by_text(pdg, "n = 1");
  EXPECT_TRUE(pdom.dominates(join, pred));
  EXPECT_TRUE(pdom.dominates(join, then_s));
  EXPECT_FALSE(pdom.dominates(then_s, pred));
}

TEST(DataDeps, DefUseChain) {
  auto graph = sg::build_program_graph(
      "void f() { int a = 1; int b = a + 2; int c = b; }");
  const auto& pdg = graph.functions[0];
  EXPECT_TRUE(has_data_dep(pdg, 0, 1));
  EXPECT_TRUE(has_data_dep(pdg, 1, 2));
  EXPECT_FALSE(has_data_dep(pdg, 0, 2));  // a not used by c = b
}

TEST(DataDeps, KillStopsReach) {
  auto graph = sg::build_program_graph(
      "void f() { int a = 1; a = 2; int b = a; }");
  const auto& pdg = graph.functions[0];
  EXPECT_TRUE(has_data_dep(pdg, 1, 2));
  EXPECT_FALSE(has_data_dep(pdg, 0, 2));  // first def killed by a = 2
}

TEST(DataDeps, BranchesMergeBothDefsReach) {
  auto graph = sg::build_program_graph(
      "void f(int n) { int a = 0; if (n) { a = 1; } int b = a; }");
  const auto& pdg = graph.functions[0];
  int d0 = unit_by_text(pdg, "int a = 0");
  int d1 = unit_by_text(pdg, "a = 1");
  int use = unit_by_text(pdg, "int b = a");
  EXPECT_TRUE(has_data_dep(pdg, d0, use));  // reaches via the false edge
  EXPECT_TRUE(has_data_dep(pdg, d1, use));
}

TEST(DataDeps, LoopCarriedDependence) {
  auto graph = sg::build_program_graph(
      "void f(int n) { int s = 0; while (n > 0) { s = s + n; n--; } int r = s; }");
  const auto& pdg = graph.functions[0];
  int acc = unit_by_text(pdg, "s = s + n");
  int use = unit_by_text(pdg, "int r = s");
  EXPECT_TRUE(has_data_dep(pdg, acc, use));
  // Loop-carried: the accumulator depends on its own previous iteration —
  // self edges are intentionally dropped, but the n-- def feeds back.
  int dec = unit_by_text(pdg, "n--");
  int pred = unit_by_text(pdg, "while (n > 0)");
  EXPECT_TRUE(has_data_dep(pdg, dec, pred));
  EXPECT_TRUE(has_data_dep(pdg, dec, acc));
}

TEST(DataDeps, LibraryOutParamCreatesDef) {
  auto graph = sg::build_program_graph(R"(
void f(char *src) {
  char dest[100];
  strncpy(dest, src, 10);
  int len = strlen(dest);
}
)");
  const auto& pdg = graph.functions[0];
  int copy = unit_by_text(pdg, "strncpy(dest, src, 10)");
  int use = unit_by_text(pdg, "int len = strlen(dest)");
  EXPECT_TRUE(has_data_dep(pdg, copy, use));
}

TEST(ControlDeps, ThenBranchDependsOnIf) {
  auto graph = sg::build_program_graph(
      "void f(int n) { if (n > 0) { n = 1; } n = 3; }");
  const auto& pdg = graph.functions[0];
  int pred = unit_by_text(pdg, "if (n > 0)");
  int then_s = unit_by_text(pdg, "n = 1");
  int after = unit_by_text(pdg, "n = 3");
  EXPECT_TRUE(has_control_dep(pdg, pred, then_s));
  EXPECT_FALSE(has_control_dep(pdg, pred, after));
}

TEST(ControlDeps, ElseBranchDependsOnIf) {
  auto graph = sg::build_program_graph(
      "void f(int n) { if (n) { n = 1; } else { n = 2; } }");
  const auto& pdg = graph.functions[0];
  int pred = unit_by_text(pdg, "if (n)");
  EXPECT_TRUE(has_control_dep(pdg, pred, unit_by_text(pdg, "n = 1")));
  EXPECT_TRUE(has_control_dep(pdg, pred, unit_by_text(pdg, "n = 2")));
}

TEST(ControlDeps, LoopBodyDependsOnLoopPredicate) {
  auto graph = sg::build_program_graph(
      "void f(int n) { while (n > 0) { n--; } }");
  const auto& pdg = graph.functions[0];
  int pred = unit_by_text(pdg, "while (n > 0)");
  int body = unit_by_text(pdg, "n--");
  EXPECT_TRUE(has_control_dep(pdg, pred, body));
  // A while predicate is control-dependent on itself in FOW; our deps
  // exclude self edges, so just check the body is there.
}

TEST(ControlDeps, NestedIfChain) {
  auto graph = sg::build_program_graph(R"(
void f(int n, int x) {
  if (n > 0) {
    if (x > 0) {
      x = 1;
    }
  }
}
)");
  const auto& pdg = graph.functions[0];
  int outer = unit_by_text(pdg, "if (n > 0)");
  int inner = unit_by_text(pdg, "if (x > 0)");
  int stmt = unit_by_text(pdg, "x = 1");
  EXPECT_TRUE(has_control_dep(pdg, outer, inner));
  EXPECT_TRUE(has_control_dep(pdg, inner, stmt));
  EXPECT_FALSE(has_control_dep(pdg, outer, stmt));  // only transitive
}

TEST(ControlDeps, SwitchCasesDependOnSwitch) {
  auto graph = sg::build_program_graph(R"(
void f(int m, int x) {
  switch (m) {
    case 1:
      x = 1;
      break;
    default:
      x = 0;
  }
}
)");
  const auto& pdg = graph.functions[0];
  int pred = unit_by_text(pdg, "switch (m)");
  EXPECT_TRUE(has_control_dep(pdg, pred, unit_by_text(pdg, "x = 1")));
  EXPECT_TRUE(has_control_dep(pdg, pred, unit_by_text(pdg, "x = 0")));
}

TEST(Pdg, CallGraphAndCallSites) {
  auto graph = sg::build_program_graph(R"(
void callee(int v) { int w = v; }
void caller(int n) {
  callee(n);
  callee(n + 1);
}
)");
  ASSERT_EQ(graph.functions.size(), 2u);
  EXPECT_EQ(graph.calls.size(), 2u);
  EXPECT_EQ(graph.calls[0].caller, "caller");
  EXPECT_EQ(graph.calls[0].callee, "callee");
  auto callers = graph.callers_of("callee");
  EXPECT_EQ(callers.size(), 2u);
  const auto* pdg = graph.pdg_of("caller");
  ASSERT_NE(pdg, nullptr);
  EXPECT_EQ(pdg->call_sites("callee").size(), 2u);
}

TEST(Pdg, UnitAtLine) {
  auto graph = sg::build_program_graph("void f() {\n  int a = 1;\n  int b = a;\n}");
  const auto& pdg = graph.functions[0];
  EXPECT_EQ(pdg.unit_at_line(2), 0);
  EXPECT_EQ(pdg.unit_at_line(3), 1);
  EXPECT_EQ(pdg.unit_at_line(99), -1);
}

TEST(Pdg, GracefulOnEmptyFunction) {
  auto graph = sg::build_program_graph("void f() { }");
  const auto& pdg = graph.functions[0];
  EXPECT_TRUE(pdg.units.empty());
  EXPECT_TRUE(pdg.cfg.has_edge(pdg.cfg.entry(), pdg.cfg.exit()));
}

// The flat data-edge list is pinned to (from, to, var) order at build
// time. GAT aggregation walks this list directly, so its order must be
// byte-stable across thread counts and rebuild orders — not an accident
// of map insertion during the reaching-defs sweep.
TEST(DataDeps, EdgeListSortedDeterministically) {
  auto graph = sg::build_program_graph(
      "void f(int n) {\n"
      "  int a = n + 1;\n"
      "  int b = n + 2;\n"
      "  int c = a + b;\n"
      "  if (c) { a = b + c; }\n"
      "  int d = a + b + c;\n"
      "}\n");
  const auto& pdg = graph.functions[0];
  ASSERT_GT(pdg.data.edges.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      pdg.data.edges.begin(), pdg.data.edges.end(),
      [](const sg::DataDep& x, const sg::DataDep& y) {
        if (x.from != y.from) return x.from < y.from;
        if (x.to != y.to) return x.to < y.to;
        return x.var < y.var;
      }));
  // Rebuilding the same source yields the identical edge sequence.
  auto graph2 = sg::build_program_graph(graph.source);
  const auto& e1 = pdg.data.edges;
  const auto& e2 = graph2.functions[0].data.edges;
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].from, e2[i].from);
    EXPECT_EQ(e1[i].to, e2[i].to);
    EXPECT_EQ(e1[i].var, e2[i].var);
  }
}
