#include <gtest/gtest.h>

#include <cmath>

#include "sevuldet/nn/word2vec.hpp"

namespace nn = sevuldet::nn;
namespace sn = sevuldet::normalize;

namespace {

/// Corpus with two disjoint "topics": tokens a* co-occur only with a*,
/// b* only with b*. Skip-gram should place same-topic tokens closer.
struct TopicCorpus {
  sn::Vocabulary vocab;
  std::vector<std::vector<int>> sentences;

  TopicCorpus() {
    std::vector<std::vector<std::string>> raw;
    for (int i = 0; i < 200; ++i) {
      raw.push_back({"a1", "a2", "a3", "a1", "a2"});
      raw.push_back({"b1", "b2", "b3", "b1", "b2"});
    }
    for (const auto& s : raw) vocab.count_all(s);
    vocab.freeze();
    for (const auto& s : raw) sentences.push_back(vocab.encode(s));
  }
};

}  // namespace

TEST(Word2Vec, LearnsTopicStructure) {
  TopicCorpus corpus;
  nn::Word2VecConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 5;
  cfg.subsample = 0;  // tiny vocab: keep every token
  nn::Word2Vec w2v(corpus.vocab, cfg);
  w2v.train(corpus.sentences);

  int a1 = corpus.vocab.id("a1"), a2 = corpus.vocab.id("a2");
  int b1 = corpus.vocab.id("b1");
  EXPECT_GT(w2v.similarity(a1, a2), w2v.similarity(a1, b1));
}

TEST(Word2Vec, NearestReturnsSameTopic) {
  TopicCorpus corpus;
  nn::Word2VecConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 5;
  cfg.subsample = 0;
  nn::Word2Vec w2v(corpus.vocab, cfg);
  w2v.train(corpus.sentences);

  int a1 = corpus.vocab.id("a1");
  auto near = w2v.nearest(a1, 2);
  ASSERT_EQ(near.size(), 2u);
  for (int id : near) {
    EXPECT_EQ(corpus.vocab.token(id)[0], 'a') << corpus.vocab.token(id);
  }
}

TEST(Word2Vec, PadRowStaysZero) {
  TopicCorpus corpus;
  nn::Word2VecConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  nn::Word2Vec w2v(corpus.vocab, cfg);
  w2v.train(corpus.sentences);
  for (int d = 0; d < cfg.dim; ++d) {
    EXPECT_FLOAT_EQ(w2v.embeddings().at(sn::Vocabulary::kPad, d), 0.0f);
  }
}

TEST(Word2Vec, DeterministicAcrossRuns) {
  TopicCorpus corpus;
  nn::Word2VecConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 2;
  nn::Word2Vec a(corpus.vocab, cfg), b(corpus.vocab, cfg);
  a.train(corpus.sentences);
  b.train(corpus.sentences);
  for (std::size_t i = 0; i < a.embeddings().size(); ++i) {
    EXPECT_FLOAT_EQ(a.embeddings()[i], b.embeddings()[i]);
  }
}

TEST(Word2Vec, EmbeddingShapeMatchesVocab) {
  TopicCorpus corpus;
  nn::Word2VecConfig cfg;
  cfg.dim = 12;
  nn::Word2Vec w2v(corpus.vocab, cfg);
  EXPECT_EQ(w2v.embeddings().rows(), corpus.vocab.size());
  EXPECT_EQ(w2v.embeddings().cols(), 12);
}

TEST(Word2Vec, HogwildThreadsStillLearnTopicStructure) {
  // threads > 1 trains Hogwild-style: lock-free, nondeterministic at the
  // bit level, but embedding quality must hold up (see EXPERIMENTS.md).
  TopicCorpus corpus;
  nn::Word2VecConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 5;
  cfg.subsample = 0;
  cfg.threads = 2;
  nn::Word2Vec w2v(corpus.vocab, cfg);
  w2v.train(corpus.sentences);

  for (std::size_t i = 0; i < w2v.embeddings().size(); ++i) {
    EXPECT_TRUE(std::isfinite(w2v.embeddings()[i]));
  }
  int a1 = corpus.vocab.id("a1"), a2 = corpus.vocab.id("a2");
  int b1 = corpus.vocab.id("b1");
  EXPECT_GT(w2v.similarity(a1, a2), w2v.similarity(a1, b1));
}
