#include <gtest/gtest.h>

#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/normalize/vocab.hpp"

namespace sn = sevuldet::normalize;

TEST(Normalize, RenamesUserVariables) {
  auto out = sn::normalize_text("int counter = limit + 1;");
  EXPECT_EQ(out.text(), "int var1 = var2 + 1 ;");
  EXPECT_EQ(out.var_map.at("counter"), "var1");
  EXPECT_EQ(out.var_map.at("limit"), "var2");
}

TEST(Normalize, FirstAppearanceOrderIsStable) {
  auto a = sn::normalize_text("x = y; y = x;");
  auto b = sn::normalize_text("y = x; x = y;");
  // Different originals, but both normalize to the same shape.
  EXPECT_EQ(a.text(), b.text());
}

TEST(Normalize, KeepsLibraryFunctions) {
  auto out = sn::normalize_text("strncpy(dest, data, n);");
  EXPECT_EQ(out.text(), "strncpy ( var1 , var2 , var3 ) ;");
  EXPECT_TRUE(out.fun_map.empty());
}

TEST(Normalize, RenamesUserFunctions) {
  auto out = sn::normalize_text("process(buffer); process(other); cleanup();");
  EXPECT_EQ(out.fun_map.at("process"), "fun1");
  EXPECT_EQ(out.fun_map.at("cleanup"), "fun2");
  EXPECT_EQ(out.text(), "fun1 ( var1 ) ; fun1 ( var2 ) ; fun2 ( ) ;");
}

TEST(Normalize, KeepsKeywordsAndConstants) {
  auto out = sn::normalize_text("if (n < 100) { return 0x1F; }");
  EXPECT_EQ(out.text(), "if ( var1 < 100 ) { return 0x1F ; }");
}

TEST(Normalize, KeepsPreservedIdentifiers) {
  auto out = sn::normalize_text("size_t n = sizeof(buf); p = NULL;");
  EXPECT_NE(out.text().find("size_t"), std::string::npos);
  EXPECT_NE(out.text().find("NULL"), std::string::npos);
  EXPECT_EQ(out.var_map.count("size_t"), 0u);
}

TEST(Normalize, StripsNonAscii) {
  auto out = sn::normalize_text("int caf\xC3\xA9 = 1;");
  EXPECT_EQ(out.text(), "int var1 = 1 ;");
}

TEST(Normalize, FunctionPointerKeepsFunAlias) {
  auto out = sn::normalize_text("handler(x); cb = handler;");
  EXPECT_EQ(out.text(), "fun1 ( var1 ) ; var2 = fun1 ;");
}

TEST(Normalize, StringLiteralsKeptIntact) {
  auto out = sn::normalize_text("printf(\"%d\", value);");
  EXPECT_EQ(out.text(), "printf ( \"%d\" , var1 ) ;");
}

TEST(Normalize, DegradesGracefullyOnMalformedInput) {
  auto out = sn::normalize_text("char c = 'a");  // unterminated char literal
  EXPECT_FALSE(out.tokens.empty());
}

TEST(Normalize, Idempotent) {
  auto once = sn::normalize_text("foo(bar, baz);");
  auto twice = sn::normalize_text(once.text());
  EXPECT_EQ(once.text(), twice.text());
}

TEST(Tokenize, PlainTokens) {
  auto toks = sn::tokenize_text("a = b[i] + 1;");
  EXPECT_EQ(toks, (std::vector<std::string>{"a", "=", "b", "[", "i", "]", "+",
                                            "1", ";"}));
}

TEST(Vocab, FreezeAssignsByFrequency) {
  sn::Vocabulary v;
  for (int i = 0; i < 5; ++i) v.count("common");
  for (int i = 0; i < 2; ++i) v.count("rare");
  v.count("once");
  v.freeze(2);
  EXPECT_EQ(v.id("common"), 2);
  EXPECT_EQ(v.id("rare"), 3);
  EXPECT_EQ(v.id("once"), sn::Vocabulary::kUnk);  // below min_count
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v.frequency(2), 5);
}

TEST(Vocab, EncodeMapsUnknowns) {
  sn::Vocabulary v;
  v.count("a");
  v.count("b");
  v.freeze();
  auto ids = v.encode({"a", "zzz", "b"});
  EXPECT_EQ(ids[1], sn::Vocabulary::kUnk);
  EXPECT_EQ(v.token(ids[0]), "a");
}

TEST(Vocab, CountAfterFreezeThrows) {
  sn::Vocabulary v;
  v.count("a");
  v.freeze();
  EXPECT_THROW(v.count("b"), std::logic_error);
}

TEST(Vocab, SerializeRoundTrip) {
  sn::Vocabulary v;
  for (int i = 0; i < 3; ++i) v.count("alpha");
  v.count("beta");
  v.freeze();
  auto restored = sn::Vocabulary::deserialize(v.serialize());
  EXPECT_EQ(restored.size(), v.size());
  EXPECT_EQ(restored.id("alpha"), v.id("alpha"));
  EXPECT_EQ(restored.frequency(restored.id("alpha")), 3);
  EXPECT_EQ(restored.id("missing"), sn::Vocabulary::kUnk);
}

TEST(Vocab, DeterministicTieBreak) {
  sn::Vocabulary v1, v2;
  v1.count("b");
  v1.count("a");
  v2.count("a");
  v2.count("b");
  v1.freeze();
  v2.freeze();
  EXPECT_EQ(v1.id("a"), v2.id("a"));
  EXPECT_EQ(v1.id("b"), v2.id("b"));
}

// --- Attention-provenance support: per-token line records and the
// --- invertible placeholder maps (Step III round trip).

TEST(Normalize, LinesRunParallelToTokens) {
  auto out = sn::normalize_text("int a = 1;\nb = a + 2;\nreturn b;");
  ASSERT_EQ(out.lines.size(), out.tokens.size());
  // First token of line 1, last token of line 3; never decreasing.
  EXPECT_EQ(out.lines.front(), 1);
  EXPECT_EQ(out.lines.back(), 3);
  for (std::size_t i = 1; i < out.lines.size(); ++i) {
    EXPECT_LE(out.lines[i - 1], out.lines[i]);
  }
  // Spot check: "return" sits on line 3.
  for (std::size_t i = 0; i < out.tokens.size(); ++i) {
    if (out.tokens[i] == "return") {
      EXPECT_EQ(out.lines[i], 3);
    }
  }
}

TEST(Normalize, PlaceholderRoundTripIsLossless) {
  auto out = sn::normalize_text("process(buffer); process(other); cleanup();");
  auto inverse = out.placeholder_to_original();
  EXPECT_EQ(inverse.at("fun1"), "process");
  EXPECT_EQ(inverse.at("fun2"), "cleanup");
  EXPECT_EQ(inverse.at("var1"), "buffer");
  EXPECT_EQ(inverse.at("var2"), "other");
  for (const auto& [original, placeholder] : out.var_map) {
    EXPECT_EQ(out.original_token(placeholder), original);
  }
  for (const auto& [original, placeholder] : out.fun_map) {
    EXPECT_EQ(out.original_token(placeholder), original);
  }
  // Non-placeholders map to themselves.
  EXPECT_EQ(out.original_token("strncpy"), "strncpy");
  EXPECT_EQ(out.original_token("("), "(");
}

TEST(Normalize, SameNameAsVariableAndFunctionStaysInvertible) {
  // "x" is first a variable use, then a call target: it legitimately
  // lands in BOTH maps, with distinct placeholders. The inverse is still
  // a function (two placeholders may share one original).
  auto out = sn::normalize_text("x = 1; x();");
  EXPECT_EQ(out.var_map.at("x"), "var1");
  EXPECT_EQ(out.fun_map.at("x"), "fun1");
  auto inverse = out.placeholder_to_original();
  EXPECT_EQ(inverse.at("var1"), "x");
  EXPECT_EQ(inverse.at("fun1"), "x");
  EXPECT_EQ(out.original_token("var1"), "x");
  EXPECT_EQ(out.original_token("fun1"), "x");
}

TEST(Normalize, LexFallbackKeepsLineProvenance) {
  // '@' throws LexError; the whitespace fallback must still produce a
  // parallel per-line record.
  auto out = sn::normalize_text("int a = 1;\nchar s = @;\nreturn 0;");
  ASSERT_FALSE(out.tokens.empty());
  ASSERT_EQ(out.lines.size(), out.tokens.size());
  EXPECT_EQ(out.lines.front(), 1);
  EXPECT_EQ(out.lines.back(), 3);
}
