// Attention provenance (paper Fig. 6) and the quality report behind
// `sevuldet report`: the explain read-out must not perturb inference,
// every attribution must trace to an original source location through
// the normalizer's invertible placeholder maps, and the report JSON is
// the contract with tools/check_quality.py.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sevuldet/core/introspect.hpp"
#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/slicer/gadget.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/mini_json.hpp"

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;
namespace sn = sevuldet::normalize;
namespace mini_json = sevuldet::util::mini_json;

namespace {

sc::PipelineConfig tiny_pipeline_config() {
  sc::PipelineConfig config;
  config.model.embed_dim = 12;
  config.model.conv_channels = 8;
  config.model.attn_dim = 8;
  config.model.dense1 = 24;
  config.model.dense2 = 8;
  config.train.epochs = 3;
  config.train.lr = 0.002f;
  config.word2vec.epochs = 2;
  return config;
}

std::vector<sd::TestCase> tiny_cases() {
  sd::SardConfig config;
  config.pairs_per_category = 6;
  config.long_fraction = 0.0;
  config.seed = 23;
  return sd::generate_sard_like(config);
}

/// A trained detector plus one vulnerable source it flags; shared across
/// the explain tests (training once keeps the suite fast).
struct TrainedFixture {
  sc::SeVulDet detector;
  std::string vulnerable_source;

  TrainedFixture() : detector(tiny_pipeline_config()) {
    auto cases = tiny_cases();
    detector.train(cases);
    for (const auto& tc : cases) {
      if (!tc.vulnerable) continue;
      if (!detector.detect(tc.source).empty()) {
        vulnerable_source = tc.source;
        break;
      }
    }
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

// Every gadget in the example corpus round-trips: each normalized token
// maps back to exactly one original spelling, and each token's line
// record indexes a real gadget line (the provenance chain `sevuldet
// explain` walks).
TEST(Provenance, EveryCorpusGadgetRoundTrips) {
  for (const auto& tc : tiny_cases()) {
    auto program = sevuldet::graph::build_program_graph(tc.source);
    for (const auto& gadget :
         sevuldet::slicer::generate_gadgets(program, {})) {
      auto norm = sn::normalize_gadget(gadget);
      ASSERT_EQ(norm.lines.size(), norm.tokens.size());
      const auto inverse = norm.placeholder_to_original();
      for (const auto& [original, placeholder] : norm.var_map) {
        EXPECT_EQ(inverse.at(placeholder), original) << tc.id;
      }
      for (const auto& [original, placeholder] : norm.fun_map) {
        EXPECT_EQ(inverse.at(placeholder), original) << tc.id;
      }
      // Placeholder sets never collide: every inverse entry comes from
      // exactly one forward entry.
      EXPECT_EQ(inverse.size(), norm.var_map.size() + norm.fun_map.size())
          << tc.id;
      for (std::size_t i = 0; i < norm.lines.size(); ++i) {
        EXPECT_GE(norm.lines[i], 0) << tc.id;
        EXPECT_LE(norm.lines[i], static_cast<int>(gadget.lines.size()))
            << tc.id;
      }
    }
  }
}

TEST(Explain, AttentionWeightsSumToOneWhenEnabled) {
  auto& f = fixture();
  ASSERT_FALSE(f.vulnerable_source.empty());
  sc::DetectOptions options;
  options.explain = true;
  auto findings = f.detector.detect(f.vulnerable_source, options);
  ASSERT_FALSE(findings.empty());
  const auto& weights = f.detector.model().last_token_weights();
  ASSERT_FALSE(weights.empty());
  float sum = 0.0f;
  for (float w : weights) {
    EXPECT_GE(w, 0.0f);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(Explain, AttributionsCarrySourceProvenance) {
  auto& f = fixture();
  ASSERT_FALSE(f.vulnerable_source.empty());
  sc::DetectOptions options;
  options.explain = true;
  options.top_k = 5;
  auto findings = f.detector.detect(f.vulnerable_source, options);
  ASSERT_FALSE(findings.empty());
  for (const auto& finding : findings) {
    ASSERT_FALSE(finding.attributions.empty());
    EXPECT_LE(finding.attributions.size(), 5u);
    // Ranked by weight, each with a resolvable original spelling; at
    // least one maps to a concrete (function, line).
    bool has_location = false;
    for (std::size_t i = 0; i < finding.attributions.size(); ++i) {
      const auto& a = finding.attributions[i];
      EXPECT_FALSE(a.token.empty());
      EXPECT_FALSE(a.original.empty());
      EXPECT_GT(a.weight, 0.0f);
      if (i > 0) {
        EXPECT_LE(a.weight, finding.attributions[i - 1].weight);
      }
      if (a.line > 0 && !a.function.empty()) has_location = true;
    }
    EXPECT_TRUE(has_location);
    // CBAM spatial map rides along when multilayer attention is on.
    EXPECT_FALSE(finding.spatial_attention.empty());
  }
}

// The explain read-out is a pure copy of already-computed activations:
// findings and the serialized model must be byte-identical with capture
// on vs off.
TEST(Explain, CaptureDoesNotPerturbInference) {
  auto& f = fixture();
  ASSERT_FALSE(f.vulnerable_source.empty());
  const std::string plain_model = "introspect-test-plain.bin";
  const std::string explain_model = "introspect-test-explain.bin";

  auto plain = f.detector.detect(f.vulnerable_source);
  f.detector.save(plain_model);
  sc::DetectOptions options;
  options.explain = true;
  auto explained = f.detector.detect(f.vulnerable_source, options);
  f.detector.save(explain_model);

  ASSERT_EQ(plain.size(), explained.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].probability, explained[i].probability);  // bitwise
    EXPECT_EQ(plain[i].line, explained[i].line);
    EXPECT_EQ(plain[i].token, explained[i].token);
    EXPECT_EQ(plain[i].top_tokens, explained[i].top_tokens);
    EXPECT_TRUE(plain[i].attributions.empty());
    EXPECT_TRUE(plain[i].spatial_attention.empty());
    EXPECT_FALSE(explained[i].attributions.empty());
  }
  EXPECT_EQ(file_bytes(plain_model), file_bytes(explain_model));
  std::remove(plain_model.c_str());
  std::remove(explain_model.c_str());
}

TEST(Explain, AblatedAttentionYieldsNoAttributions) {
  auto config = tiny_pipeline_config();
  config.model.token_attention = false;      // RQ1 ablation: CNN only
  config.model.multilayer_attention = false; // no CBAM either
  config.train.epochs = 2;
  sc::SeVulDet detector(config);
  auto cases = tiny_cases();
  detector.train(cases);
  sc::DetectOptions options;
  options.explain = true;
  for (const auto& tc : cases) {
    if (!tc.vulnerable) continue;
    for (const auto& finding : detector.detect(tc.source, options)) {
      EXPECT_TRUE(finding.attributions.empty());
      EXPECT_TRUE(finding.spatial_attention.empty());
    }
  }
  EXPECT_TRUE(detector.model().last_token_weights().empty());
  EXPECT_TRUE(detector.model().last_spatial_weights().empty());
}

TEST(Explain, ExplanationsJsonRoundTrips) {
  auto& f = fixture();
  ASSERT_FALSE(f.vulnerable_source.empty());
  sc::DetectOptions options;
  options.explain = true;
  auto findings = f.detector.detect(f.vulnerable_source, options);
  ASSERT_FALSE(findings.empty());

  const auto doc =
      mini_json::parse(sc::explanations_to_json("case.c", findings));
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number, 1.0);
  EXPECT_EQ(doc.at("file").str, "case.c");
  const auto& parsed = doc.at("findings").array;
  ASSERT_EQ(parsed.size(), findings.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].at("token").str, findings[i].token);
    EXPECT_NEAR(parsed[i].at("probability").number, findings[i].probability,
                1e-6);
    const auto& attributions = parsed[i].at("attributions").array;
    ASSERT_EQ(attributions.size(), findings[i].attributions.size());
    EXPECT_EQ(attributions.at(0).at("original").str,
              findings[i].attributions[0].original);
    EXPECT_EQ(parsed[i].at("spatial_attention").array.size(),
              findings[i].spatial_attention.size());
  }
}

TEST(Report, QualityReportIsCompleteAndConsistent) {
  sc::ReportConfig config;
  config.corpus.pairs_per_category = 6;
  config.corpus.long_fraction = 0.0;
  config.corpus.seed = 23;
  config.pipeline = tiny_pipeline_config();
  auto report = sc::run_quality_report(config);

  EXPECT_EQ(report.corpus_fingerprint.size(), 16u);
  EXPECT_EQ(report.train_samples + report.test_samples, report.total_samples);
  EXPECT_EQ(static_cast<int>(report.epoch_losses.size()),
            config.pipeline.train.epochs);
  EXPECT_EQ(report.epoch_accuracies.size(), report.epoch_losses.size());
  for (float acc : report.epoch_accuracies) {
    EXPECT_GE(acc, 0.0f);
    EXPECT_LE(acc, 1.0f);
  }
  EXPECT_EQ(report.confusion.total(), report.test_samples);

  // Length buckets partition the test fold; CWE rows share the clean
  // background, so each row's negatives equal the overall negatives.
  long long bucketed = 0;
  for (const auto& row : report.by_length) bucketed += row.confusion.total();
  EXPECT_EQ(bucketed, report.test_samples);
  const long long clean = report.confusion.tn + report.confusion.fp;
  long long cwe_positives = 0;
  for (const auto& row : report.by_cwe) {
    EXPECT_FALSE(row.key.empty());
    EXPECT_EQ(row.confusion.tn + row.confusion.fp, clean);
    cwe_positives += row.confusion.tp + row.confusion.fn;
  }
  EXPECT_EQ(cwe_positives, report.confusion.tp + report.confusion.fn);

  EXPECT_GE(report.auc, 0.0);
  EXPECT_LE(report.auc, 1.0);
  long long calibrated = 0;
  for (const auto& bin : report.calibration.bins) calibrated += bin.count;
  EXPECT_EQ(calibrated, report.test_samples);

  // The JSON side of the check_quality.py contract.
  const auto doc = mini_json::parse(sc::report_to_json(report));
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number, 1.0);
  EXPECT_EQ(doc.at("corpus").at("fingerprint").str, report.corpus_fingerprint);
  EXPECT_DOUBLE_EQ(doc.at("corpus").at("test_samples").number,
                   static_cast<double>(report.test_samples));
  EXPECT_DOUBLE_EQ(doc.at("evaluation").at("confusion").at("tp").number,
                   static_cast<double>(report.confusion.tp));
  EXPECT_EQ(doc.at("evaluation").at("by_cwe").array.size(),
            report.by_cwe.size());
  EXPECT_EQ(doc.at("evaluation").at("by_length").array.size(),
            report.by_length.size());
  EXPECT_EQ(doc.at("calibration").at("bins").array.size(),
            report.calibration.bins.size());
  EXPECT_DOUBLE_EQ(doc.at("calibration").at("ece").number,
                   report.calibration.ece);

  // The human rendering mentions the headline numbers.
  const std::string summary = sc::report_summary(report);
  EXPECT_NE(summary.find(report.corpus_fingerprint), std::string::npos);
  EXPECT_NE(summary.find("AUC="), std::string::npos);
}

TEST(Report, LengthBucketsAreStable) {
  EXPECT_EQ(sc::length_bucket(1), "1-20");
  EXPECT_EQ(sc::length_bucket(20), "1-20");
  EXPECT_EQ(sc::length_bucket(21), "21-40");
  EXPECT_EQ(sc::length_bucket(40), "21-40");
  EXPECT_EQ(sc::length_bucket(41), "41-80");
  EXPECT_EQ(sc::length_bucket(80), "41-80");
  EXPECT_EQ(sc::length_bucket(81), ">80");
}

// The gadget-pipeline drop accounting: every truncate/skip reason
// increments a named "*.drop.*" counter the report can diff.
TEST(Report, DropCountersAccumulateOnDegenerateInput) {
  namespace metrics = sevuldet::util::metrics;
  metrics::reset();
  metrics::set_enabled(true);
  sn::normalize_text("char s = @;");  // unlexable -> whitespace fallback
  sd::TestCase duplicate_a, duplicate_b;
  duplicate_a.id = "dup-a";
  duplicate_b.id = "dup-b";
  duplicate_a.source = duplicate_b.source =
      "void f() {\n  char buf[8];\n  strcpy(buf, \"x\");\n}\n";
  sd::CorpusOptions options;
  options.deduplicate = true;
  sd::build_corpus({duplicate_a, duplicate_b}, options);
  const auto snap = metrics::snapshot();
  metrics::set_enabled(false);
  metrics::reset();
  EXPECT_EQ(snap.counters.at("normalize.drop.lex_fallback"), 1);
  EXPECT_GE(snap.counters.at("corpus.drop.duplicate"), 1);
}
