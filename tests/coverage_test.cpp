// Focused edge-case coverage across modules: the logger, SGD momentum,
// slicer call-depth bounding, goto/switch corner cases in the CFG and
// interpreter, attention identity-at-init, and numeric edges the main
// suites don't hit.
#include <gtest/gtest.h>

#include <cmath>

#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/interp/interp.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/nn/layers.hpp"
#include "sevuldet/nn/optim.hpp"
#include "sevuldet/slicer/slice.hpp"
#include "sevuldet/slicer/special_tokens.hpp"
#include "sevuldet/util/log.hpp"

namespace sf = sevuldet::frontend;
namespace sg = sevuldet::graph;
namespace si = sevuldet::interp;
namespace sm = sevuldet::models;
namespace nn = sevuldet::nn;
namespace ss = sevuldet::slicer;
namespace su = sevuldet::util;

TEST(Log, LevelFiltering) {
  su::LogLevel saved = su::log_level();
  su::set_log_level(su::LogLevel::Warn);
  EXPECT_EQ(su::log_level(), su::LogLevel::Warn);
  // Below-threshold calls must be no-ops (no crash, no state change).
  su::log_debug("dropped");
  su::log_info("dropped");
  su::log_warn("emitted");
  su::set_log_level(su::LogLevel::Off);
  su::log_error("dropped too");
  su::set_log_level(saved);
}

TEST(Optim, SgdMomentumAcceleratesOnRavine) {
  // On a fixed-gradient slope, momentum covers more distance than plain
  // SGD with the same learning rate.
  auto run = [](float momentum) {
    nn::ParamStore store;
    auto p = store.add("x", nn::Tensor::scalar(0.0f));
    nn::Sgd opt(store, 0.01f, momentum);
    for (int i = 0; i < 50; ++i) {
      auto loss = nn::sum_all(nn::scale(p, -1.0f));  // d(loss)/dp = -1
      opt.zero_grad();
      nn::backward(loss);
      opt.step();
    }
    return p->value.at(0, 0);
  };
  EXPECT_GT(run(0.9f), run(0.0f) * 3.0f);
}

TEST(Optim, LearningRateSetters) {
  nn::ParamStore store;
  store.add("x", nn::Tensor::scalar(1.0f));
  nn::Sgd sgd(store, 0.1f);
  sgd.set_learning_rate(0.5f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.5f);
  nn::Adam adam(store, 0.1f);
  adam.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.01f);
}

TEST(Slicer, CallDepthBoundsInterproceduralGrowth) {
  // A deep call chain: depth 1 must reach fewer functions than depth 3.
  auto program = sg::build_program_graph(R"(
void d(char *s) { char buf[4]; strcpy(buf, s); }
void c(char *s) { d(s); }
void mid(char *s) { c(s); }
void a(char *s) { mid(s); }
)");
  ss::SpecialToken tok;
  for (const auto& t : ss::find_special_tokens(program)) {
    if (t.text == "strcpy") tok = t;
  }
  ss::SliceOptions shallow;
  shallow.max_call_depth = 1;
  ss::SliceOptions deep;
  deep.max_call_depth = 4;
  auto s1 = ss::compute_slice(program, tok.function, tok.unit, shallow);
  auto s3 = ss::compute_slice(program, tok.function, tok.unit, deep);
  EXPECT_LT(s1.units_by_fn.size(), s3.units_by_fn.size());
  EXPECT_TRUE(s3.units_by_fn.contains("a"));
}

TEST(Cfg, GotoBackwardJumpMakesLoop) {
  auto unit = sf::parse(R"(
void f(int n) {
top:
  n = n - 1;
  if (n > 0) goto top;
}
)");
  auto units = sg::flatten_function(unit.functions[0]);
  auto cfg = sg::build_cfg(unit.functions[0], units);
  int label = -1, jump = -1;
  for (const auto& u : units) {
    if (u.kind == sg::UnitKind::Label) label = u.id;
    if (u.kind == sg::UnitKind::Goto) jump = u.id;
  }
  ASSERT_GE(label, 0);
  ASSERT_GE(jump, 0);
  EXPECT_TRUE(cfg.has_edge(jump, label));
}

TEST(Cfg, GotoUnknownLabelFallsToExit) {
  auto unit = sf::parse("void f() { goto nowhere; }");
  auto units = sg::flatten_function(unit.functions[0]);
  auto cfg = sg::build_cfg(unit.functions[0], units);
  EXPECT_TRUE(cfg.has_edge(0, cfg.exit()));
}

TEST(Interp, SwitchDefaultOnlyAndFallthrough) {
  sf::TranslationUnit unit = sf::parse(R"(
int harness_main() {
  int x = 5;
  int r = 0;
  switch (x) {
    case 1:
      r = 10;
    case 2:
      r = r + 1;
      break;
    default:
      r = 99;
  }
  return r;
}
)");
  si::Interpreter interp(unit);
  auto result = interp.run({}, {});
  EXPECT_EQ(result.outcome, si::Outcome::Ok);
  EXPECT_EQ(result.return_value, 99);
}

TEST(Interp, CallocZeroesAndSizeofPointer) {
  sf::TranslationUnit unit = sf::parse(R"(
int harness_main() {
  char *p = (char *)calloc(4, 2);
  if (p == NULL) { return -1; }
  int total = p[0] + p[7];
  free(p);
  return total + (int)sizeof(p);
}
)");
  si::Interpreter interp(unit);
  auto result = interp.run({}, {});
  EXPECT_EQ(result.outcome, si::Outcome::Ok);
  EXPECT_EQ(result.return_value, 8);  // zeros + sizeof(char*) == 8
}

TEST(Interp, NegativeMallocReturnsNull) {
  sf::TranslationUnit unit = sf::parse(R"(
int harness_main() {
  char *p = (char *)malloc(-5);
  if (p == NULL) { return 7; }
  return 0;
}
)");
  si::Interpreter interp(unit);
  EXPECT_EQ(interp.run({}, {}).return_value, 7);
}

TEST(Autograd, Im2RowRejectsTooShortSequence) {
  auto x = nn::constant(nn::Tensor(2, 3));
  EXPECT_THROW(nn::im2row(x, 5, 0), std::invalid_argument);
  // With padding the same sequence is fine.
  EXPECT_NO_THROW(nn::im2row(x, 5, 2));
}

TEST(TokenAttention, IdentityAtInitialization) {
  // Zero-initialized query + T-scaling => the layer starts as identity.
  nn::ParamStore store;
  su::Rng rng(3);
  nn::TokenAttention attn(store, "t", 6, 8, rng);
  nn::Tensor x = nn::Tensor::randn(9, 6, rng, 1.0f);
  auto out = attn.forward(nn::constant(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(out->value[i], x[i], 1e-4f);
  }
}

TEST(Cbam, NearIdentityAtInitialization) {
  // Gate biases start at +2 => sigmoid(~2) ≈ 0.88 twice ≈ 0.77 of the
  // input magnitude — far from the 0.25 a 0.5/0.5 gate product gives.
  nn::ParamStore store;
  su::Rng rng(5);
  nn::Cbam cbam(store, "c", 8, 4, rng);
  nn::Tensor x = nn::Tensor::randn(7, 8, rng, 1.0f);
  auto out = cbam.forward(nn::constant(x));
  double in_norm = 0, out_norm = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    in_norm += std::fabs(x[i]);
    out_norm += std::fabs(out->value[i]);
  }
  EXPECT_GT(out_norm / in_norm, 0.6);
}

TEST(SeVulDetNet, DeterministicForSeed) {
  sm::ModelConfig config;
  config.vocab_size = 40;
  config.embed_dim = 8;
  config.conv_channels = 8;
  config.attn_dim = 8;
  config.dense1 = 16;
  config.dense2 = 8;
  config.seed = 77;
  sm::SeVulDetNet a(config), b(config);
  std::vector<int> probe = {3, 9, 1, 22, 17};
  EXPECT_FLOAT_EQ(a.predict(probe), b.predict(probe));
  config.seed = 78;
  sm::SeVulDetNet c(config);
  EXPECT_NE(a.predict(probe), c.predict(probe));
}

TEST(SpecialTokens, DistinguishesDefinedVsExternCalls) {
  auto program = sg::build_program_graph(R"(
void internal(int x) { report(x); }
void f(int n) {
  internal(n);
  external_thing(n);
}
)");
  auto tokens = ss::find_special_tokens(program, ss::TokenCategory::FunctionCall);
  bool has_internal = false, has_external = false, has_report = false;
  for (const auto& t : tokens) {
    if (t.text == "internal") has_internal = true;
    if (t.text == "external_thing") has_external = true;
    if (t.text == "report") has_report = true;
  }
  EXPECT_FALSE(has_internal);  // defined in unit, not a criterion
  EXPECT_TRUE(has_external);   // undefined => treated as library/API
  EXPECT_TRUE(has_report);
}

TEST(Parser, DoWhileWithComplexBody) {
  auto stmt = sf::parse_statement(R"(
do {
  if (x > 0) { x--; } else { x++; }
  y += x;
} while (x != 0 && y < 100);
)");
  EXPECT_EQ(stmt->kind, sf::StmtKind::DoWhile);
}

TEST(Parser, NestedTernaryAndComma) {
  auto e = sf::parse_expression("a ? b ? 1 : 2 : 3");
  EXPECT_EQ(e->kind, sf::ExprKind::Ternary);
  auto stmt = sf::parse_statement("x = 1, y = 2, z = x + y;");
  EXPECT_EQ(stmt->kind, sf::StmtKind::ExprStmt);
  EXPECT_EQ(stmt->exprs[0]->kind, sf::ExprKind::Comma);
}

TEST(Dominance, SelfAndUnreachable) {
  auto program = sg::build_program_graph(
      "void f(int n) { return; n = 1; }");  // n=1 unreachable
  const auto& pdg = program.functions[0];
  auto dom = sg::compute_dominators(pdg.cfg);
  // Unreachable node has no idom.
  int unreachable = -1;
  for (const auto& u : pdg.units) {
    if (u.text == "n = 1") unreachable = u.id;
  }
  ASSERT_GE(unreachable, 0);
  EXPECT_EQ(dom.idom[static_cast<std::size_t>(unreachable)], -1);
  EXPECT_FALSE(dom.dominates(unreachable, 0));
}
