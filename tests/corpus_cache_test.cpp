// Content-addressed preprocessing cache semantics: a second build over
// unchanged inputs hits on every case and reproduces the cold corpus
// fingerprint (including warm+threaded == cold+serial, the determinism
// contract the CI equivalence job enforces); any change to the source
// bytes, the label manifest, any GadgetOptions field, or the format
// version produces a fresh key; corrupt entries degrade to misses.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "sevuldet/dataset/cache.hpp"
#include "sevuldet/dataset/corpus_io.hpp"
#include "sevuldet/dataset/sard_generator.hpp"

namespace fs = std::filesystem;
namespace sd = sevuldet::dataset;
namespace ss = sevuldet::slicer;

namespace {

/// Fresh cache directory per test, removed on destruction.
struct TempCacheDir {
  fs::path path;
  explicit TempCacheDir(const std::string& name)
      : path(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(path);
  }
  ~TempCacheDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

std::vector<sd::TestCase> sard_cases(int pairs, std::uint64_t seed = 31) {
  sd::SardConfig config;
  config.pairs_per_category = pairs;
  config.seed = seed;
  return sd::generate_sard_like(config);
}

sd::TestCase probe_case() {
  sd::TestCase tc;
  tc.id = "probe-1";
  tc.source =
      "void f(char* p, int n) {\n"
      "  char buf[8];\n"
      "  if (n > 0) {\n"
      "    strcpy(buf, p);\n"
      "  }\n"
      "}\n";
  tc.vulnerable_lines = {4};
  tc.vulnerable = true;
  tc.cwe = "CWE-121";
  return tc;
}

}  // namespace

TEST(CacheKey, StableForIdenticalInputs) {
  const ss::GadgetOptions options;
  EXPECT_EQ(sd::case_cache_key(probe_case(), options),
            sd::case_cache_key(probe_case(), options));
  EXPECT_EQ(sd::case_cache_key(probe_case(), options).size(), 32u);
}

TEST(CacheKey, SourceBytesChangeKey) {
  const ss::GadgetOptions options;
  sd::TestCase changed = probe_case();
  changed.source += " ";  // one byte
  EXPECT_NE(sd::case_cache_key(probe_case(), options),
            sd::case_cache_key(changed, options));
}

TEST(CacheKey, LabelManifestChangesKey) {
  const ss::GadgetOptions options;
  const std::string base = sd::case_cache_key(probe_case(), options);

  sd::TestCase lines = probe_case();
  lines.vulnerable_lines = {5};
  EXPECT_NE(sd::case_cache_key(lines, options), base);

  sd::TestCase cleared = probe_case();
  cleared.vulnerable_lines.clear();
  cleared.vulnerable = false;
  EXPECT_NE(sd::case_cache_key(cleared, options), base);

  sd::TestCase cwe = probe_case();
  cwe.cwe = "CWE-122";
  EXPECT_NE(sd::case_cache_key(cwe, options), base);

  sd::TestCase renamed = probe_case();
  renamed.id = "probe-2";
  EXPECT_NE(sd::case_cache_key(renamed, options), base);

  sd::TestCase flags = probe_case();
  flags.long_variant = true;
  EXPECT_NE(sd::case_cache_key(flags, options), base);
}

TEST(CacheKey, EveryGadgetOptionFieldChangesKey) {
  const sd::TestCase tc = probe_case();
  const ss::GadgetOptions base;
  const std::string base_key = sd::case_cache_key(tc, base);

  ss::GadgetOptions path = base;
  path.path_sensitive = !base.path_sensitive;
  EXPECT_NE(sd::case_cache_key(tc, path), base_key);

  ss::GadgetOptions control = base;
  control.slice.use_control_dep = !base.slice.use_control_dep;
  EXPECT_NE(sd::case_cache_key(tc, control), base_key);

  ss::GadgetOptions inter = base;
  inter.slice.interprocedural = !base.slice.interprocedural;
  EXPECT_NE(sd::case_cache_key(tc, inter), base_key);

  ss::GadgetOptions depth = base;
  depth.slice.max_call_depth = base.slice.max_call_depth + 1;
  EXPECT_NE(sd::case_cache_key(tc, depth), base_key);
}

TEST(CacheKey, FormatVersionChangesKey) {
  const ss::GadgetOptions options;
  EXPECT_NE(sd::case_cache_key(probe_case(), options, sd::kCaseCacheFormatVersion),
            sd::case_cache_key(probe_case(), options,
                               sd::kCaseCacheFormatVersion + 1));
}

TEST(CorpusCache, MissThenHit) {
  TempCacheDir dir("corpus_cache_miss_then_hit");
  const auto cases = sard_cases(3);

  sd::CorpusOptions options;
  options.cache_dir = dir.str();
  const sd::Corpus cold = sd::build_corpus(cases, options);
  EXPECT_EQ(cold.stats.cache_hits, 0);
  EXPECT_EQ(cold.stats.cache_misses, static_cast<long long>(cases.size()));

  const sd::Corpus warm = sd::build_corpus(cases, options);
  EXPECT_EQ(warm.stats.cache_hits, static_cast<long long>(cases.size()));
  EXPECT_EQ(warm.stats.cache_misses, 0);
  EXPECT_EQ(sd::corpus_fingerprint(warm), sd::corpus_fingerprint(cold));
}

TEST(CorpusCache, UncachedBuildFingerprintMatches) {
  TempCacheDir dir("corpus_cache_vs_uncached");
  const auto cases = sard_cases(3);
  const sd::Corpus uncached = sd::build_corpus(cases);

  sd::CorpusOptions options;
  options.cache_dir = dir.str();
  const sd::Corpus cold = sd::build_corpus(cases, options);
  const sd::Corpus warm = sd::build_corpus(cases, options);
  EXPECT_EQ(sd::corpus_fingerprint(cold), sd::corpus_fingerprint(uncached));
  EXPECT_EQ(sd::corpus_fingerprint(warm), sd::corpus_fingerprint(uncached));
  EXPECT_EQ(uncached.stats.cache_hits, 0);  // counters untouched without a dir
  EXPECT_EQ(uncached.stats.cache_misses, 0);
}

TEST(CorpusCache, WarmThreadedEqualsColdSerial) {
  // The acceptance contract: warm + parallel must be byte-identical to
  // cold + serial, fingerprint-verified.
  TempCacheDir dir("corpus_cache_warm_threaded");
  const auto cases = sard_cases(4);

  sd::CorpusOptions cold_serial;
  cold_serial.cache_dir = dir.str();
  cold_serial.threads = 1;
  const sd::Corpus cold = sd::build_corpus(cases, cold_serial);

  sd::CorpusOptions warm_threaded = cold_serial;
  warm_threaded.threads = 4;
  const sd::Corpus warm = sd::build_corpus(cases, warm_threaded);
  EXPECT_EQ(warm.stats.cache_hits, static_cast<long long>(cases.size()));
  EXPECT_EQ(sd::corpus_fingerprint(warm), sd::corpus_fingerprint(cold));
  EXPECT_EQ(sd::serialize_corpus(warm), sd::serialize_corpus(cold));
}

TEST(CorpusCache, ColdThreadedPopulatesAndMatches) {
  TempCacheDir dir("corpus_cache_cold_threaded");
  const auto cases = sard_cases(4);
  const sd::Corpus reference = sd::build_corpus(cases);

  sd::CorpusOptions options;
  options.cache_dir = dir.str();
  options.threads = 4;  // concurrent writers into one cache directory
  const sd::Corpus cold = sd::build_corpus(cases, options);
  EXPECT_EQ(cold.stats.cache_misses, static_cast<long long>(cases.size()));
  EXPECT_EQ(sd::corpus_fingerprint(cold), sd::corpus_fingerprint(reference));

  options.threads = 1;
  const sd::Corpus warm = sd::build_corpus(cases, options);
  EXPECT_EQ(warm.stats.cache_hits, static_cast<long long>(cases.size()));
  EXPECT_EQ(sd::corpus_fingerprint(warm), sd::corpus_fingerprint(reference));
}

TEST(CorpusCache, DedupAndEncodeWorkOnCachedSamples) {
  // Dedup keys are recomputed at merge time, so the dedup setting is
  // orthogonal to the cache: a warm deduplicated build equals a cold one.
  TempCacheDir dir("corpus_cache_dedup");
  const auto cases = sard_cases(4);

  sd::CorpusOptions dedup;
  dedup.deduplicate = true;
  const sd::Corpus reference = sd::build_corpus(cases, dedup);

  sd::CorpusOptions cached = dedup;
  cached.cache_dir = dir.str();
  sd::build_corpus(cases, cached);  // populate
  sd::Corpus warm = sd::build_corpus(cases, cached);
  EXPECT_EQ(sd::corpus_fingerprint(warm), sd::corpus_fingerprint(reference));

  sd::encode_corpus(warm);
  EXPECT_GT(warm.vocab.size(), 2);
  EXPECT_EQ(warm.samples[0].ids.size(), warm.samples[0].tokens.size());
}

TEST(CorpusCache, ChangedCaseOnlyMissesThatCase) {
  TempCacheDir dir("corpus_cache_staleness");
  auto cases = sard_cases(3);

  sd::CorpusOptions options;
  options.cache_dir = dir.str();
  sd::build_corpus(cases, options);  // populate

  cases[0].source += "\n";  // touch exactly one case
  const sd::Corpus rebuilt = sd::build_corpus(cases, options);
  EXPECT_EQ(rebuilt.stats.cache_misses, 1);
  EXPECT_EQ(rebuilt.stats.cache_hits, static_cast<long long>(cases.size()) - 1);
}

TEST(CorpusCache, OptionChangeMissesEverything) {
  TempCacheDir dir("corpus_cache_option_staleness");
  const auto cases = sard_cases(2);

  sd::CorpusOptions options;
  options.cache_dir = dir.str();
  sd::build_corpus(cases, options);  // populate (path-sensitive default)

  sd::CorpusOptions plain = options;
  plain.gadget.path_sensitive = false;
  const sd::Corpus rebuilt = sd::build_corpus(cases, plain);
  EXPECT_EQ(rebuilt.stats.cache_hits, 0);
  EXPECT_EQ(rebuilt.stats.cache_misses, static_cast<long long>(cases.size()));
  // The original keys are still intact: the old options hit again.
  EXPECT_EQ(sd::build_corpus(cases, options).stats.cache_hits,
            static_cast<long long>(cases.size()));
}

TEST(CorpusCache, ParseFailuresAreCachedToo) {
  TempCacheDir dir("corpus_cache_parse_failure");
  std::vector<sd::TestCase> cases = sard_cases(1);
  sd::TestCase broken;
  broken.id = "broken";
  broken.source = "void f( {{{";
  cases.push_back(broken);

  sd::CorpusOptions options;
  options.cache_dir = dir.str();
  const sd::Corpus cold = sd::build_corpus(cases, options);
  EXPECT_EQ(cold.stats.parse_failures, 1);

  const sd::Corpus warm = sd::build_corpus(cases, options);
  EXPECT_EQ(warm.stats.cache_hits, static_cast<long long>(cases.size()));
  EXPECT_EQ(warm.stats.parse_failures, 1);
  EXPECT_EQ(sd::corpus_fingerprint(warm), sd::corpus_fingerprint(cold));
}

TEST(CorpusCache, CorruptEntryDegradesToMiss) {
  TempCacheDir dir("corpus_cache_corrupt_entry");
  const sd::TestCase tc = probe_case();
  const ss::GadgetOptions gadget;
  const std::string key = sd::case_cache_key(tc, gadget);

  sd::CorpusOptions options;
  options.cache_dir = dir.str();
  const sd::Corpus reference = sd::build_corpus({tc}, options);
  ASSERT_EQ(reference.stats.cache_misses, 1);

  // Truncate the entry on disk; the next build must recompute (and
  // produce the same corpus), then repair the entry.
  const sd::CorpusCache cache(dir.str());
  const std::string entry = cache.entry_path(key);
  {
    std::ifstream in(entry, std::ios::binary);
    ASSERT_TRUE(in.good()) << "expected cache entry at " << entry;
  }
  std::ofstream(entry, std::ios::binary | std::ios::trunc) << "garbage";

  const sd::Corpus rebuilt = sd::build_corpus({tc}, options);
  EXPECT_EQ(rebuilt.stats.cache_misses, 1);
  EXPECT_EQ(sd::corpus_fingerprint(rebuilt), sd::corpus_fingerprint(reference));
  EXPECT_EQ(sd::build_corpus({tc}, options).stats.cache_hits, 1);  // repaired
}

TEST(CorpusCache, LoadStoreRoundTrip) {
  TempCacheDir dir("corpus_cache_load_store");
  const sd::CorpusCache cache(dir.str());
  EXPECT_FALSE(cache.load("0123456789abcdef0123456789abcdef").has_value());

  sd::CachedCase value;
  value.parse_failed = false;
  sd::GadgetSample sample;
  sample.tokens = {"VAR1", "=", "VAR2"};
  sample.label = 1;
  sample.cwe = "CWE-121";
  sample.case_id = "case-7";
  sample.from_long = true;
  value.samples.push_back(sample);

  cache.store("0123456789abcdef0123456789abcdef", value);
  const auto loaded = cache.load("0123456789abcdef0123456789abcdef");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->samples.size(), 1u);
  EXPECT_EQ(loaded->samples[0].tokens, sample.tokens);
  EXPECT_EQ(loaded->samples[0].label, 1);
  EXPECT_EQ(loaded->samples[0].cwe, "CWE-121");
  EXPECT_EQ(loaded->samples[0].case_id, "case-7");
  EXPECT_TRUE(loaded->samples[0].from_long);
  EXPECT_FALSE(loaded->parse_failed);
}
