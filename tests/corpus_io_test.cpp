// Compiled-corpus serialization contract: save/load round-trips
// byte-identically (samples, vocabulary, stats, and the file bytes
// themselves), fingerprints track content exactly, and truncated,
// corrupt, or version-mismatched files are rejected with a thrown error
// rather than yielding partial data.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sevuldet/dataset/corpus_io.hpp"
#include "sevuldet/dataset/sard_generator.hpp"

namespace sd = sevuldet::dataset;

namespace {

sd::Corpus small_corpus(bool encoded = true) {
  sd::SardConfig config;
  config.pairs_per_category = 3;
  config.seed = 21;
  sd::Corpus corpus = sd::build_corpus(sd::generate_sard_like(config));
  if (encoded) sd::encode_corpus(corpus);
  return corpus;
}

void expect_same_corpus(const sd::Corpus& a, const sd::Corpus& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].tokens, b.samples[i].tokens) << "sample " << i;
    EXPECT_EQ(a.samples[i].ids, b.samples[i].ids) << "sample " << i;
    EXPECT_EQ(a.samples[i].label, b.samples[i].label) << "sample " << i;
    EXPECT_EQ(a.samples[i].cwe, b.samples[i].cwe) << "sample " << i;
    EXPECT_EQ(a.samples[i].category, b.samples[i].category) << "sample " << i;
    EXPECT_EQ(a.samples[i].case_id, b.samples[i].case_id) << "sample " << i;
    EXPECT_EQ(a.samples[i].from_ambiguous, b.samples[i].from_ambiguous);
    EXPECT_EQ(a.samples[i].from_long, b.samples[i].from_long);
  }
  EXPECT_EQ(a.vocab.size(), b.vocab.size());
  EXPECT_EQ(a.vocab.serialize(), b.vocab.serialize());
  EXPECT_EQ(a.stats.by_category, b.stats.by_category);
  EXPECT_EQ(a.stats.parse_failures, b.stats.parse_failures);
}

}  // namespace

TEST(CorpusIo, RoundTripsByteIdentically) {
  const sd::Corpus corpus = small_corpus();
  ASSERT_FALSE(corpus.samples.empty());
  const std::string bytes = sd::serialize_corpus(corpus);
  const sd::Corpus restored = sd::deserialize_corpus(bytes);
  expect_same_corpus(corpus, restored);
  // Byte-identical: serializing the loaded corpus reproduces the file.
  EXPECT_EQ(sd::serialize_corpus(restored), bytes);
  EXPECT_EQ(sd::corpus_fingerprint(restored), sd::corpus_fingerprint(corpus));
}

TEST(CorpusIo, RoundTripsUnencodedCorpus) {
  const sd::Corpus corpus = small_corpus(/*encoded=*/false);
  const std::string bytes = sd::serialize_corpus(corpus);
  const sd::Corpus restored = sd::deserialize_corpus(bytes);
  expect_same_corpus(corpus, restored);
  EXPECT_TRUE(restored.samples[0].ids.empty());
}

TEST(CorpusIo, SaveLoadFileRoundTrip) {
  const sd::Corpus corpus = small_corpus();
  const std::string path = ::testing::TempDir() + "corpus_io_roundtrip.svdcorp";
  sd::save_corpus(corpus, path);
  const sd::Corpus restored = sd::load_corpus(path);
  std::remove(path.c_str());
  expect_same_corpus(corpus, restored);
}

TEST(CorpusIo, FingerprintTracksContent) {
  sd::Corpus corpus = small_corpus();
  const std::uint64_t original = sd::corpus_fingerprint(corpus);
  EXPECT_EQ(sd::corpus_fingerprint(corpus), original);  // deterministic

  sd::Corpus label_flip = corpus;
  label_flip.samples[0].label ^= 1;
  EXPECT_NE(sd::corpus_fingerprint(label_flip), original);

  sd::Corpus token_edit = corpus;
  token_edit.samples[0].tokens[0] += "x";
  EXPECT_NE(sd::corpus_fingerprint(token_edit), original);

  sd::Corpus stat_edit = corpus;
  ++stat_edit.stats.parse_failures;
  EXPECT_NE(sd::corpus_fingerprint(stat_edit), original);
}

TEST(CorpusIo, FingerprintIgnoresCacheCounters) {
  sd::Corpus corpus = small_corpus();
  const std::uint64_t original = sd::corpus_fingerprint(corpus);
  corpus.stats.cache_hits = 7;
  corpus.stats.cache_misses = 3;
  EXPECT_EQ(sd::corpus_fingerprint(corpus), original);
  // ...and they are not persisted either.
  EXPECT_EQ(sd::deserialize_corpus(sd::serialize_corpus(corpus)).stats.cache_hits,
            0);
}

TEST(CorpusIo, RejectsTruncatedFile) {
  const std::string bytes = sd::serialize_corpus(small_corpus());
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, std::size_t{20},
                           bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(sd::deserialize_corpus(bytes.substr(0, keep)),
                 std::runtime_error)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(CorpusIo, RejectsCorruptPayload) {
  std::string bytes = sd::serialize_corpus(small_corpus());
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits mid-payload => checksum fails
  EXPECT_THROW(sd::deserialize_corpus(bytes), std::runtime_error);
}

TEST(CorpusIo, RejectsBadMagicAndTrailingGarbage) {
  std::string bytes = sd::serialize_corpus(small_corpus());
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW(sd::deserialize_corpus(wrong_magic), std::runtime_error);
  EXPECT_THROW(sd::deserialize_corpus(bytes + "extra"), std::runtime_error);
}

TEST(CorpusIo, RejectsVersionMismatch) {
  std::string bytes = sd::serialize_corpus(small_corpus());
  // The u32 version sits right after the 8-byte magic (little-endian).
  bytes[8] = static_cast<char>(sd::kCorpusFormatVersion + 1);
  EXPECT_THROW(sd::deserialize_corpus(bytes), std::runtime_error);
}

TEST(CorpusIo, LoadMissingFileThrows) {
  EXPECT_THROW(sd::load_corpus(::testing::TempDir() + "does_not_exist.svdcorp"),
               std::runtime_error);
}
