#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sevuldet/dataset/manifest.hpp"
#include "sevuldet/dataset/sard_generator.hpp"

namespace sd = sevuldet::dataset;
namespace fs = std::filesystem;

namespace {

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("sevuldet_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

void write_file(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << content;
}

}  // namespace

TEST(Manifest, ParsesRows) {
  auto manifest = sd::parse_manifest(
      "# comment\n"
      "a.c\t4\tCWE-121\n"
      "a.c\t9\tCWE-121\n"
      "b.c\n"
      "\n"
      "sub/c.c\t2\n");
  ASSERT_EQ(manifest.size(), 3u);
  EXPECT_EQ(manifest.at("a.c").lines, (std::set<int>{4, 9}));
  EXPECT_EQ(manifest.at("a.c").cwe, "CWE-121");
  EXPECT_TRUE(manifest.at("b.c").lines.empty());
  EXPECT_EQ(manifest.at("sub/c.c").cwe, "");
}

TEST(Manifest, RejectsMalformedRows) {
  EXPECT_THROW(sd::parse_manifest("a.c\tnotanumber\n"), std::runtime_error);
  EXPECT_THROW(sd::parse_manifest("a.c\t0\n"), std::runtime_error);
  EXPECT_THROW(sd::parse_manifest("\tmissing\n"), std::runtime_error);
}

TEST(Manifest, LoadLabeledDirectory) {
  TempDir dir;
  write_file(dir.path() / "good.c", "void f() { int a = 1; }\n");
  write_file(dir.path() / "bad.c",
             "void g(char *s) {\n  char d[4];\n  strcpy(d, s);\n}\n");
  write_file(dir.path() / "sub" / "nested.c", "void h() { }\n");
  write_file(dir.path() / "ignored.txt", "not C\n");
  write_file(dir.path() / "manifest.tsv", "bad.c\t3\tCWE-121\n");

  auto cases = sd::load_labeled_directory(
      dir.path().string(), (dir.path() / "manifest.tsv").string());
  ASSERT_EQ(cases.size(), 3u);  // .txt skipped, order deterministic
  const sd::TestCase* bad = nullptr;
  for (const auto& tc : cases) {
    if (tc.id == "bad.c") bad = &tc;
    if (tc.id == "good.c" || tc.id == "sub/nested.c") {
      EXPECT_FALSE(tc.vulnerable);
    }
  }
  ASSERT_NE(bad, nullptr);
  EXPECT_TRUE(bad->vulnerable);
  EXPECT_EQ(bad->vulnerable_lines, (std::set<int>{3}));
  EXPECT_EQ(bad->cwe, "CWE-121");
}

TEST(Manifest, MissingManifestMeansAllClean) {
  TempDir dir;
  write_file(dir.path() / "x.c", "void f() { }\n");
  auto cases = sd::load_labeled_directory(dir.path().string(), "");
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_FALSE(cases[0].vulnerable);
}

TEST(Manifest, MissingDirectoryThrows) {
  EXPECT_THROW(sd::load_labeled_directory("/nonexistent/sevuldet", ""),
               std::runtime_error);
}

TEST(Manifest, ExportRoundTrip) {
  TempDir dir;
  sd::SardConfig config;
  config.pairs_per_category = 2;
  auto cases = sd::generate_sard_like(config);
  sd::export_corpus(cases, dir.path().string());

  auto loaded = sd::load_labeled_directory(
      dir.path().string(), (dir.path() / "manifest.tsv").string());
  ASSERT_EQ(loaded.size(), cases.size());
  // Match by id and compare ground truth.
  for (const auto& original : cases) {
    bool found = false;
    for (const auto& restored : loaded) {
      if (restored.id != original.id + ".c") continue;
      found = true;
      EXPECT_EQ(restored.source, original.source);
      EXPECT_EQ(restored.vulnerable, original.vulnerable);
      EXPECT_EQ(restored.vulnerable_lines, original.vulnerable_lines);
      if (original.vulnerable) {
        EXPECT_EQ(restored.cwe, original.cwe);
      }
    }
    EXPECT_TRUE(found) << original.id;
  }
}
