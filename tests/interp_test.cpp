#include <gtest/gtest.h>

#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/interp/interp.hpp"

namespace si = sevuldet::interp;
namespace sf = sevuldet::frontend;

namespace {

si::ExecResult run_src(const char* src, std::vector<std::uint8_t> input = {},
                       long long step_limit = 100000) {
  static sf::TranslationUnit unit;  // keep alive past Interpreter
  unit = sf::parse(src);
  si::Interpreter interp(unit);
  si::ExecOptions options;
  options.step_limit = step_limit;
  return interp.run(input, options);
}

}  // namespace

TEST(Interp, ArithmeticAndReturn) {
  auto r = run_src("int harness_main() { int a = 6; int b = 7; return a * b; }");
  EXPECT_EQ(r.outcome, si::Outcome::Ok);
  EXPECT_EQ(r.return_value, 42);
}

TEST(Interp, Int32Wraparound) {
  auto r = run_src(R"(int harness_main() {
    int big = 2147483647;
    int wrapped = big + 1;
    if (wrapped < 0) { return 1; }
    return 0;
  })");
  EXPECT_EQ(r.return_value, 1) << "int must wrap at 32 bits";
}

TEST(Interp, ControlFlow) {
  auto r = run_src(R"(int harness_main() {
    int acc = 0;
    for (int i = 0; i < 5; i++) {
      if (i == 2) { continue; }
      if (i == 4) { break; }
      acc = acc + i;
    }
    int j = 0;
    do { j++; } while (j < 3);
    switch (j) {
      case 3: acc = acc + 100; break;
      default: acc = 0;
    }
    while (j > 0) { j--; }
    return acc + j;
  })");
  EXPECT_EQ(r.outcome, si::Outcome::Ok);
  EXPECT_EQ(r.return_value, 0 + 1 + 3 + 100);
}

TEST(Interp, FunctionCallsAndRecursionGuard) {
  auto r = run_src(R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int harness_main() { return fib(10); }
)");
  EXPECT_EQ(r.return_value, 55);
  auto r2 = run_src(R"(
int loop(int n) { return loop(n + 1); }
int harness_main() { return loop(0); }
)");
  EXPECT_EQ(r2.outcome, si::Outcome::Hang);  // recursion depth / steps
}

TEST(Interp, ArrayBoundsChecked) {
  auto ok = run_src("int harness_main() { int a[4]; a[3] = 9; return a[3]; }");
  EXPECT_EQ(ok.outcome, si::Outcome::Ok);
  EXPECT_EQ(ok.return_value, 9);

  auto oob = run_src("int harness_main() { int a[4]; a[4] = 1; return 0; }");
  EXPECT_EQ(oob.outcome, si::Outcome::OutOfBounds);
  EXPECT_GT(oob.fault_line, 0);

  auto neg = run_src("int harness_main() { int a[4]; int i = -1; return a[i]; }");
  EXPECT_EQ(neg.outcome, si::Outcome::OutOfBounds);
}

TEST(Interp, MallocFreeAndUaf) {
  auto ok = run_src(R"(int harness_main() {
    char *p = (char *)malloc(8);
    if (p == NULL) { return -1; }
    *p = 65;
    int v = *p;
    free(p);
    return v;
  })");
  EXPECT_EQ(ok.outcome, si::Outcome::Ok);
  EXPECT_EQ(ok.return_value, 65);

  auto uaf = run_src(R"(int harness_main() {
    char *p = (char *)malloc(8);
    free(p);
    *p = 1;
    return 0;
  })");
  EXPECT_EQ(uaf.outcome, si::Outcome::UseAfterFree);

  auto df = run_src(R"(int harness_main() {
    char *p = (char *)malloc(8);
    free(p);
    free(p);
    return 0;
  })");
  EXPECT_EQ(df.outcome, si::Outcome::DoubleFree);

  auto null = run_src("int harness_main() { char *p; *p = 1; return 0; }");
  EXPECT_EQ(null.outcome, si::Outcome::NullDeref);
}

TEST(Interp, DivByZero) {
  auto r = run_src("int harness_main() { int z = 0; return 5 / z; }");
  EXPECT_EQ(r.outcome, si::Outcome::DivByZero);
  auto m = run_src("int harness_main() { int z = 0; return 5 % z; }");
  EXPECT_EQ(m.outcome, si::Outcome::DivByZero);
}

TEST(Interp, HangOnInfiniteLoop) {
  auto r = run_src("int harness_main() { int x = 1; while (x) { x = 1; } return 0; }",
                   {}, 5000);
  EXPECT_EQ(r.outcome, si::Outcome::Hang);
  EXPECT_GE(r.steps, 5000);
}

TEST(Interp, InputBytesAndInts) {
  auto r = run_src(R"(int harness_main() {
    int a = input_byte();
    int b = input_int();
    return a + b;
  })",
                   {5, 1, 1, 0, 0});  // byte 5, int 0x00000101 = 257
  EXPECT_EQ(r.return_value, 5 + 257);
  // Exhausted input reads zeros.
  auto r2 = run_src("int harness_main() { return input_int(); }", {});
  EXPECT_EQ(r2.return_value, 0);
}

TEST(Interp, LibraryStringFunctions) {
  auto r = run_src(R"(int harness_main() {
    char buf[16];
    strcpy(buf, "hello");
    return (int)strlen(buf);
  })");
  EXPECT_EQ(r.outcome, si::Outcome::Ok);
  EXPECT_EQ(r.return_value, 5);

  auto overflow = run_src(R"(int harness_main() {
    char buf[4];
    strcpy(buf, "toolongforthis");
    return 0;
  })");
  EXPECT_EQ(overflow.outcome, si::Outcome::OutOfBounds);
}

TEST(Interp, MemcpyWithPointerArithmetic) {
  auto r = run_src(R"(int harness_main() {
    char a[8];
    char b[8];
    memset(b, 7, 8);
    memcpy(a + 2, b, 4);
    return a[2] + a[5];
  })");
  EXPECT_EQ(r.outcome, si::Outcome::Ok);
  EXPECT_EQ(r.return_value, 14);

  auto oob = run_src(R"(int harness_main() {
    char a[8];
    char b[8];
    memcpy(a + 6, b, 4);
    return 0;
  })");
  EXPECT_EQ(oob.outcome, si::Outcome::OutOfBounds);
}

TEST(Interp, BranchCoverageRecorded) {
  auto r = run_src(R"(int harness_main() {
    int x = 3;
    if (x > 0) { x = 1; }
    if (x > 5) { x = 2; }
    return x;
  })");
  // Two if statements: one taken, one not.
  bool saw_taken = false, saw_not_taken = false;
  for (const auto& [line, taken] : r.coverage) {
    if (taken) saw_taken = true;
    if (!taken) saw_not_taken = true;
  }
  EXPECT_TRUE(saw_taken);
  EXPECT_TRUE(saw_not_taken);
}

TEST(Interp, MissingEntryReported) {
  auto r = run_src("int other() { return 1; }");
  EXPECT_EQ(r.outcome, si::Outcome::UnsupportedConstruct);
}

TEST(Interp, ShortCircuitEvaluation) {
  // The RHS of && must not run when LHS is false (would div-by-zero).
  auto r = run_src(R"(int harness_main() {
    int z = 0;
    if (z != 0 && 10 / z > 1) { return 1; }
    return 2;
  })");
  EXPECT_EQ(r.outcome, si::Outcome::Ok);
  EXPECT_EQ(r.return_value, 2);
}
