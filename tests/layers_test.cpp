#include <gtest/gtest.h>

#include <cmath>

#include "sevuldet/nn/layers.hpp"
#include "sevuldet/nn/optim.hpp"
#include "sevuldet/nn/serialize.hpp"

namespace nn = sevuldet::nn;
namespace su = sevuldet::util;

namespace {
nn::Tensor make_tensor(int rows, int cols, std::uint64_t seed = 7) {
  su::Rng rng(seed);
  return nn::Tensor::randn(rows, cols, rng, 0.5f);
}
}  // namespace

TEST(ParamStore, RegistersAndFinds) {
  nn::ParamStore store;
  su::Rng rng(1);
  nn::Dense dense(store, "fc", 4, 3, rng);
  EXPECT_EQ(store.all().size(), 2u);
  EXPECT_NE(store.find("fc.w"), nullptr);
  EXPECT_NE(store.find("fc.b"), nullptr);
  EXPECT_EQ(store.find("nope"), nullptr);
  EXPECT_EQ(store.parameter_count(), 4u * 3u + 3u);
  EXPECT_THROW(nn::Dense(store, "fc", 2, 2, rng), std::invalid_argument);
}

TEST(Dense, ShapeAndLinearity) {
  nn::ParamStore store;
  su::Rng rng(2);
  nn::Dense dense(store, "fc", 5, 3, rng);
  auto x = nn::constant(make_tensor(4, 5));
  auto y = dense.forward(x);
  EXPECT_EQ(y->value.rows(), 4);
  EXPECT_EQ(y->value.cols(), 3);
  // f(2x) - f(0) == 2 (f(x) - f(0))
  auto x2 = nn::constant([&] {
    nn::Tensor t = x->value;
    for (std::size_t i = 0; i < t.size(); ++i) t[i] *= 2.0f;
    return t;
  }());
  auto zero = nn::constant(nn::Tensor(4, 5));
  auto y2 = dense.forward(x2);
  auto y0 = dense.forward(zero);
  for (std::size_t i = 0; i < y->value.size(); ++i) {
    EXPECT_NEAR(y2->value[i] - y0->value[i], 2.0f * (y->value[i] - y0->value[i]),
                1e-4f);
  }
}

TEST(Conv1d, SamePaddingPreservesLength) {
  nn::ParamStore store;
  su::Rng rng(3);
  nn::Conv1d conv(store, "conv", 4, 8, 3, 1, rng);
  auto x = nn::constant(make_tensor(11, 4));
  auto y = conv.forward(x);
  EXPECT_EQ(y->value.rows(), 11);
  EXPECT_EQ(y->value.cols(), 8);
}

TEST(Conv1d, ValidPaddingShrinks) {
  nn::ParamStore store;
  su::Rng rng(3);
  nn::Conv1d conv(store, "conv", 2, 5, 3, 0, rng);
  auto y = conv.forward(nn::constant(make_tensor(10, 2)));
  EXPECT_EQ(y->value.rows(), 8);
}

TEST(TokenAttention, WeightsSumToOne) {
  nn::ParamStore store;
  su::Rng rng(4);
  nn::TokenAttention attn(store, "tok", 6, 8, rng);
  auto x = nn::constant(make_tensor(9, 6));
  auto y = attn.forward(x);
  EXPECT_EQ(y->value.rows(), 9);
  EXPECT_EQ(y->value.cols(), 6);
  const auto& w = attn.last_weights();
  ASSERT_EQ(w.size(), 9u);
  float sum = 0.0f;
  for (float v : w) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(TokenAttention, TrainsToFocusOnInformativeToken) {
  // Sequences where only the token at a marked position determines the
  // label; attention should learn weights and the model should fit.
  nn::ParamStore store;
  su::Rng rng(5);
  const int e = 4;
  nn::TokenAttention attn(store, "tok", e, 8, rng);
  nn::Dense head(store, "head", e, 1, rng);
  nn::Adam opt(store, 0.01f);

  su::Rng data_rng(6);
  float initial_loss = 0.0f, final_loss = 0.0f;
  const int steps = 300;
  for (int step = 0; step < steps; ++step) {
    // Build a random sequence; signal token has col-0 = +/-3.
    const int t = 5 + static_cast<int>(data_rng.uniform(6));
    nn::Tensor x(t, e);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(data_rng.normal()) * 0.3f;
    }
    const int pos = static_cast<int>(data_rng.uniform(static_cast<std::uint64_t>(t)));
    const bool positive = data_rng.bernoulli(0.5);
    x.at(pos, 0) = positive ? 3.0f : -3.0f;
    x.at(pos, 1) = 3.0f;  // marks "this is the signal token"

    auto weighted = attn.forward(nn::constant(x));
    auto pooled = nn::reduce_rows_mean(weighted);
    auto logit = head.forward(pooled);
    auto loss = nn::bce_with_logits(logit, positive ? 1.0f : 0.0f);
    if (step < 20) initial_loss += loss->value.at(0, 0) / 20.0f;
    if (step >= steps - 20) final_loss += loss->value.at(0, 0) / 20.0f;
    opt.zero_grad();
    nn::backward(loss);
    opt.step();
  }
  EXPECT_LT(final_loss, initial_loss * 0.7f);
}

TEST(Cbam, PreservesShape) {
  nn::ParamStore store;
  su::Rng rng(7);
  nn::Cbam cbam(store, "cbam", 8, 4, rng, /*sequential=*/true);
  auto x = nn::constant(make_tensor(13, 8));
  auto y = cbam.forward(x);
  EXPECT_EQ(y->value.rows(), 13);
  EXPECT_EQ(y->value.cols(), 8);
}

TEST(Cbam, ParallelVariantAlsoWorks) {
  nn::ParamStore store;
  su::Rng rng(8);
  nn::Cbam cbam(store, "cbam", 6, 2, rng, /*sequential=*/false);
  auto y = cbam.forward(nn::constant(make_tensor(5, 6)));
  EXPECT_EQ(y->value.rows(), 5);
  EXPECT_EQ(y->value.cols(), 6);
}

TEST(Cbam, AttenuatesNotAmplifies) {
  // Sigmoid gates are in (0,1): |F''| <= |F| elementwise for the
  // sequential variant.
  nn::ParamStore store;
  su::Rng rng(9);
  nn::Cbam cbam(store, "cbam", 4, 2, rng);
  auto x = nn::constant(make_tensor(6, 4));
  auto y = cbam.forward(x);
  for (std::size_t i = 0; i < y->value.size(); ++i) {
    EXPECT_LE(std::fabs(y->value[i]), std::fabs(x->value[i]) + 1e-6f);
  }
}

TEST(LstmCell, StepShapesAndGradientFlow) {
  nn::ParamStore store;
  su::Rng rng(10);
  nn::LstmCell cell(store, "lstm", 3, 5, rng);
  auto state = cell.initial();
  auto x = nn::constant(make_tensor(1, 3));
  for (int i = 0; i < 4; ++i) state = cell.step(x, state);
  EXPECT_EQ(state.h->value.cols(), 5);
  auto loss = nn::sum_all(state.h);
  nn::backward(loss);
  auto w = store.find("lstm.w");
  float gnorm = 0.0f;
  for (std::size_t i = 0; i < w->grad.size(); ++i) gnorm += std::fabs(w->grad[i]);
  EXPECT_GT(gnorm, 0.0f);
}

TEST(GruCell, StepShapesAndGradientFlow) {
  nn::ParamStore store;
  su::Rng rng(11);
  nn::GruCell cell(store, "gru", 3, 4, rng);
  auto h = cell.initial();
  auto x = nn::constant(make_tensor(1, 3));
  for (int i = 0; i < 4; ++i) h = cell.step(x, h);
  EXPECT_EQ(h->value.cols(), 4);
  auto loss = nn::sum_all(h);
  nn::backward(loss);
  auto w = store.find("gru.wh");
  float gnorm = 0.0f;
  for (std::size_t i = 0; i < w->grad.size(); ++i) gnorm += std::fabs(w->grad[i]);
  EXPECT_GT(gnorm, 0.0f);
}

TEST(BiRnn, OutputDimAndDirectionality) {
  nn::ParamStore store;
  su::Rng rng(12);
  nn::BiRnn rnn(store, "birnn", nn::RnnKind::Lstm, 3, 6, rng);
  EXPECT_EQ(rnn.output_dim(), 12);
  auto x = nn::constant(make_tensor(7, 3));
  auto y = rnn.forward(x);
  EXPECT_EQ(y->value.rows(), 1);
  EXPECT_EQ(y->value.cols(), 12);
  // Reversing the sequence swaps the roles of the two directions, so the
  // output must change (weights differ per direction).
  nn::Tensor rev(7, 3);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 3; ++j) rev.at(i, j) = x->value.at(6 - i, j);
  }
  auto y_rev = rnn.forward(nn::constant(rev));
  bool differs = false;
  for (std::size_t i = 0; i < y->value.size(); ++i) {
    if (std::fabs(y->value[i] - y_rev->value[i]) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(BiRnn, GruVariant) {
  nn::ParamStore store;
  su::Rng rng(13);
  nn::BiRnn rnn(store, "bgru", nn::RnnKind::Gru, 4, 5, rng);
  auto y = rnn.forward(nn::constant(make_tensor(9, 4)));
  EXPECT_EQ(y->value.cols(), 10);
}

TEST(Optim, SgdConvergesOnQuadratic) {
  nn::ParamStore store;
  auto p = store.add("x", nn::Tensor::scalar(5.0f));
  nn::Sgd opt(store, 0.1f);
  for (int i = 0; i < 200; ++i) {
    auto loss = nn::sum_all(nn::mul(p, p));
    opt.zero_grad();
    nn::backward(loss);
    opt.step();
  }
  EXPECT_NEAR(p->value.at(0, 0), 0.0f, 1e-3f);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  nn::ParamStore store;
  auto p = store.add("x", nn::Tensor::scalar(-4.0f));
  nn::Adam opt(store, 0.1f);
  for (int i = 0; i < 300; ++i) {
    auto shifted = nn::sub(p, nn::constant(nn::Tensor::scalar(2.0f)));
    auto loss = nn::sum_all(nn::mul(shifted, shifted));
    opt.zero_grad();
    nn::backward(loss);
    opt.step();
  }
  EXPECT_NEAR(p->value.at(0, 0), 2.0f, 1e-2f);
}

TEST(Optim, GradClipBoundsNorm) {
  nn::ParamStore store;
  auto p = store.add("x", nn::Tensor::scalar(1.0f));
  nn::Sgd opt(store, 0.1f);
  auto loss = nn::sum_all(nn::scale(p, 100.0f));
  opt.zero_grad();
  nn::backward(loss);
  float pre = opt.clip_grad_norm(1.0f);
  EXPECT_NEAR(pre, 100.0f, 1e-3f);
  EXPECT_NEAR(p->grad.at(0, 0), 1.0f, 1e-4f);
}

TEST(Serialize, RoundTrip) {
  nn::ParamStore store;
  su::Rng rng(14);
  nn::Dense dense(store, "fc", 3, 2, rng);
  std::string blob = nn::serialize_params(store);

  nn::ParamStore store2;
  su::Rng rng2(999);  // different init
  nn::Dense dense2(store2, "fc", 3, 2, rng2);
  nn::deserialize_params(store2, blob);
  auto w1 = store.find("fc.w");
  auto w2 = store2.find("fc.w");
  for (std::size_t i = 0; i < w1->value.size(); ++i) {
    EXPECT_FLOAT_EQ(w1->value[i], w2->value[i]);
  }
}

TEST(Serialize, RejectsMismatch) {
  nn::ParamStore store;
  su::Rng rng(15);
  nn::Dense dense(store, "fc", 3, 2, rng);
  std::string blob = nn::serialize_params(store);

  nn::ParamStore other;
  nn::Dense dense2(other, "different", 3, 2, rng);
  EXPECT_THROW(nn::deserialize_params(other, blob), std::runtime_error);

  nn::ParamStore wrong_shape;
  nn::Dense dense3(wrong_shape, "fc", 4, 2, rng);
  EXPECT_THROW(nn::deserialize_params(wrong_shape, blob), std::runtime_error);
}
