#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/kfold.hpp"
#include "sevuldet/dataset/metrics.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/util/strings.hpp"

namespace sd = sevuldet::dataset;
namespace sf = sevuldet::frontend;
namespace ss = sevuldet::slicer;

TEST(Metrics, BasicCounts) {
  sd::Confusion c;
  c.record(true, true);    // tp
  c.record(true, false);   // fp
  c.record(false, true);   // fn
  c.record(false, false);  // tn
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.fnr(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.5);
}

TEST(Metrics, PerfectDetector) {
  sd::Confusion c;
  for (int i = 0; i < 10; ++i) c.record(true, true);
  for (int i = 0; i < 90; ++i) c.record(false, false);
  EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(c.f1(), 1.0);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.fnr(), 0.0);
}

TEST(Metrics, PaperF1FormulaMatchesHarmonicMean) {
  // F1 = 2 P (1-FNR) / (P + (1-FNR)) — check against explicit counts.
  sd::Confusion c;
  c.tp = 80;
  c.fn = 20;
  c.fp = 10;
  c.tn = 90;
  const double p = 80.0 / 90.0;
  const double r = 1.0 - 20.0 / 100.0;
  EXPECT_NEAR(c.f1(), 2 * p * r / (p + r), 1e-12);
}

TEST(Metrics, EmptyDenominatorsAreZero) {
  sd::Confusion c;
  EXPECT_DOUBLE_EQ(c.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(Metrics, Accumulate) {
  sd::Confusion a, b;
  a.tp = 3;
  b.tp = 4;
  b.fp = 1;
  a += b;
  EXPECT_EQ(a.tp, 7);
  EXPECT_EQ(a.fp, 1);
}

TEST(KFold, PartitionProperties) {
  auto splits = sd::k_fold_splits(103, 5, 99);
  ASSERT_EQ(splits.size(), 5u);
  std::set<std::size_t> all_test;
  for (const auto& split : splits) {
    EXPECT_EQ(split.train.size() + split.test.size(), 103u);
    std::set<std::size_t> train(split.train.begin(), split.train.end());
    for (std::size_t t : split.test) {
      EXPECT_FALSE(train.contains(t));
      EXPECT_TRUE(all_test.insert(t).second) << "test index reused across folds";
    }
  }
  EXPECT_EQ(all_test.size(), 103u);  // every sample tested exactly once
}

TEST(KFold, Deterministic) {
  auto a = sd::k_fold_splits(50, 5, 7);
  auto b = sd::k_fold_splits(50, 5, 7);
  EXPECT_EQ(a[2].test, b[2].test);
  auto c = sd::k_fold_splits(50, 5, 8);
  EXPECT_NE(a[2].test, c[2].test);
}

TEST(KFold, RejectsBadK) {
  EXPECT_THROW(sd::k_fold_splits(10, 1, 0), std::invalid_argument);
}

TEST(SardGenerator, AllCasesParse) {
  sd::SardConfig config;
  config.pairs_per_category = 12;
  config.seed = 5;
  auto cases = sd::generate_sard_like(config);
  EXPECT_EQ(cases.size(), 4u * 12u * 2u);
  for (const auto& tc : cases) {
    EXPECT_NO_THROW(sf::parse(tc.source)) << tc.id << "\n" << tc.source;
  }
}

TEST(SardGenerator, VulnerableCasesHaveFlaggedLines) {
  sd::SardConfig config;
  config.pairs_per_category = 10;
  auto cases = sd::generate_sard_like(config);
  for (const auto& tc : cases) {
    if (tc.vulnerable) {
      EXPECT_FALSE(tc.vulnerable_lines.empty()) << tc.id;
      // Flagged lines must exist in the source.
      auto lines = sevuldet::util::split_lines(tc.source);
      for (int line : tc.vulnerable_lines) {
        ASSERT_GE(line, 1);
        ASSERT_LE(line, static_cast<int>(lines.size())) << tc.id;
      }
    } else {
      EXPECT_TRUE(tc.vulnerable_lines.empty()) << tc.id;
    }
  }
}

TEST(SardGenerator, GoodBadPairsShareShape) {
  sd::SardConfig config;
  config.pairs_per_category = 6;
  auto cases = sd::generate_sard_like(config);
  // Cases come in (good, bad) adjacent pairs with the same serial.
  for (std::size_t i = 0; i + 1 < cases.size(); i += 2) {
    EXPECT_FALSE(cases[i].vulnerable);
    EXPECT_TRUE(cases[i + 1].vulnerable);
    EXPECT_EQ(cases[i].category, cases[i + 1].category);
  }
}

TEST(SardGenerator, Deterministic) {
  sd::SardConfig config;
  config.pairs_per_category = 5;
  auto a = sd::generate_sard_like(config);
  auto b = sd::generate_sard_like(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
  }
}

TEST(SardGenerator, LongVariantsAreLong) {
  sd::TemplateSpec spec;
  spec.category = ss::TokenCategory::FunctionCall;
  spec.vulnerable = true;
  spec.long_variant = true;
  spec.filler = 30;
  auto tc = sd::generate_case(spec);
  EXPECT_GT(sevuldet::util::split_lines(tc.source).size(), 30u);
}

TEST(Corpus, BuildsLabeledSamples) {
  sd::SardConfig config;
  config.pairs_per_category = 10;
  auto cases = sd::generate_sard_like(config);
  auto corpus = sd::build_corpus(cases);
  EXPECT_EQ(corpus.stats.parse_failures, 0);
  EXPECT_GT(corpus.samples.size(), cases.size());  // several gadgets per case
  EXPECT_GT(corpus.stats.vulnerable(), 0);
  EXPECT_LT(corpus.stats.vulnerable(), corpus.stats.total());
  // All four categories present.
  EXPECT_EQ(corpus.stats.by_category.size(), 4u);
}

TEST(Corpus, VulnerableRatioIsMinority) {
  sd::SardConfig config;
  config.pairs_per_category = 20;
  auto corpus = sd::build_corpus(sd::generate_sard_like(config));
  const double ratio = static_cast<double>(corpus.stats.vulnerable()) /
                       static_cast<double>(corpus.stats.total());
  // Paper Table I: 5.5% - 10.2% vulnerable per category. Ours is in the
  // same "strong minority" regime.
  EXPECT_GT(ratio, 0.02);
  EXPECT_LT(ratio, 0.40);
}

TEST(Corpus, EncodeFillsIds) {
  sd::SardConfig config;
  config.pairs_per_category = 4;
  auto corpus = sd::build_corpus(sd::generate_sard_like(config));
  sd::encode_corpus(corpus);
  for (const auto& s : corpus.samples) {
    EXPECT_EQ(s.ids.size(), s.tokens.size());
    for (int id : s.ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, corpus.vocab.size());
    }
  }
}

TEST(Corpus, AmbiguousPairsCollideUnderCGButNotPSCG) {
  // The central dataset property behind Table II: for path-ambiguous
  // pairs, plain-CG samples have identical token streams with opposite
  // labels, while PS-CG streams differ.
  sd::TemplateSpec spec;
  spec.category = ss::TokenCategory::FunctionCall;
  spec.ambiguous = true;
  spec.seed = 77;

  spec.vulnerable = false;
  auto good = sd::generate_case(spec);
  spec.vulnerable = true;
  auto bad = sd::generate_case(spec);

  auto collect = [](const sd::TestCase& tc, bool path_sensitive) {
    sd::CorpusOptions opt;
    opt.gadget.path_sensitive = path_sensitive;
    auto corpus = sd::build_corpus({tc}, opt);
    std::map<int, std::vector<std::vector<std::string>>> by_label;
    for (auto& s : corpus.samples) by_label[s.label].push_back(s.tokens);
    return by_label;
  };

  // Plain CG: the bad case must contain a label-1 sample whose tokens
  // equal some label-0 sample of the good case.
  auto good_cg = collect(good, false);
  auto bad_cg = collect(bad, false);
  ASSERT_FALSE(bad_cg[1].empty());
  bool collision = false;
  for (const auto& bad_tokens : bad_cg[1]) {
    for (const auto& good_tokens : good_cg[0]) {
      if (bad_tokens == good_tokens) collision = true;
    }
  }
  EXPECT_TRUE(collision) << "CG gadgets of the ambiguous pair should collide";

  // PS-CG: no vulnerable bad sample may textually equal a clean good one.
  auto good_ps = collect(good, true);
  auto bad_ps = collect(bad, true);
  ASSERT_FALSE(bad_ps[1].empty());
  for (const auto& bad_tokens : bad_ps[1]) {
    for (const auto& good_tokens : good_ps[0]) {
      EXPECT_NE(bad_tokens, good_tokens)
          << "PS-CG must disambiguate the pair";
    }
  }
}

TEST(Corpus, LongVariantGadgetsExceedRnnTimeSteps) {
  sd::TemplateSpec spec;
  spec.category = ss::TokenCategory::FunctionCall;
  spec.vulnerable = true;
  spec.long_variant = true;
  spec.filler = 30;
  spec.seed = 3;
  auto corpus = sd::build_corpus({sd::generate_case(spec)});
  std::size_t longest = 0;
  for (const auto& s : corpus.samples) longest = std::max(longest, s.tokens.size());
  EXPECT_GT(longest, 200u);  // well past a 100-token RNN window
}

TEST(Corpus, DeduplicateDropsExactDuplicates) {
  sd::SardConfig config;
  config.pairs_per_category = 8;
  auto cases = sd::generate_sard_like(config);
  auto plain = sd::build_corpus(cases);
  sd::CorpusOptions dedup_opt;
  dedup_opt.deduplicate = true;
  auto dedup = sd::build_corpus(cases, dedup_opt);
  EXPECT_LT(dedup.samples.size(), plain.samples.size());
}

TEST(Corpus, GracefulOnUnparsableSource) {
  sd::TestCase broken;
  broken.id = "broken";
  broken.source = "void f( {{{";
  auto corpus = sd::build_corpus({broken});
  EXPECT_EQ(corpus.stats.parse_failures, 1);
  EXPECT_TRUE(corpus.samples.empty());
}

// --- Threshold-free metrics for the evaluation breakdown reports.

TEST(RocAuc, PerfectSeparationIsOne) {
  std::vector<sd::ScoredPrediction> p = {
      {0.9f, 1}, {0.8f, 1}, {0.2f, 0}, {0.1f, 0}};
  EXPECT_DOUBLE_EQ(sd::roc_auc(p), 1.0);
}

TEST(RocAuc, ReversedRankingIsZero) {
  std::vector<sd::ScoredPrediction> p = {
      {0.1f, 1}, {0.2f, 1}, {0.8f, 0}, {0.9f, 0}};
  EXPECT_DOUBLE_EQ(sd::roc_auc(p), 0.0);
}

TEST(RocAuc, TiesCountHalf) {
  // All scores equal: AUC must be exactly chance.
  std::vector<sd::ScoredPrediction> p = {
      {0.5f, 1}, {0.5f, 0}, {0.5f, 1}, {0.5f, 0}};
  EXPECT_DOUBLE_EQ(sd::roc_auc(p), 0.5);
}

TEST(RocAuc, SingleClassIsChance) {
  std::vector<sd::ScoredPrediction> all_pos = {{0.9f, 1}, {0.8f, 1}};
  std::vector<sd::ScoredPrediction> all_neg = {{0.9f, 0}, {0.8f, 0}};
  EXPECT_DOUBLE_EQ(sd::roc_auc(all_pos), 0.5);
  EXPECT_DOUBLE_EQ(sd::roc_auc(all_neg), 0.5);
  EXPECT_DOUBLE_EQ(sd::roc_auc({}), 0.5);
}

TEST(RocAuc, PartialOverlap) {
  // One inversion among 2x2 pairs: AUC = 3/4.
  std::vector<sd::ScoredPrediction> p = {
      {0.9f, 1}, {0.4f, 1}, {0.6f, 0}, {0.1f, 0}};
  EXPECT_DOUBLE_EQ(sd::roc_auc(p), 0.75);
}

TEST(Calibration, BinsPartitionAndEceMatchesHandComputation) {
  // Two occupied bins: [0.0,0.5) holds two negatives at 0.2 (perfectly
  // calibrated would be 20% positive; actual 0%), [0.5,1.0) holds one
  // of each at 0.8.
  std::vector<sd::ScoredPrediction> p = {
      {0.2f, 0}, {0.2f, 0}, {0.8f, 1}, {0.8f, 0}};
  auto cal = sd::calibrate(p, 2);
  ASSERT_EQ(cal.bins.size(), 2u);
  EXPECT_EQ(cal.bins[0].count, 2);
  EXPECT_NEAR(cal.bins[0].mean_probability, 0.2, 1e-6);
  EXPECT_DOUBLE_EQ(cal.bins[0].frac_positive, 0.0);
  EXPECT_EQ(cal.bins[1].count, 2);
  EXPECT_NEAR(cal.bins[1].mean_probability, 0.8, 1e-6);
  EXPECT_DOUBLE_EQ(cal.bins[1].frac_positive, 0.5);
  // ECE = (2/4)*|0 - 0.2| + (2/4)*|0.5 - 0.8| = 0.1 + 0.15 = 0.25.
  EXPECT_NEAR(cal.ece, 0.25, 1e-6);
}

TEST(Calibration, ProbabilityOneLandsInTopBin) {
  std::vector<sd::ScoredPrediction> p = {{1.0f, 1}, {0.0f, 0}};
  auto cal = sd::calibrate(p, 10);
  ASSERT_EQ(cal.bins.size(), 10u);
  EXPECT_EQ(cal.bins.front().count, 1);
  EXPECT_EQ(cal.bins.back().count, 1);  // 1.0 clamps into [0.9, 1.0]
  long long total = 0;
  for (const auto& bin : cal.bins) total += bin.count;
  EXPECT_EQ(total, 2);
}

TEST(Calibration, EmptyInputYieldsEmptyBinsZeroEce) {
  auto cal = sd::calibrate({}, 10);
  EXPECT_EQ(cal.bins.size(), 10u);
  for (const auto& bin : cal.bins) EXPECT_EQ(bin.count, 0);
  EXPECT_DOUBLE_EQ(cal.ece, 0.0);
}
