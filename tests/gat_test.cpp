// GAT backbone suite: the graph message-passing kernels (hand-computed
// segment softmax, blocked == naive bitwise), the GatNet Detector
// (edge-case graphs, node-α token expansion, node-bucketed
// predict_batch == per-item loop bitwise, clone independence under the
// thread pool), the backend registry, and the v3 model-file round-trip
// through the pipeline. The in-file scalar references follow the same
// contraction rule as the kernels library (-ffp-contract=off, see
// tests/CMakeLists.txt), mirroring kernels_test.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/models/gat_net.hpp"
#include "sevuldet/models/registry.hpp"
#include "sevuldet/nn/graph_kernels.hpp"
#include "sevuldet/util/rng.hpp"
#include "sevuldet/util/thread_pool.hpp"

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;
namespace sg = sevuldet::graph;
namespace sm = sevuldet::models;
namespace nk = sevuldet::nn::kernels;
namespace util = sevuldet::util;

namespace {

sm::ModelConfig tiny_gat_config() {
  sm::ModelConfig config;
  config.vocab_size = 40;
  config.embed_dim = 8;
  config.attn_dim = 8;
  config.dense2 = 8;
  config.gat_layers = 2;
  config.gat_hidden = 8;
  return config;
}

/// Two-node graph over a 5-token stream: tokens [0,3) are node 0,
/// [3,5) node 1; one data edge 0 -> 1 (stored sorted by (to, from)).
sg::GadgetGraph two_node_graph() {
  sg::GadgetGraph graph;
  graph.node_offsets = {0, 3, 5};
  graph.edges = {{0, 1, sg::GadgetEdgeType::kData}};
  return graph;
}

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.uniform_real(-2.0, 2.0));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// graph kernels
// ---------------------------------------------------------------------------

TEST(GatKernels, SegmentSoftmaxHandComputed) {
  // Segment 0 = {0, ln 2, 0}: exp shifted by max -> {1/2, 1, 1/2},
  // sum 2 -> {0.25, 0.5, 0.25}. Segment 1 = {1, 1} -> {0.5, 0.5}.
  const std::vector<int> offsets = {0, 3, 5};
  const std::vector<float> x = {0.0f, std::log(2.0f), 0.0f, 1.0f, 1.0f};
  std::vector<float> out(x.size(), -1.0f);
  nk::segment_softmax(2, offsets.data(), x.data(), out.data());
  EXPECT_FLOAT_EQ(out[0], 0.25f);
  EXPECT_FLOAT_EQ(out[1], 0.5f);
  EXPECT_FLOAT_EQ(out[2], 0.25f);
  EXPECT_FLOAT_EQ(out[3], 0.5f);
  EXPECT_FLOAT_EQ(out[4], 0.5f);
}

TEST(GatKernels, SegmentSoftmaxMasksEmptySegments) {
  // The middle segment is empty: its (nonexistent) outputs are never
  // touched, and the neighbors normalize independently.
  const std::vector<int> offsets = {0, 2, 2, 3};
  const std::vector<float> x = {3.0f, 3.0f, 7.0f};
  std::vector<float> out(x.size(), -1.0f);
  nk::segment_softmax(3, offsets.data(), x.data(), out.data());
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_FLOAT_EQ(out[1], 0.5f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
}

TEST(GatKernels, BlockedMatchesNaiveBitwise) {
  const std::size_t n = 37, cols = 19, rows = 11;
  const std::vector<float> src = random_floats(rows * cols, 7);
  std::vector<int> idx(n);
  util::Rng rng(13);
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<int>(rng.uniform(rows));
  }

  std::vector<float> a(n * cols, 0.0f), b(n * cols, 0.0f);
  nk::gather_rows(n, cols, idx.data(), src.data(), a.data());
  nk::gather_rows_naive(n, cols, idx.data(), src.data(), b.data());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;

  const std::vector<float> edge_vals = random_floats(n * cols, 23);
  std::vector<float> sa(rows * cols, 0.125f), sb(rows * cols, 0.125f);
  nk::scatter_add_rows(n, cols, idx.data(), edge_vals.data(), sa.data());
  nk::scatter_add_rows_naive(n, cols, idx.data(), edge_vals.data(), sb.data());
  for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i], sb[i]) << i;

  const std::vector<int> offsets = {0, 5, 5, 16, 30, 37};
  const std::vector<float> scores = random_floats(n, 31);
  std::vector<float> fa(n, 0.0f), fb(n, 0.0f);
  nk::segment_softmax(5, offsets.data(), scores.data(), fa.data());
  nk::segment_softmax_naive(5, offsets.data(), scores.data(), fb.data());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(fa[i], fb[i]) << i;

  const std::vector<int> moff = {0, 4, 4, 11};
  const std::vector<float> mrows = random_floats(11 * cols, 43);
  std::vector<float> ma(3 * cols, 0.0f), mb(3 * cols, 0.0f);
  nk::segment_mean(3, moff.data(), cols, mrows.data(), ma.data());
  nk::segment_mean_naive(3, moff.data(), cols, mrows.data(), mb.data());
  for (std::size_t i = 0; i < ma.size(); ++i) ASSERT_EQ(ma[i], mb[i]) << i;
}

// ---------------------------------------------------------------------------
// backend registry
// ---------------------------------------------------------------------------

TEST(Registry, KnowsBothBackendsAndRejectsUnknown) {
  EXPECT_TRUE(sm::valid_backend("cnn"));
  EXPECT_TRUE(sm::valid_backend("gat"));
  EXPECT_FALSE(sm::valid_backend("transformer"));
  EXPECT_EQ(std::string(sm::kDefaultBackend), "cnn");

  sm::ModelConfig config = tiny_gat_config();
  auto cnn = sm::make_detector("cnn", config);
  auto gat = sm::make_detector("gat", config);
  EXPECT_EQ(cnn->name(), "SEVulDet(CNN-MultiATT)");
  EXPECT_EQ(gat->name(), "SEVulDet(GAT)");
  EXPECT_THROW(sm::make_detector("transformer", config),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GatNet forward
// ---------------------------------------------------------------------------

TEST(GatNet, HandlesEmptySingleTokenAndGraphlessInput) {
  sm::GatNet net(tiny_gat_config());
  const float empty = net.predict({});
  const float single = net.predict({5});
  EXPECT_TRUE(std::isfinite(empty));
  EXPECT_GT(empty, 0.0f);
  EXPECT_LT(empty, 1.0f);
  EXPECT_TRUE(std::isfinite(single));

  // A graph-less item goes through the exact token-only path.
  const std::vector<int> tokens = {2, 9, 4, 7};
  const sm::BatchItem item{&tokens, false, nullptr};
  EXPECT_EQ(net.predict_item(item), net.predict(tokens));
}

TEST(GatNet, AcceptsStoredSelfLoopEdges) {
  // build_gadget_graph never emits self-edges, but a hand-built graph
  // may: the forward must treat them like any other stored edge (they
  // simply join the node's in-segment next to the injected loop).
  sm::GatNet net(tiny_gat_config());
  const std::vector<int> tokens = {1, 2, 3, 4, 5};
  sg::GadgetGraph graph = two_node_graph();
  graph.edges = {{0, 0, sg::GadgetEdgeType::kData},
                 {0, 1, sg::GadgetEdgeType::kControl}};
  const float p = net.predict_item({&tokens, false, &graph});
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(p, 0.0f);
  EXPECT_LT(p, 1.0f);
}

TEST(GatNet, InconsistentGraphFallsBackToTokenPath) {
  sm::GatNet net(tiny_gat_config());
  const std::vector<int> tokens = {1, 2, 3, 4, 5, 6, 7};
  sg::GadgetGraph graph = two_node_graph();  // spans 5 tokens, not 7
  EXPECT_EQ(net.predict_item({&tokens, false, &graph}), net.predict(tokens));
}

TEST(GatNet, TokenWeightsExpandNodeAttention) {
  sm::GatNet net(tiny_gat_config());
  const std::vector<int> tokens = {1, 2, 3, 4, 5};
  const sg::GadgetGraph graph = two_node_graph();
  sm::Prediction prediction = net.predict_captured_item({&tokens, false, &graph});
  ASSERT_EQ(prediction.token_weights.size(), tokens.size());
  // Every token of a node carries the node's α...
  EXPECT_EQ(prediction.token_weights[0], prediction.token_weights[1]);
  EXPECT_EQ(prediction.token_weights[1], prediction.token_weights[2]);
  EXPECT_EQ(prediction.token_weights[3], prediction.token_weights[4]);
  // ...and the node weights are a softmax over the two nodes.
  EXPECT_NEAR(prediction.token_weights[0] + prediction.token_weights[3], 1.0f,
              1e-5f);
  EXPECT_GT(prediction.token_weights[0], 0.0f);
  EXPECT_GT(prediction.token_weights[3], 0.0f);
}

TEST(GatNet, GraphStructureChangesTheScore) {
  // Same tokens, different node segmentation: the graph path must
  // actually consume the structure (if it collapsed to the token path
  // these would be equal).
  sm::GatNet net(tiny_gat_config());
  const std::vector<int> tokens = {1, 2, 3, 4, 5};
  const sg::GadgetGraph graph = two_node_graph();
  const float with_graph = net.predict_item({&tokens, false, &graph});
  const float token_only = net.predict(tokens);
  EXPECT_NE(with_graph, token_only);
}

// ---------------------------------------------------------------------------
// batched inference + clones
// ---------------------------------------------------------------------------

TEST(GatNet, PredictBatchBitwiseEqualsPerItemLoop) {
  sm::GatNet net(tiny_gat_config());
  const std::vector<std::vector<int>> streams = {
      {1, 2, 3, 4, 5}, {9, 8}, {4, 4, 4, 4, 4, 4, 4, 4, 4},
      {1, 2, 3, 4, 5}, {7},
  };
  const sg::GadgetGraph graph = two_node_graph();
  std::vector<sm::BatchItem> items;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    // Mix graph-backed and graph-less items; the graph only matches the
    // 5-token streams, the rest take the fallback path.
    items.push_back({&streams[i], false, i % 2 == 0 ? &graph : nullptr});
  }

  std::vector<sm::Prediction> batched = net.predict_batch(items);

  // Reference loop on an identical clone (predict_batch mutates the
  // net's read-out state, so the reference needs its own instance).
  std::unique_ptr<sm::Detector> reference = net.clone();
  ASSERT_EQ(batched.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    sm::Prediction expected = reference->predict_captured_item(items[i]);
    EXPECT_EQ(batched[i].probability, expected.probability) << i;
    ASSERT_EQ(batched[i].token_weights.size(), expected.token_weights.size())
        << i;
    for (std::size_t t = 0; t < expected.token_weights.size(); ++t) {
      EXPECT_EQ(batched[i].token_weights[t], expected.token_weights[t]);
    }
    EXPECT_TRUE(batched[i].spatial_weights.empty());
  }
}

TEST(GatNet, ClonesScoreIdenticallyAndIndependentlyUnderThreadPool) {
  sm::GatNet net(tiny_gat_config());
  const std::vector<std::vector<int>> streams = {
      {1, 2, 3, 4, 5}, {6, 7, 8}, {9, 1, 2, 3, 4, 5, 6, 7}, {2, 2, 2},
      {1, 2, 3, 4, 5}, {8, 8},    {3, 1, 4, 1, 5},          {9},
  };
  const sg::GadgetGraph graph = two_node_graph();
  std::vector<sm::BatchItem> items;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    items.push_back(
        {&streams[i], false,
         streams[i].size() == graph.node_offsets.back() ? &graph : nullptr});
  }

  std::vector<float> serial(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    serial[i] = net.predict_item(items[i]);
  }

  util::ThreadPool pool(4);
  std::vector<std::unique_ptr<sm::Detector>> clones;
  for (int w = 0; w < pool.size(); ++w) clones.push_back(net.clone());
  std::vector<float> parallel(items.size(), -1.0f);
  pool.parallel_chunks(items.size(), [&](int worker, std::size_t begin,
                                         std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      parallel[i] = clones[static_cast<std::size_t>(worker)]->predict_item(
          items[i]);
    }
  });
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// pipeline round-trip (v3 model files)
// ---------------------------------------------------------------------------

namespace {

sc::PipelineConfig tiny_gat_pipeline_config() {
  sc::PipelineConfig config;
  config.backend = "gat";
  config.model.embed_dim = 12;
  config.model.attn_dim = 8;
  config.model.dense2 = 8;
  config.model.gat_hidden = 12;
  config.train.epochs = 3;
  config.train.lr = 0.002f;
  config.word2vec.epochs = 2;
  return config;
}

std::vector<sd::TestCase> tiny_cases() {
  sd::SardConfig config;
  config.pairs_per_category = 8;
  config.long_fraction = 0.0;
  config.seed = 11;
  return sd::generate_sard_like(config);
}

std::string first_line(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::getline(in, line);
  return line;
}

}  // namespace

TEST(GatPipeline, TrainsSavesV3AndReloadsIdentically) {
  auto cases = tiny_cases();
  sc::SeVulDet detector(tiny_gat_pipeline_config());
  detector.train(cases);
  EXPECT_TRUE(detector.trained());
  EXPECT_EQ(detector.model().name(), "SEVulDet(GAT)");

  const std::string path = ::testing::TempDir() + "gat_roundtrip_model.bin";
  detector.save(path);
  // Non-default backends persist as v3 frames (backend name in the
  // payload); the cnn backend keeps writing byte-stable v2 files.
  EXPECT_EQ(first_line(path), "SEVULDET-MODEL v3");

  // Load with a default (cnn-backend) config: the file must restore the
  // gat backend by itself.
  sc::PipelineConfig fresh = tiny_gat_pipeline_config();
  fresh.backend = sm::kDefaultBackend;
  sc::SeVulDet restored(fresh);
  restored.load(path);
  std::remove(path.c_str());
  EXPECT_EQ(restored.model().name(), "SEVulDet(GAT)");

  std::vector<int> probe = {2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(detector.predict(probe), restored.predict(probe));

  // Full detection parity on a vulnerable training program.
  for (const auto& tc : cases) {
    if (!tc.vulnerable) continue;
    auto expected = detector.detect(tc.source);
    auto actual = restored.detect(tc.source);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].line, actual[i].line);
      EXPECT_EQ(expected[i].probability, actual[i].probability);
    }
    break;
  }
}
