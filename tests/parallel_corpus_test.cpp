// Determinism contract of the parallel preprocessing & evaluation
// subsystem: a corpus built with N threads must equal the serial corpus
// sample-for-sample, parallel evaluation must reproduce the serial
// confusion, and a parallel detection scan must reproduce the serial
// findings. These tests (plus thread_pool_test) run under TSan in CI.
#include <gtest/gtest.h>

#include <vector>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/core/trainer.hpp"
#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/sard_generator.hpp"

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;

namespace {

std::vector<sd::TestCase> sard_cases(int pairs) {
  sd::SardConfig config;
  config.pairs_per_category = pairs;
  return sd::generate_sard_like(config);
}

void expect_same_corpus(const sd::Corpus& serial, const sd::Corpus& parallel) {
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    const auto& a = serial.samples[i];
    const auto& b = parallel.samples[i];
    EXPECT_EQ(a.tokens, b.tokens) << "sample " << i;
    EXPECT_EQ(a.ids, b.ids) << "sample " << i;
    EXPECT_EQ(a.label, b.label) << "sample " << i;
    EXPECT_EQ(a.cwe, b.cwe) << "sample " << i;
    EXPECT_EQ(a.category, b.category) << "sample " << i;
    EXPECT_EQ(a.case_id, b.case_id) << "sample " << i;
    EXPECT_EQ(a.from_ambiguous, b.from_ambiguous) << "sample " << i;
    EXPECT_EQ(a.from_long, b.from_long) << "sample " << i;
  }
  EXPECT_EQ(serial.stats.by_category, parallel.stats.by_category);
  EXPECT_EQ(serial.stats.parse_failures, parallel.stats.parse_failures);
}

}  // namespace

TEST(ParallelCorpus, MatchesSerialSampleForSample) {
  const auto cases = sard_cases(10);
  sd::CorpusOptions serial_opt;
  serial_opt.threads = 1;
  sd::CorpusOptions parallel_opt;
  parallel_opt.threads = 4;
  expect_same_corpus(sd::build_corpus(cases, serial_opt),
                     sd::build_corpus(cases, parallel_opt));
}

TEST(ParallelCorpus, MatchesSerialWithDeduplication) {
  const auto cases = sard_cases(8);
  sd::CorpusOptions serial_opt;
  serial_opt.deduplicate = true;
  serial_opt.threads = 1;
  sd::CorpusOptions parallel_opt;
  parallel_opt.deduplicate = true;
  parallel_opt.threads = 3;
  auto serial = sd::build_corpus(cases, serial_opt);
  auto parallel = sd::build_corpus(cases, parallel_opt);
  EXPECT_LT(serial.samples.size(),
            sd::build_corpus(cases, sd::CorpusOptions{}).samples.size());
  expect_same_corpus(serial, parallel);
}

TEST(ParallelCorpus, CountsParseFailuresAcrossThreads) {
  auto cases = sard_cases(3);
  sd::TestCase broken;
  broken.id = "broken";
  broken.source = "void f( {{{";
  cases.insert(cases.begin() + 2, broken);
  cases.push_back(broken);
  sd::CorpusOptions opt;
  opt.threads = 4;
  auto corpus = sd::build_corpus(cases, opt);
  EXPECT_EQ(corpus.stats.parse_failures, 2);
}

TEST(ParallelCorpus, ZeroThreadsMeansAllCores) {
  const auto cases = sard_cases(4);
  sd::CorpusOptions serial_opt;
  sd::CorpusOptions all_cores;
  all_cores.threads = 0;
  expect_same_corpus(sd::build_corpus(cases, serial_opt),
                     sd::build_corpus(cases, all_cores));
}

TEST(DedupKey, DistinctTokenStreamsNeverAlias) {
  // The old ' '-joined key collapsed these pairs into one key.
  EXPECT_NE(sd::dedup_key({"a b", "c"}), sd::dedup_key({"a", "b c"}));
  EXPECT_NE(sd::dedup_key({"a", "b"}), sd::dedup_key({"a b"}));
  EXPECT_NE(sd::dedup_key({"ab"}), sd::dedup_key({"a", "b"}));
  EXPECT_NE(sd::dedup_key({"x", ""}), sd::dedup_key({"x"}));
  EXPECT_EQ(sd::dedup_key({"a", "b"}), sd::dedup_key({"a", "b"}));
}

TEST(ParallelEval, ConfusionMatchesSerial) {
  // Tiny end-to-end pipeline: train once, evaluate the same split
  // serially and in parallel — eval-mode inference is deterministic, so
  // the confusion counts must match exactly.
  const auto cases = sard_cases(4);
  sc::PipelineConfig config;
  config.model.embed_dim = 12;
  config.model.conv_channels = 8;
  config.model.attn_dim = 12;
  config.model.dense1 = 16;
  config.model.dense2 = 8;
  config.train.epochs = 1;
  config.pretrain_embeddings = false;

  sd::Corpus corpus = sd::build_corpus(cases, config.corpus);
  sd::encode_corpus(corpus);
  sc::SeVulDet detector(config);
  detector.train_on_corpus(corpus, sc::all_sample_refs(corpus));

  auto refs = sc::all_sample_refs(corpus);
  const auto serial = sc::evaluate_detector(detector.model(), refs, 1);
  const auto parallel = sc::evaluate_detector(detector.model(), refs, 4);
  EXPECT_EQ(serial.tp, parallel.tp);
  EXPECT_EQ(serial.fp, parallel.fp);
  EXPECT_EQ(serial.fn, parallel.fn);
  EXPECT_EQ(serial.tn, parallel.tn);
}

TEST(ParallelDetect, FindingsMatchSerial) {
  const auto cases = sard_cases(3);
  sc::PipelineConfig config;
  config.model.embed_dim = 12;
  config.model.conv_channels = 8;
  config.model.attn_dim = 12;
  config.model.dense1 = 16;
  config.model.dense2 = 8;
  config.model.threshold = 0.3f;  // low bar so the scan yields findings
  config.train.epochs = 1;
  config.pretrain_embeddings = false;
  sc::SeVulDet detector(config);
  detector.train(cases);

  // Scan a vulnerable source with several gadgets.
  const std::string& source = cases[1].source;
  auto one = detector.detect(source);

  // Same trained weights (save/load round-trips bit-faithfully), scanned
  // through the parallel path.
  sc::PipelineConfig parallel_config = config;
  parallel_config.corpus.threads = 4;
  sc::SeVulDet parallel_detector(parallel_config);
  const std::string path = ::testing::TempDir() + "pdetect_model.txt";
  detector.save(path);
  parallel_detector.load(path);
  auto many = parallel_detector.detect(source);

  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].function, many[i].function);
    EXPECT_EQ(one[i].line, many[i].line);
    EXPECT_EQ(one[i].token, many[i].token);
    EXPECT_FLOAT_EQ(one[i].probability, many[i].probability);
    EXPECT_EQ(one[i].top_tokens, many[i].top_tokens);
  }
}
