// End-to-end integration tests: source programs -> gadgets -> training ->
// detection, plus model persistence. Kept deliberately small so the whole
// suite stays fast.
#include <gtest/gtest.h>

#include <cstdio>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/dataset/kfold.hpp"
#include "sevuldet/dataset/sard_generator.hpp"

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;

namespace {

sc::PipelineConfig tiny_pipeline_config() {
  sc::PipelineConfig config;
  config.model.embed_dim = 12;
  config.model.conv_channels = 8;
  config.model.attn_dim = 8;
  config.model.dense1 = 24;
  config.model.dense2 = 8;
  config.train.epochs = 5;
  config.train.lr = 0.002f;
  config.word2vec.epochs = 2;
  return config;
}

std::vector<sd::TestCase> tiny_cases() {
  sd::SardConfig config;
  config.pairs_per_category = 8;
  config.long_fraction = 0.0;  // keep sequences short for test speed
  config.seed = 11;
  return sd::generate_sard_like(config);
}

}  // namespace

TEST(Pipeline, TrainsAndBeatsChance) {
  auto cases = tiny_cases();
  sc::SeVulDet detector(tiny_pipeline_config());
  auto result = detector.train(cases);
  EXPECT_TRUE(detector.trained());
  ASSERT_EQ(result.epoch_losses.size(), 5u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(Pipeline, DetectFindsPlantedFlaw) {
  auto cases = tiny_cases();
  sc::SeVulDet detector(tiny_pipeline_config());
  detector.train(cases);

  // Detect on vulnerable programs drawn from the training distribution —
  // at minimum the detector must flag flaws it has trained on.
  std::vector<sc::Finding> findings;
  for (const auto& tc : cases) {
    if (!tc.vulnerable) continue;
    auto found = detector.detect(tc.source);
    findings.insert(findings.end(), found.begin(), found.end());
    if (!findings.empty()) break;
  }
  // The detector should flag something in the vulnerable program...
  ASSERT_FALSE(findings.empty());
  EXPECT_GT(findings[0].probability, detector.config().model.threshold);
  EXPECT_FALSE(findings[0].function.empty());
  EXPECT_GT(findings[0].line, 0);
  // ...and attach attention explanations.
  EXPECT_FALSE(findings[0].top_tokens.empty());
  EXPECT_FLOAT_EQ(findings[0].top_tokens[0].second, 1.0f);  // normalized to max
}

TEST(Pipeline, DetectBeforeTrainThrows) {
  sc::SeVulDet detector(tiny_pipeline_config());
  EXPECT_THROW(detector.detect("void f() { }"), std::logic_error);
}

TEST(Pipeline, SaveLoadRoundTrip) {
  auto cases = tiny_cases();
  sc::SeVulDet detector(tiny_pipeline_config());
  detector.train(cases);

  const std::string path = "/tmp/sevuldet_test_model.txt";
  detector.save(path);

  sc::SeVulDet restored(tiny_pipeline_config());
  restored.load(path);
  std::remove(path.c_str());

  // Identical predictions on identical input.
  std::vector<int> probe = {2, 3, 4, 5, 6, 7, 8};
  EXPECT_FLOAT_EQ(detector.predict(probe), restored.predict(probe));
  EXPECT_EQ(detector.vocab().size(), restored.vocab().size());
}

// A reloaded detector must reproduce the original's detection findings
// exactly — lines, probabilities, and attention explanations.
TEST(Pipeline, FindingsIdenticalAfterReload) {
  auto cases = tiny_cases();
  sc::PipelineConfig config = tiny_pipeline_config();
  config.model.threshold = 0.3f;  // low bar so the scan yields findings
  sc::SeVulDet detector(config);
  detector.train(cases);

  std::string source;
  std::vector<sc::Finding> expected;
  for (const auto& tc : cases) {
    if (!tc.vulnerable) continue;
    expected = detector.detect(tc.source);
    if (!expected.empty()) {
      source = tc.source;
      break;
    }
  }
  ASSERT_FALSE(expected.empty());

  const std::string path = ::testing::TempDir() + "reload_findings_model.bin";
  detector.save(path);
  sc::SeVulDet restored(config);
  restored.load(path);
  std::remove(path.c_str());

  const auto actual = restored.detect(source);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].function, expected[i].function);
    EXPECT_EQ(actual[i].line, expected[i].line);
    EXPECT_EQ(actual[i].category, expected[i].category);
    EXPECT_EQ(actual[i].token, expected[i].token);
    EXPECT_FLOAT_EQ(actual[i].probability, expected[i].probability);
    EXPECT_EQ(actual[i].top_tokens, expected[i].top_tokens);
  }
}

// The legacy v1 text format must stay loadable, and load identically.
TEST(Pipeline, LoadsLegacyV1TextFormat) {
  auto cases = tiny_cases();
  sc::SeVulDet detector(tiny_pipeline_config());
  detector.train(cases);

  const std::string path = ::testing::TempDir() + "legacy_v1_model.txt";
  detector.save_text_v1(path);
  sc::SeVulDet restored(tiny_pipeline_config());
  restored.load(path);
  std::remove(path.c_str());

  std::vector<int> probe = {2, 3, 4, 5, 6, 7, 8};
  EXPECT_FLOAT_EQ(detector.predict(probe), restored.predict(probe));
  EXPECT_EQ(detector.vocab().size(), restored.vocab().size());
}

TEST(Pipeline, LoadRejectsGarbage) {
  const std::string path = "/tmp/sevuldet_test_garbage.txt";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a model\n", f);
    std::fclose(f);
  }
  sc::SeVulDet detector(tiny_pipeline_config());
  EXPECT_THROW(detector.load(path), std::runtime_error);
  std::remove(path.c_str());
}

// Truncated or bit-flipped model files of either format must throw, not
// load a silently NUL-padded vocabulary or half-written weights.
TEST(Pipeline, LoadRejectsTruncatedAndCorruptFiles) {
  auto cases = tiny_cases();
  sc::SeVulDet detector(tiny_pipeline_config());
  detector.train(cases);

  const std::string v2_path = ::testing::TempDir() + "trunc_model.bin";
  const std::string v1_path = ::testing::TempDir() + "trunc_model.txt";
  detector.save(v2_path);
  detector.save_text_v1(v1_path);

  auto read_all = [](const std::string& path) {
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
    return bytes;
  };
  auto write_all = [](const std::string& path, const std::string& bytes) {
    FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  };

  const std::string v2_bytes = read_all(v2_path);
  const std::string v1_bytes = read_all(v1_path);
  const std::string probe_path = ::testing::TempDir() + "probe_model.bin";

  // v2: cut at several depths (header, mid-payload, missing checksum).
  for (std::size_t keep :
       {std::size_t{10}, v2_bytes.size() / 2, v2_bytes.size() - 4}) {
    write_all(probe_path, v2_bytes.substr(0, keep));
    sc::SeVulDet probe(tiny_pipeline_config());
    EXPECT_THROW(probe.load(probe_path), std::runtime_error) << "kept " << keep;
  }
  // v2: single corrupt byte mid-payload fails the checksum.
  {
    std::string corrupt = v2_bytes;
    corrupt[corrupt.size() / 2] ^= 0x40;
    write_all(probe_path, corrupt);
    sc::SeVulDet probe(tiny_pipeline_config());
    EXPECT_THROW(probe.load(probe_path), std::runtime_error);
  }
  // v1: truncating inside the vocabulary blob must throw (this was the
  // silent-NUL-padding bug), as must truncating the parameter floats.
  {
    const std::size_t vocab_cut = v1_bytes.find('\n', v1_bytes.find("vocab")) + 8;
    ASSERT_LT(vocab_cut, v1_bytes.size());
    write_all(probe_path, v1_bytes.substr(0, vocab_cut));
    sc::SeVulDet probe(tiny_pipeline_config());
    EXPECT_THROW(probe.load(probe_path), std::runtime_error);

    write_all(probe_path, v1_bytes.substr(0, v1_bytes.size() / 2));
    sc::SeVulDet probe2(tiny_pipeline_config());
    EXPECT_THROW(probe2.load(probe_path), std::runtime_error);
  }

  std::remove(v2_path.c_str());
  std::remove(v1_path.c_str());
  std::remove(probe_path.c_str());
}

TEST(Trainer, CategoryFilter) {
  auto cases = tiny_cases();
  auto corpus = sd::build_corpus(cases);
  sd::encode_corpus(corpus);
  auto all = sc::all_sample_refs(corpus);
  auto fc = sc::filter_category(all, sevuldet::slicer::TokenCategory::FunctionCall);
  EXPECT_FALSE(fc.empty());
  EXPECT_LT(fc.size(), all.size());
  for (const auto* s : fc) {
    EXPECT_EQ(s->category, sevuldet::slicer::TokenCategory::FunctionCall);
  }
}

TEST(Trainer, EvaluateCountsMatchTestSet) {
  auto cases = tiny_cases();
  auto corpus = sd::build_corpus(cases);
  sd::encode_corpus(corpus);
  auto splits = sd::k_fold_splits(corpus.samples.size(), 5, 1);

  sc::PipelineConfig cfg = tiny_pipeline_config();
  sc::SeVulDet detector(cfg);
  detector.train_on_corpus(corpus, sc::sample_refs(corpus, splits[0].train));
  auto test_refs = sc::sample_refs(corpus, splits[0].test);
  auto confusion = sc::evaluate_detector(detector.model(), test_refs);
  EXPECT_EQ(confusion.total(), static_cast<long long>(test_refs.size()));
}

// Registry-refactor pin: the default backend is still the CNN, its name
// and its on-disk format are unchanged, and saving the same trained
// detector twice is byte-identical (deterministic v2 frames — the file
// bytes a pre-registry build produced for this config). The gat backend
// writes v3 frames; only non-default backends pay the new header.
TEST(Pipeline, DefaultBackendIsCnnWithByteStableV2Files) {
  sc::PipelineConfig config = tiny_pipeline_config();
  EXPECT_EQ(config.backend, "cnn");

  auto cases = tiny_cases();
  sc::SeVulDet detector(config);
  detector.train(cases);
  EXPECT_EQ(detector.model().name(), "SEVulDet(CNN-MultiATT)");

  const std::string a = ::testing::TempDir() + "cnn_pin_a.bin";
  const std::string b = ::testing::TempDir() + "cnn_pin_b.bin";
  detector.save(a);
  detector.save(b);

  auto read_all = [](const std::string& path) {
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
    return bytes;
  };
  const std::string bytes_a = read_all(a);
  const std::string bytes_b = read_all(b);
  std::remove(a.c_str());
  std::remove(b.c_str());

  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a.substr(0, 18), "SEVULDET-MODEL v2\n");
  EXPECT_EQ(bytes_a, bytes_b);
}
