#include <gtest/gtest.h>

#include "sevuldet/baselines/fuzzer.hpp"
#include "sevuldet/baselines/static_tool.hpp"
#include "sevuldet/dataset/realworld.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/parser.hpp"

namespace sb = sevuldet::baselines;
namespace sd = sevuldet::dataset;
namespace sf = sevuldet::frontend;
namespace ss = sevuldet::slicer;

TEST(FlawfinderLike, FlagsRiskyCallsGuardBlind) {
  sb::FlawfinderLike tool;
  // Both a guarded (safe) and an unguarded strcpy get flagged — the
  // lexical tool cannot tell them apart, which is where its FPR comes from.
  auto guarded = tool.scan(R"(
void f(char *s) {
  char d[64];
  if (strlen(s) < 64) {
    strcpy(d, s);
  }
}
)");
  ASSERT_FALSE(guarded.empty());
  EXPECT_EQ(guarded[0].rule, "strcpy");  // flagged although guarded (FPR source)
}

TEST(FlawfinderLike, RuleHitLinesAreAccurate) {
  sb::FlawfinderLike tool;
  auto findings = tool.scan("void f(char *s) {\n  char d[8];\n  strcpy(d, s);\n}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "strcpy");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_GE(findings[0].risk, 4);
}

TEST(FlawfinderLike, MissesNonCallFlaws) {
  sb::FlawfinderLike tool;
  // An obvious out-of-bounds write with no risky call: lexical tools are
  // blind to it (their FNR source).
  EXPECT_TRUE(tool.scan(R"(
void f(int i) {
  int a[4];
  a[i] = 1;
}
)").empty());
}

TEST(RatsLike, DifferentRuleMix) {
  sb::RatsLike rats;
  sb::FlawfinderLike flawfinder;
  const char* src = "void f() { srand(1); int x = rand(); }\n";
  EXPECT_FALSE(rats.scan(src).empty());       // RATS flags rand/srand
  EXPECT_TRUE(flawfinder.scan(src).empty());  // Flawfinder list doesn't
}

TEST(CheckmarxLike, GuardAwareness) {
  sb::CheckmarxLike tool;
  // Unguarded variable index -> finding.
  auto unguarded = tool.scan(R"(
void f(int i) {
  int a[4];
  a[i] = 1;
}
)");
  EXPECT_FALSE(unguarded.empty());
  // Guarded index -> clean.
  auto guarded = tool.scan(R"(
void f(int i) {
  int a[4];
  if (i >= 0 && i < 4) {
    a[i] = 1;
  }
}
)");
  EXPECT_TRUE(guarded.empty());
}

TEST(CheckmarxLike, PathInsensitiveOnFig1Pairs) {
  // The flaw sits in the ELSE branch but the guard mentions the index, so
  // the path-insensitive rule engine passes it — the paper's core critique.
  sb::CheckmarxLike tool;
  auto findings = tool.scan(R"(
void f(int i, int v) {
  int a[64];
  if (i < 64) {
    report(i);
  } else {
    a[i] = v;
  }
}
)");
  EXPECT_TRUE(findings.empty()) << "path-insensitive engine should miss this";
}

TEST(CheckmarxLike, DetectsLineOrderUaf) {
  sb::CheckmarxLike tool;
  auto findings = tool.scan(R"(
void f(int v) {
  char *p = (char *)malloc(8);
  free(p);
  *p = (char)v;
}
)");
  bool has_uaf = false;
  for (const auto& f : findings) {
    if (f.rule.find("use-after-free") != std::string::npos) has_uaf = true;
  }
  EXPECT_TRUE(has_uaf);
}

TEST(VuddyLike, DetectsExactClones) {
  sd::TemplateSpec spec;
  spec.category = ss::TokenCategory::FunctionCall;
  spec.vulnerable = true;
  spec.seed = 42;
  auto known = sd::generate_case(spec);

  sb::VuddyLike tool;
  tool.train({known});
  EXPECT_GT(tool.fingerprint_count(), 0u);
  // Scanning the same source finds the clone.
  EXPECT_FALSE(tool.scan(known.source).empty());
}

TEST(VuddyLike, MissesModifiedCode) {
  sd::TemplateSpec spec;
  spec.category = ss::TokenCategory::FunctionCall;
  spec.vulnerable = true;
  spec.seed = 42;
  auto known = sd::generate_case(spec);
  spec.seed = 43;  // different names/constants
  auto variant = sd::generate_case(spec);

  sb::VuddyLike tool;
  tool.train({known});
  EXPECT_TRUE(tool.scan(variant.source).empty())
      << "clone detection must not generalize beyond abstraction";
}

TEST(VuddyLike, AbstractionIgnoresIdentifierNames) {
  auto a = sb::VuddyLike::fingerprint("void f(int alpha) { int beta = alpha + 1; }");
  auto b = sb::VuddyLike::fingerprint("void g(int x) { int y = x + 1; }");
  EXPECT_EQ(a, b);
  auto c = sb::VuddyLike::fingerprint("void g(int x) { int y = x + 2; }");
  EXPECT_NE(a, c);  // constants are part of the fingerprint
}

TEST(RealWorld, CorpusParsesAndHasThreePlanted) {
  auto corpus = sd::generate_realworld({});
  ASSERT_EQ(corpus.planted.size(), 3u);
  for (const auto& tc : corpus.cases) {
    EXPECT_NO_THROW(sf::parse(tc.source)) << tc.id;
  }
  for (const auto& bug : corpus.planted) {
    EXPECT_FALSE(bug.testcase.vulnerable_lines.empty()) << bug.cve;
    auto unit = sf::parse(bug.testcase.source);
    EXPECT_NE(unit.find_function("harness_main"), nullptr) << bug.cve;
  }
}

TEST(Fuzzer, FindsBroadTriggerHangs) {
  auto corpus = sd::generate_realworld({});
  sb::FuzzConfig config;
  config.executions = 4000;
  config.step_limit = 50000;

  // 9776-like (zero register) and 4453-like (huge count) are broad.
  for (const auto& bug : corpus.planted) {
    if (bug.cve == "CVE-2016-9104") continue;
    auto unit = sf::parse(bug.testcase.source);
    auto report = sb::fuzz_program(unit, config);
    EXPECT_TRUE(report.found) << bug.cve;
    EXPECT_EQ(report.outcome, sevuldet::interp::Outcome::Hang) << bug.cve;
  }
}

TEST(Fuzzer, MissesMagicGatedBug) {
  auto corpus = sd::generate_realworld({});
  const auto* xattr = &corpus.planted[1];
  ASSERT_EQ(xattr->cve, "CVE-2016-9104");
  auto unit = sf::parse(xattr->testcase.source);
  sb::FuzzConfig config;
  config.executions = 4000;
  config.step_limit = 50000;
  auto report = sb::fuzz_program(unit, config);
  EXPECT_FALSE(report.found)
      << "the 32-bit protocol magic must defeat mutation within budget";
}

TEST(Fuzzer, PatchedVersionsSurviveFuzzing) {
  // The patched fec variant must not hang.
  auto corpus = sd::generate_realworld({});
  for (const auto& tc : corpus.cases) {
    if (tc.vulnerable || tc.id.find("rw-fec") == std::string::npos) continue;
    auto unit = sf::parse(tc.source);
    if (unit.find_function("harness_main") == nullptr) continue;
    sb::FuzzConfig config;
    config.executions = 500;
    config.step_limit = 200000;
    auto report = sb::fuzz_program(unit, config);
    EXPECT_FALSE(report.found) << tc.id << " outcome "
                               << sevuldet::interp::outcome_name(report.outcome)
                               << " line " << report.fault_line;
    break;  // one representative is enough for the suite's time budget
  }
}

TEST(Fuzzer, CoverageGrowsAndQueueRetainsInputs) {
  auto corpus = sd::generate_realworld({});
  auto unit = sf::parse(corpus.planted[1].testcase.source);  // magic-gated
  sb::FuzzConfig config;
  config.executions = 300;
  auto report = sb::fuzz_program(unit, config);
  EXPECT_GT(report.coverage_edges, 0u);
  EXPECT_GE(report.queue_size, 1u);
}
