// The length-bucketed batched inference engine's load-bearing contract:
// at fp32, SeVulDetNet::predict_batch is BITWISE identical to the
// per-gadget predict_captured loop — across bucket boundaries, odd
// batch sizes, every attention ablation, multiclass heads, and the
// explain capture (attention read-outs travel with the scores). Models
// without a native batched engine fall back to the base-class loop,
// which must be byte-identical to repeated predict(). Daemon-level
// byte-identity (client bytes vs in-process detect) is pinned in
// serve_test.cpp — the daemon scores through this same engine.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "sevuldet/models/birnn_net.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/nn/autograd.hpp"

namespace sm = sevuldet::models;
namespace nn = sevuldet::nn;

namespace {

/// Deterministic token sequences with deliberate length collisions:
/// lengths cycle through a template set (multi-gadget buckets) with
/// every fourth gadget on a one-off length (single-segment buckets),
/// including lengths below the conv kernel (padding path).
std::vector<std::vector<int>> make_gadgets(int count, int vocab) {
  constexpr int kTemplateLens[] = {2, 7, 12, 20, 33, 50};
  std::vector<std::vector<int>> gadgets;
  gadgets.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int len =
        i % 4 == 3 ? 1 + (i * 17) % 61 : kTemplateLens[(i / 4) % 6];
    std::vector<int> ids(static_cast<std::size_t>(len));
    for (int j = 0; j < len; ++j) {
      ids[static_cast<std::size_t>(j)] = 1 + (i * 29 + j * 7) % (vocab - 2);
    }
    gadgets.push_back(std::move(ids));
  }
  return gadgets;
}

bool bits_equal(float a, float b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Per-gadget reference: the exact loop the pipeline ran before the
/// batched engine existed (arena-scoped predict_captured per gadget).
std::vector<sm::Prediction> reference_predictions(
    sm::SeVulDetNet& net, const std::vector<std::vector<int>>& gadgets,
    bool capture_spatial = false) {
  std::vector<sm::Prediction> out;
  out.reserve(gadgets.size());
  nn::Graph graph;
  for (const auto& ids : gadgets) {
    nn::GraphScope scope(graph);
    out.push_back(net.predict_captured(ids, capture_spatial));
  }
  return out;
}

void expect_batched_bitwise(sm::SeVulDetNet& net,
                            const std::vector<std::vector<int>>& gadgets,
                            int batch, bool capture_spatial = false) {
  std::vector<sm::BatchItem> items;
  items.reserve(gadgets.size());
  for (const auto& ids : gadgets) items.push_back({&ids, capture_spatial});
  std::vector<sm::Prediction> batched(gadgets.size());
  for (std::size_t off = 0; off < items.size();
       off += static_cast<std::size_t>(batch)) {
    const std::size_t n =
        std::min(static_cast<std::size_t>(batch), items.size() - off);
    net.predict_batch(items.data() + off, n, batched.data() + off);
  }
  const auto expected = reference_predictions(net, gadgets, capture_spatial);
  for (std::size_t i = 0; i < gadgets.size(); ++i) {
    EXPECT_TRUE(bits_equal(batched[i].probability, expected[i].probability))
        << "gadget " << i << " batch " << batch << ": " << batched[i].probability
        << " vs " << expected[i].probability;
    EXPECT_TRUE(bits_equal(batched[i].token_weights, expected[i].token_weights))
        << "token_weights diverge at gadget " << i;
    EXPECT_TRUE(
        bits_equal(batched[i].spatial_weights, expected[i].spatial_weights))
        << "spatial_weights diverge at gadget " << i;
  }
}

sm::ModelConfig small_config() {
  sm::ModelConfig config;
  config.vocab_size = 120;
  config.embed_dim = 12;
  config.conv_channels = 8;
  config.attn_dim = 10;
  config.dense1 = 24;
  config.dense2 = 12;
  return config;
}

}  // namespace

// ---------------------------------------------------------------------------
// fp32 batched == per-gadget, bitwise
// ---------------------------------------------------------------------------

TEST(BatchTest, BatchedMatchesPerGadgetBitwise) {
  sm::SeVulDetNet net(small_config());
  const auto gadgets = make_gadgets(37, net.config().vocab_size);
  // Odd batch sizes straddle bucket boundaries: a bucket of same-length
  // gadgets split across two predict_batch calls must score identically.
  for (const int batch : {1, 2, 3, 5, 17, 37}) {
    expect_batched_bitwise(net, gadgets, batch);
  }
}

TEST(BatchTest, AblationsMatchPerGadgetBitwise) {
  // The RQ2 ablations exercise every engine branch: no token attention
  // (no alpha stage), no CBAM (conv1 -> conv2 direct), parallel CBAM
  // order, and the bare CNN.
  for (const bool token_attention : {true, false}) {
    for (const bool multilayer : {true, false}) {
      for (const bool sequential : {true, false}) {
        sm::ModelConfig config = small_config();
        config.token_attention = token_attention;
        config.multilayer_attention = multilayer;
        config.cbam_sequential = sequential;
        sm::SeVulDetNet net(config);
        const auto gadgets = make_gadgets(13, config.vocab_size);
        expect_batched_bitwise(net, gadgets, 5);
      }
    }
  }
}

TEST(BatchTest, MulticlassMatchesPerGadgetBitwise) {
  sm::ModelConfig config = small_config();
  config.num_classes = 4;
  sm::SeVulDetNet net(config);
  const auto gadgets = make_gadgets(11, config.vocab_size);
  expect_batched_bitwise(net, gadgets, 4);
}

TEST(BatchTest, ExplainCaptureIdenticalUnderBatching) {
  // capture_spatial is the `explain` path: the CBAM spatial map must
  // travel with each prediction and match the per-gadget read-out.
  sm::SeVulDetNet net(small_config());
  const auto gadgets = make_gadgets(9, net.config().vocab_size);
  expect_batched_bitwise(net, gadgets, 4, /*capture_spatial=*/true);
  // Mixed capture flags within one batch: only flagged items pay for
  // the copy, the rest stay empty.
  std::vector<sm::BatchItem> items;
  for (std::size_t i = 0; i < gadgets.size(); ++i) {
    items.push_back({&gadgets[i], i % 2 == 0});
  }
  const auto batched = net.predict_batch(items);
  const auto expected = reference_predictions(net, gadgets, true);
  for (std::size_t i = 0; i < gadgets.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(
          bits_equal(batched[i].spatial_weights, expected[i].spatial_weights));
      EXPECT_FALSE(batched[i].spatial_weights.empty());
    } else {
      EXPECT_TRUE(batched[i].spatial_weights.empty());
    }
  }
}

TEST(BatchTest, RepeatedCallsReuseScratchAndStayIdentical) {
  // Steady-state reuse: the engine recycles its scratch across calls;
  // a second pass over the same gadgets must reproduce the first bit
  // for bit (stale scratch contents must never leak into results).
  sm::SeVulDetNet net(small_config());
  const auto gadgets = make_gadgets(21, net.config().vocab_size);
  std::vector<sm::BatchItem> items;
  for (const auto& ids : gadgets) items.push_back({&ids, false});
  const auto first = net.predict_batch(items);
  const auto second = net.predict_batch(items);
  for (std::size_t i = 0; i < gadgets.size(); ++i) {
    EXPECT_TRUE(bits_equal(first[i].probability, second[i].probability));
    EXPECT_TRUE(bits_equal(first[i].token_weights, second[i].token_weights));
  }
  EXPECT_GT(net.scratch_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// base-class fallback (models without a native batched engine)
// ---------------------------------------------------------------------------

TEST(BatchTest, BiRnnFallbackMatchesRepeatedPredict) {
  sm::ModelConfig config = small_config();
  config.fixed_length = 20;
  const auto net = sm::make_bgru(config);
  const auto gadgets = make_gadgets(15, config.vocab_size);
  std::vector<sm::BatchItem> items;
  for (const auto& ids : gadgets) items.push_back({&ids, false});
  const auto batched = net->predict_batch(items);
  for (std::size_t i = 0; i < gadgets.size(); ++i) {
    EXPECT_TRUE(bits_equal(batched[i].probability, net->predict(gadgets[i])))
        << "BiRnn fallback diverges at gadget " << i;
    EXPECT_TRUE(batched[i].token_weights.empty());
  }
}

// ---------------------------------------------------------------------------
// quantized paths
// ---------------------------------------------------------------------------

TEST(BatchTest, QuantizedScoresStayProbabilitiesNearFp32) {
  // fp16/int8 are accuracy trade-offs, not exactness contracts: scores
  // must stay valid probabilities and track fp32 closely at these
  // shapes (the CI quality gate bounds the corpus-level F1/AUC drift).
  sm::SeVulDetNet net(small_config());
  const auto gadgets = make_gadgets(17, net.config().vocab_size);
  std::vector<sm::BatchItem> items;
  for (const auto& ids : gadgets) items.push_back({&ids, false});
  const auto fp32 = net.predict_batch(items);
  for (const sm::Precision precision :
       {sm::Precision::kFp16, sm::Precision::kInt8}) {
    net.set_precision(precision);
    const auto quant = net.predict_batch(items);
    for (std::size_t i = 0; i < gadgets.size(); ++i) {
      ASSERT_TRUE(std::isfinite(quant[i].probability));
      EXPECT_GE(quant[i].probability, 0.0f);
      EXPECT_LE(quant[i].probability, 1.0f);
      EXPECT_NEAR(quant[i].probability, fp32[i].probability, 0.15f)
          << sm::precision_name(precision) << " gadget " << i;
      // Attention runs fp32 in every mode — read-outs stay bitwise.
      EXPECT_TRUE(bits_equal(quant[i].token_weights, fp32[i].token_weights));
    }
  }
  // Dropping back to fp32 restores exactness (quant caches are opt-in).
  net.set_precision(sm::Precision::kFp32);
  const auto back = net.predict_batch(items);
  for (std::size_t i = 0; i < gadgets.size(); ++i) {
    EXPECT_TRUE(bits_equal(back[i].probability, fp32[i].probability));
  }
}

TEST(BatchTest, ClonesInheritPrecisionAndScoreIdentically) {
  // The serve daemon scores on per-worker clones: a clone must carry
  // the parent's precision and produce the same bytes.
  sm::SeVulDetNet net(small_config());
  net.set_precision(sm::Precision::kInt8);
  const auto clone = net.clone_net();
  EXPECT_EQ(clone->precision(), sm::Precision::kInt8);
  const auto gadgets = make_gadgets(7, net.config().vocab_size);
  std::vector<sm::BatchItem> items;
  for (const auto& ids : gadgets) items.push_back({&ids, false});
  const auto a = net.predict_batch(items);
  const auto b = clone->predict_batch(items);
  for (std::size_t i = 0; i < gadgets.size(); ++i) {
    EXPECT_TRUE(bits_equal(a[i].probability, b[i].probability));
  }
}
