// Property-based tests: invariants that must hold for EVERY generated
// program across the whole template lattice (category x vulnerable x
// ambiguous x long), checked with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/token.hpp"
#include "sevuldet/graph/dominance.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/slicer/gadget.hpp"
#include "sevuldet/util/strings.hpp"

namespace sd = sevuldet::dataset;
namespace sg = sevuldet::graph;
namespace sn = sevuldet::normalize;
namespace ss = sevuldet::slicer;
namespace su = sevuldet::util;

struct CaseParam {
  ss::TokenCategory category;
  bool vulnerable;
  bool ambiguous;
  bool long_variant;
  std::uint64_t seed;
};

static std::string param_name(const testing::TestParamInfo<CaseParam>& info) {
  const auto& p = info.param;
  std::string name = ss::category_name(p.category);
  name += p.vulnerable ? "_bad" : "_good";
  if (p.ambiguous) name += "_amb";
  if (p.long_variant) name += "_long";
  name += "_s" + std::to_string(p.seed);
  return name;
}

class GeneratedCaseProperties : public testing::TestWithParam<CaseParam> {
 protected:
  sd::TestCase make_case() const {
    const auto& p = GetParam();
    sd::TemplateSpec spec;
    spec.category = p.category;
    spec.vulnerable = p.vulnerable;
    spec.ambiguous = p.ambiguous;
    spec.long_variant = p.long_variant;
    spec.filler = p.long_variant ? 25 : 0;
    spec.seed = p.seed;
    return sd::generate_case(spec);
  }
};

TEST_P(GeneratedCaseProperties, SourceParsesAndFlagsAreConsistent) {
  auto tc = make_case();
  sg::ProgramGraph program;
  ASSERT_NO_THROW(program = sg::build_program_graph(tc.source)) << tc.source;
  EXPECT_FALSE(program.functions.empty());
  EXPECT_EQ(tc.vulnerable, !tc.vulnerable_lines.empty());
}

TEST_P(GeneratedCaseProperties, GadgetInvariants) {
  auto tc = make_case();
  auto program = sg::build_program_graph(tc.source);
  auto source_lines = su::split_lines(tc.source);

  for (const auto& token : ss::find_special_tokens(program)) {
    auto gadget = ss::generate_gadget(program, token);
    ASSERT_FALSE(gadget.lines.empty());

    // 1. The criterion's line is in the gadget.
    bool has_criterion = false;
    std::set<std::string> fns_seen;
    for (const auto& line : gadget.lines) {
      if (line.function == token.function && line.line == token.line) {
        has_criterion = true;
      }
      fns_seen.insert(line.function);
      // 2. Every gadget line quotes the actual source line.
      ASSERT_GE(line.line, 1);
      ASSERT_LE(line.line, static_cast<int>(source_lines.size()));
      EXPECT_EQ(line.text,
                su::trim(source_lines[static_cast<std::size_t>(line.line - 1)]));
    }
    EXPECT_TRUE(has_criterion) << token.text;

    // 3. Lines are strictly increasing within each function block.
    for (std::size_t i = 1; i < gadget.lines.size(); ++i) {
      if (gadget.lines[i].function == gadget.lines[i - 1].function) {
        EXPECT_GT(gadget.lines[i].line, gadget.lines[i - 1].line);
      }
    }

    // 4. PS-CG is a superset of the plain CG lines.
    ss::GadgetOptions plain;
    plain.path_sensitive = false;
    auto cg = ss::generate_gadget(program, token, plain);
    std::set<std::pair<std::string, int>> ps_lines;
    for (const auto& line : gadget.lines) ps_lines.insert({line.function, line.line});
    for (const auto& line : cg.lines) {
      EXPECT_TRUE(ps_lines.contains({line.function, line.line}))
          << "CG line " << line.line << " missing from PS-CG";
    }
  }
}

TEST_P(GeneratedCaseProperties, SlicesAreClosedUnderSelection) {
  // Every unit in a backward slice must be reachable from the criterion
  // through dependence edges — no free-floating statements.
  auto tc = make_case();
  auto program = sg::build_program_graph(tc.source);
  auto tokens = ss::find_special_tokens(program);
  if (tokens.empty()) GTEST_SKIP();
  const auto& token = tokens.front();

  ss::SliceOptions options;
  options.interprocedural = false;  // closure within one function
  auto slice = ss::compute_backward_slice(program, token.function, token.unit,
                                          options);
  const auto* pdg = program.pdg_of(token.function);
  ASSERT_NE(pdg, nullptr);
  const auto& units = slice.units_by_fn.at(token.function);
  // Fixpoint check: deps of every sliced unit are also sliced.
  for (int id : units) {
    for (int dep : pdg->data.deps[static_cast<std::size_t>(id)]) {
      EXPECT_TRUE(units.contains(dep)) << "data dep " << dep << " escaped";
    }
    for (int dep : pdg->control.deps[static_cast<std::size_t>(id)]) {
      EXPECT_TRUE(units.contains(dep)) << "control dep " << dep << " escaped";
    }
  }
}

TEST_P(GeneratedCaseProperties, NormalizationIsIdempotentAndComplete) {
  auto tc = make_case();
  auto program = sg::build_program_graph(tc.source);
  for (const auto& token : ss::find_special_tokens(program)) {
    auto gadget = ss::generate_gadget(program, token);
    auto once = sn::normalize_gadget(gadget);
    auto twice = sn::normalize_text(once.text());
    EXPECT_EQ(once.text(), twice.text());
    // No raw user identifiers survive: every identifier token is a
    // keyword, preserved name, library function, or varK/funK.
    for (const auto& tok : once.tokens) {
      if (tok.empty() || !(std::isalpha(static_cast<unsigned char>(tok[0])) ||
                           tok[0] == '_')) {
        continue;
      }
      const bool is_placeholder = su::starts_with(tok, "var") ||
                                  su::starts_with(tok, "fun");
      const bool is_known = sevuldet::frontend::is_c_keyword(tok) ||
                            ss::is_library_function(tok) || tok == "NULL" ||
                            tok == "size_t" || tok == "INT_MAX";
      EXPECT_TRUE(is_placeholder || is_known) << "leaked identifier: " << tok;
    }
  }
}

TEST_P(GeneratedCaseProperties, ControlRangesNestOrDisjoint) {
  // Ranges of a function either nest or are disjoint — never partially
  // overlap (brace discipline).
  auto tc = make_case();
  auto program = sg::build_program_graph(tc.source);
  for (const auto& pdg : program.functions) {
    auto ranges = ss::compute_control_ranges(*pdg.fn, program.source_lines);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      for (std::size_t j = i + 1; j < ranges.size(); ++j) {
        const auto& a = ranges[i];
        const auto& b = ranges[j];
        const bool disjoint = a.end_line < b.begin_line || b.end_line < a.begin_line;
        const bool a_in_b = a.begin_line >= b.begin_line && a.end_line <= b.end_line;
        const bool b_in_a = b.begin_line >= a.begin_line && b.end_line <= a.end_line;
        // Bound chains share boundary lines ("} else {"), so allow
        // single-line overlap at the seams within a group.
        const bool seam = a.group == b.group &&
                          (a.end_line == b.begin_line || b.end_line == a.begin_line);
        EXPECT_TRUE(disjoint || a_in_b || b_in_a || seam)
            << pdg.fn->name << ": [" << a.begin_line << "," << a.end_line
            << "] vs [" << b.begin_line << "," << b.end_line << "]";
      }
    }
  }
}

TEST_P(GeneratedCaseProperties, PostDominanceWellFormed) {
  auto tc = make_case();
  auto program = sg::build_program_graph(tc.source);
  for (const auto& pdg : program.functions) {
    auto post = sg::compute_post_dominators(pdg.cfg);
    // Exit post-dominates every reachable node.
    for (const auto& unit : pdg.units) {
      if (post.idom[static_cast<std::size_t>(unit.id)] >= 0) {
        EXPECT_TRUE(post.dominates(pdg.cfg.exit(), unit.id));
      }
    }
  }
}

namespace {

std::vector<CaseParam> all_params() {
  std::vector<CaseParam> params;
  for (auto category :
       {ss::TokenCategory::FunctionCall, ss::TokenCategory::ArrayUsage,
        ss::TokenCategory::PointerUsage, ss::TokenCategory::ArithExpr}) {
    for (bool vulnerable : {false, true}) {
      params.push_back({category, vulnerable, false, false, 1});
      params.push_back({category, vulnerable, true, false, 2});
      params.push_back({category, vulnerable, false, true, 3});
    }
  }
  return params;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(TemplateLattice, GeneratedCaseProperties,
                         testing::ValuesIn(all_params()), param_name);
