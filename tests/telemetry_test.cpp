// The telemetry plane's building blocks, bottom-up: Prometheus text
// exposition (name sanitization, label escaping, cumulative buckets —
// the edges tools/check_metrics.py gates on), the resource-sample ring,
// access-log records, the bounded slow-trace writer, the rotating log
// sink (including sink swaps racing concurrent loggers), and the
// `metrics` op / trace_id protocol round-trips.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sevuldet/serve/protocol.hpp"
#include "sevuldet/serve/telemetry.hpp"
#include "sevuldet/util/log.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/metrics_export.hpp"
#include "sevuldet/util/mini_json.hpp"

namespace fs = std::filesystem;
namespace serve = sevuldet::serve;
namespace telemetry = sevuldet::serve::telemetry;
namespace metrics = sevuldet::util::metrics;
namespace mini_json = sevuldet::util::mini_json;
using sevuldet::util::LogLevel;
using sevuldet::util::RotatingFileSink;

namespace {

fs::path fresh_dir(const char* tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("sevuldet_telemetry_" + std::to_string(::getpid()) + "_" +
                  tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------
// Prometheus exposition.

TEST(PrometheusExport, NameIsPrefixedAndSanitized) {
  EXPECT_EQ("sevuldet_serve_request_ms",
            metrics::prometheus_name("serve.request_ms"));
  EXPECT_EQ("sevuldet_a_b_c", metrics::prometheus_name("a.b-c"));
  EXPECT_EQ("sevuldet_sp_n_y", metrics::prometheus_name("sp%n y"));
  EXPECT_EQ("sevuldet_", metrics::prometheus_name(""));
}

TEST(PrometheusExport, LabelValuesEscapePerSpec) {
  EXPECT_EQ("plain", metrics::prometheus_escape_label("plain"));
  EXPECT_EQ("a\\\\b", metrics::prometheus_escape_label("a\\b"));
  EXPECT_EQ("say \\\"hi\\\"", metrics::prometheus_escape_label("say \"hi\""));
  EXPECT_EQ("line\\nbreak", metrics::prometheus_escape_label("line\nbreak"));
  EXPECT_EQ("\\\\\\\"\\n",
            metrics::prometheus_escape_label("\\\"\n"));  // all three at once
}

TEST(PrometheusExport, EmptySnapshotRendersEmpty) {
  EXPECT_EQ("", metrics::to_prometheus(metrics::Snapshot{}));
}

TEST(PrometheusExport, CountersAndGaugesTyped) {
  metrics::Snapshot snapshot;
  snapshot.counters["serve.requests"] = 7;
  snapshot.gauges["proc.rss_bytes"] = 123456.0;
  const std::string text = metrics::to_prometheus(snapshot);
  EXPECT_NE(std::string::npos,
            text.find("# TYPE sevuldet_serve_requests counter\n"
                      "sevuldet_serve_requests 7\n"));
  EXPECT_NE(std::string::npos,
            text.find("# TYPE sevuldet_proc_rss_bytes gauge\n"
                      "sevuldet_proc_rss_bytes 123456\n"));
}

TEST(PrometheusExport, RegistryLabelsBecomeInfoSamples) {
  metrics::Snapshot snapshot;
  snapshot.labels["backend"] = "SEVulDet(CNN-MultiATT)";
  snapshot.labels["note"] = "has \"quotes\"\nand\\slash";
  const std::string text = metrics::to_prometheus(snapshot);
  EXPECT_NE(std::string::npos, text.find("# TYPE sevuldet_label_info gauge\n"));
  EXPECT_NE(std::string::npos,
            text.find("sevuldet_label_info{name=\"backend\","
                      "value=\"SEVulDet(CNN-MultiATT)\"} 1\n"));
  EXPECT_NE(std::string::npos,
            text.find("sevuldet_label_info{name=\"note\","
                      "value=\"has \\\"quotes\\\"\\nand\\\\slash\"} 1\n"));
}

TEST(PrometheusExport, SingleSampleHistogram) {
  metrics::Snapshot snapshot;
  metrics::HistogramSnapshot h;
  h.count = 1;
  h.sum = 2.5;
  h.min = h.max = 2.5;
  h.buckets = {{4.0, 1}};
  snapshot.histograms["serve.request_ms"] = h;
  const std::string text = metrics::to_prometheus(snapshot);
  EXPECT_NE(std::string::npos,
            text.find("# TYPE sevuldet_serve_request_ms histogram\n"));
  EXPECT_NE(std::string::npos,
            text.find("sevuldet_serve_request_ms_bucket{le=\"4\"} 1\n"));
  EXPECT_NE(std::string::npos,
            text.find("sevuldet_serve_request_ms_bucket{le=\"+Inf\"} 1\n"));
  EXPECT_NE(std::string::npos, text.find("sevuldet_serve_request_ms_sum 2.5\n"));
  EXPECT_NE(std::string::npos, text.find("sevuldet_serve_request_ms_count 1\n"));
}

/// The registry stores per-bucket counts; the exposition must emit
/// cumulative counts, with the +Inf bucket equal to _count even when
/// the sparse per-bucket list does not cover every observation bound.
TEST(PrometheusExport, BucketsAccumulateAndInfMatchesCount) {
  metrics::Snapshot snapshot;
  metrics::HistogramSnapshot h;
  h.count = 6;
  h.sum = 40.0;
  h.buckets = {{1.0, 2}, {8.0, 3}, {64.0, 1}};
  snapshot.histograms["x"] = h;
  const std::string text = metrics::to_prometheus(snapshot);
  EXPECT_NE(std::string::npos, text.find("sevuldet_x_bucket{le=\"1\"} 2\n"));
  EXPECT_NE(std::string::npos, text.find("sevuldet_x_bucket{le=\"8\"} 5\n"));
  EXPECT_NE(std::string::npos, text.find("sevuldet_x_bucket{le=\"64\"} 6\n"));
  EXPECT_NE(std::string::npos, text.find("sevuldet_x_bucket{le=\"+Inf\"} 6\n"));
  EXPECT_NE(std::string::npos, text.find("sevuldet_x_count 6\n"));
}

TEST(PrometheusExport, DeterministicForASnapshot) {
  metrics::Snapshot snapshot;
  snapshot.counters["b"] = 2;
  snapshot.counters["a"] = 1;
  snapshot.gauges["g"] = 0.5;
  metrics::HistogramSnapshot h;
  h.count = 3;
  h.sum = 9.0;
  h.buckets = {{2.0, 3}};
  snapshot.histograms["h"] = h;
  EXPECT_EQ(metrics::to_prometheus(snapshot), metrics::to_prometheus(snapshot));
  // Sorted maps in, sorted text out: "a" renders before "b".
  const std::string text = metrics::to_prometheus(snapshot);
  EXPECT_LT(text.find("sevuldet_a 1"), text.find("sevuldet_b 2"));
}

/// Exporting the live registry while other threads observe must always
/// produce internally consistent text: every export's +Inf bucket
/// equals its _count (the snapshot is a point-in-time merge, never a
/// torn read).
TEST(PrometheusExport, ConsistentUnderConcurrentObservation) {
  metrics::reset();
  metrics::set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&stop] {
      for (int i = 0; !stop.load(); ++i) {
        metrics::counter_add("teltest.ops");
        metrics::observe_ms("teltest.ms", 0.5 + (i % 7));
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    const std::string text = metrics::to_prometheus();
    const std::string inf_line = "sevuldet_teltest_ms_bucket{le=\"+Inf\"} ";
    const std::string count_line = "sevuldet_teltest_ms_count ";
    auto inf_at = text.find(inf_line);
    auto count_at = text.find(count_line);
    if (inf_at == std::string::npos) continue;  // before the first observe
    ASSERT_NE(std::string::npos, count_at);
    const std::string inf_value =
        text.substr(inf_at + inf_line.size(),
                    text.find('\n', inf_at) - inf_at - inf_line.size());
    const std::string count_value =
        text.substr(count_at + count_line.size(),
                    text.find('\n', count_at) - count_at - count_line.size());
    EXPECT_EQ(inf_value, count_value) << "round " << round;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  metrics::set_enabled(false);
  metrics::reset();
}

// ---------------------------------------------------------------------
// Resource sampling ring.

TEST(TelemetryRing, SampleProcessReportsLiveProcess) {
  const telemetry::ResourceSample sample = telemetry::sample_process(3.0, 42);
  EXPECT_GT(sample.unix_seconds, 1.5e9);  // sometime after 2017
  EXPECT_EQ(3.0, sample.queue_depth);
  EXPECT_EQ(42, sample.requests);
#ifdef __linux__
  EXPECT_GT(sample.rss_bytes, 0.0);
  EXPECT_GT(sample.open_fds, 0.0);
  EXPECT_GE(sample.cpu_user_seconds + sample.cpu_sys_seconds, 0.0);
#endif
}

TEST(TelemetryRing, BoundedOldestFirstOverwrite) {
  telemetry::SampleRing ring(3);
  EXPECT_EQ(0u, ring.size());
  EXPECT_TRUE(ring.last(5).empty());
  for (int i = 1; i <= 5; ++i) {
    telemetry::ResourceSample sample;
    sample.requests = i;
    ring.push(sample);
  }
  EXPECT_EQ(3u, ring.size());
  EXPECT_EQ(3u, ring.capacity());
  const auto last2 = ring.last(2);
  ASSERT_EQ(2u, last2.size());
  EXPECT_EQ(4, last2[0].requests);  // oldest of the two
  EXPECT_EQ(5, last2[1].requests);
  const auto all = ring.last(99);  // clamps to size
  ASSERT_EQ(3u, all.size());
  EXPECT_EQ(3, all[0].requests);
  EXPECT_EQ(5, all[2].requests);
}

TEST(TelemetryRing, SamplesJsonParses) {
  telemetry::ResourceSample sample;
  sample.unix_seconds = 1700000000.25;
  sample.rss_bytes = 1048576.0;
  sample.cpu_user_seconds = 1.5;
  sample.queue_depth = 2.0;
  sample.requests = 9;
  mini_json::Value doc = mini_json::parse(telemetry::samples_to_json({sample}));
  ASSERT_EQ(1u, doc.array.size());
  EXPECT_EQ(1700000000.25, doc.array[0].at("unix_seconds").number);
  EXPECT_EQ(1048576.0, doc.array[0].at("rss_bytes").number);
  EXPECT_EQ(9.0, doc.array[0].at("requests").number);
  EXPECT_EQ("[]", telemetry::samples_to_json({}));
}

// ---------------------------------------------------------------------
// Access-log records.

TEST(TelemetryAccessLog, RecordLeadsWithSchemaAndRoundTrips) {
  telemetry::AccessRecord record;
  record.trace_id = "abc-7";
  record.op = "scan";
  record.unix_seconds = 1700000000.5;
  record.request_bytes = 321;
  record.response_bytes = 654;
  record.queue_ms = 0.25;
  record.infer_ms = 3.5;
  record.total_ms = 4.75;
  record.batch_size = 2;
  record.precision = "fp32";
  record.backend = "SEVulDet(CNN-MultiATT)";
  record.error = "";
  const std::string line = telemetry::access_record_to_json(record);
  EXPECT_EQ(0u, line.find("{\"schema_version\":1,\"trace_id\":\"abc-7\""));
  EXPECT_EQ(std::string::npos, line.find('\n'));
  mini_json::Value doc = mini_json::parse(line);
  EXPECT_EQ("scan", doc.at("op").str);
  EXPECT_EQ(321.0, doc.at("request_bytes").number);
  EXPECT_EQ(654.0, doc.at("response_bytes").number);
  EXPECT_EQ(0.25, doc.at("queue_ms").number);
  EXPECT_EQ(3.5, doc.at("infer_ms").number);
  EXPECT_EQ(4.75, doc.at("total_ms").number);
  EXPECT_EQ(2.0, doc.at("batch_size").number);
  EXPECT_EQ("fp32", doc.at("precision").str);
  EXPECT_EQ("", doc.at("error").str);
}

TEST(TelemetryAccessLog, EscapesAwkwardStrings) {
  telemetry::AccessRecord record;
  record.trace_id = "id\"quote";
  record.error = "line\nbreak\\slash";
  mini_json::Value doc =
      mini_json::parse(telemetry::access_record_to_json(record));
  EXPECT_EQ("id\"quote", doc.at("trace_id").str);
  EXPECT_EQ("line\nbreak\\slash", doc.at("error").str);
}

// ---------------------------------------------------------------------
// Slow-trace writer.

TEST(TelemetrySlowTrace, JsonIsChromeTraceWithTraceIdArgs) {
  telemetry::AccessRecord record;
  record.trace_id = "feed-1";
  record.op = "scan";
  record.total_ms = 12.0;
  const std::vector<telemetry::SlowTraceWriter::Span> spans = {
      {"serve.queue", 0.0, 2.0}, {"serve.infer", 2.0, 9.5}};
  mini_json::Value doc =
      mini_json::parse(telemetry::slow_trace_json(record, spans));
  const auto& events = doc.at("traceEvents").array;
  ASSERT_GE(events.size(), 2u);
  for (const auto& event : events) {
    EXPECT_EQ("feed-1", event.at("args").at("trace_id").str);
    EXPECT_EQ("scan", event.at("args").at("op").str);
  }
  // Times are microseconds relative to request receipt.
  bool saw_infer = false;
  for (const auto& event : events) {
    if (event.at("name").str != "serve.infer") continue;
    saw_infer = true;
    EXPECT_EQ(2000.0, event.at("ts").number);
    EXPECT_EQ(9500.0, event.at("dur").number);
  }
  EXPECT_TRUE(saw_infer);
}

TEST(TelemetrySlowTrace, SlotRingBoundsFiles) {
  const fs::path dir = fresh_dir("slowring");
  telemetry::SlowTraceWriter writer(dir.string(), /*max_files=*/2);
  telemetry::AccessRecord record;
  record.op = "scan";
  record.trace_id = "first";
  EXPECT_EQ((dir / "slow-0.json").string(), writer.capture(record, {}));
  record.trace_id = "second";
  EXPECT_EQ((dir / "slow-1.json").string(), writer.capture(record, {}));
  record.trace_id = "third";  // wraps onto slot 0
  EXPECT_EQ((dir / "slow-0.json").string(), writer.capture(record, {}));
  EXPECT_EQ(3, writer.captured());
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(2u, files);
  EXPECT_NE(std::string::npos, read_file(dir / "slow-0.json").find("third"));
  EXPECT_NE(std::string::npos, read_file(dir / "slow-1.json").find("second"));
  fs::remove_all(dir);
}

TEST(TelemetrySlowTrace, UnwritableDirYieldsEmptyPathNotThrow) {
  telemetry::SlowTraceWriter writer("/nonexistent/sevuldet/slowdir", 4);
  telemetry::AccessRecord record;
  record.trace_id = "x";
  EXPECT_EQ("", writer.capture(record, {}));
  EXPECT_EQ(0, writer.captured());
}

TEST(TelemetryTraceId, MonotonicAndPidScoped) {
  const std::string a = telemetry::make_trace_id(1);
  const std::string b = telemetry::make_trace_id(2);
  EXPECT_NE(a, b);
  ASSERT_NE(std::string::npos, a.find('-'));
  // Same pid prefix, different sequence suffix.
  EXPECT_EQ(a.substr(0, a.find('-')), b.substr(0, b.find('-')));
  EXPECT_EQ("1", a.substr(a.find('-') + 1));
  EXPECT_EQ("2", b.substr(b.find('-') + 1));
}

// ---------------------------------------------------------------------
// Rotating file sink.

TEST(RotatingSink, RotatesAtSizeBoundKeepingMaxFiles) {
  const fs::path dir = fresh_dir("rotate");
  const fs::path path = dir / "app.log";
  {
    RotatingFileSink sink(path.string(), /*max_bytes=*/64, /*max_files=*/3);
    for (int i = 0; i < 40; ++i) {
      sink.append_line("line-" + std::to_string(i));
    }
    sink.flush();
    EXPECT_GT(sink.rotations(), 0);
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path.string() + ".1"));
  // max_files=3 keeps the live file + .1 + .2, never .3.
  EXPECT_FALSE(fs::exists(path.string() + ".3"));
  EXPECT_LE(fs::file_size(path), 64u);
  // The newest line is in the live file; rotated files hold older ones.
  EXPECT_NE(std::string::npos, read_file(path).find("line-39"));
  fs::remove_all(dir);
}

TEST(RotatingSink, WriteFormatsLevelPrefixedLines) {
  const fs::path dir = fresh_dir("sinkwrite");
  const fs::path path = dir / "app.log";
  {
    RotatingFileSink sink(path.string());
    sink.write(LogLevel::Warn, "[WARN] something odd");
    sink.write(LogLevel::Error, "[ERROR] broke");  // flush-on-error path
  }
  const std::string content = read_file(path);
  EXPECT_NE(std::string::npos, content.find("[WARN] something odd\n"));
  EXPECT_NE(std::string::npos, content.find("[ERROR] broke\n"));
  fs::remove_all(dir);
}

/// Swapping the global sink while other threads log must never tear a
/// line or crash: each line lands whole in exactly one sink generation.
TEST(RotatingSink, GlobalSinkSwapRacesLoggersSafely) {
  const fs::path dir = fresh_dir("sinkswap");
  const LogLevel previous_level = sevuldet::util::log_level();
  sevuldet::util::set_log_level(LogLevel::Info);
  std::atomic<bool> stop{false};
  std::vector<std::thread> loggers;
  for (int t = 0; t < 2; ++t) {
    loggers.emplace_back([&stop, t] {
      for (int i = 0; !stop.load(); ++i) {
        sevuldet::util::log_info("t" + std::to_string(t) + " line " +
                                 std::to_string(i));
      }
    });
  }
  // Swap a fresh file sink in every few ms; the displaced sink is
  // destroyed as soon as the swap returns, while loggers keep running.
  for (int swap = 0; swap < 10; ++swap) {
    const fs::path path = dir / ("swap-" + std::to_string(swap) + ".log");
    sevuldet::util::set_log_sink(
        std::make_shared<RotatingFileSink>(path.string()));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& t : loggers) t.join();
  sevuldet::util::set_log_sink(nullptr);  // restore the stderr default
  sevuldet::util::set_log_level(previous_level);
  for (int swap = 0; swap < 10; ++swap) {
    const fs::path path = dir / ("swap-" + std::to_string(swap) + ".log");
    ASSERT_TRUE(fs::exists(path));
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      EXPECT_EQ(0u, line.find("[INFO] t")) << "torn line: " << line;
    }
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Protocol: the metrics op and trace_id propagation.

TEST(TelemetryProtocol, MetricsRequestRoundTrips) {
  serve::Request request;
  request.op = serve::Op::Metrics;
  request.id = 5;
  request.format = "prometheus";
  request.history = 60;
  serve::Request parsed = serve::parse_request(serve::request_to_json(request));
  EXPECT_EQ(serve::Op::Metrics, parsed.op);
  EXPECT_EQ("prometheus", parsed.format);
  EXPECT_EQ(60, parsed.history);
}

TEST(TelemetryProtocol, MetricsRequestValidation) {
  EXPECT_THROW(serve::parse_request(
                   "{\"op\":\"metrics\",\"id\":1,\"format\":\"xml\"}"),
               std::exception);
  EXPECT_THROW(
      serve::parse_request("{\"op\":\"metrics\",\"id\":1,\"history\":-3}"),
      std::exception);
  // Defaults: json format, no history.
  serve::Request parsed =
      serve::parse_request("{\"op\":\"metrics\",\"id\":1}");
  EXPECT_EQ("json", parsed.format);
  EXPECT_EQ(0, parsed.history);
}

TEST(TelemetryProtocol, TraceIdRoundTripsBothDirections) {
  serve::Request request;
  request.op = serve::Op::Scan;
  request.id = 3;
  request.source = "int main() { return 0; }";
  request.trace_id = "client-chosen-\"id\"";
  serve::Request parsed = serve::parse_request(serve::request_to_json(request));
  EXPECT_EQ(request.trace_id, parsed.trace_id);

  serve::Response response;
  response.id = 3;
  response.ok = true;
  response.trace_id = "client-chosen-\"id\"";
  serve::Response back =
      serve::parse_response(serve::response_to_json(response));
  EXPECT_EQ(response.trace_id, back.trace_id);
}

/// An absent trace_id stays absent on the wire — non-telemetry traffic
/// serializes byte-identically to the pre-telemetry protocol.
TEST(TelemetryProtocol, EmptyTraceIdAddsNoWireBytes) {
  serve::Request request;
  request.op = serve::Op::Scan;
  request.id = 1;
  request.source = "x";
  EXPECT_EQ(std::string::npos,
            serve::request_to_json(request).find("trace_id"));
  serve::Response response;
  response.id = 1;
  response.ok = true;
  EXPECT_EQ(std::string::npos,
            serve::response_to_json(response).find("trace_id"));
}

}  // namespace
