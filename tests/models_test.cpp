#include <gtest/gtest.h>

#include "sevuldet/models/birnn_net.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/nn/optim.hpp"

namespace nm = sevuldet::models;
namespace nn = sevuldet::nn;

namespace {

nm::ModelConfig tiny_config() {
  nm::ModelConfig c;
  c.vocab_size = 20;
  c.embed_dim = 8;
  c.conv_channels = 8;
  c.attn_dim = 8;
  c.dense1 = 16;
  c.dense2 = 8;
  c.rnn_hidden = 8;
  c.fixed_length = 12;
  return c;
}

}  // namespace

TEST(SeVulDetNet, HandlesFlexibleLengths) {
  nm::SeVulDetNet net(tiny_config());
  for (std::size_t len : {1u, 2u, 5u, 40u, 300u}) {
    std::vector<int> ids(len, 3);
    float p = net.predict(ids);
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(SeVulDetNet, AblationNamesAndShapes) {
  auto cfg = tiny_config();
  cfg.multilayer_attention = true;
  EXPECT_EQ(nm::SeVulDetNet(cfg).name(), "SEVulDet(CNN-MultiATT)");
  cfg.multilayer_attention = false;
  cfg.token_attention = true;
  EXPECT_EQ(nm::SeVulDetNet(cfg).name(), "CNN-TokenATT");
  cfg.token_attention = false;
  EXPECT_EQ(nm::SeVulDetNet(cfg).name(), "CNN");
}

TEST(SeVulDetNet, PlainCnnHasFewerParams) {
  auto cfg = tiny_config();
  cfg.multilayer_attention = false;
  cfg.token_attention = false;
  nm::SeVulDetNet plain(cfg);
  nm::SeVulDetNet full(tiny_config());
  EXPECT_LT(plain.params().parameter_count(), full.params().parameter_count());
}

TEST(SeVulDetNet, TokenWeightsMatchInputLength) {
  nm::SeVulDetNet net(tiny_config());
  std::vector<int> ids(17, 2);
  net.predict(ids);
  EXPECT_EQ(net.last_token_weights().size(), 17u);
}

TEST(SeVulDetNet, NoTokenAttentionMeansNoWeights) {
  auto cfg = tiny_config();
  cfg.multilayer_attention = false;
  cfg.token_attention = false;
  nm::SeVulDetNet net(cfg);
  net.predict({1, 2, 3});
  EXPECT_TRUE(net.last_token_weights().empty());
}

TEST(SeVulDetNet, RequiresVocabSize) {
  nm::ModelConfig cfg = tiny_config();
  cfg.vocab_size = 0;
  EXPECT_THROW(nm::SeVulDetNet{cfg}, std::invalid_argument);
}

TEST(SeVulDetNet, LearnsSimplePattern) {
  // Token 5 anywhere in the sequence => vulnerable. A few dozen Adam
  // steps should push the model well past chance.
  auto cfg = tiny_config();
  nm::SeVulDetNet net(cfg);
  nn::Adam opt(net.params(), 0.005f);
  sevuldet::util::Rng rng(3);
  for (int step = 0; step < 400; ++step) {
    const bool positive = rng.bernoulli(0.5);
    std::vector<int> ids;
    const int len = 6 + static_cast<int>(rng.uniform(10));
    for (int i = 0; i < len; ++i) {
      int tok = 2 + static_cast<int>(rng.uniform(3));  // 2..4
      ids.push_back(tok);
    }
    if (positive) ids[rng.uniform(ids.size())] = 5;
    auto logit = net.forward_logit(ids, true);
    auto loss = nn::bce_with_logits(logit, positive ? 1.0f : 0.0f);
    opt.zero_grad();
    nn::backward(loss);
    opt.step();
  }
  int correct = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const bool positive = i % 2 == 0;
    std::vector<int> ids(8, 3);
    if (positive) ids[4] = 5;
    if ((net.predict(ids) > 0.5f) == positive) ++correct;
  }
  EXPECT_GE(correct, 90) << "model failed to learn a trivial pattern";
}

TEST(BiRnnNet, FixLengthTruncatesAndPads) {
  auto cfg = tiny_config();
  cfg.fixed_length = 5;
  nm::BiRnnNet net(cfg, nn::RnnKind::Lstm, "BLSTM");
  auto longer = net.fix_length({1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(longer, (std::vector<int>{1, 2, 3, 4, 5}));
  auto shorter = net.fix_length({1, 2});
  EXPECT_EQ(shorter, (std::vector<int>{1, 2, 0, 0, 0}));
}

TEST(BiRnnNet, TruncationLosesTailSignal) {
  // Definition 8's failure mode made concrete: when the discriminative
  // token sits past the time-step cutoff, the fixed-length net computes
  // IDENTICAL logits for positive and negative sequences.
  auto cfg = tiny_config();
  cfg.fixed_length = 6;
  nm::BiRnnNet net(cfg, nn::RnnKind::Gru, "BGRU");
  std::vector<int> base(10, 3);
  std::vector<int> with_signal = base;
  with_signal[8] = 5;  // beyond the 6-token window
  EXPECT_FLOAT_EQ(net.predict(base), net.predict(with_signal));
  // Inside the window the logits must differ.
  std::vector<int> visible = base;
  visible[2] = 5;
  EXPECT_NE(net.predict(base), net.predict(visible));
}

TEST(BiRnnNet, Factories) {
  auto cfg = tiny_config();
  EXPECT_EQ(nm::make_blstm(cfg)->name(), "BLSTM");
  EXPECT_EQ(nm::make_bgru(cfg)->name(), "BGRU");
  auto vdp = nm::make_vuldeepecker(cfg);
  EXPECT_EQ(vdp->name(), "VulDeePecker");
  EXPECT_EQ(vdp->config().embed_dim, 50);      // Table IV
  EXPECT_FLOAT_EQ(vdp->config().dropout, 0.5f);
  auto sys = nm::make_sysevr(cfg);
  EXPECT_EQ(sys->name(), "SySeVR");
  EXPECT_EQ(sys->config().embed_dim, 30);
}

TEST(Detector, ThresholdIsPoint8) {
  auto cfg = tiny_config();
  nm::SeVulDetNet net(cfg);
  EXPECT_FLOAT_EQ(net.config().threshold, 0.8f);
}
