// The real-world scan frontend: mmap ingestion must be byte-equivalent
// to in-memory lexing, arena-backed spellings must survive moves, the
// lightweight preprocessor's macro/conditional/include handling (and
// its graceful-degradation stats), chunk-granularity parse recovery,
// and the parallel-vs-serial scan_tree byte-identity the CI
// realworld-gate job relies on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sevuldet/core/scan.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/frontend/preprocess.hpp"
#include "sevuldet/frontend/recover.hpp"
#include "sevuldet/serve/protocol.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/mmap_file.hpp"

namespace fs = std::filesystem;
namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;
namespace sf = sevuldet::frontend;
namespace su = sevuldet::util;
namespace serve = sevuldet::serve;

namespace {

/// Temp directory wiped at scope exit.
struct TempTree {
  fs::path root;

  explicit TempTree(const char* tag)
      : root(fs::temp_directory_path() /
             ("sevuldet_frontend_" + std::to_string(::getpid()) + "_" + tag)) {
    fs::create_directories(root);
  }
  ~TempTree() { fs::remove_all(root); }

  fs::path write(const std::string& name, const std::string& bytes) {
    fs::path path = root / name;
    fs::create_directories(path.parent_path());
    std::ofstream(path, std::ios::binary) << bytes;
    return path;
  }
};

bool same_tokens(const sf::LexResult& a, const sf::LexResult& b) {
  if (a.tokens.size() != b.tokens.size()) return false;
  for (std::size_t i = 0; i < a.tokens.size(); ++i) {
    const sf::Token& x = a.tokens[i];
    const sf::Token& y = b.tokens[i];
    if (x.kind != y.kind || x.text != y.text || x.line != y.line ||
        x.column != y.column) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// mmap ingestion.

TEST(FrontendMmap, TokenStreamIdenticalToInMemory) {
  // CRLF line endings and a continuation inside an identifier: the two
  // ingestion paths must agree token-for-token, positions included.
  const std::string source =
      "int ma\\\nin(void) {\r\n  return 40 + 2; /* done */\r\n}\n";
  TempTree tree("mmap");
  const fs::path path = tree.write("input.c", source);

  su::MmapFile mapped = su::MmapFile::open(path.string());
  EXPECT_EQ(source, std::string(mapped.view()));
  EXPECT_TRUE(same_tokens(sf::lex(mapped.view()), sf::lex(source)));
}

TEST(FrontendMmap, EmptyFileUsesFallbackAndLexes) {
  TempTree tree("empty");
  const fs::path path = tree.write("empty.c", "");
  su::MmapFile mapped = su::MmapFile::open(path.string());
  EXPECT_EQ(0u, mapped.size());
  sf::LexResult result = sf::lex(mapped.view());
  ASSERT_EQ(1u, result.tokens.size());
  EXPECT_EQ(sf::TokenKind::EndOfFile, result.tokens[0].kind);
}

TEST(FrontendMmap, MissingFileThrows) {
  EXPECT_THROW(su::MmapFile::open("/nonexistent/sevuldet/nope.c"),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Arena lifetime: synthesized spellings travel with the result.

TEST(FrontendArena, SplicedSpellingSurvivesMove) {
  // "strc" + continuation + "py": not contiguous in the source, so the
  // spelling lives in the result's arena — and must stay valid after
  // the result (and the arena inside it) is moved.
  const std::string source = "strc\\\npy(a, b);";
  sf::TokenStream moved = [&] {
    sf::TokenStream stream = sf::lex_tokens(source);
    return stream;
  }();
  ASSERT_FALSE(moved.empty());
  EXPECT_EQ("strcpy", moved[0].text);
  EXPECT_EQ(sf::TokenKind::Identifier, moved[0].kind);

  sf::TokenStream again = std::move(moved);
  EXPECT_EQ("strcpy", again[0].text);
}

TEST(FrontendArena, LexIntoReusesResultAcrossInputs) {
  sf::LexResult reused;
  sf::lex_into("int a\\\nbc = 1;", reused);
  EXPECT_EQ("abc", reused.tokens[1].text);
  // Re-lexing into the same result resets tokens, directives, and the
  // arena; stale spellings must not leak through.
  sf::lex_into("float xyz;", reused);
  ASSERT_EQ(4u, reused.tokens.size());  // float xyz ; EOF
  EXPECT_EQ("xyz", reused.tokens[1].text);
  EXPECT_TRUE(reused.directives.empty());
}

// ---------------------------------------------------------------------
// Preprocessor.

TEST(FrontendPreprocess, UnchangedInputIsByteIdentical) {
  const std::string source = "int f(void) { return 1; }\n";
  sf::PreprocessResult result = sf::preprocess(source);
  EXPECT_FALSE(result.changed);
  EXPECT_EQ(source, result.text);
  EXPECT_EQ(3, result.origin_line(3));  // identity mapping
}

TEST(FrontendPreprocess, ExpandsObjectAndFunctionMacros) {
  const std::string source =
      "#define N 8\n"
      "#define MIN(a, b) ((a) < (b) ? (a) : (b))\n"
      "int f(int x) { char buf[N]; return MIN(x, N); }\n";
  sf::PreprocessResult result = sf::preprocess(source);
  EXPECT_TRUE(result.changed);
  EXPECT_NE(std::string::npos, result.text.find("char buf[8]"));
  EXPECT_NE(std::string::npos, result.text.find("((x) < (8) ? (x) : (8))"));
  EXPECT_EQ(2, result.stats.macros_defined);
  EXPECT_GE(result.stats.macro_expansions, 2);
}

TEST(FrontendPreprocess, ConditionalKeepsActiveBranchOnly) {
  const std::string source =
      "#define FAST 1\n"
      "#if FAST\n"
      "int speed = 9;\n"
      "#else\n"
      "int speed = 1;\n"
      "#endif\n";
  sf::PreprocessResult result = sf::preprocess(source);
  EXPECT_NE(std::string::npos, result.text.find("int speed = 9;"));
  EXPECT_EQ(std::string::npos, result.text.find("int speed = 1;"));
  EXPECT_EQ(1, result.stats.conditionals);
  EXPECT_EQ(0, result.stats.unresolved_conditionals);
  EXPECT_GE(result.stats.lines_dropped, 1);
  // The surviving line must map back to its original position (line 3).
  const std::size_t pos = result.text.find("int speed = 9;");
  const int out_line =
      1 + static_cast<int>(std::count(result.text.begin(),
                                      result.text.begin() + static_cast<long>(pos),
                                      '\n'));
  EXPECT_EQ(3, result.origin_line(out_line));
}

TEST(FrontendPreprocess, UnresolvableConditionalKeepsRegion) {
  // __has_include is outside the evaluator's integer-constant subset, so
  // the expression is unresolvable (as opposed to merely false).
  const std::string source =
      "#if __has_include(<sys/epoll.h>)\n"
      "typedef long wide_t;\n"
      "#endif\n"
      "int ok = 1;\n";
  sf::PreprocessResult result = sf::preprocess(source);
  // Degradation, not loss: the region's code survives for scanning.
  EXPECT_NE(std::string::npos, result.text.find("typedef long wide_t;"));
  EXPECT_NE(std::string::npos, result.text.find("int ok = 1;"));
  EXPECT_GE(result.stats.unresolved_conditionals, 1);
}

TEST(FrontendPreprocess, ResolvesIncludesAgainstRootsAndCountsMissing) {
  TempTree tree("inc");
  tree.write("helpers.h", "#define GREETING \"hi\"\nint helper(int);\n");
  const std::string source =
      "#include \"helpers.h\"\n"
      "#include \"not_there.h\"\n"
      "const char *g = GREETING;\n";
  sf::PreprocessOptions options;
  options.include_roots = {tree.root.string()};
  sf::PreprocessResult result = sf::preprocess(source, options);
  EXPECT_EQ(1, result.stats.includes_resolved);
  EXPECT_EQ(1, result.stats.includes_unresolved);
  EXPECT_NE(std::string::npos, result.text.find("int helper(int);"));
  EXPECT_NE(std::string::npos, result.text.find("\"hi\""))
      << "macro from the include must expand in the includer";
  // Missing include left verbatim so nothing is silently dropped.
  EXPECT_NE(std::string::npos, result.text.find("#include \"not_there.h\""));

  // Lines pulled from the include map to origin 0; top-level lines keep
  // their own numbers.
  const std::size_t helper_pos = result.text.find("int helper(int);");
  const int helper_line =
      1 + static_cast<int>(
              std::count(result.text.begin(),
                         result.text.begin() + static_cast<long>(helper_pos),
                         '\n'));
  EXPECT_EQ(0, result.origin_line(helper_line));
}

TEST(FrontendPreprocess, IncludeCycleIsGuarded) {
  TempTree tree("cycle");
  tree.write("a.h", "#include \"b.h\"\nint from_a;\n");
  tree.write("b.h", "#include \"a.h\"\nint from_b;\n");
  sf::PreprocessOptions options;
  options.include_roots = {tree.root.string()};
  sf::PreprocessResult result = sf::preprocess("#include \"a.h\"\n", options);
  EXPECT_GE(result.stats.include_cycles, 1);
  EXPECT_NE(std::string::npos, result.text.find("int from_a;"));
  EXPECT_NE(std::string::npos, result.text.find("int from_b;"));
}

// ---------------------------------------------------------------------
// Error-resilient recovery.

TEST(FrontendRecover, CleanSourceStaysClean) {
  sf::RecoveredParse result =
      sf::parse_with_recovery("int f(void) { return 1; }\n");
  EXPECT_TRUE(result.clean);
  EXPECT_TRUE(result.lost.empty());
  EXPECT_EQ(0, result.chunks_total);
  ASSERT_EQ(1u, result.unit.functions.size());
}

TEST(FrontendRecover, UnparseableChunkIsLostOthersSurvive) {
  sevuldet::util::metrics::reset();
  sevuldet::util::metrics::set_enabled(true);
  const std::string source =
      "int good_one(int a) { return a + 1; }\n"
      "\n"
      "int old_style(a, b)\n"
      "int a;\n"
      "int b;\n"
      "{\n"
      "  return a + b;\n"
      "}\n"
      "\n"
      "int good_two(int a) { return a * 2; }\n";
  sf::RecoveredParse result = sf::parse_with_recovery(source);
  EXPECT_FALSE(result.clean);
  // The splitter closes chunks at top-level ';', so the K&R definition
  // becomes two failing chunks: the header + first declarator, then the
  // orphaned brace body.
  ASSERT_FALSE(result.lost.empty());
  ASSERT_EQ(2u, result.unit.functions.size());
  EXPECT_EQ("good_one", result.unit.functions[0].name);
  EXPECT_EQ("good_two", result.unit.functions[1].name);
  // The lost regions collectively cover the K&R definition and body.
  int lo = result.lost.front().begin_line;
  int hi = result.lost.front().end_line;
  bool saw_kr = false;
  for (const sf::LostRegion& region : result.lost) {
    lo = std::min(lo, region.begin_line);
    hi = std::max(hi, region.end_line);
    if (region.text.find("old_style") != std::string::npos) saw_kr = true;
    EXPECT_FALSE(region.reason.empty());
  }
  EXPECT_LE(lo, 3);
  EXPECT_GE(hi, 8);
  EXPECT_TRUE(saw_kr);
  EXPECT_GT(result.chunks_total, 0);
  EXPECT_EQ(result.chunks_total - static_cast<int>(result.lost.size()),
            result.chunks_recovered);

  auto snapshot = sevuldet::util::metrics::snapshot();
  sevuldet::util::metrics::set_enabled(false);
  EXPECT_EQ(1, snapshot.counters.at("frontend.recover.files"));
  EXPECT_EQ(static_cast<long long>(result.lost.size()),
            snapshot.counters.at("frontend.drop.parse_chunk"));
}

TEST(FrontendRecover, GarbageNeverThrows) {
  sf::RecoveredParse result =
      sf::parse_with_recovery("\x01\x02 not C at all \"unterminated\n}{");
  EXPECT_FALSE(result.clean);
  EXPECT_FALSE(result.lost.empty());
  EXPECT_TRUE(result.unit.functions.empty());
}

// ---------------------------------------------------------------------
// scan_tree: parallel == serial, byte for byte.

TEST(FrontendScan, ParallelTreeScanIdenticalToSerial) {
  // A tiny trained detector (same shape as the serve tests use).
  sc::PipelineConfig config;
  config.model.embed_dim = 12;
  config.model.conv_channels = 8;
  config.model.attn_dim = 8;
  config.model.dense1 = 24;
  config.model.dense2 = 8;
  config.train.epochs = 2;
  config.word2vec.epochs = 2;
  sc::SeVulDet detector(config);
  sd::SardConfig sard;
  sard.pairs_per_category = 4;
  sard.long_fraction = 0.0;
  sard.seed = 29;
  detector.train(sd::generate_sard_like(sard));

  // Mixed tree: vulnerable sources, a header, an include user, a file
  // needing recovery, and a subdirectory.
  TempTree tree("scan");
  const auto cases = sd::generate_sard_like(sard);
  int written = 0;
  for (const auto& tc : cases) {
    if (!tc.vulnerable) continue;
    tree.write("case_" + std::to_string(written) + ".c", tc.source);
    if (++written == 4) break;
  }
  tree.write("helpers.h", "#define LIMIT 16\nint helper(int);\n");
  tree.write("sub/uses.c",
             "#include \"helpers.h\"\n#include <string.h>\n"
             "void use(char *dst, const char *src) {\n"
             "  char buf[LIMIT];\n"
             "  strcpy(buf, src);\n"
             "  strcpy(dst, buf);\n"
             "}\n");
  tree.write("sub/legacy.c", "int old_style(a) int a; { return a + 1; }\n");

  sc::ScanOptions serial;
  serial.threads = 1;
  sc::ScanOptions parallel;
  parallel.threads = 4;
  const sc::TreeScanResult a =
      sc::scan_tree(detector, tree.root.string(), serial);
  const sc::TreeScanResult b =
      sc::scan_tree(detector, tree.root.string(), parallel);
  EXPECT_EQ(serve::tree_scan_to_json(a), serve::tree_scan_to_json(b));
  EXPECT_EQ(written + 3, a.stats.files);
  EXPECT_GE(a.stats.files_recovered, 1);
  EXPECT_GE(a.stats.includes_resolved, 1);
  EXPECT_GE(a.stats.includes_unresolved, 1);
  EXPECT_EQ(0, a.stats.files_failed);
}

}  // namespace
