#include <gtest/gtest.h>

#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/realworld.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/interp/interp.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/slicer/gadget.hpp"

namespace sd = sevuldet::dataset;
namespace sf = sevuldet::frontend;
namespace sg = sevuldet::graph;
namespace si = sevuldet::interp;
namespace ss = sevuldet::slicer;

TEST(RealWorldCorpus, PairStructureAndLabels) {
  auto corpus = sd::generate_realworld({});
  int vulnerable = 0, clean = 0;
  for (const auto& tc : corpus.cases) {
    if (tc.vulnerable) {
      ++vulnerable;
      EXPECT_FALSE(tc.vulnerable_lines.empty()) << tc.id;
    } else {
      ++clean;
      EXPECT_TRUE(tc.vulnerable_lines.empty()) << tc.id;
    }
  }
  EXPECT_GT(vulnerable, 0);
  EXPECT_GT(clean, vulnerable);  // vulnerable is the minority, like Xen
}

TEST(RealWorldCorpus, GadgetsExtractAndLabel) {
  sd::RealWorldConfig config;
  config.variant_pairs = 3;
  config.clean_functions = 6;
  auto realworld = sd::generate_realworld(config);
  auto corpus = sd::build_corpus(realworld.cases);
  EXPECT_EQ(corpus.stats.parse_failures, 0);
  EXPECT_GT(corpus.stats.vulnerable(), 0);
  EXPECT_LT(corpus.stats.vulnerable(), corpus.stats.total());
}

TEST(RealWorldCorpus, FecGadgetIsLongAndCoversLoop) {
  // The 9776-like gadget must exceed typical RNN windows (the mechanism
  // for SySeVR missing it in Table VII) and cover the flagged loop lines.
  auto realworld = sd::generate_realworld({});
  const auto& fec = realworld.planted[0];
  ASSERT_EQ(fec.cve, "CVE-2016-9776");

  auto program = sg::build_program_graph(fec.testcase.source);
  std::size_t longest_covering = 0;
  for (const auto& token : ss::find_special_tokens(program)) {
    auto gadget = ss::generate_gadget(program, token);
    bool covers = false;
    for (const auto& line : gadget.lines) {
      if (fec.testcase.vulnerable_lines.contains(line.line)) covers = true;
    }
    if (!covers) continue;
    auto norm = sevuldet::normalize::normalize_gadget(gadget);
    longest_covering = std::max(longest_covering, norm.tokens.size());
  }
  EXPECT_GT(longest_covering, 150u);
}

TEST(RealWorldCorpus, XattrBugIsFunctionCallCategory) {
  auto realworld = sd::generate_realworld({});
  const auto& xattr = realworld.planted[1];
  ASSERT_EQ(xattr.cve, "CVE-2016-9104");
  EXPECT_EQ(xattr.category, ss::TokenCategory::FunctionCall);

  // A memcpy-criterion gadget covers the flagged line -> VulDeePecker's
  // FC-only pipeline can see this bug at all.
  auto program = sg::build_program_graph(xattr.testcase.source);
  bool fc_covers = false;
  for (const auto& token :
       ss::find_special_tokens(program, ss::TokenCategory::FunctionCall)) {
    auto gadget = ss::generate_gadget(program, token);
    for (const auto& line : gadget.lines) {
      if (xattr.testcase.vulnerable_lines.contains(line.line)) fc_covers = true;
    }
  }
  EXPECT_TRUE(fc_covers);
}

TEST(RealWorldCorpus, PlantedBugsActuallyFire) {
  // Ground truth sanity: directly triggering inputs make the vulnerable
  // versions crash/hang, and the patched variants survive the same input.
  auto realworld = sd::generate_realworld({});

  // 9776-like: emrbr register = 0 (first 4 input bytes) hangs.
  {
    auto unit = sf::parse(realworld.planted[0].testcase.source);
    si::Interpreter interp(unit);
    si::ExecOptions options;
    options.step_limit = 50000;
    std::vector<std::uint8_t> zero_reg = {0, 0, 0, 0, 64, 0, 0, 0};
    EXPECT_EQ(interp.run(zero_reg, options).outcome, si::Outcome::Hang);
  }

  // 4453-like: huge cursor count hangs.
  {
    auto unit = sf::parse(realworld.planted[2].testcase.source);
    si::Interpreter interp(unit);
    si::ExecOptions options;
    options.step_limit = 50000;
    std::vector<std::uint8_t> huge = {0xFF, 0xFF, 0xFF, 0x7F};
    EXPECT_EQ(interp.run(huge, options).outcome, si::Outcome::Hang);
  }

  // 9104-like: magic + huge offset crashes OOB. The magic differs per
  // seed; recover it from the source.
  {
    const auto& tc = realworld.planted[1].testcase;
    auto pos = tc.source.find("tag != ");
    ASSERT_NE(pos, std::string::npos);
    const long magic = std::stol(tc.source.substr(pos + 7));
    auto unit = sf::parse(tc.source);
    si::Interpreter interp(unit);
    si::ExecOptions options;
    options.step_limit = 50000;
    std::vector<std::uint8_t> input;
    auto push_int = [&input](long v) {
      for (int i = 0; i < 4; ++i) {
        input.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
      }
    };
    push_int(magic);
    push_int(2147483640L);  // off + count exceeds INT_MAX -> wraps negative
    push_int(40);           // count
    auto result = interp.run(input, options);
    EXPECT_EQ(result.outcome, si::Outcome::OutOfBounds)
        << si::outcome_name(result.outcome);

    // Wrong magic: clean exit.
    input[0] ^= 0xFF;
    EXPECT_EQ(interp.run(input, options).outcome, si::Outcome::Ok);
  }
}

TEST(RealWorldCorpus, PatchedVariantsSurviveTriggers) {
  sd::RealWorldConfig config;
  config.variant_pairs = 1;
  auto realworld = sd::generate_realworld(config);
  for (const auto& tc : realworld.cases) {
    if (tc.vulnerable) continue;
    auto unit = sf::parse(tc.source);
    if (unit.find_function("harness_main") == nullptr) continue;
    si::Interpreter interp(unit);
    si::ExecOptions options;
    options.step_limit = 200000;
    // The broad triggers of the vulnerable versions.
    for (std::vector<std::uint8_t> input :
         {std::vector<std::uint8_t>{0, 0, 0, 0, 64, 0, 0, 0},
          std::vector<std::uint8_t>{0xFF, 0xFF, 0xFF, 0x7F}}) {
      auto result = interp.run(input, options);
      EXPECT_EQ(result.outcome, si::Outcome::Ok)
          << tc.id << ": " << si::outcome_name(result.outcome) << " line "
          << result.fault_line;
    }
  }
}
