#include <gtest/gtest.h>

#include <cmath>

#include "sevuldet/core/multiclass.hpp"
#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/kfold.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/models/sevuldet_net.hpp"
#include "sevuldet/nn/autograd.hpp"

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;
namespace sm = sevuldet::models;
namespace nn = sevuldet::nn;

TEST(CrossEntropy, ValueAndGradient) {
  // Uniform logits over 4 classes -> loss = log(4).
  auto logits = nn::param(nn::Tensor(1, 4));
  auto loss = nn::cross_entropy_with_logits(logits, 2);
  EXPECT_NEAR(loss->value.at(0, 0), std::log(4.0f), 1e-5f);
  nn::backward(loss);
  // Gradient = softmax - onehot: 0.25 everywhere except target 0.25-1.
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(logits->grad.at(0, j), j == 2 ? -0.75f : 0.25f, 1e-5f);
  }
}

TEST(CrossEntropy, NumericGradient) {
  sevuldet::util::Rng rng(4);
  auto make = [&]() { return nn::Tensor::randn(1, 5, rng, 0.7f); };
  nn::Tensor init = make();
  auto p = nn::param(init);
  auto loss = nn::cross_entropy_with_logits(p, 3);
  nn::backward(loss);
  const float eps = 1e-2f;
  for (int j = 0; j < 5; ++j) {
    nn::Tensor plus = init, minus = init;
    plus.at(0, j) += eps;
    minus.at(0, j) -= eps;
    float up = nn::cross_entropy_with_logits(nn::constant(plus), 3)->value.at(0, 0);
    float down = nn::cross_entropy_with_logits(nn::constant(minus), 3)->value.at(0, 0);
    EXPECT_NEAR(p->grad.at(0, j), (up - down) / (2 * eps), 1e-2f);
  }
}

TEST(CrossEntropy, RejectsBadInput) {
  auto logits = nn::constant(nn::Tensor(1, 3));
  EXPECT_THROW(nn::cross_entropy_with_logits(logits, 3), std::out_of_range);
  EXPECT_THROW(nn::cross_entropy_with_logits(logits, -1), std::out_of_range);
  auto matrix = nn::constant(nn::Tensor(2, 3));
  EXPECT_THROW(nn::cross_entropy_with_logits(matrix, 0), std::invalid_argument);
}

TEST(SoftmaxRow, SumsToOneAndOrders) {
  nn::Tensor logits(1, 3);
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 3.0f;
  logits.at(0, 2) = 2.0f;
  auto probs = nn::softmax_row_values(logits);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0f, 1e-5f);
  EXPECT_GT(probs[1], probs[2]);
  EXPECT_GT(probs[2], probs[0]);
}

TEST(CweClassMap, StableMapping) {
  sd::GadgetSample a, b, clean;
  a.label = 1;
  a.cwe = "CWE-121";
  b.label = 1;
  b.cwe = "CWE-835";
  clean.label = 0;
  sc::SampleRefs refs = {&a, &b, &clean};
  auto map = sc::CweClassMap::from_samples(refs);
  EXPECT_EQ(map.num_classes(), 3);
  EXPECT_EQ(map.name_of(0), "benign");
  EXPECT_EQ(map.class_of(clean), 0);
  EXPECT_NE(map.class_of(a), map.class_of(b));
  EXPECT_EQ(map.class_of_cwe("CWE-999"), 0);  // unseen CWE -> benign
}

TEST(MulticlassDetector, PredictClassShapes) {
  sm::ModelConfig config;
  config.vocab_size = 30;
  config.embed_dim = 8;
  config.conv_channels = 8;
  config.attn_dim = 8;
  config.dense1 = 16;
  config.dense2 = 8;
  config.num_classes = 4;
  sm::SeVulDetNet net(config);
  auto [cls, prob] = net.predict_class({2, 3, 4, 5});
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, 4);
  EXPECT_GT(prob, 0.0f);
  EXPECT_LE(prob, 1.0f);
  // predict() == 1 - P(benign) for multiclass models.
  float p = net.predict({2, 3, 4, 5});
  EXPECT_GE(p, 0.0f);
  EXPECT_LE(p, 1.0f);
}

TEST(Multiclass, EndToEndLearnsTypes) {
  sd::SardConfig gen_config;
  gen_config.pairs_per_category = 10;
  gen_config.long_fraction = 0.0;
  auto corpus = sd::build_corpus(sd::generate_sard_like(gen_config));
  sd::encode_corpus(corpus);
  auto refs = sc::all_sample_refs(corpus);
  auto classes = sc::CweClassMap::from_samples(refs);
  ASSERT_GT(classes.num_classes(), 3);

  sm::ModelConfig config;
  config.vocab_size = corpus.vocab.size();
  config.embed_dim = 12;
  config.conv_channels = 8;
  config.attn_dim = 8;
  config.dense1 = 24;
  config.dense2 = 12;
  config.num_classes = classes.num_classes();
  sm::SeVulDetNet net(config);

  sc::TrainConfig tc;
  tc.epochs = 4;
  tc.lr = 0.003f;
  auto result = sc::train_multiclass(net, refs, classes, tc);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());

  auto eval = sc::evaluate_multiclass(net, refs, classes);
  EXPECT_GT(eval.accuracy, 0.85);  // train-set accuracy after fitting
  // Confusion matrix row sums equal per-class truth counts.
  long long total = 0;
  for (const auto& row : eval.confusion) {
    for (long long v : row) total += v;
  }
  EXPECT_EQ(total, static_cast<long long>(refs.size()));
}

TEST(Multiclass, MismatchedClassCountThrows) {
  sd::GadgetSample a;
  a.label = 1;
  a.cwe = "CWE-121";
  a.ids = {1, 2};
  sc::SampleRefs refs = {&a};
  auto classes = sc::CweClassMap::from_samples(refs);
  sm::ModelConfig config;
  config.vocab_size = 10;
  config.embed_dim = 4;
  config.conv_channels = 4;
  config.attn_dim = 4;
  config.dense1 = 8;
  config.dense2 = 4;
  config.num_classes = 7;  // != classes.num_classes()
  sm::SeVulDetNet net(config);
  sc::TrainConfig tc;
  EXPECT_THROW(sc::train_multiclass(net, refs, classes, tc),
               std::invalid_argument);
}
