#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "sevuldet/nn/autograd.hpp"

namespace nn = sevuldet::nn;
namespace su = sevuldet::util;

namespace {

/// Compare analytic gradients against central finite differences for a
/// scalar-valued graph built from a single parameter tensor.
void check_gradients(nn::Tensor init,
                     const std::function<nn::NodePtr(const nn::NodePtr&)>& fn,
                     float tol = 2e-2f) {
  nn::NodePtr p = nn::param(init);
  nn::NodePtr loss = fn(p);
  ASSERT_EQ(loss->value.rows(), 1);
  ASSERT_EQ(loss->value.cols(), 1);
  nn::backward(loss);

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < p->value.size(); ++i) {
    const float saved = p->value[i];
    p->value[i] = saved + eps;
    const float up = fn(nn::constant(p->value))->value.at(0, 0);
    p->value[i] = saved - eps;
    const float down = fn(nn::constant(p->value))->value.at(0, 0);
    p->value[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    const float analytic = p->grad[i];
    const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic)});
    EXPECT_NEAR(analytic, numeric, tol * scale)
        << "element " << i << " analytic=" << analytic << " numeric=" << numeric;
  }
}

nn::Tensor make_tensor(int rows, int cols, std::uint64_t seed = 7) {
  su::Rng rng(seed);
  return nn::Tensor::randn(rows, cols, rng, 0.5f);
}

}  // namespace

TEST(Autograd, AddGradient) {
  nn::Tensor other = make_tensor(3, 4, 11);
  check_gradients(make_tensor(3, 4), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::add(p, nn::constant(other)));
  });
}

TEST(Autograd, AddRowGradientBothSides) {
  nn::Tensor a = make_tensor(4, 3, 21);
  check_gradients(make_tensor(1, 3), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::add_row(nn::constant(a), p));
  });
  nn::Tensor bias = make_tensor(1, 3, 22);
  check_gradients(make_tensor(4, 3), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::add_row(p, nn::constant(bias)));
  });
}

TEST(Autograd, MulAndScaleGradient) {
  nn::Tensor other = make_tensor(2, 5, 31);
  check_gradients(make_tensor(2, 5), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::scale(nn::mul(p, nn::constant(other)), 1.7f));
  });
}

TEST(Autograd, SubGradient) {
  nn::Tensor other = make_tensor(2, 2, 33);
  check_gradients(make_tensor(2, 2), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::sub(p, nn::constant(other)));
  });
}

TEST(Autograd, MatmulGradientLeftAndRight) {
  nn::Tensor right = make_tensor(3, 2, 41);
  check_gradients(make_tensor(4, 3), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::matmul(p, nn::constant(right)));
  });
  nn::Tensor left = make_tensor(4, 3, 42);
  check_gradients(make_tensor(3, 2), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::matmul(nn::constant(left), p));
  });
}

TEST(Autograd, TransposeGradient) {
  check_gradients(make_tensor(3, 5), [&](const nn::NodePtr& p) {
    // Weighted sum so the gradient is not uniform.
    nn::Tensor w = make_tensor(5, 3, 43);
    return nn::sum_all(nn::mul(nn::transpose(p), nn::constant(w)));
  });
}

TEST(Autograd, NonlinearityGradients) {
  check_gradients(make_tensor(2, 3), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::tanh_op(p));
  });
  check_gradients(make_tensor(2, 3), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::sigmoid(p));
  });
  check_gradients(make_tensor(2, 3), [&](const nn::NodePtr& p) {
    // Shift away from 0 so finite differences don't straddle the kink.
    return nn::sum_all(nn::relu(nn::add(p, nn::constant(make_tensor(2, 3, 44)))));
  });
}

TEST(Autograd, SoftmaxColGradient) {
  nn::Tensor w = make_tensor(5, 1, 45);
  check_gradients(make_tensor(5, 1), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::mul(nn::softmax_col(p), nn::constant(w)));
  });
}

TEST(Autograd, SoftmaxColNormalizes) {
  auto x = nn::constant(make_tensor(7, 1));
  auto s = nn::softmax_col(x);
  float sum = 0.0f;
  for (int i = 0; i < 7; ++i) {
    EXPECT_GT(s->value.at(i, 0), 0.0f);
    sum += s->value.at(i, 0);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Autograd, ConcatAndSliceGradients) {
  nn::Tensor b = make_tensor(3, 2, 51);
  check_gradients(make_tensor(3, 4), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(3, 6, 52);
    return nn::sum_all(nn::mul(nn::concat_cols(p, nn::constant(b)), nn::constant(w)));
  });
  check_gradients(make_tensor(4, 6), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(4, 3, 53);
    return nn::sum_all(nn::mul(nn::slice_cols(p, 1, 4), nn::constant(w)));
  });
  check_gradients(make_tensor(6, 3), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(2, 3, 54);
    return nn::sum_all(nn::mul(nn::slice_rows(p, 2, 4), nn::constant(w)));
  });
}

TEST(Autograd, ConcatRowsGradient) {
  nn::Tensor b = make_tensor(2, 3, 55);
  check_gradients(make_tensor(3, 3), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(5, 3, 56);
    return nn::sum_all(
        nn::mul(nn::concat_rows({p, nn::constant(b)}), nn::constant(w)));
  });
}

TEST(Autograd, ReshapeRowGradient) {
  check_gradients(make_tensor(2, 3), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(1, 6, 57);
    return nn::sum_all(nn::mul(nn::reshape_row(p), nn::constant(w)));
  });
}

TEST(Autograd, ReductionGradients) {
  check_gradients(make_tensor(3, 4), [&](const nn::NodePtr& p) {
    return nn::mean_all(p);
  });
  check_gradients(make_tensor(4, 3), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(1, 3, 61);
    return nn::sum_all(nn::mul(nn::reduce_rows_mean(p), nn::constant(w)));
  });
  check_gradients(make_tensor(4, 3), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(1, 3, 62);
    return nn::sum_all(nn::mul(nn::reduce_rows_max(p), nn::constant(w)));
  });
  check_gradients(make_tensor(3, 4), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(3, 1, 63);
    return nn::sum_all(nn::mul(nn::reduce_cols_mean(p), nn::constant(w)));
  });
  check_gradients(make_tensor(3, 4), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(3, 1, 64);
    return nn::sum_all(nn::mul(nn::reduce_cols_max(p), nn::constant(w)));
  });
}

TEST(Autograd, BroadcastMulGradients) {
  nn::Tensor row = make_tensor(1, 4, 71);
  check_gradients(make_tensor(3, 4), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::mul_row_broadcast(p, nn::constant(row)));
  });
  nn::Tensor mat = make_tensor(3, 4, 72);
  check_gradients(make_tensor(1, 4), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::mul_row_broadcast(nn::constant(mat), p));
  });
  nn::Tensor col = make_tensor(3, 1, 73);
  check_gradients(make_tensor(3, 4), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::mul_col_broadcast(p, nn::constant(col)));
  });
  check_gradients(make_tensor(3, 1), [&](const nn::NodePtr& p) {
    return nn::sum_all(nn::mul_col_broadcast(nn::constant(mat), p));
  });
}

TEST(Autograd, EmbeddingGradientScatters) {
  std::vector<int> ids = {2, 0, 2, 1};
  check_gradients(make_tensor(3, 4), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(4, 4, 81);
    return nn::sum_all(nn::mul(nn::embedding(p, ids), nn::constant(w)));
  });
}

TEST(Autograd, EmbeddingRejectsBadIds) {
  auto w = nn::param(make_tensor(3, 4));
  EXPECT_THROW(nn::embedding(w, {0, 3}), std::out_of_range);
  EXPECT_THROW(nn::embedding(w, {-1}), std::out_of_range);
}

TEST(Autograd, Im2RowGradient) {
  check_gradients(make_tensor(5, 2), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(5, 6, 91);  // T_out = 5+2-3+1 = 5 with pad 1
    return nn::sum_all(nn::mul(nn::im2row(p, 3, 1), nn::constant(w)));
  });
  check_gradients(make_tensor(6, 2), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(4, 6, 92);  // no padding: 6-3+1 = 4
    return nn::sum_all(nn::mul(nn::im2row(p, 3, 0), nn::constant(w)));
  });
}

TEST(Autograd, SppMaxGradient) {
  check_gradients(make_tensor(9, 2), [&](const nn::NodePtr& p) {
    nn::Tensor w = make_tensor(1, 14, 93);  // (4+2+1)*2
    return nn::sum_all(nn::mul(nn::spp_max(p, {4, 2, 1}), nn::constant(w)));
  });
}

TEST(Autograd, SppOutputShapeIndependentOfLength) {
  for (int t : {1, 2, 3, 5, 17, 101, 500}) {
    auto x = nn::constant(make_tensor(t, 6, static_cast<std::uint64_t>(t)));
    auto out = nn::spp_max(x, {4, 2, 1});
    EXPECT_EQ(out->value.rows(), 1);
    EXPECT_EQ(out->value.cols(), 7 * 6) << "T=" << t;
  }
}

TEST(Autograd, SppShortSequenceCoversAllBins) {
  // T=1: every bin must read the single row.
  nn::Tensor x(1, 2);
  x.at(0, 0) = 3.0f;
  x.at(0, 1) = -1.0f;
  auto out = nn::spp_max(nn::constant(x), {4, 2, 1});
  for (int b = 0; b < 7; ++b) {
    EXPECT_FLOAT_EQ(out->value.at(0, b * 2), 3.0f);
    EXPECT_FLOAT_EQ(out->value.at(0, b * 2 + 1), -1.0f);
  }
}

TEST(Autograd, BceWithLogitsGradient) {
  for (float target : {0.0f, 1.0f}) {
    check_gradients(make_tensor(1, 1), [&](const nn::NodePtr& p) {
      return nn::bce_with_logits(p, target);
    });
  }
}

TEST(Autograd, BceWithLogitsValue) {
  auto z = nn::constant(nn::Tensor::scalar(0.0f));
  auto loss = nn::bce_with_logits(z, 1.0f);
  EXPECT_NEAR(loss->value.at(0, 0), std::log(2.0f), 1e-5f);
  // Large positive logit, target 1 -> near-zero loss.
  auto z2 = nn::constant(nn::Tensor::scalar(20.0f));
  EXPECT_LT(nn::bce_with_logits(z2, 1.0f)->value.at(0, 0), 1e-6f);
}

TEST(Autograd, DropoutTrainVsEval) {
  su::Rng rng(5);
  auto x = nn::constant(make_tensor(10, 10));
  auto eval_out = nn::dropout(x, 0.5f, rng, /*train=*/false);
  EXPECT_EQ(eval_out.get(), x.get());  // pass-through at eval
  auto train_out = nn::dropout(x, 0.5f, rng, /*train=*/true);
  int zeros = 0;
  for (std::size_t i = 0; i < train_out->value.size(); ++i) {
    if (train_out->value[i] == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 20);
  EXPECT_LT(zeros, 80);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  auto p = nn::param(nn::Tensor::scalar(2.0f));
  auto loss1 = nn::sum_all(nn::scale(p, 3.0f));
  nn::backward(loss1);
  EXPECT_FLOAT_EQ(p->grad.at(0, 0), 3.0f);
  auto loss2 = nn::sum_all(nn::scale(p, 3.0f));
  nn::backward(loss2);
  EXPECT_FLOAT_EQ(p->grad.at(0, 0), 6.0f);  // accumulated
  p->zero_grad();
  EXPECT_FLOAT_EQ(p->grad.at(0, 0), 0.0f);
}

TEST(Autograd, DiamondGraphAccumulates) {
  auto p = nn::param(nn::Tensor::scalar(3.0f));
  auto a = nn::scale(p, 2.0f);
  auto b = nn::scale(p, 5.0f);
  auto loss = nn::sum_all(nn::add(a, b));
  nn::backward(loss);
  EXPECT_FLOAT_EQ(p->grad.at(0, 0), 7.0f);
}

TEST(Autograd, ShapeMismatchThrows) {
  auto a = nn::constant(make_tensor(2, 3));
  auto b = nn::constant(make_tensor(3, 2));
  EXPECT_THROW(nn::add(a, b), std::invalid_argument);
  EXPECT_THROW(nn::mul(a, b), std::invalid_argument);
  EXPECT_THROW(nn::matmul(a, a), std::invalid_argument);
  EXPECT_THROW(nn::softmax_col(a), std::invalid_argument);
  EXPECT_THROW(nn::backward(a), std::invalid_argument);
}
