// Metrics registry (util/metrics.hpp): counter/gauge/label/histogram
// correctness, percentile edge cases, deterministic shard merge under
// the thread pool, the no-allocation contract of the disabled fast
// path, and JSON snapshots that survive a parser round-trip.
#include "sevuldet/util/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <thread>
#include <vector>

#include "sevuldet/util/mini_json.hpp"
#include "sevuldet/util/thread_pool.hpp"

// Global allocation counter for the disabled-fast-path test. Relaxed is
// fine: the measured section is single-threaded.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

namespace metrics = sevuldet::util::metrics;
namespace mini_json = sevuldet::util::mini_json;

// The registry is process-global state; every test starts from a clean,
// enabled registry and leaves it disabled and empty.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::reset();
    metrics::set_enabled(true);
  }
  void TearDown() override {
    metrics::set_enabled(false);
    metrics::reset();
  }
};

TEST_F(MetricsTest, CountersAccumulate) {
  metrics::counter_add("a");
  metrics::counter_add("a", 4);
  metrics::counter_add("b", -2);
  const auto snap = metrics::snapshot();
  EXPECT_EQ(snap.counters.at("a"), 5);
  EXPECT_EQ(snap.counters.at("b"), -2);
}

TEST_F(MetricsTest, GaugesLastWriteWinsAndLabels) {
  metrics::gauge_set("g", 1.5);
  metrics::gauge_set("g", 2.5);
  metrics::label_set("fingerprint", "deadbeef");
  const auto snap = metrics::snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
  EXPECT_EQ(snap.labels.at("fingerprint"), "deadbeef");
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  metrics::set_enabled(false);
  metrics::counter_add("a");
  metrics::observe_ms("h", 1.0);
  metrics::gauge_set("g", 1.0);
  const auto snap = metrics::snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(MetricsTest, DisabledFastPathDoesNotAllocate) {
  metrics::set_enabled(false);
  // Warm nothing: the whole point is that the disabled path touches no
  // thread-local state and allocates nothing.
  const long long before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    metrics::counter_add("never.recorded", i);
    metrics::observe_ms("never.observed", 0.5);
  }
  const long long after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
}

TEST_F(MetricsTest, HistogramSingleObservationPercentiles) {
  metrics::observe_ms("h", 3.25);
  const auto snap = metrics::snapshot();
  const auto& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 1);
  EXPECT_DOUBLE_EQ(h.min, 3.25);
  EXPECT_DOUBLE_EQ(h.max, 3.25);
  // One observation: every percentile clamps to the single value.
  EXPECT_DOUBLE_EQ(h.percentile(50), 3.25);
  EXPECT_DOUBLE_EQ(h.percentile(95), 3.25);
  EXPECT_DOUBLE_EQ(h.percentile(99), 3.25);
}

TEST_F(MetricsTest, HistogramPercentilesAreOrderedAndBounded) {
  for (int i = 1; i <= 1000; ++i) {
    metrics::observe_ms("h", static_cast<double>(i) * 0.1);
  }
  const auto snap = metrics::snapshot();
  const auto& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 1000);
  const double p50 = h.percentile(50);
  const double p95 = h.percentile(95);
  const double p99 = h.percentile(99);
  EXPECT_LE(h.min, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max);
  // Log-spaced buckets have sqrt(2) resolution; the p50 estimate must
  // land within one bucket ratio of the true median (50ms).
  EXPECT_GT(p50, 50.0 / 1.5);
  EXPECT_LT(p50, 50.0 * 1.5);
}

TEST_F(MetricsTest, EmptyHistogramPercentileIsZero) {
  metrics::HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(99), 0.0);
}

TEST_F(MetricsTest, ValuesAboveLastBucketClampButKeepExactMax) {
  const double huge = metrics::bucket_bound_ms(metrics::kHistogramBuckets - 1) * 10;
  metrics::observe_ms("h", huge);
  const auto snap = metrics::snapshot();
  const auto& h = snap.histograms.at("h");
  EXPECT_DOUBLE_EQ(h.max, huge);
  EXPECT_EQ(h.buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(50), huge);  // clamped to [min, max]
}

TEST_F(MetricsTest, BucketBoundsAreStrictlyIncreasing) {
  for (int i = 1; i < metrics::kHistogramBuckets; ++i) {
    EXPECT_LT(metrics::bucket_bound_ms(i - 1), metrics::bucket_bound_ms(i));
  }
}

TEST_F(MetricsTest, ShardMergeIsDeterministicAcrossThreadedRuns) {
  auto run_once = [] {
    metrics::reset();
    sevuldet::util::ThreadPool pool(4);
    pool.parallel_chunks(400, [](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        metrics::counter_add("work.items");
        metrics::observe_ms("work.latency",
                            0.01 * static_cast<double>(i % 50 + 1));
      }
    });
    return metrics::to_json();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  // Counter sums and bucket-count sums are order-independent, so two
  // identical threaded runs serialize byte-identically.
  EXPECT_EQ(first, second);
  const auto snap = metrics::snapshot();
  EXPECT_EQ(snap.counters.at("work.items"), 400);
  EXPECT_EQ(snap.histograms.at("work.latency").count, 400);
}

TEST_F(MetricsTest, RetiredThreadShardsSurviveThreadExit) {
  std::thread worker([] { metrics::counter_add("from.worker", 7); });
  worker.join();
  EXPECT_EQ(metrics::snapshot().counters.at("from.worker"), 7);
}

TEST_F(MetricsTest, JsonRoundTripsThroughParser) {
  metrics::counter_add("corpus.cases", 42);
  metrics::gauge_set("bench.warm_seconds", 0.125);
  metrics::label_set("corpus.fingerprint", "0123abcd");
  metrics::label_set("needs\"escape\\", "line\nbreak");
  for (int i = 0; i < 10; ++i) metrics::observe_ms("span.parse", 1.0 + i);

  const mini_json::Value doc = mini_json::parse(metrics::to_json());
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number, 1.0);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("corpus.cases").number, 42.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("bench.warm_seconds").number, 0.125);
  EXPECT_EQ(doc.at("labels").at("corpus.fingerprint").str, "0123abcd");
  EXPECT_EQ(doc.at("labels").at("needs\"escape\\").str, "line\nbreak");
  const auto& h = doc.at("histograms").at("span.parse");
  EXPECT_EQ(h.at("unit").str, "ms");
  EXPECT_DOUBLE_EQ(h.at("count").number, 10.0);
  EXPECT_GT(h.at("p95").number, 0.0);
  EXPECT_GE(h.at("buckets").array.size(), 1u);
  // Each bucket is a [upper_bound_ms, count] pair.
  EXPECT_EQ(h.at("buckets").at(0).array.size(), 2u);
}

TEST_F(MetricsTest, WriteJsonCreatesFileAndThrowsOnBadPath) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "sevuldet-metrics-test-snapshot.json";
  metrics::counter_add("x");
  metrics::write_json(path.string());
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  fs::remove(path);
  EXPECT_THROW(metrics::write_json("/nonexistent-dir/metrics.json"),
               std::runtime_error);
}

}  // namespace
