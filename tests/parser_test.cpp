#include <gtest/gtest.h>

#include "sevuldet/frontend/ast_text.hpp"
#include "sevuldet/frontend/parser.hpp"

namespace sf = sevuldet::frontend;

TEST(Parser, SimpleFunction) {
  auto unit = sf::parse(R"(
int add(int a, int b) {
  return a + b;
}
)");
  ASSERT_EQ(unit.functions.size(), 1u);
  const auto& fn = unit.functions[0];
  EXPECT_EQ(fn.name, "add");
  EXPECT_EQ(fn.return_type, "int");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].name, "a");
  ASSERT_EQ(fn.body->children.size(), 1u);
  EXPECT_EQ(fn.body->children[0]->kind, sf::StmtKind::Return);
}

TEST(Parser, PointerAndArrayParams) {
  auto unit = sf::parse("void f(char *dest, int n, char buf[16]) { }");
  const auto& fn = unit.functions[0];
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_TRUE(fn.params[0].is_pointer);
  EXPECT_FALSE(fn.params[1].is_pointer);
  EXPECT_TRUE(fn.params[2].is_array);
}

TEST(Parser, VoidParamList) {
  auto unit = sf::parse("int main(void) { return 0; }");
  EXPECT_TRUE(unit.functions[0].params.empty());
}

TEST(Parser, Declarations) {
  auto stmt = sf::parse_statement("int x = 5;");
  EXPECT_EQ(stmt->kind, sf::StmtKind::Decl);
  EXPECT_EQ(stmt->name, "x");
  EXPECT_EQ(stmt->type, "int");
  EXPECT_TRUE(stmt->for_has_init);

  auto arr = sf::parse_statement("char dest[100];");
  EXPECT_TRUE(arr->decl_is_array);
  EXPECT_FALSE(arr->for_has_init);

  auto ptr = sf::parse_statement("char *p = buf;");
  EXPECT_TRUE(ptr->decl_is_pointer);
}

TEST(Parser, MultiDeclarator) {
  auto stmt = sf::parse_statement("int a = 1, b, c = 3;");
  EXPECT_EQ(stmt->name, "a");
  ASSERT_EQ(stmt->children.size(), 2u);
  EXPECT_EQ(stmt->children[0]->name, "b");
  EXPECT_EQ(stmt->children[1]->name, "c");
  EXPECT_TRUE(stmt->children[1]->for_has_init);
}

TEST(Parser, IfElseIfElseChain) {
  auto stmt = sf::parse_statement(R"(
if (a > 0) {
  x = 1;
} else if (a < 0) {
  x = 2;
} else {
  x = 3;
}
)");
  ASSERT_EQ(stmt->kind, sf::StmtKind::If);
  ASSERT_EQ(stmt->children.size(), 2u);
  const auto& else_body = *stmt->children[1];
  ASSERT_EQ(else_body.kind, sf::StmtKind::If);  // "else if"
  ASSERT_EQ(else_body.children.size(), 2u);
  EXPECT_EQ(else_body.children[1]->kind, sf::StmtKind::Compound);
}

TEST(Parser, Loops) {
  auto f = sf::parse_statement("for (int i = 0; i < n; i++) { sum += i; }");
  ASSERT_EQ(f->kind, sf::StmtKind::For);
  EXPECT_TRUE(f->for_has_init);
  EXPECT_TRUE(f->for_has_cond);
  EXPECT_TRUE(f->for_has_step);
  ASSERT_EQ(f->children.size(), 2u);  // init + body
  EXPECT_EQ(f->children[0]->kind, sf::StmtKind::Decl);

  auto w = sf::parse_statement("while (x > 0) x--;");
  EXPECT_EQ(w->kind, sf::StmtKind::While);

  auto dw = sf::parse_statement("do { x--; } while (x > 0);");
  EXPECT_EQ(dw->kind, sf::StmtKind::DoWhile);

  auto empty_for = sf::parse_statement("for (;;) { break; }");
  EXPECT_FALSE(empty_for->for_has_init);
  EXPECT_FALSE(empty_for->for_has_cond);
  EXPECT_FALSE(empty_for->for_has_step);
}

TEST(Parser, SwitchCases) {
  auto stmt = sf::parse_statement(R"(
switch (mode) {
  case 1:
    x = 1;
    break;
  case 2:
  case 3:
    x = 2;
    break;
  default:
    x = 0;
}
)");
  ASSERT_EQ(stmt->kind, sf::StmtKind::Switch);
  ASSERT_EQ(stmt->children.size(), 4u);
  EXPECT_EQ(stmt->children[0]->name, "1");
  EXPECT_EQ(stmt->children[0]->children.size(), 2u);
  EXPECT_EQ(stmt->children[1]->name, "2");
  EXPECT_TRUE(stmt->children[1]->children.empty());  // falls through
  EXPECT_EQ(stmt->children[3]->name, "default");
}

TEST(Parser, GotoAndLabel) {
  auto unit = sf::parse(R"(
void f(int x) {
  if (x < 0) goto fail;
  x = x + 1;
fail:
  x = 0;
}
)");
  const auto& body = *unit.functions[0].body;
  ASSERT_EQ(body.children.size(), 3u);
  EXPECT_EQ(body.children[2]->kind, sf::StmtKind::Label);
  EXPECT_EQ(body.children[2]->name, "fail");
}

TEST(Parser, ExpressionPrecedence) {
  auto e = sf::parse_expression("a + b * c");
  EXPECT_EQ(sf::expr_text(*e), "a + b * c");
  ASSERT_EQ(e->kind, sf::ExprKind::Binary);
  EXPECT_EQ(e->op, "+");
  EXPECT_EQ(e->children[1]->op, "*");

  auto e2 = sf::parse_expression("a || b && c == d");
  EXPECT_EQ(e2->op, "||");
}

TEST(Parser, AssignmentRightAssociative) {
  auto e = sf::parse_expression("a = b = c");
  ASSERT_EQ(e->kind, sf::ExprKind::Assign);
  EXPECT_EQ(e->children[1]->kind, sf::ExprKind::Assign);
}

TEST(Parser, CallsIndexMember) {
  auto e = sf::parse_expression("strncpy(dest, data, n)");
  ASSERT_EQ(e->kind, sf::ExprKind::Call);
  EXPECT_EQ(e->text, "strncpy");
  EXPECT_EQ(e->children.size(), 4u);  // callee + 3 args

  auto idx = sf::parse_expression("buf[i + 1]");
  EXPECT_EQ(idx->kind, sf::ExprKind::Index);

  auto mem = sf::parse_expression("s->emrbr");
  EXPECT_EQ(mem->kind, sf::ExprKind::Member);
  EXPECT_EQ(mem->op, "->");
  EXPECT_EQ(mem->text, "emrbr");
}

TEST(Parser, CastVsParen) {
  auto cast = sf::parse_expression("(int)x");
  EXPECT_EQ(cast->kind, sf::ExprKind::Cast);
  EXPECT_EQ(cast->text, "int");

  auto paren = sf::parse_expression("(x) + 1");
  EXPECT_EQ(paren->kind, sf::ExprKind::Binary);

  auto ptr_cast = sf::parse_expression("(char *)malloc(10)");
  EXPECT_EQ(ptr_cast->kind, sf::ExprKind::Cast);
  EXPECT_EQ(ptr_cast->text, "char*");
}

TEST(Parser, SizeOf) {
  auto st = sf::parse_expression("sizeof(int)");
  EXPECT_EQ(st->kind, sf::ExprKind::SizeOf);
  EXPECT_EQ(st->text, "int");

  auto se = sf::parse_expression("sizeof buf");
  EXPECT_EQ(se->kind, sf::ExprKind::SizeOf);
  ASSERT_EQ(se->children.size(), 1u);
}

TEST(Parser, Ternary) {
  auto e = sf::parse_expression("a > b ? a : b");
  EXPECT_EQ(e->kind, sf::ExprKind::Ternary);
  EXPECT_EQ(e->children.size(), 3u);
}

TEST(Parser, LineRanges) {
  auto unit = sf::parse(R"(void f(int n) {
  int a;
  if (n > 0) {
    a = 1;
  }
})");
  const auto& fn = unit.functions[0];
  EXPECT_EQ(fn.range.begin_line, 1);
  const auto& if_stmt = *fn.body->children[1];
  EXPECT_EQ(if_stmt.kind, sf::StmtKind::If);
  EXPECT_EQ(if_stmt.range.begin_line, 3);
  EXPECT_EQ(if_stmt.range.end_line, 5);
}

TEST(Parser, GlobalsAndTypedefsAndStructs) {
  auto unit = sf::parse(R"(
typedef unsigned long mysize;
struct Packet { int len; char data[64]; };
int g_count = 0;
void f(mysize n) { g_count = (int)n; }
)");
  EXPECT_EQ(unit.functions.size(), 1u);
  EXPECT_GE(unit.globals.size(), 2u);
  EXPECT_EQ(unit.functions[0].params[0].type, "mysize");
}

TEST(Parser, Prototype) {
  auto unit = sf::parse("int helper(int x);\nint main() { return helper(1); }");
  EXPECT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].name, "main");
}

TEST(Parser, MalformedThrows) {
  EXPECT_THROW(sf::parse("int f( {"), sf::ParseError);
  EXPECT_THROW(sf::parse_statement("if (x"), sf::ParseError);
  EXPECT_THROW(sf::parse_expression("a +"), sf::ParseError);
}

TEST(Parser, StmtHeaderText) {
  auto s = sf::parse_statement("if (n < 100) { x = 1; }");
  EXPECT_EQ(sf::stmt_header_text(*s), "if (n < 100)");
  auto f = sf::parse_statement("for (i = 0; i < n; i++) ;");
  EXPECT_EQ(sf::stmt_header_text(*f), "for (i = 0; i < n; i++)");
  auto d = sf::parse_statement("char dest[10 + 1];");
  EXPECT_EQ(sf::stmt_header_text(*d), "char dest[10 + 1]");
}
