#include <gtest/gtest.h>

#include "sevuldet/frontend/ast_queries.hpp"
#include "sevuldet/frontend/parser.hpp"

namespace sf = sevuldet::frontend;

namespace {
sf::UseDef ud_of_stmt(const char* src) {
  auto stmt = sf::parse_statement(src);
  return sf::analyze_stmt(*stmt);
}
}  // namespace

TEST(AstQueries, SimpleAssignment) {
  auto ud = ud_of_stmt("x = a + b;");
  EXPECT_TRUE(ud.defs.contains("x"));
  EXPECT_TRUE(ud.uses.contains("a"));
  EXPECT_TRUE(ud.uses.contains("b"));
  EXPECT_FALSE(ud.uses.contains("x"));
}

TEST(AstQueries, CompoundAssignmentUsesLhs) {
  auto ud = ud_of_stmt("x += y;");
  EXPECT_TRUE(ud.defs.contains("x"));
  EXPECT_TRUE(ud.uses.contains("x"));
  EXPECT_TRUE(ud.uses.contains("y"));
}

TEST(AstQueries, ArrayWriteDefsBaseUsesIndex) {
  auto ud = ud_of_stmt("buf[i] = v;");
  EXPECT_TRUE(ud.defs.contains("buf"));
  EXPECT_TRUE(ud.uses.contains("buf"));  // address computation
  EXPECT_TRUE(ud.uses.contains("i"));
  EXPECT_TRUE(ud.uses.contains("v"));
}

TEST(AstQueries, PointerDeref) {
  auto ud = ud_of_stmt("*p = q;");
  EXPECT_TRUE(ud.defs.contains("p"));
  EXPECT_TRUE(ud.uses.contains("q"));
}

TEST(AstQueries, MemberWrite) {
  auto ud = ud_of_stmt("s->len = n;");
  EXPECT_TRUE(ud.defs.contains("s"));
  EXPECT_TRUE(ud.uses.contains("n"));
}

TEST(AstQueries, IncrementDecrements) {
  auto pre = ud_of_stmt("++i;");
  EXPECT_TRUE(pre.defs.contains("i"));
  EXPECT_TRUE(pre.uses.contains("i"));
  auto post = ud_of_stmt("n--;");
  EXPECT_TRUE(post.defs.contains("n"));
  EXPECT_TRUE(post.uses.contains("n"));
}

TEST(AstQueries, DeclWithInit) {
  auto ud = ud_of_stmt("int n = strlen(src);");
  EXPECT_TRUE(ud.defs.contains("n"));
  EXPECT_TRUE(ud.uses.contains("src"));
  ASSERT_EQ(ud.calls.size(), 1u);
  EXPECT_EQ(ud.calls[0], "strlen");
}

TEST(AstQueries, MultiDeclarator) {
  auto ud = ud_of_stmt("int a = x, b = y;");
  EXPECT_TRUE(ud.defs.contains("a"));
  EXPECT_TRUE(ud.defs.contains("b"));
  EXPECT_TRUE(ud.uses.contains("x"));
  EXPECT_TRUE(ud.uses.contains("y"));
}

TEST(AstQueries, LibraryOutParamDefsDest) {
  auto ud = ud_of_stmt("strncpy(dest, data, n);");
  EXPECT_TRUE(ud.defs.contains("dest"));
  EXPECT_TRUE(ud.uses.contains("data"));
  EXPECT_TRUE(ud.uses.contains("n"));
  ASSERT_EQ(ud.calls.size(), 1u);
  EXPECT_EQ(ud.calls[0], "strncpy");
}

TEST(AstQueries, MemsetDefsPointer) {
  auto ud = ud_of_stmt("memset(buf, 0, sizeof(buf));");
  EXPECT_TRUE(ud.defs.contains("buf"));
}

TEST(AstQueries, ScanfDefsAddressedArgs) {
  auto ud = ud_of_stmt("scanf(\"%d\", &value);");
  EXPECT_TRUE(ud.defs.contains("value"));
}

TEST(AstQueries, UnknownCallOnlyUses) {
  auto ud = ud_of_stmt("helper(a, b);");
  EXPECT_TRUE(ud.defs.empty());
  EXPECT_TRUE(ud.uses.contains("a"));
  EXPECT_TRUE(ud.uses.contains("b"));
  ASSERT_EQ(ud.calls.size(), 1u);
}

TEST(AstQueries, NestedCalls) {
  auto ud = ud_of_stmt("x = f(g(y), z);");
  EXPECT_EQ(ud.calls.size(), 2u);
  EXPECT_TRUE(ud.uses.contains("y"));
  EXPECT_TRUE(ud.uses.contains("z"));
}

TEST(AstQueries, ControlPredicates) {
  auto if_ud = ud_of_stmt("if (n < limit) { x = 1; }");
  EXPECT_TRUE(if_ud.uses.contains("n"));
  EXPECT_TRUE(if_ud.uses.contains("limit"));
  // Child statements are separate units: the body's defs must NOT leak.
  EXPECT_FALSE(if_ud.defs.contains("x"));

  auto for_stmt = sf::parse_statement("for (i = 0; i < n; i++) { s += i; }");
  auto for_ud = sf::analyze_stmt(*for_stmt);
  EXPECT_TRUE(for_ud.uses.contains("n"));
  EXPECT_TRUE(for_ud.defs.contains("i"));  // step i++
  EXPECT_FALSE(for_ud.defs.contains("s"));
}

TEST(AstQueries, AddressOfIsUse) {
  auto ud = ud_of_stmt("p = &x;");
  EXPECT_TRUE(ud.defs.contains("p"));
  EXPECT_TRUE(ud.uses.contains("x"));
}

TEST(AstQueries, TernaryUsesAllArms) {
  auto ud = ud_of_stmt("m = a > b ? a : c;");
  EXPECT_TRUE(ud.uses.contains("a"));
  EXPECT_TRUE(ud.uses.contains("b"));
  EXPECT_TRUE(ud.uses.contains("c"));
}
