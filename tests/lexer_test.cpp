#include <gtest/gtest.h>

#include "sevuldet/frontend/lexer.hpp"

namespace sf = sevuldet::frontend;

TEST(Lexer, IdentifiersAndKeywords) {
  auto toks = sf::lex_tokens("int foo _bar if whileX");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, sf::TokenKind::Keyword);
  EXPECT_EQ(toks[1].kind, sf::TokenKind::Identifier);
  EXPECT_EQ(toks[2].text, "_bar");
  EXPECT_EQ(toks[3].kind, sf::TokenKind::Keyword);
  EXPECT_EQ(toks[4].kind, sf::TokenKind::Identifier);
}

TEST(Lexer, IntLiterals) {
  auto toks = sf::lex_tokens("0 42 0x1F 100UL 7u");
  ASSERT_EQ(toks.size(), 5u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, sf::TokenKind::IntLiteral);
  EXPECT_EQ(toks[2].text, "0x1F");
  EXPECT_EQ(toks[3].text, "100UL");
}

TEST(Lexer, FloatLiterals) {
  auto toks = sf::lex_tokens("3.14 1e-9 2.5f .5");
  ASSERT_EQ(toks.size(), 4u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, sf::TokenKind::FloatLiteral);
}

TEST(Lexer, StringAndCharLiterals) {
  auto toks = sf::lex_tokens(R"("hello \"x\"" 'a' '\n')");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, sf::TokenKind::StringLiteral);
  EXPECT_EQ(toks[0].text, R"("hello \"x\"")");
  EXPECT_EQ(toks[1].kind, sf::TokenKind::CharLiteral);
  EXPECT_EQ(toks[2].text, "'\\n'");
}

TEST(Lexer, MaximalMunchPunctuators) {
  auto toks = sf::lex_tokens("a->b <<= >> <= == ... ++ --x");
  std::vector<std::string> puncts;
  for (const auto& t : toks) {
    if (t.kind == sf::TokenKind::Punct) puncts.emplace_back(t.text);
  }
  EXPECT_EQ(puncts, (std::vector<std::string>{"->", "<<=", ">>", "<=", "==",
                                              "...", "++", "--"}));
}

TEST(Lexer, Comments) {
  auto toks = sf::lex_tokens("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
  EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, Directives) {
  auto result = sf::lex("#include <stdio.h>\nint x;\n#define N 10\n");
  ASSERT_EQ(result.directives.size(), 2u);
  EXPECT_EQ(result.directives[0], "#include <stdio.h>");
  EXPECT_EQ(result.directives[1], "#define N 10");
  // Tokens: int x ; EOF
  ASSERT_EQ(result.tokens.size(), 4u);
}

TEST(Lexer, LineAndColumnTracking) {
  auto toks = sf::lex_tokens("ab\n  cd");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(sf::lex_tokens("\"abc"), sf::LexError);
  EXPECT_THROW(sf::lex_tokens("'a"), sf::LexError);
  EXPECT_THROW(sf::lex_tokens("/* never closed"), sf::LexError);
}

TEST(Lexer, StrayByteThrows) {
  EXPECT_THROW(sf::lex_tokens("a $ b"), sf::LexError);
}

TEST(Lexer, EmptyInput) {
  auto result = sf::lex("");
  ASSERT_EQ(result.tokens.size(), 1u);
  EXPECT_EQ(result.tokens[0].kind, sf::TokenKind::EndOfFile);
}

TEST(Lexer, LexErrorKeepsRawMessage) {
  try {
    sf::lex_tokens("\"abc");
    FAIL() << "expected LexError";
  } catch (const sf::LexError& e) {
    EXPECT_EQ(e.raw_message(), "unterminated string literal");
    EXPECT_NE(std::string(e.what()).find(" at 1:1"), std::string::npos);
  }
}

TEST(Lexer, BackslashLineContinuationSplicesTokens) {
  // `ab\<newline>cd` is one identifier after splicing.
  auto toks = sf::lex_tokens("ab\\\ncd = 1\\\n2;");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "abcd");
  EXPECT_EQ(toks[0].kind, sf::TokenKind::Identifier);
  EXPECT_EQ(toks[2].text, "12");
  EXPECT_EQ(toks[2].kind, sf::TokenKind::IntLiteral);
}

TEST(Lexer, ContinuationKeepsLineNumbers) {
  auto toks = sf::lex_tokens("a\\\n b\nc");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 2);  // the splice consumed one newline
  EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, ContinuationInsideString) {
  auto toks = sf::lex_tokens("\"ab\\\ncd\"");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, sf::TokenKind::StringLiteral);
  EXPECT_EQ(toks[0].text, "\"abcd\"");
}

TEST(Lexer, CrlfLineEndings) {
  auto toks = sf::lex_tokens("int a;\r\nint b;\r\nint c;");
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_EQ(toks[3].text, "int");
  EXPECT_EQ(toks[3].line, 2);
  EXPECT_EQ(toks[3].column, 1);
  EXPECT_EQ(toks[6].line, 3);
}

TEST(Lexer, CrlfDirectiveExcludesCarriageReturn) {
  auto result = sf::lex("#define N 10\r\nint x;\r\n");
  ASSERT_EQ(result.directives.size(), 1u);
  EXPECT_EQ(result.directives[0], "#define N 10");
}

TEST(Lexer, CrlfContinuation) {
  auto toks = sf::lex_tokens("ab\\\r\ncd");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].text, "abcd");
}

TEST(Lexer, DirectiveAfterLeadingWhitespace) {
  auto result = sf::lex("  #include <a.h>\nint x;\n");
  ASSERT_EQ(result.directives.size(), 1u);
  EXPECT_EQ(result.directives[0], "#include <a.h>");
}

TEST(Lexer, DirectiveContinuationJoinsWithSpace) {
  auto result = sf::lex("#define N \\\n 10\n");
  ASSERT_EQ(result.directives.size(), 1u);
  EXPECT_EQ(result.directives[0], "#define N   10");
}

TEST(Lexer, TokensAreViewsIntoSource) {
  std::string source = "int value = 42;";
  auto toks = sf::lex_tokens(source);
  ASSERT_EQ(toks.size(), 5u);
  for (const auto& t : toks) {
    EXPECT_GE(t.text.data(), source.data());
    EXPECT_LE(t.text.data() + t.text.size(), source.data() + source.size());
  }
}

TEST(Lexer, LexIntoReusesCapacity) {
  sf::LexResult result;
  sf::lex_into("int a = 1;", result);
  std::size_t n = result.tokens.size();
  sf::lex_into("int b = 2;", result);
  EXPECT_EQ(result.tokens.size(), n);
  EXPECT_EQ(result.tokens[1].text, "b");
}
