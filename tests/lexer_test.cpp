#include <gtest/gtest.h>

#include "sevuldet/frontend/lexer.hpp"

namespace sf = sevuldet::frontend;

TEST(Lexer, IdentifiersAndKeywords) {
  auto toks = sf::lex_tokens("int foo _bar if whileX");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, sf::TokenKind::Keyword);
  EXPECT_EQ(toks[1].kind, sf::TokenKind::Identifier);
  EXPECT_EQ(toks[2].text, "_bar");
  EXPECT_EQ(toks[3].kind, sf::TokenKind::Keyword);
  EXPECT_EQ(toks[4].kind, sf::TokenKind::Identifier);
}

TEST(Lexer, IntLiterals) {
  auto toks = sf::lex_tokens("0 42 0x1F 100UL 7u");
  ASSERT_EQ(toks.size(), 5u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, sf::TokenKind::IntLiteral);
  EXPECT_EQ(toks[2].text, "0x1F");
  EXPECT_EQ(toks[3].text, "100UL");
}

TEST(Lexer, FloatLiterals) {
  auto toks = sf::lex_tokens("3.14 1e-9 2.5f .5");
  ASSERT_EQ(toks.size(), 4u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, sf::TokenKind::FloatLiteral);
}

TEST(Lexer, StringAndCharLiterals) {
  auto toks = sf::lex_tokens(R"("hello \"x\"" 'a' '\n')");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, sf::TokenKind::StringLiteral);
  EXPECT_EQ(toks[0].text, R"("hello \"x\"")");
  EXPECT_EQ(toks[1].kind, sf::TokenKind::CharLiteral);
  EXPECT_EQ(toks[2].text, "'\\n'");
}

TEST(Lexer, MaximalMunchPunctuators) {
  auto toks = sf::lex_tokens("a->b <<= >> <= == ... ++ --x");
  std::vector<std::string> puncts;
  for (const auto& t : toks) {
    if (t.kind == sf::TokenKind::Punct) puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts, (std::vector<std::string>{"->", "<<=", ">>", "<=", "==",
                                              "...", "++", "--"}));
}

TEST(Lexer, Comments) {
  auto toks = sf::lex_tokens("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
  EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, Directives) {
  auto result = sf::lex("#include <stdio.h>\nint x;\n#define N 10\n");
  ASSERT_EQ(result.directives.size(), 2u);
  EXPECT_EQ(result.directives[0], "#include <stdio.h>");
  EXPECT_EQ(result.directives[1], "#define N 10");
  // Tokens: int x ; EOF
  ASSERT_EQ(result.tokens.size(), 4u);
}

TEST(Lexer, LineAndColumnTracking) {
  auto toks = sf::lex_tokens("ab\n  cd");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(sf::lex_tokens("\"abc"), sf::LexError);
  EXPECT_THROW(sf::lex_tokens("'a"), sf::LexError);
  EXPECT_THROW(sf::lex_tokens("/* never closed"), sf::LexError);
}

TEST(Lexer, StrayByteThrows) {
  EXPECT_THROW(sf::lex_tokens("a $ b"), sf::LexError);
}

TEST(Lexer, EmptyInput) {
  auto result = sf::lex("");
  ASSERT_EQ(result.tokens.size(), 1u);
  EXPECT_EQ(result.tokens[0].kind, sf::TokenKind::EndOfFile);
}
