// Exactness and reuse properties of the blocked kernel library and the
// tensor arena. The load-bearing invariant: every blocked kernel is
// BITWISE identical to its naive reference (same per-element FP
// accumulation chain), and arena-backed autograd is bitwise identical
// to heap-backed autograd — blocking and arenas change where floats
// live and how fast they move, never their values.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "sevuldet/nn/autograd.hpp"
#include "sevuldet/nn/kernels.hpp"
#include "sevuldet/nn/layers.hpp"
#include "sevuldet/nn/optim.hpp"
#include "sevuldet/nn/tensor.hpp"
#include "sevuldet/util/rng.hpp"

namespace kernels = sevuldet::nn::kernels;
using sevuldet::nn::Graph;
using sevuldet::nn::GraphScope;
using sevuldet::nn::NodePtr;
using sevuldet::nn::Tensor;
using sevuldet::nn::TensorArena;
using sevuldet::util::Rng;

namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(float)) == 0);
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// Shape set for the GEMM property tests: degenerate (empty, 1xN, Nx1),
// primes (never divisible by a tile size), the exact shapes SEVulDetNet
// produces, and shapes straddling the MC/KC/NC cache-block boundaries.
struct GemmShape {
  int m, n, k;
};
const GemmShape kShapes[] = {
    {1, 1, 1},    {1, 17, 1},   {17, 1, 3},    {7, 13, 17},  {0, 5, 4},
    {5, 0, 4},    {2, 3, 0},    {97, 101, 53}, {50, 32, 90}, {50, 32, 96},
    {1, 256, 224}, {1, 64, 256}, {1, 1, 64},   {64, 256, 256},
    {65, 257, 257}, {130, 300, 310}};

}  // namespace

// ---------------------------------------------------------------------------
// blocked GEMM family vs naive references, bitwise
// ---------------------------------------------------------------------------

TEST(KernelsTest, GemmMatchesNaiveBitwise) {
  Rng rng(7);
  for (const auto& s : kShapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    // Nonzero initial C: both kernels accumulate, never overwrite.
    auto c_ref = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    auto c_blk = c_ref;
    kernels::gemm_naive(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
    kernels::gemm(s.m, s.n, s.k, a.data(), b.data(), c_blk.data());
    EXPECT_TRUE(bitwise_equal(c_ref, c_blk))
        << "gemm " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsTest, GemmAtBMatchesNaiveBitwise) {
  Rng rng(11);
  for (const auto& s : kShapes) {
    // A stored [k, m] — the fused-transpose layout of dB = A^T * dOut.
    const auto a = random_vec(static_cast<std::size_t>(s.k) * s.m, rng);
    const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    auto c_ref = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    auto c_blk = c_ref;
    kernels::gemm_at_b_naive(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
    kernels::gemm_at_b(s.m, s.n, s.k, a.data(), b.data(), c_blk.data());
    EXPECT_TRUE(bitwise_equal(c_ref, c_blk))
        << "gemm_at_b " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsTest, GemmABtMatchesNaiveBitwise) {
  Rng rng(13);
  for (const auto& s : kShapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    // B stored [n, k] — the fused-transpose layout of dA = dOut * B^T.
    const auto b = random_vec(static_cast<std::size_t>(s.n) * s.k, rng);
    auto c_ref = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    auto c_blk = c_ref;
    kernels::gemm_a_bt_naive(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
    kernels::gemm_a_bt(s.m, s.n, s.k, a.data(), b.data(), c_blk.data());
    EXPECT_TRUE(bitwise_equal(c_ref, c_blk))
        << "gemm_a_bt " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsTest, TransposeMatchesScalarBitwise) {
  Rng rng(17);
  const int shapes[][2] = {{1, 1}, {1, 9}, {9, 1}, {7, 13}, {33, 65}, {100, 3}};
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1];
    const auto a = random_vec(static_cast<std::size_t>(m) * n, rng);
    std::vector<float> t_ref(static_cast<std::size_t>(m) * n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        t_ref[static_cast<std::size_t>(j) * m + i] =
            a[static_cast<std::size_t>(i) * n + j];
      }
    }
    std::vector<float> t_out(static_cast<std::size_t>(m) * n, 0.0f);
    kernels::transpose_copy(m, n, a.data(), t_out.data());
    EXPECT_TRUE(bitwise_equal(t_ref, t_out)) << "transpose_copy " << m << "x" << n;

    auto acc_ref = random_vec(static_cast<std::size_t>(m) * n, rng);
    auto acc_out = acc_ref;
    for (std::size_t i = 0; i < acc_ref.size(); ++i) acc_ref[i] += t_ref[i];
    kernels::transpose_add(m, n, a.data(), acc_out.data());
    EXPECT_TRUE(bitwise_equal(acc_ref, acc_out)) << "transpose_add " << m << "x" << n;
  }
}

TEST(KernelsTest, Level1HelpersMatchScalarBitwise) {
  Rng rng(19);
  const std::size_t n = 103;  // prime, forces vector epilogues
  const auto x = random_vec(n, rng);
  const auto y0 = random_vec(n, rng);

  auto y_ref = y0;
  for (std::size_t i = 0; i < n; ++i) y_ref[i] += 0.37f * x[i];
  auto y_out = y0;
  kernels::axpy(n, 0.37f, x.data(), y_out.data());
  EXPECT_TRUE(bitwise_equal(y_ref, y_out));

  y_ref = y0;
  for (std::size_t i = 0; i < n; ++i) y_ref[i] += x[i];
  y_out = y0;
  kernels::add_inplace(n, x.data(), y_out.data());
  EXPECT_TRUE(bitwise_equal(y_ref, y_out));

  const auto z = random_vec(n, rng);
  y_ref = y0;
  for (std::size_t i = 0; i < n; ++i) y_ref[i] += x[i] * z[i];
  y_out = y0;
  kernels::mul_accumulate(n, x.data(), z.data(), y_out.data());
  EXPECT_TRUE(bitwise_equal(y_ref, y_out));

  float dot_ref = 0.0f;
  for (std::size_t i = 0; i < n; ++i) dot_ref += x[i] * z[i];
  const float dot_out = kernels::dot(n, x.data(), z.data());
  EXPECT_EQ(std::memcmp(&dot_ref, &dot_out, sizeof(float)), 0);

  const int rows = 11, cols = 13;
  const auto mat = random_vec(static_cast<std::size_t>(rows) * cols, rng);
  std::vector<float> col_ref(static_cast<std::size_t>(cols), 0.0f);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      col_ref[static_cast<std::size_t>(c)] +=
          mat[static_cast<std::size_t>(r) * cols + c];
    }
  }
  std::vector<float> col_out(static_cast<std::size_t>(cols), 0.0f);
  kernels::col_sum_add(rows, cols, mat.data(), col_out.data());
  EXPECT_TRUE(bitwise_equal(col_ref, col_out));
}

// The old matmul skipped a_ik == 0 terms ("sparsity" shortcut). That
// silently converted 0 * NaN and 0 * Inf — both NaN by IEEE 754 — into
// "no contribution", masking poisoned activations. The kernels must
// propagate them.
TEST(KernelsTest, ZeroTimesNanPropagates) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();

  const float a[2] = {0.0f, 0.0f};       // [1,2]
  const float b_nan[2] = {nan, 5.0f};    // [2,1]
  float c = 0.0f;
  kernels::gemm(1, 1, 2, a, b_nan, &c);
  EXPECT_TRUE(std::isnan(c)) << "0 * NaN must poison the output";

  const float b_inf[2] = {inf, 2.0f};
  c = 0.0f;
  kernels::gemm(1, 1, 2, a, b_inf, &c);
  EXPECT_TRUE(std::isnan(c)) << "0 * Inf must poison the output";

  // Same property through the autograd op (forward and both grads).
  auto an = sevuldet::nn::constant(Tensor(1, 2, {0.0f, 1.0f}));
  auto bn = sevuldet::nn::param(Tensor(2, 1, {nan, 2.0f}));
  auto out = sevuldet::nn::matmul(an, bn);
  EXPECT_TRUE(std::isnan(out->value.at(0, 0)));
}

// ---------------------------------------------------------------------------
// quantized GEMMs vs naive oracles
// ---------------------------------------------------------------------------

TEST(KernelsTest, GemmS8MatchesNaiveExactly) {
  // Integer arithmetic is exact: the optimized int8 kernel must equal
  // the naive oracle for every input, including the extreme operand
  // values (-128 * -128 stacked k times stays well inside int32).
  Rng rng(19);
  for (const auto& s : kShapes) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<std::int8_t> b(static_cast<std::size_t>(s.k) * s.n);
    for (auto& x : a) {
      x = static_cast<std::int8_t>(static_cast<int>(rng.uniform(256)) - 128);
    }
    for (auto& x : b) {
      x = static_cast<std::int8_t>(static_cast<int>(rng.uniform(256)) - 128);
    }
    if (!a.empty()) a.front() = -128;  // force the asymmetric extreme
    if (!b.empty()) b.front() = -128;
    std::vector<std::int32_t> c_ref(static_cast<std::size_t>(s.m) * s.n);
    for (std::size_t i = 0; i < c_ref.size(); ++i) {
      c_ref[i] = static_cast<std::int32_t>(i) - 7;  // accumulate, not assign
    }
    auto c_opt = c_ref;
    kernels::gemm_s8_naive(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
    kernels::gemm_s8(s.m, s.n, s.k, a.data(), b.data(), c_opt.data());
    EXPECT_EQ(c_ref, c_opt) << "gemm_s8 " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsTest, GemmF16MatchesNaiveBitwise) {
  // fp16 is storage-only: operands widen to fp32 and the accumulation
  // chain is the fp32 contract's, so optimized == naive bitwise.
  Rng rng(23);
  for (const auto& s : kShapes) {
    std::vector<std::uint16_t> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<std::uint16_t> b(static_cast<std::size_t>(s.k) * s.n);
    for (auto& x : a) {
      x = kernels::float_to_half(static_cast<float>(rng.normal()));
    }
    for (auto& x : b) {
      x = kernels::float_to_half(static_cast<float>(rng.normal()));
    }
    auto c_ref = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    auto c_opt = c_ref;
    kernels::gemm_f16_naive(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
    kernels::gemm_f16(s.m, s.n, s.k, a.data(), b.data(), c_opt.data());
    EXPECT_TRUE(bitwise_equal(c_ref, c_opt))
        << "gemm_f16 " << s.m << "x" << s.n << "x" << s.k;
  }
}

// ---------------------------------------------------------------------------
// binary16 conversion edge cases
// ---------------------------------------------------------------------------

TEST(KernelsTest, HalfConversionRoundsToNearestEven) {
  // Near 1.0 the half grid spacing is 2^-10. Exactly halfway values
  // must round to the even mantissa: 1 + 2^-11 ties down to 1.0 (even
  // mantissa 0), 1 + 3*2^-11 ties up to 1 + 2^-9 (mantissa 2, even)
  // rather than 1 + 2^-10 (mantissa 1, odd).
  const float tie_down = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(kernels::half_to_float(kernels::float_to_half(tie_down)), 1.0f);
  const float tie_up = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(kernels::half_to_float(kernels::float_to_half(tie_up)),
            1.0f + std::ldexp(1.0f, -9));
  // Not a tie: anything past the midpoint rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -13);
  EXPECT_EQ(kernels::half_to_float(kernels::float_to_half(above)),
            1.0f + std::ldexp(1.0f, -10));
}

TEST(KernelsTest, HalfConversionSubnormalsAndLimits) {
  const float min_subnormal = std::ldexp(1.0f, -24);  // smallest half > 0
  EXPECT_EQ(kernels::float_to_half(min_subnormal), 0x0001);
  EXPECT_EQ(kernels::half_to_float(0x0001), min_subnormal);
  // Half the smallest subnormal ties to even zero; 3/4 of it rounds up.
  EXPECT_EQ(kernels::float_to_half(std::ldexp(1.0f, -25)), 0x0000);
  EXPECT_EQ(kernels::float_to_half(3.0f * std::ldexp(1.0f, -26)), 0x0001);
  // Largest finite half is 65504; the overflow midpoint 65520 rounds to
  // a value outside the finite range, i.e. infinity.
  EXPECT_EQ(kernels::float_to_half(65504.0f), 0x7bff);
  EXPECT_EQ(kernels::half_to_float(0x7bff), 65504.0f);
  EXPECT_EQ(kernels::float_to_half(65520.0f), 0x7c00);
  EXPECT_EQ(kernels::float_to_half(1e9f), 0x7c00);
  EXPECT_EQ(kernels::float_to_half(-1e9f), 0xfc00);
  // Signed zero survives the round trip.
  EXPECT_EQ(kernels::float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(std::signbit(kernels::half_to_float(0x8000)), true);
  // NaN stays NaN and stays quiet (nonzero mantissa under Inf exponent).
  const std::uint16_t qnan =
      kernels::float_to_half(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(qnan & 0x7c00, 0x7c00);
  EXPECT_NE(qnan & 0x03ff, 0);
  EXPECT_TRUE(std::isnan(kernels::half_to_float(qnan)));
}

TEST(KernelsTest, EveryHalfSurvivesTheRoundTrip) {
  // Widening is exact and RNE of an exactly-representable value is the
  // identity, so every non-NaN bit pattern must round-trip unchanged
  // (NaN payloads are excluded: only quietness is contractual).
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const bool is_nan = (h & 0x7c00) == 0x7c00 && (h & 0x03ff) != 0;
    if (is_nan) continue;
    EXPECT_EQ(kernels::float_to_half(kernels::half_to_float(h)), h)
        << "half bits 0x" << std::hex << bits;
  }
}

// ---------------------------------------------------------------------------
// tile configuration and autotuning
// ---------------------------------------------------------------------------

TEST(KernelsTest, TileSizesNeverChangeResultsBitwise) {
  // The autotuner's safety argument: blocking reloads the partial C
  // tile instead of re-associating, so ANY tile configuration produces
  // the naive chain. Degenerate 1x1x1 tiles maximize reload traffic.
  Rng rng(29);
  const kernels::GemmTiles configs[] = {
      {1, 1, 1}, {3, 5, 7}, {8, 16, 24}, {48, 256, 64}, {1024, 1024, 1024}};
  const GemmShape shapes[] = {{7, 13, 17}, {50, 32, 90}, {65, 257, 257}};
  for (const auto& s : shapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    const auto bt = random_vec(static_cast<std::size_t>(s.n) * s.k, rng);
    const auto c0 = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    auto c_ref = c0;
    kernels::gemm_naive(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
    auto c_bt_ref = c0;
    kernels::gemm_a_bt_naive(s.m, s.n, s.k, a.data(), bt.data(),
                             c_bt_ref.data());
    for (const auto& tiles : configs) {
      kernels::set_gemm_tiles(tiles);
      auto c = c0;
      kernels::gemm(s.m, s.n, s.k, a.data(), b.data(), c.data());
      EXPECT_TRUE(bitwise_equal(c_ref, c))
          << "gemm tiles " << tiles.mc << "/" << tiles.kc << "/" << tiles.nc;
      auto c_bt = c0;
      kernels::gemm_a_bt(s.m, s.n, s.k, a.data(), bt.data(), c_bt.data());
      EXPECT_TRUE(bitwise_equal(c_bt_ref, c_bt))
          << "gemm_a_bt tiles " << tiles.mc << "/" << tiles.kc << "/"
          << tiles.nc;
    }
  }
  kernels::reset_gemm_tiles();
}

TEST(KernelsTest, AutotuneIsPureAndSetInstallClampsToValid) {
  // autotune_gemm_tiles benchmarks candidates but must not install its
  // winner as a side effect — installation is the caller's decision.
  kernels::reset_gemm_tiles();
  const kernels::GemmTiles before = kernels::gemm_tiles();
  const kernels::GemmTiles tuned =
      kernels::autotune_gemm_tiles({{13, 8, 12}, {1, 24, 12}});
  const kernels::GemmTiles after = kernels::gemm_tiles();
  EXPECT_EQ(before.mc, after.mc);
  EXPECT_EQ(before.kc, after.kc);
  EXPECT_EQ(before.nc, after.nc);
  EXPECT_GE(tuned.mc, 1);
  EXPECT_GE(tuned.kc, 1);
  EXPECT_GE(tuned.nc, 1);
  // set clamps nonsense to >= 1 instead of dividing the loop space by 0.
  kernels::set_gemm_tiles({0, -4, 0});
  EXPECT_GE(kernels::gemm_tiles().mc, 1);
  EXPECT_GE(kernels::gemm_tiles().kc, 1);
  EXPECT_GE(kernels::gemm_tiles().nc, 1);
  kernels::reset_gemm_tiles();
}

// ---------------------------------------------------------------------------
// TensorArena
// ---------------------------------------------------------------------------

TEST(TensorArenaTest, SlotsAreZeroedAlignedAndRecycled) {
  TensorArena arena;
  float* p1 = arena.allocate(1);
  float* p2 = arena.allocate(3);
  // 64-byte stride quantization: 16-float spacing even for tiny slots.
  EXPECT_EQ(p2 - p1, 16);
  p1[0] = 42.0f;
  p2[0] = 43.0f;

  const std::size_t used = arena.used();
  const std::size_t chunks = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks);  // reset keeps capacity

  // Same sequence after reset: same slots, scrubbed back to zero.
  float* q1 = arena.allocate(1);
  float* q2 = arena.allocate(3);
  EXPECT_EQ(q1, p1);
  EXPECT_EQ(q2, p2);
  EXPECT_EQ(q1[0], 0.0f);
  EXPECT_EQ(q2[0], 0.0f);
  EXPECT_EQ(arena.used(), used);
  EXPECT_GE(arena.high_water(), used);
}

TEST(TensorArenaTest, GrowsByDoublingChunks) {
  TensorArena arena;
  // Larger than any chunk the arena currently has: must append, not fail.
  float* big = arena.allocate(1u << 20);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big[0], 0.0f);
  EXPECT_GE(arena.capacity(), 1u << 20);
}

TEST(TensorTest, BorrowedCopyAndMoveSemantics) {
  float buf[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  Tensor t = Tensor::borrowed(2, 2, buf);
  EXPECT_TRUE(t.borrowed_storage());
  EXPECT_EQ(t.data(), buf);

  Tensor copy = t;  // deep copy into owned storage
  EXPECT_FALSE(copy.borrowed_storage());
  copy.at(0, 0) = 9.0f;
  EXPECT_EQ(buf[0], 1.0f);

  Tensor moved = std::move(t);  // move transfers the borrowed pointer
  EXPECT_EQ(moved.data(), buf);
  EXPECT_TRUE(moved.borrowed_storage());
}

// ---------------------------------------------------------------------------
// arena-backed autograd == heap-backed autograd, bitwise
// ---------------------------------------------------------------------------

namespace {

// A miniature SEVulDetNet-flavoured net: dense -> relu -> GRU over rows
// -> mean-pool -> dense logit. Exercises matmul, transposed backward
// GEMMs, slices, concats, reductions, and the GRU's constant() scratch.
struct TinyNet {
  sevuldet::nn::ParamStore store;
  std::unique_ptr<sevuldet::nn::Dense> in_proj;
  std::unique_ptr<sevuldet::nn::GruCell> gru;
  std::unique_ptr<sevuldet::nn::Dense> out_proj;

  explicit TinyNet(unsigned seed) {
    Rng rng(seed);
    in_proj = std::make_unique<sevuldet::nn::Dense>(store, "in", 6, 8, rng);
    gru = std::make_unique<sevuldet::nn::GruCell>(store, "gru", 8, 8, rng);
    out_proj = std::make_unique<sevuldet::nn::Dense>(store, "out", 8, 1, rng);
  }

  NodePtr forward(Tensor input) {
    NodePtr x = sevuldet::nn::relu(
        in_proj->forward(sevuldet::nn::constant(std::move(input))));
    const int t = x->value.rows();
    NodePtr h = gru->initial();
    for (int i = 0; i < t; ++i) {
      h = gru->step(sevuldet::nn::slice_rows(x, i, i + 1), h);
    }
    return out_proj->forward(h);
  }
};

// Runs the same deterministic training schedule (variable-length inputs,
// Adam, grad clipping) and returns the final parameter tensors.
std::vector<Tensor> run_training(bool use_arena, float* loss_bits_out) {
  TinyNet net(1234);
  sevuldet::nn::Adam opt(net.store, 0.01f);
  Rng data_rng(99);
  Graph graph;
  float last_loss = 0.0f;
  for (int step = 0; step < 12; ++step) {
    const int t = 2 + (step % 5);  // variable sequence length
    Tensor input = Tensor::randn(t, 6, data_rng);
    const float target = static_cast<float>(step % 2);

    std::unique_ptr<GraphScope> scope;
    if (use_arena) scope = std::make_unique<GraphScope>(graph);
    NodePtr loss =
        sevuldet::nn::bce_with_logits(net.forward(std::move(input)), target);
    last_loss = loss->value.at(0, 0);
    opt.zero_grad();
    sevuldet::nn::backward(loss);
    opt.clip_grad_norm(5.0f);
    opt.step();
  }
  if (loss_bits_out != nullptr) *loss_bits_out = last_loss;
  std::vector<Tensor> params;
  for (const auto& [name, node] : net.store.all()) {
    params.push_back(node->value);  // deep copy
  }
  return params;
}

}  // namespace

TEST(GraphTest, ArenaTrainingBitwiseIdenticalToHeap) {
  float heap_loss = 0.0f, arena_loss = 0.0f;
  const auto heap_params = run_training(/*use_arena=*/false, &heap_loss);
  const auto arena_params = run_training(/*use_arena=*/true, &arena_loss);
  EXPECT_EQ(std::memcmp(&heap_loss, &arena_loss, sizeof(float)), 0);
  ASSERT_EQ(heap_params.size(), arena_params.size());
  for (std::size_t i = 0; i < heap_params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(heap_params[i], arena_params[i]))
        << "param " << i << " diverged between heap and arena autograd";
  }
}

TEST(GraphTest, SteadyStateReusesNodesAndArena) {
  TinyNet net(77);
  sevuldet::nn::Adam opt(net.store, 0.01f);
  Rng data_rng(5);
  Graph graph;

  auto one_step = [&](int t) {
    GraphScope scope(graph);
    NodePtr loss =
        sevuldet::nn::bce_with_logits(net.forward(Tensor::randn(t, 6, data_rng)),
                                      1.0f);
    opt.zero_grad();
    sevuldet::nn::backward(loss);
    opt.step();
  };

  // Warmup on the largest shape, then capacities must never move again,
  // even for smaller and repeated largest shapes.
  one_step(9);
  one_step(9);
  const std::size_t nodes = graph.node_capacity();
  const std::size_t chunks = graph.arena().chunk_count();
  const std::size_t capacity = graph.arena().capacity();
  const std::size_t high_water = graph.arena().high_water();
  ASSERT_GT(nodes, 0u);
  ASSERT_GT(capacity, 0u);
  for (int i = 0; i < 10; ++i) one_step(2 + (i % 8));
  EXPECT_EQ(graph.node_capacity(), nodes);
  EXPECT_EQ(graph.arena().chunk_count(), chunks);
  EXPECT_EQ(graph.arena().capacity(), capacity);
  EXPECT_EQ(graph.arena().high_water(), high_water);
}

TEST(GraphTest, ScopeRestoresPreviousMode) {
  EXPECT_EQ(Graph::current(), nullptr);
  Graph g1;
  {
    GraphScope s1(g1);
    EXPECT_EQ(Graph::current(), &g1);
  }
  EXPECT_EQ(Graph::current(), nullptr);
  // Heap-mode nodes built with no scope active stay valid after a
  // scope on another graph opens and closes.
  auto keep = sevuldet::nn::constant(Tensor::scalar(3.0f));
  {
    GraphScope s2(g1);
    auto transient = sevuldet::nn::constant(Tensor::scalar(4.0f));
    EXPECT_EQ(transient->home, &g1);
  }
  EXPECT_EQ(keep->home, nullptr);
  EXPECT_EQ(keep->value.at(0, 0), 3.0f);
}
