#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sevuldet/util/rng.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/table.hpp"

namespace su = sevuldet::util;

TEST(Rng, Deterministic) {
  su::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  su::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInBounds) {
  su::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(13), 13u);
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double r = rng.uniform_real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  su::Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMoments) {
  su::Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, WeightedRespectsWeights) {
  su::Rng rng(5);
  const double weights[] = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  su::Rng rng(9);
  auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Strings, Split) {
  auto parts = su::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitWs) {
  auto parts = su::split_ws("  foo\t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, SplitLines) {
  auto lines = su::split_lines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(su::split_lines("x").size(), 1u);
  EXPECT_TRUE(su::split_lines("").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(su::trim("  hi \t"), "hi");
  EXPECT_EQ(su::trim(""), "");
  EXPECT_EQ(su::trim(" \n "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(su::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(su::join({}, ","), "");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(su::starts_with("strncpy", "str"));
  EXPECT_FALSE(su::starts_with("st", "str"));
  EXPECT_TRUE(su::ends_with("file.c", ".c"));
  EXPECT_TRUE(su::contains("abcdef", "cde"));
}

TEST(Strings, Ascii) {
  EXPECT_TRUE(su::is_ascii("hello\n\tworld"));
  EXPECT_FALSE(su::is_ascii("caf\xC3\xA9"));
  EXPECT_EQ(su::strip_non_ascii("caf\xC3\xA9!"), "caf!");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(su::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(su::replace_all("xyz", "q", "r"), "xyz");
}

TEST(Strings, Fmt) {
  EXPECT_EQ(su::fmt(3.14159, 1), "3.1");
  EXPECT_EQ(su::fmt(2.0, 2), "2.00");
}

TEST(Table, RendersAligned) {
  su::Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  su::Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}
