#include <gtest/gtest.h>

#include <cmath>

#include "sevuldet/core/relabel.hpp"
#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/models/sevuldet_net.hpp"

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;
namespace sm = sevuldet::models;

namespace {

sc::DetectorFactory tiny_factory() {
  return [](int vocab_size) -> std::unique_ptr<sm::Detector> {
    sm::ModelConfig config;
    config.vocab_size = vocab_size;
    config.embed_dim = 12;
    config.conv_channels = 8;
    config.attn_dim = 8;
    config.dense1 = 24;
    config.dense2 = 12;
    return std::make_unique<sm::SeVulDetNet>(config);
  };
}

}  // namespace

TEST(Relabel, FlagsDeliberatelyFlippedLabels) {
  sd::SardConfig gen_config;
  gen_config.pairs_per_category = 10;
  gen_config.long_fraction = 0.0;
  gen_config.ambiguous_fraction = 0.0;  // keep only learnable samples
  auto corpus = sd::build_corpus(sd::generate_sard_like(gen_config));
  sd::encode_corpus(corpus);

  // Flip a handful of clean samples to "vulnerable" — injected label noise.
  std::vector<std::size_t> flipped;
  for (std::size_t i = 0; i < corpus.samples.size() && flipped.size() < 8; i += 97) {
    if (corpus.samples[i].label == 0) {
      corpus.samples[i].label = 1;
      flipped.push_back(i);
    }
  }
  ASSERT_GE(flipped.size(), 5u);

  sc::RelabelConfig config;
  config.folds = 3;
  config.confidence = 0.8f;
  config.train.epochs = 4;
  config.train.lr = 0.003f;
  auto suspects = sc::find_suspect_labels(corpus, tiny_factory(), config);

  // The flipped samples should be heavily represented among the suspects.
  std::size_t caught = 0;
  for (std::size_t idx : flipped) {
    for (const auto& suspect : suspects) {
      if (suspect.sample_index == idx) {
        ++caught;
        EXPECT_EQ(suspect.label, 1);
        EXPECT_LT(suspect.probability, 0.2f);
        break;
      }
    }
  }
  EXPECT_GE(caught, flipped.size() / 2)
      << "caught " << caught << " of " << flipped.size() << " planted flips ("
      << suspects.size() << " suspects total)";
  // Narrowing: the review list must be much smaller than the corpus.
  EXPECT_LT(suspects.size(), corpus.samples.size() / 5);
}

TEST(Relabel, SortedByDisagreement) {
  sd::SardConfig gen_config;
  gen_config.pairs_per_category = 4;
  gen_config.long_fraction = 0.0;
  auto corpus = sd::build_corpus(sd::generate_sard_like(gen_config));
  sd::encode_corpus(corpus);
  sc::RelabelConfig config;
  config.folds = 2;
  config.confidence = 0.5f;
  config.train.epochs = 2;
  auto suspects = sc::find_suspect_labels(corpus, tiny_factory(), config);
  for (std::size_t i = 1; i < suspects.size(); ++i) {
    const float prev = std::fabs(suspects[i - 1].probability -
                                 static_cast<float>(suspects[i - 1].label));
    const float cur = std::fabs(suspects[i].probability -
                                static_cast<float>(suspects[i].label));
    EXPECT_GE(prev, cur);
  }
}
