// The serve daemon stack, bottom-up: frame robustness (truncated /
// corrupt / oversized frames rejected loudly, never misread), protocol
// JSON round-trips, the cross-request MicroBatcher's batched==unbatched
// contract, and end-to-end daemon scans that must be byte-identical to
// in-process detect() — the property the serve-gate CI job enforces.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/core/scan.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/nn/autograd.hpp"
#include "sevuldet/serve/batcher.hpp"
#include "sevuldet/serve/client.hpp"
#include "sevuldet/serve/protocol.hpp"
#include "sevuldet/serve/server.hpp"
#include "sevuldet/util/binary_io.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/mini_json.hpp"
#include "sevuldet/util/socket.hpp"

namespace sc = sevuldet::core;
namespace sd = sevuldet::dataset;
namespace serve = sevuldet::serve;
namespace su = sevuldet::util;
namespace mini_json = sevuldet::util::mini_json;

namespace {

// ---------------------------------------------------------------------
// Framing over a socketpair (no listener needed).

struct StreamPair {
  su::UnixStream a;
  su::UnixStream b;

  StreamPair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw std::runtime_error("socketpair failed");
    }
    a = su::UnixStream(su::FdHandle(fds[0]));
    b = su::UnixStream(su::FdHandle(fds[1]));
  }
};

TEST(ServeFraming, RoundTripsPayloads) {
  StreamPair pair;
  const std::string payloads[] = {"", "x", std::string(100000, 'q'),
                                  std::string("\0\x01\xff binary", 10)};
  for (const std::string& payload : payloads) {
    pair.a.send_frame(payload);
    auto got = pair.b.recv_frame();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(payload, *got);
  }
}

TEST(ServeFraming, CleanEofIsNullopt) {
  StreamPair pair;
  pair.a.close();
  EXPECT_EQ(std::nullopt, pair.b.recv_frame());
}

TEST(ServeFraming, RejectsBadMagic) {
  StreamPair pair;
  su::ByteWriter junk;
  junk.bytes("JUNK");
  junk.u32(4);
  junk.bytes("abcd");
  junk.u64(0);
  ::send(pair.a.fd(), junk.data().data(), junk.size(), 0);
  EXPECT_THROW(pair.b.recv_frame(), su::FrameError);
}

TEST(ServeFraming, RejectsOversizedFrame) {
  StreamPair pair;
  su::ByteWriter header;
  header.bytes(su::kFrameMagic);
  header.u32(1 << 20);  // claims 1 MiB against a 1 KiB cap
  ::send(pair.a.fd(), header.data().data(), header.size(), 0);
  EXPECT_THROW(pair.b.recv_frame(/*max_frame=*/1024), su::FrameError);
}

TEST(ServeFraming, RejectsTruncatedHeader) {
  StreamPair pair;
  ::send(pair.a.fd(), "SVD", 3, 0);  // 3 of 8 header bytes, then EOF
  pair.a.close();
  EXPECT_THROW(pair.b.recv_frame(), su::FrameError);
}

TEST(ServeFraming, RejectsTruncatedPayload) {
  StreamPair pair;
  su::ByteWriter frame;
  frame.bytes(su::kFrameMagic);
  frame.u32(100);  // promises 100 payload bytes...
  frame.bytes("short");
  ::send(pair.a.fd(), frame.data().data(), frame.size(), 0);
  pair.a.close();  // ...but hangs up after 5
  EXPECT_THROW(pair.b.recv_frame(), su::FrameError);
}

TEST(ServeFraming, RejectsChecksumMismatch) {
  StreamPair pair;
  su::ByteWriter frame;
  frame.bytes(su::kFrameMagic);
  frame.u32(4);
  frame.bytes("data");
  frame.u64(su::fnv1a("data") ^ 1);  // one bit off
  ::send(pair.a.fd(), frame.data().data(), frame.size(), 0);
  EXPECT_THROW(pair.b.recv_frame(), su::FrameError);
}

TEST(ServeFraming, RejectsCorruptPayloadByte) {
  StreamPair pair;
  su::ByteWriter frame;
  frame.bytes(su::kFrameMagic);
  frame.u32(4);
  frame.bytes("dXta");  // checksum is for "data"
  frame.u64(su::fnv1a("data"));
  ::send(pair.a.fd(), frame.data().data(), frame.size(), 0);
  EXPECT_THROW(pair.b.recv_frame(), su::FrameError);
}

TEST(ServeFraming, SendRejectsPayloadOverCap) {
  StreamPair pair;
  EXPECT_THROW(pair.a.send_frame(std::string(2048, 'x'), /*max_frame=*/1024),
               su::FrameError);
}

// ---------------------------------------------------------------------
// Protocol JSON.

TEST(ServeProtocol, RequestRoundTrips) {
  serve::Request request;
  request.op = serve::Op::Explain;
  request.id = 42;
  request.source = "int main() { return 0; }\n\"quoted\"\t";
  request.top_k = 7;
  request.deadline_ms = 1234.5;
  serve::Request parsed = serve::parse_request(serve::request_to_json(request));
  EXPECT_EQ(request.op, parsed.op);
  EXPECT_EQ(request.id, parsed.id);
  EXPECT_EQ(request.source, parsed.source);
  EXPECT_EQ(request.top_k, parsed.top_k);
  EXPECT_EQ(request.deadline_ms, parsed.deadline_ms);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_THROW(serve::parse_request("not json"), std::exception);
  EXPECT_THROW(serve::parse_request("{\"op\":\"fly\",\"id\":1}"), std::exception);
  EXPECT_THROW(serve::parse_request("{\"op\":\"scan\",\"id\":1}"),
               std::exception);  // missing source
  EXPECT_THROW(serve::parse_request(
                   "{\"op\":\"scan\",\"id\":1,\"source\":\"\",\"top_k\":-1}"),
               std::exception);
  EXPECT_THROW(
      serve::parse_request(
          "{\"op\":\"scan\",\"id\":1,\"source\":\"\",\"deadline_ms\":-5}"),
      std::exception);
}

TEST(ServeProtocol, ErrorCodesRoundTrip) {
  for (serve::ErrorCode code :
       {serve::ErrorCode::BadRequest, serve::ErrorCode::QueueFull,
        serve::ErrorCode::DeadlineExceeded, serve::ErrorCode::ShuttingDown,
        serve::ErrorCode::Internal}) {
    auto back = serve::error_code_from_name(serve::error_code_name(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(code, *back);
  }
  EXPECT_EQ(std::nullopt, serve::error_code_from_name("teapot"));
}

TEST(ServeProtocol, ErrorResponseRoundTrips) {
  serve::Response response = serve::error_response(
      9, serve::ErrorCode::DeadlineExceeded, "budget of 5ms exhausted");
  serve::Response parsed =
      serve::parse_response(serve::response_to_json(response));
  EXPECT_EQ(9, parsed.id);
  EXPECT_FALSE(parsed.ok);
  ASSERT_TRUE(parsed.error.has_value());
  EXPECT_EQ(serve::ErrorCode::DeadlineExceeded, parsed.error->code);
  EXPECT_EQ("budget of 5ms exhausted", parsed.error->message);
}

/// Findings with awkward floats and every optional field populated must
/// survive JSON exactly: serialize(parse(serialize(x))) == serialize(x).
TEST(ServeProtocol, FindingsRoundTripByteExact) {
  sc::Finding finding;
  finding.function = "process";
  finding.line = 17;
  finding.category = sevuldet::slicer::TokenCategory::PointerUsage;
  finding.token = "buf";
  finding.probability = 0.123456789f;
  finding.top_tokens = {{"var0", 1.0f}, {"strcpy", 0.33333334f}};
  finding.attributions.push_back({"var0", "data", "process", 12, 0.0625f});
  finding.attributions.push_back({"fun1", "helper", "process", 3, 1e-7f});
  finding.spatial_attention = {0.1f, 0.9f, 0.0001f};
  sc::Finding plain;
  plain.function = "main";
  plain.line = 1;
  plain.category = sevuldet::slicer::TokenCategory::FunctionCall;
  plain.token = "gets";
  plain.probability = 0.75f;

  const std::string json = serve::findings_to_json({finding, plain});
  const std::vector<sc::Finding> parsed = serve::findings_from_json_array(json);
  ASSERT_EQ(2u, parsed.size());
  EXPECT_EQ(json, serve::findings_to_json(parsed));
}

TEST(ServeProtocol, ScanTreeRequestRoundTrips) {
  serve::Request request;
  request.op = serve::Op::ScanTree;
  request.id = 11;
  request.root = "/some/tree with spaces";
  request.top_k = 4;
  request.deadline_ms = 90000.0;
  serve::Request parsed = serve::parse_request(serve::request_to_json(request));
  EXPECT_EQ(serve::Op::ScanTree, parsed.op);
  EXPECT_EQ(11, parsed.id);
  EXPECT_EQ(request.root, parsed.root);
  EXPECT_EQ(4, parsed.top_k);
  EXPECT_EQ(90000.0, parsed.deadline_ms);
  // A tree scan without a root is malformed, like a scan without source.
  EXPECT_THROW(serve::parse_request("{\"op\":\"scan-tree\",\"id\":1}"),
               std::exception);
}

/// Tree results with every stats field populated (awkward rates, failed
/// files, fallback findings) must survive JSON losslessly:
/// serialize(parse(serialize(x))) == serialize(x). This is what makes a
/// daemon tree scan byte-identical to an in-process one regardless of
/// how the wire re-emits the payload.
TEST(ServeProtocol, TreeScanJsonRoundTripsLossless) {
  sc::TreeScanResult tree;
  tree.root = "src/\"quoted\"";
  tree.files.resize(2);
  tree.files[0].path = "a.c";
  tree.files[0].stats.preprocessed = true;
  tree.files[0].stats.parse_clean = false;
  tree.files[0].stats.chunks_total = 3;
  tree.files[0].stats.chunks_recovered = 2;
  tree.files[0].stats.lost_regions = 1;
  tree.files[0].stats.lines_total = 40;
  tree.files[0].stats.lines_lost = 5;
  tree.files[0].stats.fallback_gadgets = 2;
  tree.files[0].stats.fallback_findings = 1;
  tree.files[0].stats.findings_dropped_include = 1;
  tree.files[0].stats.preprocess.includes_resolved = 1;
  tree.files[0].stats.preprocess.includes_unresolved = 2;
  tree.files[0].stats.preprocess.include_cycles = 1;
  tree.files[0].stats.preprocess.macros_defined = 4;
  tree.files[0].stats.preprocess.macro_expansions = 7;
  tree.files[0].stats.preprocess.conditionals = 3;
  tree.files[0].stats.preprocess.unresolved_conditionals = 1;
  tree.files[0].stats.preprocess.lines_dropped = 6;
  sc::Finding finding;
  finding.function = "f";
  finding.line = 17;
  finding.category = sevuldet::slicer::TokenCategory::FunctionCall;
  finding.token = "strcpy";
  finding.probability = 0.6666667f;
  tree.files[0].findings.push_back(finding);
  tree.files[1].path = "b.c";
  tree.files[1].ok = false;
  tree.files[1].error = "mmap failed: \"denied\"";
  tree.stats.files = 2;
  tree.stats.files_failed = 1;
  tree.stats.files_recovered = 1;
  tree.stats.bytes = 1234567890123LL;
  tree.stats.findings = 1;
  tree.stats.fallback_findings = 1;
  tree.stats.lines_total = 40;
  tree.stats.lines_lost = 5;
  tree.stats.includes_resolved = 1;
  tree.stats.includes_unresolved = 2;
  tree.stats.macro_expansions = 7;
  tree.stats.conditionals = 3;
  tree.stats.unresolved_conditionals = 1;
  tree.stats.parse_drop_rate = 0.125;
  tree.stats.preprocess_drop_rate = 0.5;

  const std::string json = serve::tree_scan_to_json(tree);
  const sc::TreeScanResult parsed = serve::tree_scan_from_json(json);
  EXPECT_EQ(json, serve::tree_scan_to_json(parsed));
  EXPECT_EQ("a.c", parsed.files[0].path);
  EXPECT_FALSE(parsed.files[1].ok);
  EXPECT_EQ(1234567890123LL, parsed.stats.bytes);
}

TEST(ServeProtocol, StatusResponseCarriesRawObject) {
  serve::Response response =
      serve::status_response(3, "{\"queue\":{\"depth\":0}}");
  serve::Response parsed =
      serve::parse_response(serve::response_to_json(response));
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ("{\"queue\":{\"depth\":0}}", parsed.status_json);
}

// ---------------------------------------------------------------------
// Trained fixture shared by the batcher and daemon suites.

sc::PipelineConfig tiny_pipeline_config() {
  sc::PipelineConfig config;
  config.model.embed_dim = 12;
  config.model.conv_channels = 8;
  config.model.attn_dim = 8;
  config.model.dense1 = 24;
  config.model.dense2 = 8;
  config.train.epochs = 3;
  config.train.lr = 0.002f;
  config.word2vec.epochs = 2;
  return config;
}

struct TrainedFixture {
  sc::SeVulDet detector;
  std::string vulnerable_source;

  TrainedFixture() : detector(tiny_pipeline_config()) {
    sd::SardConfig config;
    config.pairs_per_category = 6;
    config.long_fraction = 0.0;
    config.seed = 23;
    auto cases = sd::generate_sard_like(config);
    detector.train(cases);
    for (const auto& tc : cases) {
      if (!tc.vulnerable) continue;
      if (!detector.detect(tc.source).empty()) {
        vulnerable_source = tc.source;
        break;
      }
    }
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

std::string test_socket_path(const char* tag) {
  return "/tmp/sevuldet_serve_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

/// A Server running on its own thread; joins (after a drain) at scope
/// exit. Waits for the socket to be bound before returning.
struct RunningServer {
  serve::Server server;
  std::thread thread;

  explicit RunningServer(serve::ServeOptions options)
      : server(fixture().detector, std::move(options)) {
    thread = std::thread([this] { server.run(); });
    for (int i = 0; i < 500; ++i) {
      if (::access(server.options().socket_path.c_str(), F_OK) == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    server.request_shutdown();
    thread.join();
    throw std::runtime_error("daemon socket never appeared");
  }

  ~RunningServer() {
    server.request_shutdown();
    if (thread.joinable()) thread.join();
  }
};

serve::ServeOptions test_options(const char* tag) {
  serve::ServeOptions options;
  options.socket_path = test_socket_path(tag);
  options.threads = 2;
  options.accept_timeout_ms = 20;  // quick shutdown in tests
  return options;
}

// ---------------------------------------------------------------------
// MicroBatcher: batched == unbatched, bitwise.

TEST(ServeBatcher, BatchedScoresMatchInlineBitwise) {
  auto& f = fixture();
  auto prepared = f.detector.prepare(f.vulnerable_source);
  ASSERT_FALSE(prepared.empty());

  // Inline (unbatched) reference, serial on the fixture model.
  std::vector<sevuldet::models::Prediction> expected;
  for (const auto& gadget : prepared) {
    expected.push_back(f.detector.model().predict_captured(gadget.ids, true));
  }

  // Batched, across clones, submitted concurrently so entries coalesce.
  serve::BatcherOptions options;
  options.max_batch = 4;
  options.window_ms = 20.0;
  options.threads = 2;
  serve::MicroBatcher batcher(f.detector.model(), options);
  std::vector<sevuldet::models::Prediction> got(prepared.size());
  std::vector<std::thread> submitters;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    submitters.emplace_back([&, i] {
      got[i] = batcher.predict(prepared[i].ids, true);
    });
  }
  for (auto& t : submitters) t.join();
  batcher.stop();

  EXPECT_GE(batcher.gadgets_scored(), static_cast<long long>(prepared.size()));
  EXPECT_GE(batcher.batches_flushed(), 1);
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    EXPECT_EQ(expected[i].probability, got[i].probability) << "gadget " << i;
    EXPECT_EQ(expected[i].token_weights, got[i].token_weights) << "gadget " << i;
    EXPECT_EQ(expected[i].spatial_weights, got[i].spatial_weights)
        << "gadget " << i;
  }
}

TEST(ServeBatcher, PredictManyMatchesPredict) {
  auto& f = fixture();
  auto prepared = f.detector.prepare(f.vulnerable_source);
  ASSERT_FALSE(prepared.empty());
  serve::BatcherOptions options;
  options.max_batch = 2;  // forces multiple flushes per predict_many
  options.window_ms = 1.0;
  options.threads = 2;
  serve::MicroBatcher batcher(f.detector.model(), options);

  std::vector<const std::vector<int>*> ids;
  for (const auto& gadget : prepared) ids.push_back(&gadget.ids);
  auto many = batcher.predict_many(ids, false);
  ASSERT_EQ(prepared.size(), many.size());
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    auto one = batcher.predict(prepared[i].ids, false);
    EXPECT_EQ(one.probability, many[i].probability) << "gadget " << i;
  }
}

TEST(ServeBatcher, PredictAfterStopThrows) {
  auto& f = fixture();
  serve::MicroBatcher batcher(f.detector.model(), {});
  batcher.stop();
  std::vector<int> ids = {1, 2, 3};
  EXPECT_THROW(batcher.predict(ids, false), std::logic_error);
}

// ---------------------------------------------------------------------
// Daemon end-to-end.

TEST(ServeDaemon, ScanMatchesInProcessByteIdentical) {
  auto& f = fixture();
  RunningServer running(test_options("scan"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());

  const std::string expected = serve::findings_to_json(
      f.detector.detect(f.vulnerable_source));
  const std::string got =
      serve::findings_to_json(client->scan(f.vulnerable_source));
  EXPECT_EQ(expected, got);
}

TEST(ServeDaemon, ExplainMatchesInProcessByteIdentical) {
  auto& f = fixture();
  RunningServer running(test_options("explain"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());

  sc::DetectOptions options;
  options.explain = true;
  options.top_k = 5;
  const std::string expected =
      serve::findings_to_json(f.detector.detect(f.vulnerable_source, options));
  const std::string got = serve::findings_to_json(
      client->scan(f.vulnerable_source, /*top_k=*/5, /*explain=*/true));
  EXPECT_EQ(expected, got);
  EXPECT_NE(std::string::npos, got.find("\"attributions\":[{"))
      << "explain findings should carry attributions";
}

TEST(ServeDaemon, ConcurrentClientsAllByteIdentical) {
  auto& f = fixture();
  serve::ServeOptions options = test_options("concurrent");
  options.threads = 4;
  RunningServer running(std::move(options));
  const std::string expected =
      serve::findings_to_json(f.detector.detect(f.vulnerable_source));

  constexpr int kClients = 6;
  constexpr int kScansEach = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto client =
          serve::Client::connect(running.server.options().socket_path);
      ASSERT_TRUE(client.has_value());
      for (int s = 0; s < kScansEach; ++s) {
        if (serve::findings_to_json(client->scan(f.vulnerable_source)) !=
            expected) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(0, mismatches.load());
}

TEST(ServeDaemon, ZeroDeadlineYieldsTypedError) {
  auto& f = fixture();
  RunningServer running(test_options("deadline"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());
  try {
    client->scan(f.vulnerable_source, 10, false, /*deadline_ms=*/0.0);
    FAIL() << "deadline_ms=0 should be rejected";
  } catch (const serve::DaemonError& e) {
    EXPECT_EQ(serve::ErrorCode::DeadlineExceeded, e.code());
  }
  // The connection survives a typed error: the next scan works.
  EXPECT_EQ(serve::findings_to_json(f.detector.detect(f.vulnerable_source)),
            serve::findings_to_json(client->scan(f.vulnerable_source)));
}

TEST(ServeDaemon, MalformedJsonYieldsBadRequest) {
  RunningServer running(test_options("badjson"));
  auto stream =
      su::UnixStream::connect(running.server.options().socket_path);
  ASSERT_TRUE(stream.has_value());
  stream->send_frame("this is not json");
  auto payload = stream->recv_frame();
  ASSERT_TRUE(payload.has_value());
  serve::Response response = serve::parse_response(*payload);
  EXPECT_FALSE(response.ok);
  ASSERT_TRUE(response.error.has_value());
  EXPECT_EQ(serve::ErrorCode::BadRequest, response.error->code);
}

TEST(ServeDaemon, CorruptFrameYieldsBadRequestAndCloses) {
  RunningServer running(test_options("badframe"));
  auto stream =
      su::UnixStream::connect(running.server.options().socket_path);
  ASSERT_TRUE(stream.has_value());
  su::ByteWriter frame;
  frame.bytes(su::kFrameMagic);
  frame.u32(4);
  frame.bytes("data");
  frame.u64(su::fnv1a("data") ^ 1);  // corrupt checksum
  ::send(stream->fd(), frame.data().data(), frame.size(), 0);
  auto payload = stream->recv_frame();
  ASSERT_TRUE(payload.has_value());
  serve::Response response = serve::parse_response(*payload);
  EXPECT_FALSE(response.ok);
  ASSERT_TRUE(response.error.has_value());
  EXPECT_EQ(serve::ErrorCode::BadRequest, response.error->code);
  EXPECT_EQ(std::nullopt, stream->recv_frame());  // daemon closed the stream
}

TEST(ServeDaemon, ReportStatusExposesCounters) {
  auto& f = fixture();
  RunningServer running(test_options("status"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());
  client->scan(f.vulnerable_source);
  const std::string status = client->report_status();
  mini_json::Value doc = mini_json::parse(status);
  EXPECT_EQ(1.0, doc.at("requests").at("scan").number);
  EXPECT_GE(doc.at("batcher").at("gadgets").number, 1.0);
  EXPECT_GE(doc.at("batcher").at("batches").number, 1.0);
  EXPECT_GT(doc.at("batcher").at("arena_high_water_bytes").number, 0.0);
  EXPECT_EQ(2.0, doc.at("threads").number);
  EXPECT_GE(doc.at("connections").at("active").number, 1.0);
}

/// Shutdown is a drain: the ack arrives, run() returns (joining every
/// server thread), the socket file is unlinked, and the post-run
/// metrics snapshot is complete — serve counters and request histograms
/// recorded on worker/connection threads are all visible.
TEST(ServeDaemon, ShutdownDrainsAndFoldsMetrics) {
  auto& f = fixture();
  sevuldet::util::metrics::reset();
  sevuldet::util::metrics::set_enabled(true);

  serve::ServeOptions options = test_options("shutdown");
  const std::string socket_path = options.socket_path;
  serve::Server server(f.detector, std::move(options));
  std::thread runner([&] { server.run(); });
  for (int i = 0; i < 500 && ::access(socket_path.c_str(), F_OK) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  auto client = serve::Client::connect(socket_path);
  ASSERT_TRUE(client.has_value());
  const int kScans = 3;
  for (int i = 0; i < kScans; ++i) client->scan(f.vulnerable_source);
  client->shutdown();
  runner.join();  // returns only after the drain

  EXPECT_NE(0, ::access(socket_path.c_str(), F_OK))
      << "socket file should be unlinked after shutdown";
  EXPECT_EQ(std::nullopt, serve::Client::connect(socket_path))
      << "no daemon should be listening after shutdown";

  auto snapshot = sevuldet::util::metrics::snapshot();
  sevuldet::util::metrics::set_enabled(false);
  EXPECT_EQ(kScans + 1, snapshot.counters.at("serve.requests"));
  ASSERT_TRUE(snapshot.histograms.count("serve.request_ms"));
  EXPECT_EQ(kScans + 1, snapshot.histograms.at("serve.request_ms").count);
  // Spans recorded on worker threads (serve.queue, serve.infer) and the
  // batcher flusher (serve.batch) all folded into the final snapshot.
  for (const char* name :
       {"span.serve.accept", "span.serve.queue", "span.serve.infer",
        "span.serve.batch", "span.serve.reply"}) {
    EXPECT_TRUE(snapshot.histograms.count(name)) << name;
  }
  EXPECT_GE(snapshot.counters.at("serve.batch.gadgets"), 1);
}

/// A daemon directory scan must produce the same bytes as an in-process
/// core::scan_tree — findings, per-file stats, and drop counters — even
/// though the tree includes a file only recovery can handle and an
/// unresolvable include. This is the `sevuldet scan DIR --daemon` parity
/// the CI serve-gate job relies on.
TEST(ServeDaemon, TreeScanMatchesInProcessByteIdentical) {
  namespace fs = std::filesystem;
  auto& f = fixture();
  const fs::path root = fs::temp_directory_path() /
                        ("sevuldet_serve_tree_" + std::to_string(::getpid()));
  fs::create_directories(root / "sub");
  std::ofstream(root / "vuln.c") << f.vulnerable_source;
  std::ofstream(root / "helpers.h")
      << "#define GREET \"hi\"\nint helper(int x);\n";
  std::ofstream(root / "sub" / "uses.c")
      << "#include \"helpers.h\"\n#include \"missing.h\"\n"
         "#include <string.h>\n"
         "void use(char *dst) { strcpy(dst, GREET); }\n";
  std::ofstream(root / "sub" / "legacy.c")
      << "int old_style(a) int a; { return a + 1; }\n";

  RunningServer running(test_options("tree"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());

  sc::ScanOptions options;
  options.threads = 1;
  const sc::TreeScanResult local =
      sc::scan_tree(f.detector, root.string(), options);
  const sc::TreeScanResult remote = client->scan_tree(root.string());
  EXPECT_EQ(serve::tree_scan_to_json(local), serve::tree_scan_to_json(remote));
  EXPECT_EQ(4, remote.stats.files);
  EXPECT_GE(remote.stats.files_recovered, 1);
  EXPECT_GE(remote.stats.includes_unresolved, 1);
  fs::remove_all(root);
}

// ---------------------------------------------------------------------
// Telemetry plane end-to-end (ServeOptions::telemetry on).

serve::ServeOptions telemetry_options(const char* tag) {
  serve::ServeOptions options = test_options(tag);
  options.telemetry = true;
  options.telemetry_interval_ms = 50.0;  // fast ring fill for tests
  return options;
}

TEST(ServeTelemetry, MetricsOpServesJsonAndPrometheus) {
  auto& f = fixture();
  RunningServer running(telemetry_options("metrics"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());
  client->scan(f.vulnerable_source);

  mini_json::Value doc = mini_json::parse(client->metrics("json"));
  EXPECT_EQ("json", doc.at("format").str);
  EXPECT_GE(doc.at("metrics").at("counters").at("serve.requests").number, 1.0);
  EXPECT_TRUE(doc.at("metrics").at("gauges").has("proc.rss_bytes"));

  mini_json::Value prom = mini_json::parse(client->metrics("prometheus"));
  EXPECT_EQ("prometheus", prom.at("format").str);
  const std::string& text = prom.at("exposition").str;
  EXPECT_NE(std::string::npos,
            text.find("# TYPE sevuldet_serve_requests counter"));
  EXPECT_NE(std::string::npos, text.find("sevuldet_serve_request_ms_bucket"));
}

/// The resource ring fills on the snapshotter's cadence; the history
/// field returns the newest samples oldest-first with a cumulative
/// request counter a client can difference into QPS.
TEST(ServeTelemetry, HistoryReturnsRingSamples) {
  auto& f = fixture();
  RunningServer running(telemetry_options("history"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());
  client->scan(f.vulnerable_source);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  mini_json::Value doc = mini_json::parse(client->metrics("json", 10));
  const auto& history = doc.at("history").array;
  ASSERT_GE(history.size(), 2u);
  double previous = 0.0;
  for (const auto& sample : history) {
    EXPECT_GE(sample.at("unix_seconds").number, previous);
    previous = sample.at("unix_seconds").number;
    EXPECT_GT(sample.at("rss_bytes").number, 0.0);
  }
  EXPECT_GE(history.back().at("requests").number, 1.0);
}

TEST(ServeTelemetry, TraceIdPropagatesAndIsMintedWhenAbsent) {
  auto& f = fixture();
  RunningServer running(telemetry_options("traceid"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());

  // Client-chosen IDs echo back verbatim.
  serve::Request request;
  request.op = serve::Op::Scan;
  request.source = f.vulnerable_source;
  request.trace_id = "my-trace-42";
  serve::Response response = client->roundtrip(std::move(request));
  EXPECT_EQ("my-trace-42", response.trace_id);

  // Without one, the telemetry daemon mints a "<pid-hex>-<seq>" ID.
  serve::Request bare;
  bare.op = serve::Op::Scan;
  bare.source = f.vulnerable_source;
  serve::Response minted = client->roundtrip(std::move(bare));
  EXPECT_FALSE(minted.trace_id.empty());
  EXPECT_NE(std::string::npos, minted.trace_id.find('-'));
}

/// One finished request -> one schema-v1 access-log line carrying the
/// request's trace_id; the log is complete once run() drains.
TEST(ServeTelemetry, AccessLogRecordsEveryRequest) {
  namespace fs = std::filesystem;
  auto& f = fixture();
  serve::ServeOptions options = telemetry_options("accesslog");
  const fs::path log_path =
      fs::temp_directory_path() /
      ("sevuldet_access_" + std::to_string(::getpid()) + ".log");
  fs::remove(log_path);
  options.access_log_path = log_path.string();
  {
    RunningServer running(std::move(options));
    auto client = serve::Client::connect(running.server.options().socket_path);
    ASSERT_TRUE(client.has_value());
    serve::Request request;
    request.op = serve::Op::Scan;
    request.source = f.vulnerable_source;
    request.trace_id = "logged-1";
    client->roundtrip(std::move(request));
    client->report_status();
  }  // drain flushes the access log
  std::ifstream in(log_path);
  std::string line;
  bool saw_scan = false, saw_status = false;
  while (std::getline(in, line)) {
    mini_json::Value record = mini_json::parse(line);
    EXPECT_EQ(1.0, record.at("schema_version").number);
    EXPECT_FALSE(record.at("trace_id").str.empty());
    if (record.at("op").str == "scan") {
      saw_scan = true;
      EXPECT_EQ("logged-1", record.at("trace_id").str);
      EXPECT_GE(record.at("batch_size").number, 1.0);
      EXPECT_GT(record.at("infer_ms").number, 0.0);
      EXPECT_EQ("fp32", record.at("precision").str);
    }
    if (record.at("op").str == "report-status") saw_status = true;
  }
  EXPECT_TRUE(saw_scan);
  EXPECT_TRUE(saw_status);
  fs::remove(log_path);
}

/// Tail-based slow tracing is data-plane only: with the threshold at 0
/// every scan is "slow", but metrics scrapes, status probes, and the
/// shutdown ack must not produce trace files — the CI obs-gate asserts
/// exactly one file after exactly one scan.
TEST(ServeTelemetry, SlowTraceCapturesDataPlaneOnly) {
  namespace fs = std::filesystem;
  auto& f = fixture();
  serve::ServeOptions options = telemetry_options("slowtrace");
  const fs::path trace_dir =
      fs::temp_directory_path() /
      ("sevuldet_slow_" + std::to_string(::getpid()));
  fs::remove_all(trace_dir);
  fs::create_directories(trace_dir);
  options.slow_trace_ms = 0.0;
  options.slow_trace_dir = trace_dir.string();
  {
    RunningServer running(std::move(options));
    auto client = serve::Client::connect(running.server.options().socket_path);
    ASSERT_TRUE(client.has_value());
    serve::Request request;
    request.op = serve::Op::Scan;
    request.source = f.vulnerable_source;
    request.trace_id = "slow-probe";
    client->roundtrip(std::move(request));
    client->metrics("json");       // control plane: no trace file
    client->report_status();       // control plane: no trace file
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(trace_dir)) {
    files.push_back(entry.path());
  }
  ASSERT_EQ(1u, files.size()) << "exactly one slow trace for one scan";
  std::ifstream in(files[0]);
  std::ostringstream body;
  body << in.rdbuf();
  EXPECT_NE(std::string::npos, body.str().find("\"slow-probe\""));
  EXPECT_NE(std::string::npos, body.str().find("traceEvents"));
  fs::remove_all(trace_dir);
}

/// Telemetry must not perturb results: scans through a telemetry-on
/// daemon stay byte-identical to in-process detect().
TEST(ServeTelemetry, ScanStaysByteIdenticalWithTelemetryOn) {
  auto& f = fixture();
  RunningServer running(telemetry_options("teleident"));
  auto client = serve::Client::connect(running.server.options().socket_path);
  ASSERT_TRUE(client.has_value());
  const std::string expected =
      serve::findings_to_json(f.detector.detect(f.vulnerable_source));
  EXPECT_EQ(expected, serve::findings_to_json(client->scan(
                          f.vulnerable_source, 10, false, -1.0, 60000,
                          "ident-check")));
}

TEST(ServeDaemon, RejectsOversizedRequestFrame) {
  RunningServer running(test_options("oversize"));
  auto stream =
      su::UnixStream::connect(running.server.options().socket_path);
  ASSERT_TRUE(stream.has_value());
  // A frame header promising more than the daemon's cap: the daemon
  // replies with a typed bad_request and closes, instead of allocating.
  su::ByteWriter header;
  header.bytes(su::kFrameMagic);
  header.u32(64 << 20);  // 64 MiB > 16 MiB default cap
  ::send(stream->fd(), header.data().data(), header.size(), 0);
  auto payload = stream->recv_frame();
  ASSERT_TRUE(payload.has_value());
  serve::Response response = serve::parse_response(*payload);
  ASSERT_TRUE(response.error.has_value());
  EXPECT_EQ(serve::ErrorCode::BadRequest, response.error->code);
}

}  // namespace
