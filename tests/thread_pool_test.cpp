#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sevuldet/util/thread_pool.hpp"

namespace su = sevuldet::util;

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(su::hardware_threads(), 1);
  EXPECT_EQ(su::resolve_threads(0), su::hardware_threads());
  EXPECT_EQ(su::resolve_threads(-3), su::hardware_threads());
  EXPECT_EQ(su::resolve_threads(5), 5);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  su::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  su::ThreadPool pool(4);
  // Early indices sleep so they finish after late ones; the result must
  // still come back in input order.
  auto out = pool.parallel_map(64, [](std::size_t i) {
    if (i < 8) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return static_cast<long>(i) * static_cast<long>(i);
  });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<long>(i) * static_cast<long>(i));
  }
}

TEST(ThreadPool, MatchesSerialExecution) {
  auto work = [](std::size_t i) { return static_cast<int>(i % 17) - 3; };
  std::vector<int> serial(257);
  for (std::size_t i = 0; i < serial.size(); ++i) serial[i] = work(i);
  su::ThreadPool pool(3);
  EXPECT_EQ(pool.parallel_map(serial.size(), work), serial);
}

TEST(ThreadPool, PropagatesExceptions) {
  su::ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                          ++completed;
                        }),
      std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  su::ThreadPool pool(4);
  EXPECT_FALSE(su::ThreadPool::in_parallel_region());
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(su::ThreadPool::in_parallel_region());
    // Nested region: must degrade to a serial loop, not deadlock.
    pool.parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
  EXPECT_FALSE(su::ThreadPool::in_parallel_region());
}

TEST(ThreadPool, SizeOneRunsInlineOnCaller) {
  su::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  su::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelChunksPartitionInOrder) {
  su::ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(pool.size(),
                                                          {std::size_t{0}, std::size_t{0}});
  std::atomic<int> calls{0};
  pool.parallel_chunks(103, [&](int worker, std::size_t begin, std::size_t end) {
    ranges[static_cast<std::size_t>(worker)] = {begin, end};
    ++calls;
  });
  EXPECT_EQ(calls.load(), 4);
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPool, ParallelChunksWithFewerItemsThanWorkers) {
  su::ThreadPool pool(8);
  std::atomic<int> covered{0};
  pool.parallel_chunks(3, [&](int /*worker*/, std::size_t begin, std::size_t end) {
    covered += static_cast<int>(end - begin);
  });
  EXPECT_EQ(covered.load(), 3);
}

TEST(ThreadPool, OversubscriptionIsSafe) {
  // More workers than cores (this repo's CI runs on small machines).
  su::ThreadPool pool(16);
  std::vector<long> slot(2048, 0);
  pool.parallel_for(slot.size(), [&](std::size_t i) {
    slot[i] = static_cast<long>(i) + 1;
  });
  const long sum = std::accumulate(slot.begin(), slot.end(), 0L);
  EXPECT_EQ(sum, 2048L * 2049L / 2L);
}
