#include <gtest/gtest.h>

#include <algorithm>

#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/slicer/control_ranges.hpp"
#include "sevuldet/slicer/gadget.hpp"
#include "sevuldet/slicer/slice.hpp"
#include "sevuldet/slicer/special_tokens.hpp"

namespace sg = sevuldet::graph;
namespace ss = sevuldet::slicer;

namespace {

const char* kStrncpyProgram = R"(void copy_data(char *data, int n) {
  char dest[100];
  if (n < 100) {
    strncpy(dest, data, n);
  } else {
    report(n);
  }
})";

ss::SpecialToken token_for_call(const sg::ProgramGraph& program,
                                const std::string& callee) {
  for (const auto& tok : ss::find_special_tokens(program)) {
    if (tok.category == ss::TokenCategory::FunctionCall && tok.text == callee) {
      return tok;
    }
  }
  return {};
}

}  // namespace

TEST(SpecialTokens, FindsAllFourCategories) {
  auto program = sg::build_program_graph(R"(
void f(char *p, int n) {
  int buf[10];
  int x = n + 1;
  buf[x] = *p;
  memcpy(buf, p, n);
}
)");
  auto tokens = ss::find_special_tokens(program);
  auto count = [&](ss::TokenCategory c) {
    return std::count_if(tokens.begin(), tokens.end(),
                         [c](const auto& t) { return t.category == c; });
  };
  EXPECT_GE(count(ss::TokenCategory::FunctionCall), 1);
  EXPECT_GE(count(ss::TokenCategory::ArrayUsage), 1);  // buf[x]
  EXPECT_GE(count(ss::TokenCategory::PointerUsage), 1);
  EXPECT_GE(count(ss::TokenCategory::ArithExpr), 1);
}

TEST(SpecialTokens, LibraryVsDefinedFunctions) {
  EXPECT_TRUE(ss::is_library_function("strcpy"));
  EXPECT_TRUE(ss::is_risky_library_function("gets"));
  EXPECT_FALSE(ss::is_risky_library_function("strlen"));
  auto program = sg::build_program_graph(R"(
void helper(int v) { int w = v; }
void f(int n) { helper(n); strlen("x"); }
)");
  auto tokens = ss::find_special_tokens(program, ss::TokenCategory::FunctionCall);
  // helper is defined in the unit -> not a library call criterion;
  // strlen is.
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "strlen");
}

TEST(SpecialTokens, OnePerUnitPerCategory) {
  auto program = sg::build_program_graph("void f(int a, int b) { int c = a + b - a * b; }");
  auto tokens = ss::find_special_tokens(program, ss::TokenCategory::ArithExpr);
  EXPECT_EQ(tokens.size(), 1u);
}

TEST(Slice, BackwardIncludesDefsAndGuards) {
  auto program = sg::build_program_graph(kStrncpyProgram);
  auto tok = token_for_call(program, "strncpy");
  ASSERT_EQ(tok.text, "strncpy");
  auto slice = ss::compute_backward_slice(program, tok.function, tok.unit);
  const auto& pdg = *program.pdg_of("copy_data");
  bool has_if = false, has_decl = false;
  for (int id : slice.units_by_fn.at("copy_data")) {
    const auto& u = pdg.units[static_cast<std::size_t>(id)];
    if (u.kind == sg::UnitKind::IfPred) has_if = true;
    if (u.kind == sg::UnitKind::Decl) has_decl = true;
  }
  EXPECT_TRUE(has_if);    // control dependence
  EXPECT_TRUE(has_decl);  // data dependence on dest
}

TEST(Slice, DataOnlyOptionDropsControlDeps) {
  auto program = sg::build_program_graph(kStrncpyProgram);
  auto tok = token_for_call(program, "strncpy");
  ss::SliceOptions opt;
  opt.use_control_dep = false;
  auto slice = ss::compute_backward_slice(program, tok.function, tok.unit, opt);
  const auto& pdg = *program.pdg_of("copy_data");
  for (int id : slice.units_by_fn.at("copy_data")) {
    EXPECT_NE(pdg.units[static_cast<std::size_t>(id)].kind, sg::UnitKind::IfPred);
  }
}

TEST(Slice, ForwardFollowsUses) {
  auto program = sg::build_program_graph(R"(
void f(char *src) {
  char buf[64];
  strcpy(buf, src);
  int len = strlen(buf);
  use(len);
}
)");
  auto tok = token_for_call(program, "strcpy");
  auto slice = ss::compute_forward_slice(program, tok.function, tok.unit);
  const auto& pdg = *program.pdg_of("f");
  bool has_strlen = false, has_use = false;
  for (int id : slice.units_by_fn.at("f")) {
    const auto& text = pdg.units[static_cast<std::size_t>(id)].text;
    if (text.find("strlen") != std::string::npos) has_strlen = true;
    if (text.find("use(") != std::string::npos) has_use = true;
  }
  EXPECT_TRUE(has_strlen);
  EXPECT_TRUE(has_use);
}

TEST(Slice, CrossesIntoCallee) {
  auto program = sg::build_program_graph(R"(
void sink(char *q, int m) {
  char inner[50];
  strncpy(inner, q, m);
}
void driver(char *data) {
  int n = strlen(data);
  sink(data, n);
}
)");
  // Criterion inside driver at the call; forward expansion should pull in
  // sink's parameter-using statements.
  const auto& pdg = *program.pdg_of("driver");
  int call_unit = -1;
  for (const auto& u : pdg.units) {
    if (u.text.find("sink(") != std::string::npos) call_unit = u.id;
  }
  ASSERT_GE(call_unit, 0);
  auto slice = ss::compute_slice(program, "driver", call_unit);
  EXPECT_TRUE(slice.units_by_fn.contains("sink"));
}

TEST(Slice, CrossesIntoCallerWhenParamInvolved) {
  auto program = sg::build_program_graph(R"(
void sink(char *q, int m) {
  char inner[50];
  strncpy(inner, q, m);
}
void driver(char *data) {
  int n = strlen(data);
  sink(data, n);
}
)");
  auto tok = token_for_call(program, "strncpy");
  ASSERT_EQ(tok.function, "sink");
  auto slice = ss::compute_slice(program, tok.function, tok.unit);
  ASSERT_TRUE(slice.units_by_fn.contains("driver"));
  // The caller's argument computation should be in the slice.
  const auto& driver = *program.pdg_of("driver");
  bool has_strlen = false;
  for (int id : slice.units_by_fn.at("driver")) {
    if (driver.units[static_cast<std::size_t>(id)].text.find("strlen") !=
        std::string::npos) {
      has_strlen = true;
    }
  }
  EXPECT_TRUE(has_strlen);
}

TEST(ControlRanges, BraceMatching) {
  std::vector<std::string> lines = {
      "void f() {",      // 1
      "if (x) {",        // 2
      "y = 1;",          // 3
      "} else {",        // 4
      "y = 2;",          // 5
      "}",               // 6
      "}",               // 7
  };
  auto braces = ss::match_braces(lines);
  EXPECT_EQ(braces.at(1), 7);
  EXPECT_EQ(braces.at(2), 4);
  EXPECT_EQ(braces.at(4), 6);
}

TEST(ControlRanges, BraceMatchingIgnoresStringsAndComments) {
  std::vector<std::string> lines = {
      "f() {",                       // 1
      "puts(\"}{\"); // } stray",    // 2
      "/* { */",                     // 3
      "}",                           // 4
  };
  auto braces = ss::match_braces(lines);
  EXPECT_EQ(braces.at(1), 4);
  EXPECT_EQ(braces.size(), 1u);
}

TEST(ControlRanges, IfElseChainSharesGroup) {
  auto program = sg::build_program_graph(R"(void f(int n) {
  if (n < 0) {
    n = 0;
  } else if (n < 10) {
    n = 1;
  } else {
    n = 2;
  }
})");
  auto ranges = ss::compute_control_ranges(*program.pdg_of("f")->fn,
                                           program.source_lines);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].kind, ss::RangeKind::If);
  EXPECT_EQ(ranges[1].kind, ss::RangeKind::ElseIf);
  EXPECT_EQ(ranges[2].kind, ss::RangeKind::Else);
  EXPECT_EQ(ranges[0].group, ranges[1].group);
  EXPECT_EQ(ranges[1].group, ranges[2].group);
}

TEST(ControlRanges, SeparateIfsGetSeparateGroups) {
  auto program = sg::build_program_graph(R"(void f(int n) {
  if (n < 0) {
    n = 0;
  }
  if (n > 10) {
    n = 10;
  }
})");
  auto ranges = ss::compute_control_ranges(*program.pdg_of("f")->fn,
                                           program.source_lines);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_NE(ranges[0].group, ranges[1].group);
}

TEST(ControlRanges, LoopsAndSwitch) {
  auto program = sg::build_program_graph(R"(void f(int n) {
  for (int i = 0; i < n; i++) {
    n--;
  }
  while (n) {
    n--;
  }
  switch (n) {
    case 1:
      n = 0;
      break;
    default:
      n = 2;
  }
})");
  auto ranges = ss::compute_control_ranges(*program.pdg_of("f")->fn,
                                           program.source_lines);
  int fors = 0, whiles = 0, switches = 0, cases = 0;
  int switch_group = -1;
  for (const auto& r : ranges) {
    if (r.kind == ss::RangeKind::For) ++fors;
    if (r.kind == ss::RangeKind::While) ++whiles;
    if (r.kind == ss::RangeKind::Switch) {
      ++switches;
      switch_group = r.group;
    }
    if (r.kind == ss::RangeKind::Case) {
      ++cases;
      EXPECT_EQ(r.group, switch_group);
    }
  }
  EXPECT_EQ(fors, 1);
  EXPECT_EQ(whiles, 1);
  EXPECT_EQ(switches, 1);
  EXPECT_EQ(cases, 2);
}

TEST(Gadget, ContainsCriterionAndDependencies) {
  auto program = sg::build_program_graph(kStrncpyProgram);
  auto tok = token_for_call(program, "strncpy");
  auto gadget = ss::generate_gadget(program, tok);
  std::string text = gadget.text();
  EXPECT_NE(text.find("strncpy(dest, data, n)"), std::string::npos);
  EXPECT_NE(text.find("char dest[100]"), std::string::npos);
  EXPECT_NE(text.find("if (n < 100)"), std::string::npos);
}

TEST(Gadget, PathSensitiveInsertsBoundaries) {
  auto program = sg::build_program_graph(kStrncpyProgram);
  auto tok = token_for_call(program, "strncpy");
  auto ps = ss::generate_gadget(program, tok);
  bool has_boundary = false;
  for (const auto& line : ps.lines) {
    if (line.is_boundary) has_boundary = true;
  }
  EXPECT_TRUE(has_boundary);
  EXPECT_NE(ps.text().find("} else {"), std::string::npos);

  ss::GadgetOptions plain;
  plain.path_sensitive = false;
  auto cg = ss::generate_gadget(program, tok, plain);
  EXPECT_EQ(cg.text().find("} else {"), std::string::npos);
  EXPECT_LT(cg.lines.size(), ps.lines.size());
}

// The paper's Fig. 1 property: a good/bad pair whose plain code gadgets
// are textually identical but whose path-sensitive gadgets differ.
TEST(Gadget, Fig1AmbiguityResolvedByPathSensitivity) {
  const char* good = R"(void copy_data(char *data, int n) {
  char dest[100];
  if (n < 100) {
    strncpy(dest, data, n);
  } else {
    report(n);
  }
})";
  const char* bad = R"(void copy_data(char *data, int n) {
  char dest[100];
  if (n < 100) {
    report(n);
  } else {
    strncpy(dest, data, n);
  }
})";
  auto good_program = sg::build_program_graph(good);
  auto bad_program = sg::build_program_graph(bad);
  auto good_tok = token_for_call(good_program, "strncpy");
  auto bad_tok = token_for_call(bad_program, "strncpy");

  ss::GadgetOptions plain;
  plain.path_sensitive = false;
  auto good_cg = ss::generate_gadget(good_program, good_tok, plain);
  auto bad_cg = ss::generate_gadget(bad_program, bad_tok, plain);
  EXPECT_EQ(good_cg.text(), bad_cg.text())
      << "plain gadgets should be identical (the paper's motivating flaw)";

  auto good_ps = ss::generate_gadget(good_program, good_tok);
  auto bad_ps = ss::generate_gadget(bad_program, bad_tok);
  EXPECT_NE(good_ps.text(), bad_ps.text())
      << "path-sensitive gadgets must differ";
}

TEST(Gadget, InterproceduralOrdersCallerFirst) {
  auto program = sg::build_program_graph(R"(
void sink(char *q, int m) {
  char inner[50];
  strncpy(inner, q, m);
}
void driver(char *data) {
  int n = strlen(data);
  sink(data, n);
}
)");
  auto tok = token_for_call(program, "strncpy");
  auto gadget = ss::generate_gadget(program, tok);
  // Find positions: driver lines must precede sink lines.
  int first_sink = -1, last_driver = -1;
  for (std::size_t i = 0; i < gadget.lines.size(); ++i) {
    if (gadget.lines[i].function == "sink" && first_sink < 0) {
      first_sink = static_cast<int>(i);
    }
    if (gadget.lines[i].function == "driver") last_driver = static_cast<int>(i);
  }
  ASSERT_GE(first_sink, 0);
  ASSERT_GE(last_driver, 0);
  EXPECT_LT(last_driver, first_sink);
}

TEST(Gadget, GenerateAllProducesOnePerToken) {
  auto program = sg::build_program_graph(kStrncpyProgram);
  auto all = ss::generate_gadgets(program);
  auto tokens = ss::find_special_tokens(program);
  EXPECT_EQ(all.size(), tokens.size());
  auto fc_only =
      ss::generate_gadgets(program, ss::TokenCategory::FunctionCall);
  for (const auto& g : fc_only) {
    EXPECT_EQ(g.token.category, ss::TokenCategory::FunctionCall);
  }
}

TEST(Gadget, LinesWithinFunctionSortedByLineNumber) {
  auto program = sg::build_program_graph(kStrncpyProgram);
  auto tok = token_for_call(program, "strncpy");
  auto gadget = ss::generate_gadget(program, tok);
  for (std::size_t i = 1; i < gadget.lines.size(); ++i) {
    if (gadget.lines[i].function == gadget.lines[i - 1].function) {
      EXPECT_GT(gadget.lines[i].line, gadget.lines[i - 1].line);
    }
  }
}
