// Phase tracing (util/trace.hpp): ScopedSpan event recording, nesting,
// the bounded event store, per-thread buffers surviving thread exit,
// the coupling into the "span.<name>" metrics histograms, and Chrome
// trace_event JSON validity.
#include "sevuldet/util/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "sevuldet/util/mini_json.hpp"
#include "sevuldet/util/metrics.hpp"

namespace {

namespace trace = sevuldet::util::trace;
namespace mini_json = sevuldet::util::mini_json;
namespace metrics = sevuldet::util::metrics;

void spin_briefly() {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(50);
  while (std::chrono::steady_clock::now() < until) {
  }
}

// Tracing is process-global state; each test starts clean and restores
// the disabled default.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::reset();
    metrics::reset();
    trace::set_capacity(1 << 17);
    trace::set_enabled(true);
  }
  void TearDown() override {
    trace::set_enabled(false);
    metrics::set_enabled(false);
    trace::reset();
    metrics::reset();
  }
};

TEST_F(TraceTest, SpanRecordsOneCompleteEvent) {
  {
    trace::ScopedSpan span("phase");
    spin_briefly();
  }
  const auto events = trace::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "phase");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GT(events[0].dur_us, 0.0);
}

TEST_F(TraceTest, NestedSpansAreContained) {
  {
    trace::ScopedSpan outer("outer");
    spin_briefly();
    {
      trace::ScopedSpan inner("inner");
      spin_briefly();
    }
    spin_briefly();
  }
  const auto events = trace::events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time, ties broken longer-duration-first: outer leads.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  trace::set_enabled(false);
  {
    trace::ScopedSpan span("invisible");
  }
  EXPECT_TRUE(trace::events().empty());
}

TEST_F(TraceTest, CapacityBoundsTheStoreAndCountsDrops) {
  trace::set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    trace::ScopedSpan span("s");
  }
  EXPECT_EQ(trace::events().size(), 4u);
  EXPECT_EQ(trace::dropped(), 6u);
  trace::reset();
  EXPECT_EQ(trace::dropped(), 0u);
}

TEST_F(TraceTest, WorkerSpansSurviveThreadExit) {
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < 10; ++i) {
          trace::ScopedSpan span("work");
          spin_briefly();
        }
      });
    }
    for (auto& w : workers) w.join();
  }  // worker threads (and their thread-local buffers) are gone here
  const auto events = trace::events();
  EXPECT_EQ(events.size(), 30u);
  std::set<int> tids;
  for (const auto& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 3u);  // one buffer (and tid) per worker thread
  // Merged timeline stays sorted by start time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST_F(TraceTest, SpanFeedsMetricsHistogramWhenMetricsEnabled) {
  metrics::set_enabled(true);
  {
    trace::ScopedSpan span("pdg");
    spin_briefly();
  }
  const auto snap = metrics::snapshot();
  ASSERT_EQ(snap.histograms.count("span.pdg"), 1u);
  EXPECT_EQ(snap.histograms.at("span.pdg").count, 1);
  EXPECT_GT(snap.histograms.at("span.pdg").sum, 0.0);
}

TEST_F(TraceTest, MetricsOnlySpanNeedsNoTraceStore) {
  trace::set_enabled(false);
  metrics::set_enabled(true);
  {
    trace::ScopedSpan span("slice");
  }
  EXPECT_TRUE(trace::events().empty());
  EXPECT_EQ(metrics::snapshot().histograms.at("span.slice").count, 1);
}

TEST_F(TraceTest, JsonIsChromeTraceEventFormat) {
  {
    trace::ScopedSpan span("parse");
    spin_briefly();
  }
  {
    trace::ScopedSpan span("needs\\escape\"");
  }
  const mini_json::Value doc = mini_json::parse(trace::to_json());
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number, 1.0);
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  EXPECT_DOUBLE_EQ(doc.at("dropped_events").number, 0.0);
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").str, "parse");
  EXPECT_EQ(events[1].at("name").str, "needs\\escape\"");
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_EQ(e.at("cat").str, "sevuldet");
    EXPECT_DOUBLE_EQ(e.at("pid").number, 1.0);
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
  }
}

}  // namespace
