#include "sevuldet/models/model.hpp"

#include <cmath>
#include <stdexcept>

namespace sevuldet::models {

float Detector::predict(const std::vector<int>& tokens) {
  nn::NodePtr logit = forward_logit(tokens, /*train=*/false);
  if (config_.num_classes > 1) {
    return 1.0f - nn::softmax_row_values(logit->value)[0];
  }
  return 1.0f / (1.0f + std::exp(-logit->value.at(0, 0)));
}

float Detector::predict_item(const BatchItem& item) {
  nn::NodePtr logit = forward_logit_item(item, /*train=*/false);
  if (config_.num_classes > 1) {
    return 1.0f - nn::softmax_row_values(logit->value)[0];
  }
  return 1.0f / (1.0f + std::exp(-logit->value.at(0, 0)));
}

Prediction Detector::predict_captured(const std::vector<int>& tokens,
                                      bool capture_spatial) {
  Prediction out;
  out.probability = predict(tokens);
  out.token_weights = last_token_weights();
  if (capture_spatial) out.spatial_weights = last_spatial_weights();
  return out;
}

Prediction Detector::predict_captured_item(const BatchItem& item) {
  Prediction out;
  out.probability = predict_item(item);
  out.token_weights = last_token_weights();
  if (item.capture_spatial) out.spatial_weights = last_spatial_weights();
  return out;
}

const std::vector<float>& Detector::last_token_weights() const {
  static const std::vector<float> kEmpty;
  return kEmpty;
}

const std::vector<float>& Detector::last_spatial_weights() const {
  static const std::vector<float> kEmpty;
  return kEmpty;
}

bool Detector::is_vulnerable(const std::vector<int>& tokens) {
  return predict(tokens) > config_.threshold;
}

std::pair<int, float> Detector::predict_class(const std::vector<int>& tokens) {
  nn::NodePtr logit = forward_logit(tokens, /*train=*/false);
  if (config_.num_classes <= 1) {
    const float p = 1.0f / (1.0f + std::exp(-logit->value.at(0, 0)));
    return {p > config_.threshold ? 1 : 0, p};
  }
  auto probs = nn::softmax_row_values(logit->value);
  int best = 0;
  for (int j = 1; j < config_.num_classes; ++j) {
    if (probs[static_cast<std::size_t>(j)] > probs[static_cast<std::size_t>(best)]) {
      best = j;
    }
  }
  return {best, probs[static_cast<std::size_t>(best)]};
}

const char* precision_name(Precision precision) {
  switch (precision) {
    case Precision::kFp32: return "fp32";
    case Precision::kFp16: return "fp16";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

bool parse_precision(const std::string& text, Precision* out) {
  if (text == "fp32") {
    *out = Precision::kFp32;
  } else if (text == "fp16") {
    *out = Precision::kFp16;
  } else if (text == "int8") {
    *out = Precision::kInt8;
  } else {
    return false;
  }
  return true;
}

void Detector::predict_batch(const BatchItem* items, std::size_t count,
                             Prediction* out) {
  // Loop fallback: byte-identical to calling predict() per item (the
  // batch_test suite pins this for BiRnnNet). Attention read-outs come
  // from last_*_weights(), which is empty for models without an
  // attention head. Each item gets its own graph scope so the autograd
  // arena is recycled per forward, exactly like the serial eval loop.
  nn::Graph graph;
  for (std::size_t i = 0; i < count; ++i) {
    nn::GraphScope scope(graph);
    out[i].probability = predict_item(items[i]);
    out[i].token_weights = last_token_weights();
    out[i].spatial_weights =
        items[i].capture_spatial ? last_spatial_weights() : std::vector<float>{};
  }
}

std::vector<Prediction> Detector::predict_batch(
    const std::vector<BatchItem>& items) {
  std::vector<Prediction> out(items.size());
  predict_batch(items.data(), items.size(), out.data());
  return out;
}

void copy_parameters(const nn::ParamStore& from, nn::ParamStore& to) {
  for (const auto& [name, node] : from.all()) {
    nn::NodePtr target = to.find(name);
    if (target == nullptr) {
      throw std::invalid_argument("copy_parameters: missing parameter " + name);
    }
    if (!target->value.same_shape(node->value)) {
      throw std::invalid_argument("copy_parameters: shape mismatch for " + name);
    }
    target->value = node->value;
  }
}

void load_pretrained_embeddings(nn::ParamStore& store,
                                const std::string& param_name,
                                const nn::Tensor& vectors) {
  nn::NodePtr embed = store.find(param_name);
  if (embed == nullptr) {
    throw std::invalid_argument("no embedding parameter named " + param_name);
  }
  if (embed->value.cols() != vectors.cols()) {
    throw std::invalid_argument("embedding dim mismatch");
  }
  const int rows = std::min(embed->value.rows(), vectors.rows());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < vectors.cols(); ++c) {
      embed->value.at(r, c) = vectors.at(r, c);
    }
  }
}

}  // namespace sevuldet::models
