// Fixed-length bidirectional RNN detectors — the BLSTM/BGRU baselines of
// RQ1 and the stand-ins for VulDeePecker (BLSTM over data-dependence
// gadgets) and SySeVR (BGRU over data+control gadgets). Definition 8 of
// the paper: the token sequence is truncated to the predefined time-step
// count or zero-padded up to it before entering the network.
#pragma once

#include <memory>

#include "sevuldet/models/model.hpp"

namespace sevuldet::models {

class BiRnnNet : public Detector {
 public:
  BiRnnNet(ModelConfig config, nn::RnnKind kind, std::string name);

  nn::NodePtr forward_logit(const std::vector<int>& tokens, bool train) override;
  const std::string& name() const override { return name_; }
  nn::ParamStore& params() override { return store_; }

  /// Fixed-length preprocessing (Definition 8): truncate or zero-pad.
  std::vector<int> fix_length(const std::vector<int>& tokens) const;

  std::unique_ptr<Detector> clone() const override;

 private:
  std::string name_;
  nn::ParamStore store_;
  util::Rng rng_;
  nn::RnnKind kind_;
  nn::NodePtr embedding_;
  std::unique_ptr<nn::BiRnn> rnn_;
  std::unique_ptr<nn::Dense> fc_;
  std::vector<int> ids_scratch_;  // fixed-length ids, reused per forward
};

/// Factory helpers matching the paper's baseline names.
std::unique_ptr<BiRnnNet> make_blstm(ModelConfig config);
std::unique_ptr<BiRnnNet> make_bgru(ModelConfig config);
std::unique_ptr<BiRnnNet> make_vuldeepecker(ModelConfig config);  // BLSTM
std::unique_ptr<BiRnnNet> make_sysevr(ModelConfig config);        // BGRU

}  // namespace sevuldet::models
