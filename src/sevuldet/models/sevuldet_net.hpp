// The paper's detection network (Fig. 2, Steps IV-V): word2vec-initialized
// embedding -> token attention (eqs. 1-4) -> Conv1d -> CBAM channel +
// spatial attention (eqs. 5-8) -> Conv1d -> spatial pyramid pooling
// ({4,2,1} bins) -> dense 256 -> 64 -> 1 (sigmoid at threshold 0.8).
// The token-attention and CBAM stages can be disabled to realize the
// RQ2 ablations (CNN / CNN-TokenATT / CNN-MultiATT).
#pragma once

#include <memory>

#include "sevuldet/models/model.hpp"

namespace sevuldet::models {

class SeVulDetNet : public Detector {
 public:
  explicit SeVulDetNet(ModelConfig config);

  nn::NodePtr forward_logit(const std::vector<int>& tokens, bool train) override;
  const std::string& name() const override { return name_; }
  nn::ParamStore& params() override { return store_; }

  /// α weights of the last forward pass (one per input token) — the
  /// Fig. 6 attention-visualization hook. Empty if token attention is
  /// disabled.
  const std::vector<float>& last_token_weights() const;

  /// CBAM spatial map Ms of the last forward pass (one weight per conv
  /// row; rows align with the padded token sequence). Empty if
  /// multilayer attention is disabled.
  const std::vector<float>& last_spatial_weights() const;

  /// predict() plus a copy of the attention read-outs taken immediately
  /// after the forward pass. The batched serve path scores gadgets on a
  /// different thread than the one assembling findings, so the weights
  /// must travel with the probability instead of being read back later
  /// through last_*_weights(). `capture_spatial` additionally copies the
  /// CBAM map (explain requests only — it is the largest of the three).
  /// The probability is bit-identical to predict(tokens).
  Prediction predict_captured(const std::vector<int>& tokens,
                              bool capture_spatial = false);

  /// Concrete deep copy (keeps access to last_token_weights()).
  std::unique_ptr<SeVulDetNet> clone_net() const;
  std::unique_ptr<Detector> clone() const override { return clone_net(); }

 private:
  std::string name_;
  nn::ParamStore store_;
  util::Rng rng_;          // dropout randomness
  nn::NodePtr embedding_;
  std::unique_ptr<nn::TokenAttention> token_attention_;
  std::unique_ptr<nn::Conv1d> conv1_;
  std::unique_ptr<nn::Cbam> cbam_;
  std::unique_ptr<nn::Conv1d> conv2_;
  std::unique_ptr<nn::Dense> fc1_, fc2_, fc3_;
  std::vector<float> empty_weights_;
  std::vector<int> ids_scratch_;  // padded token ids, reused per forward
};

}  // namespace sevuldet::models
