// The paper's detection network (Fig. 2, Steps IV-V): word2vec-initialized
// embedding -> token attention (eqs. 1-4) -> Conv1d -> CBAM channel +
// spatial attention (eqs. 5-8) -> Conv1d -> spatial pyramid pooling
// ({4,2,1} bins) -> dense 256 -> 64 -> 1 (sigmoid at threshold 0.8).
// The token-attention and CBAM stages can be disabled to realize the
// RQ2 ablations (CNN / CNN-TokenATT / CNN-MultiATT).
#pragma once

#include <cstdint>
#include <memory>

#include "sevuldet/models/model.hpp"
#include "sevuldet/nn/kernels.hpp"

namespace sevuldet::models {

class SeVulDetNet : public Detector {
 public:
  explicit SeVulDetNet(ModelConfig config);

  nn::NodePtr forward_logit(const std::vector<int>& tokens, bool train) override;
  const std::string& name() const override { return name_; }
  nn::ParamStore& params() override { return store_; }

  /// α weights of the last forward pass (one per input token) — the
  /// Fig. 6 attention-visualization hook. Empty if token attention is
  /// disabled.
  const std::vector<float>& last_token_weights() const override;

  /// CBAM spatial map Ms of the last forward pass (one weight per conv
  /// row; rows align with the padded token sequence). Empty if
  /// multilayer attention is disabled.
  const std::vector<float>& last_spatial_weights() const override;

  /// Length-bucketed batched inference: items are grouped by padded
  /// token count and each group runs the whole trunk as large stacked
  /// GEMMs (embedding gather, token-attention MLP, conv1/conv2 im2row
  /// products, CBAM MLPs, FC head), with the per-gadget stages
  /// (softmax, reductions, SPP) applied per row segment. At fp32 the
  /// output is BITWISE-identical to calling predict_captured() per item
  /// — stacking same-length gadgets changes neither any GEMM row's
  /// accumulation chain nor any segment-local op (tests/batch_test.cpp
  /// pins this). At fp16/int8 the conv/FC GEMMs run quantized (see
  /// Precision). No autograd graph is built; scratch is reused across
  /// calls, so steady-state batches allocate nothing.
  void predict_batch(const BatchItem* items, std::size_t count,
                     Prediction* out) override;
  using Detector::predict_batch;  // keep the vector convenience overload

  /// Build (or drop) the quantized weight caches for the batched path.
  void set_precision(Precision precision) override;

  /// Bytes currently held by the batched engine's recycled scratch
  /// buffers (capacity, not size — vectors only grow, so this is the
  /// high-water inference footprint of this instance).
  std::size_t scratch_bytes() const override;

  /// The GEMM problem shapes the bucketed forward issues for roughly
  /// `rows_hint` stacked token rows — fed to the load-time tile
  /// autotuner, which benchmarks candidate cache tiles on exactly these.
  std::vector<nn::kernels::GemmShape> batch_gemm_shapes(int rows_hint) const override;

  /// Concrete deep copy (keeps access to last_token_weights()).
  std::unique_ptr<SeVulDetNet> clone_net() const;
  std::unique_ptr<Detector> clone() const override { return clone_net(); }

 private:
  /// One weight matrix in the quantized formats the batched engine can
  /// consume: int8 with per-output-channel (column) symmetric scales,
  /// and binary16. Built once in set_precision (model load), read-only
  /// during inference.
  struct QuantWeights {
    std::vector<std::int8_t> q;       // [rows, cols] int8
    std::vector<float> col_scale;     // [cols] dequant scales
    std::vector<std::uint16_t> half;  // [rows, cols] binary16
    int rows = 0;
    int cols = 0;
  };

  /// Recycled buffers of the batched engine (per model instance; clones
  /// own their own, so per-worker clones batch concurrently).
  struct BatchScratch {
    std::vector<float> x, attn_u, attn_scores, alpha;
    std::vector<float> im1, f1, cb, cb2, im2, f2;
    std::vector<float> ch_avg, ch_max, ch_mid, ch_mlp, mc;
    std::vector<float> sp_in, sp_im, ms;
    std::vector<float> pooled, h1, h2, logits;
    std::vector<std::int8_t> qa;      // quantized activations
    std::vector<std::int32_t> acc;    // int8 GEMM accumulators
    std::vector<std::uint16_t> ha;    // fp16 activations
    std::vector<float> row_scale;     // per-row activation scales
  };

  /// Parameter tensors the batched engine reads, resolved from store_
  /// once per instance (ParamStore::find hashes a std::string per call —
  /// measurably hot at one-segment bucket granularity). Tensor addresses
  /// are stable for the model's lifetime; training updates values in
  /// place.
  struct ParamCache {
    const nn::Tensor *attn_w = nullptr, *attn_b = nullptr, *attn_u = nullptr;
    const nn::Tensor *conv1_w = nullptr, *conv1_b = nullptr;
    const nn::Tensor *ch_w0 = nullptr, *ch_b0 = nullptr;
    const nn::Tensor *ch_w1 = nullptr, *ch_b1 = nullptr;
    const nn::Tensor *sp_w = nullptr, *sp_b = nullptr;
    const nn::Tensor *conv2_w = nullptr, *conv2_b = nullptr;
    const nn::Tensor *fc1_w = nullptr, *fc1_b = nullptr;
    const nn::Tensor *fc2_w = nullptr, *fc2_b = nullptr;
    const nn::Tensor *fc3_w = nullptr, *fc3_b = nullptr;
    bool ready = false;
  };

  const ParamCache& param_cache();
  void build_quant_cache();
  /// out[m,n] = act[m,k] x W + bias (+ReLU), dispatched on precision_.
  void dense_head(int m, int k, int n, const float* act, const nn::Tensor& w,
                  const nn::Tensor& b, const QuantWeights& qw, bool apply_relu,
                  float* out);
  void forward_bucket(const BatchItem* const* items, Prediction** out, int segs,
                      int padded_len);

  std::string name_;
  nn::ParamStore store_;
  util::Rng rng_;          // dropout randomness
  nn::NodePtr embedding_;
  std::unique_ptr<nn::TokenAttention> token_attention_;
  std::unique_ptr<nn::Conv1d> conv1_;
  std::unique_ptr<nn::Cbam> cbam_;
  std::unique_ptr<nn::Conv1d> conv2_;
  std::unique_ptr<nn::Dense> fc1_, fc2_, fc3_;
  std::vector<float> empty_weights_;
  std::vector<int> ids_scratch_;  // padded token ids, reused per forward
  QuantWeights qconv1_, qconv2_, qfc1_, qfc2_;
  ParamCache pcache_;
  BatchScratch scratch_;
  std::vector<std::pair<int, std::size_t>> bucket_order_;  // (padded len, idx)
  std::vector<const BatchItem*> bucket_items_;  // bucket assembly scratch
  std::vector<Prediction*> bucket_out_;
};

}  // namespace sevuldet::models
