#include "sevuldet/models/registry.hpp"

#include <stdexcept>

#include "sevuldet/models/gat_net.hpp"
#include "sevuldet/models/sevuldet_net.hpp"

namespace sevuldet::models {

const std::vector<std::string>& detector_backends() {
  static const std::vector<std::string> kBackends = {"cnn", "gat"};
  return kBackends;
}

bool valid_backend(const std::string& backend) {
  for (const auto& name : detector_backends()) {
    if (name == backend) return true;
  }
  return false;
}

std::unique_ptr<Detector> make_detector(const std::string& backend,
                                        ModelConfig config) {
  if (backend == "cnn") return std::make_unique<SeVulDetNet>(std::move(config));
  if (backend == "gat") return std::make_unique<GatNet>(std::move(config));
  std::string names;
  for (const auto& name : detector_backends()) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  throw std::invalid_argument("unknown detector backend '" + backend +
                              "' (expected one of: " + names + ")");
}

}  // namespace sevuldet::models
