// Common detector interface. Every model maps a token-id sequence to a
// vulnerability probability; training runs per-sample SGD/Adam on binary
// cross-entropy. The paper classifies with threshold 0.8 ("if this
// number is greater than 0.8, the output is flawed").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sevuldet/graph/gadget_graph.hpp"
#include "sevuldet/nn/kernels.hpp"
#include "sevuldet/nn/layers.hpp"
#include "sevuldet/nn/tensor.hpp"

namespace sevuldet::models {

struct ModelConfig {
  int vocab_size = 0;     // required
  int embed_dim = 30;     // Table IV: dimension 30
  float dropout = 0.2f;   // Table IV
  float threshold = 0.8f; // Section III-C
  /// 1 = binary vulnerable/clean (the paper's main setting). >1 enables
  /// multiclass vulnerability-type output (Fig. 2b "output vulnerability
  /// type"): class 0 is "benign", classes 1..N-1 are CWE types.
  int num_classes = 1;

  // SEVulDet CNN trunk
  int conv_channels = 32;
  int conv_kernel = 3;
  std::vector<int> spp_bins = {4, 2, 1};
  int attn_dim = 32;        // token-attention hidden size
  int cbam_reduction = 4;
  int dense1 = 256;         // paper's dense head 256 -> 64 -> 1
  int dense2 = 64;
  bool token_attention = true;   // ablation: CNN-TokenATT vs CNN
  bool multilayer_attention = true;  // ablation: CNN-MultiATT
  bool cbam_sequential = true;   // ablation: sequential vs parallel CBAM

  // BiRNN baselines
  int rnn_hidden = 30;
  int fixed_length = 50;  // time steps; tokens are truncated/padded to this

  // GAT backbone (the "gat" backend): edge-aware graph attention over
  // the gadget's PDG projection (GadgetGraph).
  int gat_layers = 2;           // message-passing rounds
  int gat_hidden = 32;          // per-node hidden width
  float gat_leaky_slope = 0.2f; // LeakyReLU slope on attention scores

  std::uint64_t seed = 42;
};

/// One eval-mode forward pass with its attention read-outs captured at
/// forward time. This is the unit the serve-daemon micro-batcher ships
/// between threads: the model's last_*_weights() accessors are only
/// valid until the next forward pass on that instance, so batched
/// inference must copy them out per item (a pure read-out — scores are
/// identical to calling predict()).
struct Prediction {
  float probability = 0.0f;
  std::vector<float> token_weights;    // α_i per input token (may be empty)
  std::vector<float> spatial_weights;  // CBAM Ms, filled only on request
};

/// Numeric precision of the eval-mode forward pass. fp32 is the exact
/// reference (batched == per-gadget bitwise). fp16 quantizes the dense
/// weight matrices and their input activations to binary16 before each
/// GEMM (fp32 accumulation); int8 uses per-output-channel symmetric
/// weight scales and per-row dynamic activation scales with int32
/// accumulation. Both quantized modes keep the attention blocks and the
/// final logit layer in fp32; training always runs fp32.
enum class Precision { kFp32, kFp16, kInt8 };

/// "fp32" / "fp16" / "int8".
const char* precision_name(Precision precision);
/// Parse "fp32" / "fp16" / "int8"; returns false on anything else.
bool parse_precision(const std::string& text, Precision* out);

/// One gadget in a predict_batch() call. `tokens` must outlive the call.
/// `graph` is the gadget's PDG projection for graph backends (may stay
/// null — sequence models ignore it, graph models fall back to a
/// single-node graph over the whole token stream).
struct BatchItem {
  const std::vector<int>* tokens = nullptr;
  bool capture_spatial = false;  // fill Prediction::spatial_weights
  const graph::GadgetGraph* graph = nullptr;
};

/// Abstract detector.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Logit for one token-id sequence; `train` enables dropout.
  virtual nn::NodePtr forward_logit(const std::vector<int>& tokens, bool train) = 0;

  /// Logit for one batch item. Sequence models ignore item.graph (the
  /// default delegates to forward_logit on the tokens); graph models
  /// override to consume it. Training and evaluation go through this
  /// seam so every backend sees the full sample.
  virtual nn::NodePtr forward_logit_item(const BatchItem& item, bool train) {
    return forward_logit(*item.tokens, train);
  }

  virtual const std::string& name() const = 0;
  virtual nn::ParamStore& params() = 0;
  const nn::ParamStore& params() const {
    return const_cast<Detector*>(this)->params();
  }

  /// Probability of "vulnerable" (eval mode): sigmoid of the logit for
  /// binary models, 1 - P(benign) for multiclass models.
  float predict(const std::vector<int>& tokens);

  /// True if predict() exceeds the configured threshold.
  bool is_vulnerable(const std::vector<int>& tokens);

  /// Multiclass: (argmax class id, its softmax probability). For binary
  /// models returns ({0,1}, predict()).
  std::pair<int, float> predict_class(const std::vector<int>& tokens);

  /// predict() over a full batch item (graph-aware). For items with no
  /// graph this is bit-identical to predict(*item.tokens).
  float predict_item(const BatchItem& item);

  /// predict() plus a copy of the attention read-outs taken immediately
  /// after the forward pass — the unit the serve batcher ships between
  /// threads (last_*_weights() is only valid until the instance's next
  /// forward). `capture_spatial` additionally copies the spatial map
  /// (explain requests only — it is the largest of the three). The
  /// probability is bit-identical to predict(tokens).
  Prediction predict_captured(const std::vector<int>& tokens,
                              bool capture_spatial = false);
  /// Same, through the graph-aware item seam.
  Prediction predict_captured_item(const BatchItem& item);

  /// Attention read-outs of the last eval forward pass, used by
  /// explain/report. The base returns empty vectors (models without an
  /// attention head have nothing to expose); attention backends
  /// override. Only valid until the next forward pass on this instance.
  virtual const std::vector<float>& last_token_weights() const;
  virtual const std::vector<float>& last_spatial_weights() const;

  /// Score `count` gadgets in one call, writing one Prediction per item.
  /// The base implementation is a loop over predict() — byte-identical
  /// to calling predict() per item, so callers never branch on model
  /// family. Models with a native batched engine (SeVulDetNet) override
  /// this with length-bucketed large-GEMM inference; their fp32 output
  /// is bitwise-identical to the loop.
  virtual void predict_batch(const BatchItem* items, std::size_t count,
                             Prediction* out);
  /// Convenience overload.
  std::vector<Prediction> predict_batch(const std::vector<BatchItem>& items);

  /// Select the eval-mode forward precision. Implementations that
  /// support quantized inference build their weight caches here (model
  /// load / CLI --precision call this once, before any scoring);
  /// others ignore everything but the bookkeeping and keep scoring in
  /// fp32. Clones inherit the precision of the model they were cloned
  /// from.
  virtual void set_precision(Precision precision) { precision_ = precision; }
  Precision precision() const { return precision_; }

  /// Deep copy with identical parameter values (and a fresh dropout
  /// RNG). A clone shares no mutable state with the original, so clones
  /// can run forward passes concurrently on different threads — the
  /// parallel evaluation/detection paths clone one model per worker.
  virtual std::unique_ptr<Detector> clone() const = 0;

  /// Bytes held by any recycled batched-inference scratch (capacity,
  /// not size). 0 for models without a batched engine.
  virtual std::size_t scratch_bytes() const { return 0; }

  /// GEMM problem shapes the batched forward would issue for roughly
  /// `rows_hint` stacked rows — fed to the load-time tile autotuner.
  /// Empty when the model has no batched GEMM path to tune.
  virtual std::vector<nn::kernels::GemmShape> batch_gemm_shapes(int rows_hint) const {
    (void)rows_hint;
    return {};
  }

  const ModelConfig& config() const { return config_; }

 protected:
  explicit Detector(ModelConfig config) : config_(std::move(config)) {}
  ModelConfig config_;
  Precision precision_ = Precision::kFp32;
};

/// Initialize an embedding-matrix parameter from pre-trained word2vec
/// vectors (rows beyond the trained vocabulary stay random).
void load_pretrained_embeddings(nn::ParamStore& store,
                                const std::string& param_name,
                                const nn::Tensor& vectors);

/// Copy every parameter tensor of `from` into the same-named parameter
/// of `to`. Throws if a name is missing or shapes differ (i.e. the
/// stores were built from different configs).
void copy_parameters(const nn::ParamStore& from, nn::ParamStore& to);

}  // namespace sevuldet::models
