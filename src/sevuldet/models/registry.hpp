// Backend registry: maps the user-facing backend name ("cnn", "gat") to
// a concrete Detector. Everything above the models layer — pipeline,
// trainer, scan, serve, CLI — selects a backend by name and then talks
// only to the Detector interface, so adding a backend means adding one
// registry entry, not touching the callers. The backend name is also
// persisted in v3 model files so a load rebuilds the right network.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sevuldet/models/model.hpp"

namespace sevuldet::models {

/// The canonical default backend (the paper's CNN trunk).
inline constexpr const char* kDefaultBackend = "cnn";

/// All registered backend names, in a fixed order ("cnn", "gat") — the
/// CLI help text and `report --compare` parse against this list.
const std::vector<std::string>& detector_backends();

/// True iff `backend` names a registered backend.
bool valid_backend(const std::string& backend);

/// Construct the named backend. Throws std::invalid_argument on an
/// unknown name (message lists the valid ones).
std::unique_ptr<Detector> make_detector(const std::string& backend,
                                        ModelConfig config);

}  // namespace sevuldet::models
