#include "sevuldet/models/gat_net.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sevuldet/util/trace.hpp"

namespace sevuldet::models {

GatNet::GatNet(ModelConfig config)
    : Detector(std::move(config)), rng_(config_.seed ^ 0x6A7ULL) {
  if (config_.vocab_size <= 0) {
    throw std::invalid_argument("GatNet: vocab_size must be set");
  }
  if (config_.gat_layers < 1) {
    throw std::invalid_argument("GatNet: gat_layers must be >= 1");
  }
  name_ = "SEVulDet(GAT)";

  util::Rng init_rng(config_.seed);
  embedding_ = store_.add(
      "embedding",
      nn::Tensor::uniform(config_.vocab_size, config_.embed_dim, init_rng, 0.1f));

  const int hidden = config_.gat_hidden;
  layers_.resize(static_cast<std::size_t>(config_.gat_layers));
  for (int l = 0; l < config_.gat_layers; ++l) {
    const std::string prefix = "gat" + std::to_string(l);
    const int in = l == 0 ? config_.embed_dim : hidden;
    GatLayer& layer = layers_[static_cast<std::size_t>(l)];
    layer.w = std::make_unique<nn::Dense>(store_, prefix + "_w", in, hidden,
                                          init_rng);
    layer.a_src =
        store_.add(prefix + "_asrc", nn::xavier_uniform(hidden, 1, init_rng));
    layer.a_dst =
        store_.add(prefix + "_adst", nn::xavier_uniform(hidden, 1, init_rng));
    // One learned bias per edge type, plus one for the self-loops the
    // forward injects (graph/gadget_graph.hpp never stores them).
    layer.type_bias = store_.add(
        prefix + "_type",
        nn::Tensor::uniform(graph::kGadgetEdgeTypes + 1, 1, init_rng, 0.1f));
  }

  node_attention_ = std::make_unique<nn::TokenAttention>(
      store_, "node_attn", hidden, config_.attn_dim, init_rng);
  fc1_ = std::make_unique<nn::Dense>(store_, "fc1", 2 * hidden, config_.dense2,
                                     init_rng);
  fc2_ = std::make_unique<nn::Dense>(store_, "fc2", config_.dense2,
                                     std::max(1, config_.num_classes), init_rng);
}

void GatNet::build_edge_arrays(const graph::GadgetGraph* graph, int nodes) {
  edge_src_.clear();
  edge_dst_.clear();
  edge_type_.clear();
  seg_offsets_.assign(1, 0);
  std::size_t e = 0;
  for (int d = 0; d < nodes; ++d) {
    if (graph != nullptr) {
      // Stored edges are sorted by (to, from, type), so each node's
      // in-neighborhood is one contiguous run.
      while (e < graph->edges.size() &&
             static_cast<int>(graph->edges[e].to) == d) {
        edge_src_.push_back(static_cast<int>(graph->edges[e].from));
        edge_dst_.push_back(d);
        edge_type_.push_back(static_cast<int>(graph->edges[e].type));
        ++e;
      }
    }
    // The self-loop closes every segment: no neighborhood is empty, and
    // edge_dst_ stays ascending (the scatter_sum_rows contract).
    edge_src_.push_back(d);
    edge_dst_.push_back(d);
    edge_type_.push_back(graph::kGadgetEdgeTypes);
    seg_offsets_.push_back(static_cast<int>(edge_src_.size()));
  }
}

nn::NodePtr GatNet::forward_graph(const std::vector<int>& tokens,
                                  const std::vector<int>& node_offsets,
                                  const graph::GadgetGraph* graph, bool train) {
  util::trace::ScopedSpan span("gat.forward");
  const int nodes = static_cast<int>(node_offsets.size()) - 1;
  build_edge_arrays(graph, nodes);

  nn::NodePtr x = nn::embedding(embedding_, tokens);  // [T, E]
  x = nn::dropout(x, config_.dropout, rng_, train);
  nn::NodePtr h = nn::segment_mean_rows(x, node_offsets);  // [N, E]

  for (const GatLayer& layer : layers_) {
    nn::NodePtr hw = layer.w->forward(h);                   // [N, H]
    nn::NodePtr hs = nn::gather_rows(hw, edge_src_);        // [Ed, H]
    nn::NodePtr hd = nn::gather_rows(hw, edge_dst_);        // [Ed, H]
    nn::NodePtr score =
        nn::add(nn::add(nn::matmul(hs, layer.a_src),        // [Ed, 1]
                        nn::matmul(hd, layer.a_dst)),
                nn::embedding(layer.type_bias, edge_type_));
    score = nn::leaky_relu(score, config_.gat_leaky_slope);
    nn::NodePtr alpha = nn::segment_softmax_col(score, seg_offsets_);
    nn::NodePtr msg = nn::mul_col_broadcast(hs, alpha);     // [Ed, H]
    h = nn::relu(nn::scatter_sum_rows(msg, edge_dst_, nodes));
  }

  nn::NodePtr pooled = node_attention_->forward(h);  // [N, H], α captured

  // Expand the node-pool α to one weight per token: every token of a
  // node inherits the node's weight, so the sequence-indexed provenance
  // path (top tokens, line attributions) reads it unchanged.
  const std::vector<float>& node_weights = node_attention_->last_weights();
  last_token_weights_.assign(tokens.size(), 0.0f);
  for (int s = 0; s < nodes; ++s) {
    const int begin = node_offsets[static_cast<std::size_t>(s)];
    const int end = node_offsets[static_cast<std::size_t>(s) + 1];
    for (int t = begin; t < end; ++t) {
      last_token_weights_[static_cast<std::size_t>(t)] =
          node_weights[static_cast<std::size_t>(s)];
    }
  }

  nn::NodePtr readout = nn::concat_cols(nn::reduce_rows_mean(pooled),
                                        nn::reduce_rows_max(pooled));
  nn::NodePtr z = nn::relu(fc1_->forward(readout));
  z = nn::dropout(z, config_.dropout, rng_, train);
  return fc2_->forward(z);  // [1, max(1, num_classes)] logits
}

nn::NodePtr GatNet::forward_logit(const std::vector<int>& tokens, bool train) {
  // No structure available: the whole stream is one node (with its
  // self-loop) — attention degenerates to the dense head over the mean
  // embedding, which keeps legacy token-only callers functional.
  static const std::vector<int> kPad{0};
  const std::vector<int>& ids = tokens.empty() ? kPad : tokens;
  offsets_scratch_.assign(1, 0);
  offsets_scratch_.push_back(static_cast<int>(ids.size()));
  return forward_graph(ids, offsets_scratch_, nullptr, train);
}

nn::NodePtr GatNet::forward_logit_item(const BatchItem& item, bool train) {
  const std::vector<int>& tokens = *item.tokens;
  const graph::GadgetGraph* graph = item.graph;
  // Accept the graph only when it is structurally consistent with the
  // token stream (legacy corpora and ad-hoc callers ship none).
  if (graph == nullptr || graph->empty() || graph->node_offsets.front() != 0 ||
      graph->node_offsets.back() != tokens.size()) {
    return forward_logit(tokens, train);
  }
  offsets_scratch_.assign(graph->node_offsets.begin(),
                          graph->node_offsets.end());
  return forward_graph(tokens, offsets_scratch_, graph, train);
}

void GatNet::predict_batch(const BatchItem* items, std::size_t count,
                           Prediction* out) {
  util::trace::ScopedSpan span("gat.batch");
  // Group by ascending node count so the shared arena's high-water mark
  // grows once instead of thrashing between small and large graphs. The
  // per-item math is untouched (own GraphScope, deterministic eval
  // forward), so results are bitwise-identical to the base loop.
  bucket_order_.clear();
  bucket_order_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const graph::GadgetGraph* g = items[i].graph;
    const int nodes = g != nullptr && !g->empty() ? g->node_count() : 1;
    bucket_order_.emplace_back(nodes, i);
  }
  std::sort(bucket_order_.begin(), bucket_order_.end());
  for (const auto& [nodes, i] : bucket_order_) {
    (void)nodes;
    nn::GraphScope scope(batch_graph_);
    out[i].probability = predict_item(items[i]);
    out[i].token_weights = last_token_weights();
    out[i].spatial_weights.clear();  // no spatial attention on this backend
  }
}

std::unique_ptr<GatNet> GatNet::clone_gat() const {
  auto copy = std::make_unique<GatNet>(config_);
  copy_parameters(store_, copy->store_);
  copy->set_precision(precision_);
  return copy;
}

}  // namespace sevuldet::models
