#include "sevuldet/models/sevuldet_net.hpp"

#include <stdexcept>

namespace sevuldet::models {

namespace {
int spp_total_bins(const std::vector<int>& bins) {
  int total = 0;
  for (int b : bins) total += b;
  return total;
}
}  // namespace

SeVulDetNet::SeVulDetNet(ModelConfig config)
    : Detector(std::move(config)), rng_(config_.seed ^ 0xD1CEULL) {
  if (config_.vocab_size <= 0) {
    throw std::invalid_argument("SeVulDetNet: vocab_size must be set");
  }
  if (config_.multilayer_attention && !config_.token_attention) {
    // The paper's CNN-MultiATT includes token attention; keep the
    // ablation lattice consistent: MultiATT implies TokenATT.
    config_.token_attention = true;
  }
  name_ = config_.multilayer_attention ? "SEVulDet(CNN-MultiATT)"
          : config_.token_attention    ? "CNN-TokenATT"
                                       : "CNN";

  util::Rng init_rng(config_.seed);
  embedding_ = store_.add(
      "embedding",
      nn::Tensor::uniform(config_.vocab_size, config_.embed_dim, init_rng, 0.1f));
  if (config_.token_attention) {
    token_attention_ = std::make_unique<nn::TokenAttention>(
        store_, "token_attn", config_.embed_dim, config_.attn_dim, init_rng);
  }
  conv1_ = std::make_unique<nn::Conv1d>(store_, "conv1", config_.embed_dim,
                                        config_.conv_channels, config_.conv_kernel,
                                        config_.conv_kernel / 2, init_rng);
  if (config_.multilayer_attention) {
    cbam_ = std::make_unique<nn::Cbam>(store_, "cbam", config_.conv_channels,
                                       config_.cbam_reduction, init_rng,
                                       config_.cbam_sequential);
  }
  conv2_ = std::make_unique<nn::Conv1d>(store_, "conv2", config_.conv_channels,
                                        config_.conv_channels, config_.conv_kernel,
                                        config_.conv_kernel / 2, init_rng);
  const int spp_out = spp_total_bins(config_.spp_bins) * config_.conv_channels;
  fc1_ = std::make_unique<nn::Dense>(store_, "fc1", spp_out, config_.dense1, init_rng);
  fc2_ = std::make_unique<nn::Dense>(store_, "fc2", config_.dense1, config_.dense2,
                                     init_rng);
  fc3_ = std::make_unique<nn::Dense>(store_, "fc3", config_.dense2,
                                     std::max(1, config_.num_classes), init_rng);
}

nn::NodePtr SeVulDetNet::forward_logit(const std::vector<int>& tokens, bool train) {
  // Flexible length: no truncation, no padding — the SPP layer absorbs
  // any T >= conv kernel; ultra-short inputs are padded up to the kernel.
  std::vector<int>& ids = ids_scratch_;
  ids.assign(tokens.begin(), tokens.end());
  while (static_cast<int>(ids.size()) < config_.conv_kernel) ids.push_back(0);

  nn::NodePtr x = nn::embedding(embedding_, ids);           // [T, E]
  if (token_attention_) x = token_attention_->forward(x);   // Step IV
  x = nn::relu(conv1_->forward(x));                         // [T, C]
  if (cbam_) x = cbam_->forward(x);                         // Step V attention
  x = nn::relu(conv2_->forward(x));
  x = nn::spp_max(x, config_.spp_bins);                     // [1, 7C]
  x = nn::relu(fc1_->forward(x));
  x = nn::dropout(x, config_.dropout, rng_, train);
  x = nn::relu(fc2_->forward(x));
  return fc3_->forward(x);                                  // [1, 1] logit
}

Prediction SeVulDetNet::predict_captured(const std::vector<int>& tokens,
                                         bool capture_spatial) {
  Prediction out;
  out.probability = predict(tokens);
  out.token_weights = last_token_weights();
  if (capture_spatial) out.spatial_weights = last_spatial_weights();
  return out;
}

const std::vector<float>& SeVulDetNet::last_token_weights() const {
  return token_attention_ ? token_attention_->last_weights() : empty_weights_;
}

const std::vector<float>& SeVulDetNet::last_spatial_weights() const {
  return cbam_ ? cbam_->last_spatial_weights() : empty_weights_;
}

std::unique_ptr<SeVulDetNet> SeVulDetNet::clone_net() const {
  auto copy = std::make_unique<SeVulDetNet>(config_);
  copy_parameters(store_, copy->store_);
  return copy;
}

}  // namespace sevuldet::models
