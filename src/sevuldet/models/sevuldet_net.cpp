#include "sevuldet/models/sevuldet_net.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sevuldet/util/metrics.hpp"

namespace sevuldet::models {

namespace {
int spp_total_bins(const std::vector<int>& bins) {
  int total = 0;
  for (int b : bins) total += b;
  return total;
}
}  // namespace

SeVulDetNet::SeVulDetNet(ModelConfig config)
    : Detector(std::move(config)), rng_(config_.seed ^ 0xD1CEULL) {
  if (config_.vocab_size <= 0) {
    throw std::invalid_argument("SeVulDetNet: vocab_size must be set");
  }
  if (config_.multilayer_attention && !config_.token_attention) {
    // The paper's CNN-MultiATT includes token attention; keep the
    // ablation lattice consistent: MultiATT implies TokenATT.
    config_.token_attention = true;
  }
  name_ = config_.multilayer_attention ? "SEVulDet(CNN-MultiATT)"
          : config_.token_attention    ? "CNN-TokenATT"
                                       : "CNN";

  util::Rng init_rng(config_.seed);
  embedding_ = store_.add(
      "embedding",
      nn::Tensor::uniform(config_.vocab_size, config_.embed_dim, init_rng, 0.1f));
  if (config_.token_attention) {
    token_attention_ = std::make_unique<nn::TokenAttention>(
        store_, "token_attn", config_.embed_dim, config_.attn_dim, init_rng);
  }
  conv1_ = std::make_unique<nn::Conv1d>(store_, "conv1", config_.embed_dim,
                                        config_.conv_channels, config_.conv_kernel,
                                        config_.conv_kernel / 2, init_rng);
  if (config_.multilayer_attention) {
    cbam_ = std::make_unique<nn::Cbam>(store_, "cbam", config_.conv_channels,
                                       config_.cbam_reduction, init_rng,
                                       config_.cbam_sequential);
  }
  conv2_ = std::make_unique<nn::Conv1d>(store_, "conv2", config_.conv_channels,
                                        config_.conv_channels, config_.conv_kernel,
                                        config_.conv_kernel / 2, init_rng);
  const int spp_out = spp_total_bins(config_.spp_bins) * config_.conv_channels;
  fc1_ = std::make_unique<nn::Dense>(store_, "fc1", spp_out, config_.dense1, init_rng);
  fc2_ = std::make_unique<nn::Dense>(store_, "fc2", config_.dense1, config_.dense2,
                                     init_rng);
  fc3_ = std::make_unique<nn::Dense>(store_, "fc3", config_.dense2,
                                     std::max(1, config_.num_classes), init_rng);
}

nn::NodePtr SeVulDetNet::forward_logit(const std::vector<int>& tokens, bool train) {
  // Flexible length: no truncation, no padding — the SPP layer absorbs
  // any T >= conv kernel; ultra-short inputs are padded up to the kernel.
  std::vector<int>& ids = ids_scratch_;
  ids.assign(tokens.begin(), tokens.end());
  while (static_cast<int>(ids.size()) < config_.conv_kernel) ids.push_back(0);

  nn::NodePtr x = nn::embedding(embedding_, ids);           // [T, E]
  if (token_attention_) x = token_attention_->forward(x);   // Step IV
  x = nn::relu(conv1_->forward(x));                         // [T, C]
  if (cbam_) x = cbam_->forward(x);                         // Step V attention
  x = nn::relu(conv2_->forward(x));
  x = nn::spp_max(x, config_.spp_bins);                     // [1, 7C]
  x = nn::relu(fc1_->forward(x));
  x = nn::dropout(x, config_.dropout, rng_, train);
  x = nn::relu(fc2_->forward(x));
  return fc3_->forward(x);                                  // [1, 1] logit
}

const std::vector<float>& SeVulDetNet::last_token_weights() const {
  return token_attention_ ? token_attention_->last_weights() : empty_weights_;
}

const std::vector<float>& SeVulDetNet::last_spatial_weights() const {
  return cbam_ ? cbam_->last_spatial_weights() : empty_weights_;
}

std::unique_ptr<SeVulDetNet> SeVulDetNet::clone_net() const {
  auto copy = std::make_unique<SeVulDetNet>(config_);
  copy_parameters(store_, copy->store_);
  copy->set_precision(precision_);  // rebuilds quant caches from the copy
  return copy;
}

// ---------------------------------------------------------------------------
// Batched inference engine.
//
// The fp32 batched path must be BITWISE-identical to the per-gadget
// autograd forward, so every stage below replicates the exact
// floating-point chain of the corresponding nn:: op (same kernels, same
// reduction order, same clamp sequence). Stacking S same-length gadgets
// into one [S*T, *] GEMM is safe because every GEMM row's accumulation
// chain is independent of m and of the installed cache tiles (see the
// determinism contract in nn/kernels.hpp).
// ---------------------------------------------------------------------------

namespace nk = nn::kernels;

void SeVulDetNet::set_precision(Precision precision) {
  precision_ = precision;
  if (precision == Precision::kFp32) {
    qconv1_ = QuantWeights{};
    qconv2_ = QuantWeights{};
    qfc1_ = QuantWeights{};
    qfc2_ = QuantWeights{};
  } else {
    build_quant_cache();
  }
}

const SeVulDetNet::ParamCache& SeVulDetNet::param_cache() {
  if (!pcache_.ready) {
    auto find = [this](const char* name) -> const nn::Tensor* {
      return &store_.find(name)->value;
    };
    if (token_attention_) {
      pcache_.attn_w = find("token_attn.w");
      pcache_.attn_b = find("token_attn.b");
      pcache_.attn_u = find("token_attn.u");
    }
    pcache_.conv1_w = find("conv1.w");
    pcache_.conv1_b = find("conv1.b");
    if (cbam_) {
      pcache_.ch_w0 = find("cbam.channel.w0");
      pcache_.ch_b0 = find("cbam.channel.b0");
      pcache_.ch_w1 = find("cbam.channel.w1");
      pcache_.ch_b1 = find("cbam.channel.b1");
      pcache_.sp_w = find("cbam.spatial.conv.w");
      pcache_.sp_b = find("cbam.spatial.conv.b");
    }
    pcache_.conv2_w = find("conv2.w");
    pcache_.conv2_b = find("conv2.b");
    pcache_.fc1_w = find("fc1.w");
    pcache_.fc1_b = find("fc1.b");
    pcache_.fc2_w = find("fc2.w");
    pcache_.fc2_b = find("fc2.b");
    pcache_.fc3_w = find("fc3.w");
    pcache_.fc3_b = find("fc3.b");
    pcache_.ready = true;
  }
  return pcache_;
}

void SeVulDetNet::build_quant_cache() {
  auto build = [this](const char* name, QuantWeights& qw) {
    const nn::Tensor& w = store_.find(name)->value;
    const int rows = w.rows(), cols = w.cols();
    qw.rows = rows;
    qw.cols = cols;
    qw.col_scale.assign(static_cast<std::size_t>(cols), 1.0f);
    qw.q.assign(static_cast<std::size_t>(rows) * cols, 0);
    for (int j = 0; j < cols; ++j) {
      float amax = 0.0f;
      for (int i = 0; i < rows; ++i) amax = std::max(amax, std::fabs(w.at(i, j)));
      qw.col_scale[static_cast<std::size_t>(j)] = amax > 0.0f ? amax / 127.0f : 1.0f;
    }
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        const float inv = 1.0f / qw.col_scale[static_cast<std::size_t>(j)];
        long v = std::lrintf(w.at(i, j) * inv);
        v = std::min(127L, std::max(-127L, v));
        qw.q[static_cast<std::size_t>(i) * cols + j] = static_cast<std::int8_t>(v);
      }
    }
    qw.half.resize(static_cast<std::size_t>(rows) * cols);
    nk::float_to_half_buffer(qw.half.size(), w.data(), qw.half.data());
  };
  build("conv1.w", qconv1_);
  build("conv2.w", qconv2_);
  build("fc1.w", qfc1_);
  build("fc2.w", qfc2_);
}

void SeVulDetNet::dense_head(int m, int k, int n, const float* act,
                             const nn::Tensor& w, const nn::Tensor& b,
                             const QuantWeights& qw, bool apply_relu,
                             float* out) {
  BatchScratch& s = scratch_;
  if (precision_ == Precision::kInt8 && !qw.q.empty()) {
    // Per-row dynamic activation scale; int32 accumulation is exact.
    s.qa.resize(static_cast<std::size_t>(m) * k);
    s.row_scale.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      const float* row = act + static_cast<std::size_t>(i) * k;
      float amax = 0.0f;
      for (int p = 0; p < k; ++p) amax = std::max(amax, std::fabs(row[p]));
      const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
      s.row_scale[static_cast<std::size_t>(i)] = scale;
      const float inv = 1.0f / scale;
      std::int8_t* qrow = s.qa.data() + static_cast<std::size_t>(i) * k;
      for (int p = 0; p < k; ++p) {
        long v = std::lrintf(row[p] * inv);
        qrow[p] = static_cast<std::int8_t>(std::min(127L, std::max(-127L, v)));
      }
    }
    s.acc.assign(static_cast<std::size_t>(m) * n, 0);
    nk::gemm_s8(m, n, k, s.qa.data(), qw.q.data(), s.acc.data());
    for (int i = 0; i < m; ++i) {
      const float sa = s.row_scale[static_cast<std::size_t>(i)];
      for (int j = 0; j < n; ++j) {
        const std::size_t idx = static_cast<std::size_t>(i) * n + j;
        out[idx] = static_cast<float>(s.acc[idx]) *
                   (sa * qw.col_scale[static_cast<std::size_t>(j)]);
      }
    }
  } else if (precision_ == Precision::kFp16 && !qw.half.empty()) {
    s.ha.resize(static_cast<std::size_t>(m) * k);
    nk::float_to_half_buffer(s.ha.size(), act, s.ha.data());
    std::fill(out, out + static_cast<std::size_t>(m) * n, 0.0f);
    nk::gemm_f16(m, n, k, s.ha.data(), qw.half.data(), out);
  } else {
    std::fill(out, out + static_cast<std::size_t>(m) * n, 0.0f);
    nk::gemm(m, n, k, act, w.data(), out);
  }
  const float* bias = b.data();
  for (int i = 0; i < m; ++i) {
    float* row = out + static_cast<std::size_t>(i) * n;
    nk::add_inplace(static_cast<std::size_t>(n), bias, row);
    if (apply_relu) {
      for (int j = 0; j < n; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
    }
  }
}

void SeVulDetNet::forward_bucket(const BatchItem* const* items,
                                 Prediction** out, int segs, int padded_len) {
  BatchScratch& s = scratch_;
  const ParamCache& pc = param_cache();
  const int t0 = padded_len;
  const int e = config_.embed_dim;
  const int ch = config_.conv_channels;
  const int kk = config_.conv_kernel;
  const int pad = kk / 2;
  const int t1 = t0 + 2 * pad - kk + 1;  // conv1 output rows per segment
  const int t2 = t1 + 2 * pad - kk + 1;  // conv2 output rows per segment
  if (t1 < 1 || t2 < 1) {
    throw std::invalid_argument("im2row: sequence shorter than kernel");
  }
  const int rows0 = segs * t0;
  const int rows1 = segs * t1;
  const int rows2 = segs * t2;

  // Embedding gather [rows0, e] (same padding rule as forward_logit).
  s.x.resize(static_cast<std::size_t>(rows0) * e);
  const nn::Tensor& table = embedding_->value;
  for (int sg = 0; sg < segs; ++sg) {
    const std::vector<int>& tokens = *items[sg]->tokens;
    const int len = static_cast<int>(tokens.size());
    float* xs = s.x.data() + static_cast<std::size_t>(sg) * t0 * e;
    for (int i = 0; i < t0; ++i) {
      const int id = i < len ? tokens[static_cast<std::size_t>(i)] : 0;
      if (id < 0 || id >= table.rows()) {
        throw std::out_of_range("embedding: id out of range");
      }
      nk::copy(static_cast<std::size_t>(e),
               table.data() + static_cast<std::size_t>(id) * e,
               xs + static_cast<std::size_t>(i) * e);
    }
  }

  // Token attention (eqs. 1-4): one stacked GEMM for u and for the
  // scores; softmax + alpha capture + alpha*T scaling per segment.
  if (token_attention_) {
    const nn::Tensor& ww = *pc.attn_w;  // [e, a]
    const nn::Tensor& bw = *pc.attn_b;  // [1, a]
    const nn::Tensor& uw = *pc.attn_u;  // [a, 1]
    const int a = ww.cols();
    s.attn_u.assign(static_cast<std::size_t>(rows0) * a, 0.0f);
    nk::gemm(rows0, a, e, s.x.data(), ww.data(), s.attn_u.data());
    for (int i = 0; i < rows0; ++i) {
      float* row = s.attn_u.data() + static_cast<std::size_t>(i) * a;
      nk::add_inplace(static_cast<std::size_t>(a), bw.data(), row);
      for (int j = 0; j < a; ++j) row[j] = std::tanh(row[j]);
    }
    s.attn_scores.assign(static_cast<std::size_t>(rows0), 0.0f);
    nk::gemm(rows0, 1, a, s.attn_u.data(), uw.data(), s.attn_scores.data());
    s.alpha.resize(static_cast<std::size_t>(rows0));
    const float tf = static_cast<float>(t0);
    for (int sg = 0; sg < segs; ++sg) {
      const float* sc = s.attn_scores.data() + static_cast<std::size_t>(sg) * t0;
      float* al = s.alpha.data() + static_cast<std::size_t>(sg) * t0;
      float max_v = sc[0];
      for (int i = 1; i < t0; ++i) max_v = std::max(max_v, sc[i]);
      float sum = 0.0f;
      for (int i = 0; i < t0; ++i) {
        al[i] = std::exp(sc[i] - max_v);
        sum += al[i];
      }
      for (int i = 0; i < t0; ++i) al[i] /= sum;
      out[sg]->token_weights.assign(al, al + t0);  // pre-scale, as the layer does
      float* xs = s.x.data() + static_cast<std::size_t>(sg) * t0 * e;
      for (int i = 0; i < t0; ++i) {
        const float sa = al[i] * tf;
        float* xr = xs + static_cast<std::size_t>(i) * e;
        for (int j = 0; j < e; ++j) xr[j] *= sa;
      }
    }
  } else {
    for (int sg = 0; sg < segs; ++sg) out[sg]->token_weights.clear();
  }

  // conv1 = relu(im2row * W + b), quantizable.
  const int k1 = kk * e;
  s.im1.assign(static_cast<std::size_t>(rows1) * k1, 0.0f);
  for (int sg = 0; sg < segs; ++sg) {
    const float* xs = s.x.data() + static_cast<std::size_t>(sg) * t0 * e;
    float* os = s.im1.data() + static_cast<std::size_t>(sg) * t1 * k1;
    for (int i = 0; i < t1; ++i) {
      for (int k2 = 0; k2 < kk; ++k2) {
        const int src = i + k2 - pad;
        if (src < 0 || src >= t0) continue;  // zero padding
        nk::copy(static_cast<std::size_t>(e),
                 xs + static_cast<std::size_t>(src) * e,
                 os + static_cast<std::size_t>(i) * k1 +
                     static_cast<std::size_t>(k2) * e);
      }
    }
  }
  s.f1.resize(static_cast<std::size_t>(rows1) * ch);
  dense_head(rows1, k1, ch, s.im1.data(), *pc.conv1_w, *pc.conv1_b, qconv1_,
             /*apply_relu=*/true, s.f1.data());

  // CBAM (eqs. 5-8), always fp32.
  const float* conv2_src = s.f1.data();
  if (cbam_) {
    // Channel attention: per-segment avg/max rows -> [segs, ch] through
    // the shared MLP as stacked GEMMs.
    const nn::Tensor& w0 = *pc.ch_w0;  // [ch, mid]
    const nn::Tensor& b0 = *pc.ch_b0;
    const nn::Tensor& w1 = *pc.ch_w1;  // [mid, ch]
    const nn::Tensor& b1 = *pc.ch_b1;
    const int mid = w0.cols();
    s.ch_avg.assign(static_cast<std::size_t>(segs) * ch, 0.0f);
    s.ch_max.resize(static_cast<std::size_t>(segs) * ch);
    for (int sg = 0; sg < segs; ++sg) {
      const float* fs = s.f1.data() + static_cast<std::size_t>(sg) * t1 * ch;
      float* avg = s.ch_avg.data() + static_cast<std::size_t>(sg) * ch;
      nk::col_sum_add(t1, ch, fs, avg);
      for (int j = 0; j < ch; ++j) avg[j] /= static_cast<float>(t1);
      float* mx = s.ch_max.data() + static_cast<std::size_t>(sg) * ch;
      nk::copy(static_cast<std::size_t>(ch), fs, mx);
      for (int i = 1; i < t1; ++i) {
        const float* fr = fs + static_cast<std::size_t>(i) * ch;
        for (int j = 0; j < ch; ++j) {
          if (fr[j] > mx[j]) mx[j] = fr[j];
        }
      }
    }
    auto mlp = [&](const std::vector<float>& in, std::vector<float>& out_v) {
      s.ch_mid.assign(static_cast<std::size_t>(segs) * mid, 0.0f);
      nk::gemm(segs, mid, ch, in.data(), w0.data(), s.ch_mid.data());
      for (int i = 0; i < segs; ++i) {
        float* row = s.ch_mid.data() + static_cast<std::size_t>(i) * mid;
        nk::add_inplace(static_cast<std::size_t>(mid), b0.data(), row);
        for (int j = 0; j < mid; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
      }
      out_v.assign(static_cast<std::size_t>(segs) * ch, 0.0f);
      nk::gemm(segs, ch, mid, s.ch_mid.data(), w1.data(), out_v.data());
      for (int i = 0; i < segs; ++i) {
        nk::add_inplace(static_cast<std::size_t>(ch), b1.data(),
                        out_v.data() + static_cast<std::size_t>(i) * ch);
      }
    };
    mlp(s.ch_avg, s.ch_mlp);  // avg branch
    mlp(s.ch_max, s.mc);      // max branch
    for (std::size_t i = 0; i < s.mc.size(); ++i) {
      s.mc[i] = 1.0f / (1.0f + std::exp(-(s.ch_mlp[i] + s.mc[i])));
    }
    // F' = F * Mc (row broadcast per segment).
    s.cb.resize(static_cast<std::size_t>(rows1) * ch);
    for (int sg = 0; sg < segs; ++sg) {
      const float* fs = s.f1.data() + static_cast<std::size_t>(sg) * t1 * ch;
      const float* mcr = s.mc.data() + static_cast<std::size_t>(sg) * ch;
      float* gs = s.cb.data() + static_cast<std::size_t>(sg) * t1 * ch;
      for (int i = 0; i < t1; ++i) {
        for (int j = 0; j < ch; ++j) {
          gs[static_cast<std::size_t>(i) * ch + j] =
              fs[static_cast<std::size_t>(i) * ch + j] * mcr[j];
        }
      }
    }

    // Spatial attention input: F' when sequential, F when parallel.
    const float* sp_src = config_.cbam_sequential ? s.cb.data() : s.f1.data();
    s.sp_in.resize(static_cast<std::size_t>(rows1) * 2);
    for (int i = 0; i < rows1; ++i) {
      const float* fr = sp_src + static_cast<std::size_t>(i) * ch;
      float acc = 0.0f;
      for (int j = 0; j < ch; ++j) acc += fr[j];
      // 0.0f + acc mirrors row_sum_add's accumulate-into-zeroed-output.
      s.sp_in[2 * static_cast<std::size_t>(i)] =
          (0.0f + acc) / static_cast<float>(ch);
      float best = fr[0];
      for (int j = 1; j < ch; ++j) {
        if (fr[j] > best) best = fr[j];
      }
      s.sp_in[2 * static_cast<std::size_t>(i) + 1] = best;
    }
    const nn::Tensor& sw = *pc.sp_w;  // [2k, 1]
    const nn::Tensor& sb = *pc.sp_b;  // [1, 1]
    const int ks = sw.rows() / 2;
    const int ps = ks / 2;
    const int ksc = ks * 2;
    if (t1 + 2 * ps - ks + 1 != t1) {
      throw std::invalid_argument("forward_bucket: spatial kernel must be odd");
    }
    s.sp_im.assign(static_cast<std::size_t>(rows1) * ksc, 0.0f);
    for (int sg = 0; sg < segs; ++sg) {
      const float* ss = s.sp_in.data() + static_cast<std::size_t>(sg) * t1 * 2;
      float* os = s.sp_im.data() + static_cast<std::size_t>(sg) * t1 * ksc;
      for (int i = 0; i < t1; ++i) {
        for (int k2 = 0; k2 < ks; ++k2) {
          const int src = i + k2 - ps;
          if (src < 0 || src >= t1) continue;
          nk::copy(2, ss + static_cast<std::size_t>(src) * 2,
                   os + static_cast<std::size_t>(i) * ksc +
                       static_cast<std::size_t>(k2) * 2);
        }
      }
    }
    s.ms.assign(static_cast<std::size_t>(rows1), 0.0f);
    nk::gemm(rows1, 1, ksc, s.sp_im.data(), sw.data(), s.ms.data());
    const float sbias = sb.at(0, 0);
    for (int i = 0; i < rows1; ++i) {
      s.ms[static_cast<std::size_t>(i)] =
          1.0f / (1.0f + std::exp(-(s.ms[static_cast<std::size_t>(i)] + sbias)));
    }
    for (int sg = 0; sg < segs; ++sg) {
      if (items[sg]->capture_spatial) {
        const float* msr = s.ms.data() + static_cast<std::size_t>(sg) * t1;
        out[sg]->spatial_weights.assign(msr, msr + t1);
      } else {
        out[sg]->spatial_weights.clear();
      }
    }
    s.cb2.resize(static_cast<std::size_t>(rows1) * ch);
    if (config_.cbam_sequential) {
      // F'' = F' * Ms (col broadcast).
      for (int i = 0; i < rows1; ++i) {
        const float m = s.ms[static_cast<std::size_t>(i)];
        for (int j = 0; j < ch; ++j) {
          s.cb2[static_cast<std::size_t>(i) * ch + j] =
              s.cb[static_cast<std::size_t>(i) * ch + j] * m;
        }
      }
    } else {
      // 0.5 * (channel branch + spatial branch).
      for (int i = 0; i < rows1; ++i) {
        const float m = s.ms[static_cast<std::size_t>(i)];
        for (int j = 0; j < ch; ++j) {
          const std::size_t idx = static_cast<std::size_t>(i) * ch + j;
          s.cb2[idx] = (s.cb[idx] + s.f1[idx] * m) * 0.5f;
        }
      }
    }
    conv2_src = s.cb2.data();
  } else {
    for (int sg = 0; sg < segs; ++sg) out[sg]->spatial_weights.clear();
  }

  // conv2 = relu(im2row * W + b), quantizable.
  const int k2c = kk * ch;
  s.im2.assign(static_cast<std::size_t>(rows2) * k2c, 0.0f);
  for (int sg = 0; sg < segs; ++sg) {
    const float* fs = conv2_src + static_cast<std::size_t>(sg) * t1 * ch;
    float* os = s.im2.data() + static_cast<std::size_t>(sg) * t2 * k2c;
    for (int i = 0; i < t2; ++i) {
      for (int k2 = 0; k2 < kk; ++k2) {
        const int src = i + k2 - pad;
        if (src < 0 || src >= t1) continue;
        nk::copy(static_cast<std::size_t>(ch),
                 fs + static_cast<std::size_t>(src) * ch,
                 os + static_cast<std::size_t>(i) * k2c +
                     static_cast<std::size_t>(k2) * ch);
      }
    }
  }
  s.f2.resize(static_cast<std::size_t>(rows2) * ch);
  dense_head(rows2, k2c, ch, s.im2.data(), *pc.conv2_w, *pc.conv2_b, qconv2_,
             /*apply_relu=*/true, s.f2.data());

  // SPP per segment -> pooled [segs, spp_out] (exact spp_max clamps).
  const int spp_out = spp_total_bins(config_.spp_bins) * ch;
  s.pooled.resize(static_cast<std::size_t>(segs) * spp_out);
  for (int sg = 0; sg < segs; ++sg) {
    const float* fs = s.f2.data() + static_cast<std::size_t>(sg) * t2 * ch;
    float* pr = s.pooled.data() + static_cast<std::size_t>(sg) * spp_out;
    int bin_offset = 0;
    for (int nb : config_.spp_bins) {
      for (int b = 0; b < nb; ++b) {
        int start = (b * t2) / nb;
        int end = ((b + 1) * t2 + nb - 1) / nb;  // ceil
        if (end <= start) end = start + 1;
        if (start >= t2) start = t2 - 1;
        if (end > t2) end = t2;
        for (int j = 0; j < ch; ++j) {
          float best = fs[static_cast<std::size_t>(start) * ch + j];
          for (int i = start + 1; i < end; ++i) {
            const float v = fs[static_cast<std::size_t>(i) * ch + j];
            if (v > best) best = v;
          }
          pr[static_cast<std::size_t>(bin_offset + b) * ch + j] = best;
        }
      }
      bin_offset += nb;
    }
  }

  // FC head: fc1/fc2 quantizable + ReLU (dropout is identity in eval),
  // fc3 always fp32 (the logit layer stays exact).
  s.h1.resize(static_cast<std::size_t>(segs) * config_.dense1);
  dense_head(segs, spp_out, config_.dense1, s.pooled.data(), *pc.fc1_w,
             *pc.fc1_b, qfc1_, /*apply_relu=*/true, s.h1.data());
  s.h2.resize(static_cast<std::size_t>(segs) * config_.dense2);
  dense_head(segs, config_.dense1, config_.dense2, s.h1.data(), *pc.fc2_w,
             *pc.fc2_b, qfc2_, /*apply_relu=*/true, s.h2.data());
  const int numout = std::max(1, config_.num_classes);
  s.logits.assign(static_cast<std::size_t>(segs) * numout, 0.0f);
  nk::gemm(segs, numout, config_.dense2, s.h2.data(), pc.fc3_w->data(),
           s.logits.data());
  const nn::Tensor& b3 = *pc.fc3_b;
  for (int i = 0; i < segs; ++i) {
    float* row = s.logits.data() + static_cast<std::size_t>(i) * numout;
    nk::add_inplace(static_cast<std::size_t>(numout), b3.data(), row);
    if (config_.num_classes > 1) {
      float max_v = row[0];
      for (int j = 1; j < numout; ++j) max_v = std::max(max_v, row[j]);
      float sum = 0.0f;
      float p0 = 0.0f;
      for (int j = 0; j < numout; ++j) {
        const float v = std::exp(row[j] - max_v);
        if (j == 0) p0 = v;
        sum += v;
      }
      out[i]->probability = 1.0f - p0 / sum;
    } else {
      out[i]->probability = 1.0f / (1.0f + std::exp(-row[0]));
    }
  }
}

void SeVulDetNet::predict_batch(const BatchItem* items, std::size_t count,
                                Prediction* out) {
  if (count == 0) return;
  util::metrics::counter_add("nn.predict_batch.calls");
  util::metrics::counter_add("nn.predict_batch.gadgets",
                             static_cast<long long>(count));
  // Group by padded length: stable order inside a bucket, ascending
  // length across buckets — deterministic regardless of input order.
  // The original index is the pair's second member, so plain in-place
  // sort on (len, idx) is stable by construction (stable_sort would
  // heap-allocate a temp buffer every call).
  bucket_order_.clear();
  bucket_order_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int len = std::max(static_cast<int>(items[i].tokens->size()),
                             config_.conv_kernel);
    bucket_order_.emplace_back(len, i);
  }
  std::sort(bucket_order_.begin(), bucket_order_.end());
  std::size_t start = 0;
  while (start < bucket_order_.size()) {
    const int len = bucket_order_[start].first;
    std::size_t stop = start;
    while (stop < bucket_order_.size() && bucket_order_[stop].first == len) {
      ++stop;
    }
    bucket_items_.clear();
    bucket_out_.clear();
    for (std::size_t i = start; i < stop; ++i) {
      bucket_items_.push_back(&items[bucket_order_[i].second]);
      bucket_out_.push_back(&out[bucket_order_[i].second]);
    }
    forward_bucket(bucket_items_.data(), bucket_out_.data(),
                   static_cast<int>(bucket_items_.size()), len);
    start = stop;
  }
}

std::size_t SeVulDetNet::scratch_bytes() const {
  const BatchScratch& s = scratch_;
  std::size_t floats = 0;
  for (const std::vector<float>* v :
       {&s.x, &s.attn_u, &s.attn_scores, &s.alpha, &s.im1, &s.f1, &s.cb,
        &s.cb2, &s.im2, &s.f2, &s.ch_avg, &s.ch_max, &s.ch_mid, &s.ch_mlp,
        &s.mc, &s.sp_in, &s.sp_im, &s.ms, &s.pooled, &s.h1, &s.h2, &s.logits,
        &s.row_scale}) {
    floats += v->capacity();
  }
  return floats * sizeof(float) + s.qa.capacity() * sizeof(std::int8_t) +
         s.acc.capacity() * sizeof(std::int32_t) +
         s.ha.capacity() * sizeof(std::uint16_t);
}

std::vector<nn::kernels::GemmShape> SeVulDetNet::batch_gemm_shapes(
    int rows_hint) const {
  const int rows = std::max(32, rows_hint);
  const int segs = std::max(1, rows / 48);  // ~typical tokens per gadget
  const int e = config_.embed_dim;
  const int ch = config_.conv_channels;
  const int kk = config_.conv_kernel;
  std::vector<nk::GemmShape> shapes;
  if (config_.token_attention) {
    shapes.push_back({rows, config_.attn_dim, e});
    shapes.push_back({rows, 1, config_.attn_dim});
  }
  shapes.push_back({rows, ch, kk * e});
  if (config_.multilayer_attention) {
    const int mid = std::max(1, ch / config_.cbam_reduction);
    shapes.push_back({segs, mid, ch});
    shapes.push_back({segs, ch, mid});
    shapes.push_back({rows, 1, 14});
  }
  shapes.push_back({rows, ch, kk * ch});
  const int spp_out = spp_total_bins(config_.spp_bins) * ch;
  shapes.push_back({segs, config_.dense1, spp_out});
  shapes.push_back({segs, config_.dense2, config_.dense1});
  shapes.push_back({segs, std::max(1, config_.num_classes), config_.dense2});
  return shapes;
}

}  // namespace sevuldet::models
