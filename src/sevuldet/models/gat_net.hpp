// Edge-aware graph-attention backbone (the "gat" backend): instead of
// treating a gadget as a flat token sequence, GatNet consumes the
// GadgetGraph projection of the PDG (one node per gadget source line,
// typed control/data/call edges) and runs multi-round masked attention
// message passing over it:
//
//   node features  = mean of the node's embedded tokens
//   per layer      H = X·W;  e_uv = LeakyReLU(a_s·H_u + a_d·H_v + b_type)
//                  α = segment-softmax of e over v's in-neighborhood
//                  X' = ReLU(Σ_u α_uv · H_u)    (self-loops added here)
//   readout        token-attention pool over nodes, then mean‖max concat
//                  -> dense head -> logit
//
// Self-loops are injected at forward time with their own edge-type bias
// (the stored GadgetGraph never contains them — see graph/gadget_graph.hpp),
// so isolated nodes and single-node fallback graphs still aggregate.
// Samples without a graph (legacy corpora, raw token streams) degrade to
// a single node spanning the whole token stream.
//
// All message-passing ops run on the nn/graph_kernels.hpp kernels, so
// the forward pass inherits their blocked==naive bitwise determinism
// (tests/gat_test.cpp pins hand-computed softmaxes and clone parity).
#pragma once

#include <memory>

#include "sevuldet/models/model.hpp"

namespace sevuldet::models {

class GatNet : public Detector {
 public:
  explicit GatNet(ModelConfig config);

  /// Sequence entry point: the token stream becomes a single-node graph
  /// (no structure available). Kept exact so graph-less callers and the
  /// legacy predict(tokens) API stay usable on this backend.
  nn::NodePtr forward_logit(const std::vector<int>& tokens, bool train) override;

  /// Graph-aware forward: uses item.graph when present and consistent
  /// with the token stream, otherwise falls back to the single-node
  /// path above.
  nn::NodePtr forward_logit_item(const BatchItem& item, bool train) override;

  const std::string& name() const override { return name_; }
  nn::ParamStore& params() override { return store_; }

  /// Node-pool attention of the last forward, expanded to one weight per
  /// input token (every token of a node shares the node's α) so the
  /// Fig. 6 provenance path — top_attention_tokens, attributions — works
  /// unchanged on this backend.
  const std::vector<float>& last_token_weights() const override {
    return last_token_weights_;
  }

  /// Scores items grouped by ascending node count: graphs of similar
  /// size reuse the same arena high-water mark, so a mixed batch
  /// allocates like a sorted one. Output is BITWISE-identical to the
  /// base per-item loop (eval forwards are deterministic and each item
  /// still runs in its own GraphScope) — gat_test pins this.
  void predict_batch(const BatchItem* items, std::size_t count,
                     Prediction* out) override;
  using Detector::predict_batch;  // keep the vector convenience overload

  std::unique_ptr<GatNet> clone_gat() const;
  std::unique_ptr<Detector> clone() const override { return clone_gat(); }

 private:
  /// One message-passing round's parameters.
  struct GatLayer {
    std::unique_ptr<nn::Dense> w;  // H = X·W + b
    nn::NodePtr a_src, a_dst;      // [hidden, 1] attention vectors
    nn::NodePtr type_bias;         // [edge types + self-loop, 1]
  };

  /// Build the forward's CSR-by-destination edge arrays (self-loops
  /// appended per segment) into the reused scratch members.
  void build_edge_arrays(const graph::GadgetGraph* graph, int nodes);
  nn::NodePtr forward_graph(const std::vector<int>& tokens,
                            const std::vector<int>& node_offsets,
                            const graph::GadgetGraph* graph, bool train);

  std::string name_;
  nn::ParamStore store_;
  util::Rng rng_;  // dropout randomness
  nn::NodePtr embedding_;
  std::vector<GatLayer> layers_;
  std::unique_ptr<nn::TokenAttention> node_attention_;
  std::unique_ptr<nn::Dense> fc1_, fc2_;
  std::vector<float> last_token_weights_;

  // Per-forward integer scratch, reused across calls.
  std::vector<int> offsets_scratch_;  // single-node fallback offsets
  std::vector<int> edge_src_, edge_dst_, edge_type_, seg_offsets_;
  nn::Graph batch_graph_;  // arena for predict_batch (per instance)
  std::vector<std::pair<int, std::size_t>> bucket_order_;  // (nodes, idx)
};

}  // namespace sevuldet::models
