#include "sevuldet/models/birnn_net.hpp"

#include <stdexcept>

namespace sevuldet::models {

BiRnnNet::BiRnnNet(ModelConfig config, nn::RnnKind kind, std::string name)
    : Detector(std::move(config)),
      name_(std::move(name)),
      rng_(config_.seed ^ 0xB1D0ULL),
      kind_(kind) {
  if (config_.vocab_size <= 0) {
    throw std::invalid_argument("BiRnnNet: vocab_size must be set");
  }
  util::Rng init_rng(config_.seed);
  embedding_ = store_.add(
      "embedding",
      nn::Tensor::uniform(config_.vocab_size, config_.embed_dim, init_rng, 0.1f));
  rnn_ = std::make_unique<nn::BiRnn>(store_, "rnn", kind_, config_.embed_dim,
                                     config_.rnn_hidden, init_rng);
  fc_ = std::make_unique<nn::Dense>(store_, "fc", rnn_->output_dim(), 1, init_rng);
}

std::unique_ptr<Detector> BiRnnNet::clone() const {
  auto copy = std::make_unique<BiRnnNet>(config_, kind_, name_);
  copy_parameters(store_, copy->store_);
  copy->set_precision(precision_);  // bookkeeping only — BiRNNs score fp32
  return copy;
}

std::vector<int> BiRnnNet::fix_length(const std::vector<int>& tokens) const {
  std::vector<int> ids = tokens;
  const std::size_t target = static_cast<std::size_t>(config_.fixed_length);
  if (ids.size() > target) {
    ids.resize(target);  // truncate — may drop vulnerability semantics
  } else {
    ids.resize(target, 0);  // zero-pad — may inject distortion
  }
  return ids;
}

nn::NodePtr BiRnnNet::forward_logit(const std::vector<int>& tokens, bool train) {
  std::vector<int>& ids = ids_scratch_;
  ids.assign(tokens.begin(), tokens.end());
  const std::size_t target = static_cast<std::size_t>(config_.fixed_length);
  if (ids.size() > target) {
    ids.resize(target);
  } else {
    ids.resize(target, 0);
  }
  nn::NodePtr x = nn::embedding(embedding_, ids);
  x = nn::dropout(x, config_.dropout, rng_, train);
  nn::NodePtr h = rnn_->forward(x);
  return fc_->forward(h);
}

std::unique_ptr<BiRnnNet> make_blstm(ModelConfig config) {
  return std::make_unique<BiRnnNet>(std::move(config), nn::RnnKind::Lstm, "BLSTM");
}

std::unique_ptr<BiRnnNet> make_bgru(ModelConfig config) {
  return std::make_unique<BiRnnNet>(std::move(config), nn::RnnKind::Gru, "BGRU");
}

std::unique_ptr<BiRnnNet> make_vuldeepecker(ModelConfig config) {
  // Table IV: VulDeePecker uses dimension 50, lr 0.001, dropout 0.5.
  config.embed_dim = 50;
  config.dropout = 0.5f;
  return std::make_unique<BiRnnNet>(std::move(config), nn::RnnKind::Lstm,
                                    "VulDeePecker");
}

std::unique_ptr<BiRnnNet> make_sysevr(ModelConfig config) {
  // Table IV: SySeVR uses dimension 30, lr 0.002, dropout 0.2.
  config.embed_dim = 30;
  config.dropout = 0.2f;
  return std::make_unique<BiRnnNet>(std::move(config), nn::RnnKind::Gru, "SySeVR");
}

}  // namespace sevuldet::models
