// Classical static-analysis baselines for Fig. 5. Each tool scans raw
// source and reports line-level findings; a program is classified
// vulnerable iff the tool reports at least one finding. The four tools
// reproduce the failure modes the paper observes:
//  - FlawfinderLike / RatsLike: lexical risk-ranked rule matchers (high
//    FPR from guard-blind matching, high FNR on non-call flaw classes);
//  - CheckmarxLike: intra-procedural dataflow rules over our PDG (better,
//    still path-insensitive, so Fig.1-style flaws evade it);
//  - VuddyLike: abstracted function fingerprint clone detection (lowest
//    FPR, highest FNR — only re-used vulnerable code matches).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sevuldet/dataset/testcase.hpp"

namespace sevuldet::baselines {

struct ToolFinding {
  int line = 0;
  std::string rule;
  int risk = 1;  // 1 (low) .. 5 (high)
};

class StaticTool {
 public:
  virtual ~StaticTool() = default;
  virtual const std::string& name() const = 0;
  virtual std::vector<ToolFinding> scan(const std::string& source) = 0;

  /// Program-level verdict: any finding => vulnerable.
  bool flags(const std::string& source) { return !scan(source).empty(); }
};

class FlawfinderLike : public StaticTool {
 public:
  const std::string& name() const override { return name_; }
  std::vector<ToolFinding> scan(const std::string& source) override;

 private:
  std::string name_ = "Flawfinder";
};

class RatsLike : public StaticTool {
 public:
  const std::string& name() const override { return name_; }
  std::vector<ToolFinding> scan(const std::string& source) override;

 private:
  std::string name_ = "RATS";
};

class CheckmarxLike : public StaticTool {
 public:
  const std::string& name() const override { return name_; }
  std::vector<ToolFinding> scan(const std::string& source) override;

 private:
  std::string name_ = "Checkmarx";
};

/// Function-clone detector: learns fingerprints of known-vulnerable
/// functions, then flags exact (abstracted) matches.
class VuddyLike : public StaticTool {
 public:
  const std::string& name() const override { return name_; }

  /// Fingerprint every function of every vulnerable training program.
  void train(const std::vector<dataset::TestCase>& corpus);
  std::vector<ToolFinding> scan(const std::string& source) override;
  std::size_t fingerprint_count() const { return fingerprints_.size(); }

  /// Abstraction: normalize identifiers/literals, strip layout, hash.
  static std::uint64_t fingerprint(const std::string& function_body);

 private:
  std::string name_ = "VUDDY";
  std::vector<std::uint64_t> fingerprints_;
};

}  // namespace sevuldet::baselines
