#include "sevuldet/baselines/fuzzer.hpp"

#include <array>
#include <set>

namespace sevuldet::baselines {

namespace {

constexpr std::array<std::int32_t, 18> kInterestingInts = {
    0,    1,     -1,       16,        32,         64,         100,
    127,  128,   255,      256,       512,        1024,       4096,
    32767, 65535, 2147483647, -2147483648};

constexpr std::array<std::int8_t, 9> kInterestingBytes = {0,  1,   -1, 16, 32,
                                                          64, 100, 127, -128};

void write_int(std::vector<std::uint8_t>& buf, std::size_t pos, std::int32_t v) {
  for (int i = 0; i < 4 && pos + static_cast<std::size_t>(i) < buf.size(); ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((static_cast<std::uint32_t>(v) >> (8 * i)) & 0xFF);
  }
}

}  // namespace

FuzzReport fuzz_program(const frontend::TranslationUnit& unit,
                        const FuzzConfig& config) {
  FuzzReport report;
  util::Rng rng(config.seed);
  interp::Interpreter interpreter(unit);
  interp::ExecOptions exec_options;
  exec_options.step_limit = config.step_limit;
  exec_options.entry = config.entry;

  std::set<std::pair<int, bool>> global_coverage;
  std::vector<std::vector<std::uint8_t>> queue;
  queue.emplace_back(static_cast<std::size_t>(config.input_len), 0);  // all zeros

  // Takes the input BY VALUE: pushing into `queue` may reallocate it, and
  // callers pass references to queue elements.
  auto run_one = [&](std::vector<std::uint8_t> input, int exec_no) {
    interp::ExecResult result = interpreter.run(input, exec_options);
    bool new_coverage = false;
    for (const auto& edge : result.coverage) {
      if (global_coverage.insert(edge).second) new_coverage = true;
    }
    if (new_coverage) queue.push_back(input);
    if (!report.found &&
        (interp::is_crash(result.outcome) || result.outcome == interp::Outcome::Hang)) {
      report.found = true;
      report.outcome = result.outcome;
      report.executions_used = exec_no;
      report.trigger = input;
      report.fault_line = result.fault_line;
    }
    return result;
  };

  int executed = 0;
  // Dry-run the seed.
  run_one(queue[0], ++executed);

  while (executed < config.executions && !report.found) {
    const auto& base = queue[rng.uniform(queue.size())];
    std::vector<std::uint8_t> input = base;

    switch (rng.uniform(5)) {
      case 0: {  // single bit flip
        if (!input.empty()) {
          std::size_t bit = rng.uniform(input.size() * 8);
          input[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        break;
      }
      case 1: {  // interesting byte
        if (!input.empty()) {
          input[rng.uniform(input.size())] = static_cast<std::uint8_t>(
              kInterestingBytes[rng.uniform(kInterestingBytes.size())]);
        }
        break;
      }
      case 2: {  // interesting 32-bit value at 4-aligned position
        if (input.size() >= 4) {
          std::size_t slot = rng.uniform(input.size() / 4) * 4;
          write_int(input, slot,
                    kInterestingInts[rng.uniform(kInterestingInts.size())]);
        }
        break;
      }
      case 3: {  // random byte
        if (!input.empty()) {
          input[rng.uniform(input.size())] =
              static_cast<std::uint8_t>(rng.uniform(256));
        }
        break;
      }
      default: {  // havoc: stack 2-6 random mutations
        const int n = 2 + static_cast<int>(rng.uniform(5));
        for (int i = 0; i < n && !input.empty(); ++i) {
          switch (rng.uniform(3)) {
            case 0:
              input[rng.uniform(input.size())] ^=
                  static_cast<std::uint8_t>(1u << rng.uniform(8));
              break;
            case 1:
              input[rng.uniform(input.size())] = static_cast<std::uint8_t>(
                  kInterestingBytes[rng.uniform(kInterestingBytes.size())]);
              break;
            default:
              if (input.size() >= 4) {
                write_int(input, rng.uniform(input.size() / 4) * 4,
                          kInterestingInts[rng.uniform(kInterestingInts.size())]);
              }
              break;
          }
        }
        break;
      }
    }
    run_one(input, ++executed);
  }

  if (!report.found) report.executions_used = executed;
  report.coverage_edges = global_coverage.size();
  report.queue_size = queue.size();
  return report;
}

}  // namespace sevuldet::baselines
