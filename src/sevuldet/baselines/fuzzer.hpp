// AFL-like coverage-guided mutational fuzzer over the interp substrate —
// the stand-in for the paper's 24-hour AFL runs (Table VII). It keeps a
// queue of coverage-increasing inputs and mutates them with bit flips,
// AFL's "interesting values" (0, -1, small powers of two, INT_MAX, ...),
// and havoc stacking. Like real AFL it finds broad triggers (a zero
// register, a huge loop count) quickly but cannot synthesize a 32-bit
// protocol magic — exactly the paper's explanation for the missed
// CVE-2016-9104.
#pragma once

#include <cstdint>
#include <vector>

#include "sevuldet/frontend/ast.hpp"
#include "sevuldet/interp/interp.hpp"
#include "sevuldet/util/rng.hpp"

namespace sevuldet::baselines {

struct FuzzConfig {
  int executions = 20000;        // total program executions (the budget)
  long long step_limit = 100000; // interpreter steps before Hang
  int input_len = 16;            // fuzz buffer size in bytes
  std::string entry = "harness_main";
  std::uint64_t seed = 1;
};

struct FuzzReport {
  bool found = false;                 // any crash or hang
  interp::Outcome outcome = interp::Outcome::Ok;
  int executions_used = 0;            // executions until first finding (or total)
  std::size_t coverage_edges = 0;     // distinct (line, taken) pairs seen
  std::size_t queue_size = 0;         // corpus entries kept
  std::vector<std::uint8_t> trigger;  // the input that triggered the finding
  int fault_line = 0;
};

/// Fuzz one program. The unit must outlive the call.
FuzzReport fuzz_program(const frontend::TranslationUnit& unit,
                        const FuzzConfig& config = {});

}  // namespace sevuldet::baselines
