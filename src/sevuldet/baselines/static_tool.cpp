#include "sevuldet/baselines/static_tool.hpp"

#include <unordered_map>
#include <unordered_set>

#include "sevuldet/frontend/ast_text.hpp"
#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/slicer/special_tokens.hpp"
#include "sevuldet/util/strings.hpp"

namespace sevuldet::baselines {

namespace {

// Rule tables are keyed by string_view-comparable hashes so the lexer's
// zero-copy tokens probe them without per-token string construction.
struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
using RuleMap = std::unordered_map<std::string, int, SvHash, std::equal_to<>>;

/// Lexical scan: flag every call to a function on the rule list,
/// guard-blind (the defining weakness of lexical tools).
std::vector<ToolFinding> lexical_scan(const std::string& source,
                                      const RuleMap& rules) {
  std::vector<ToolFinding> findings;
  frontend::TokenStream tokens;
  try {
    tokens = frontend::lex_tokens(source);
  } catch (const frontend::LexError&) {
    return findings;
  }
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != frontend::TokenKind::Identifier) continue;
    if (!tokens[i + 1].is_punct("(")) continue;
    auto it = rules.find(tokens[i].text);
    if (it == rules.end()) continue;
    findings.push_back({tokens[i].line, std::string(tokens[i].text), it->second});
  }
  return findings;
}

}  // namespace

std::vector<ToolFinding> FlawfinderLike::scan(const std::string& source) {
  // Flawfinder's flavor: classic dangerous-call database, string and
  // format functions rank highest.
  static const RuleMap kRules = {
      {"strcpy", 4},  {"strcat", 4},  {"gets", 5},     {"sprintf", 4},
      {"vsprintf", 4},{"scanf", 4},   {"sscanf", 3},   {"strncpy", 1},
      {"strncat", 1}, {"memcpy", 2},  {"alloca", 4},   {"system", 4},
      {"popen", 4},   {"exec", 4},    {"execl", 4},    {"execv", 4},
      {"realpath", 3},{"getcwd", 3},  {"wcscpy", 4},
  };
  return lexical_scan(source, kRules);
}

std::vector<ToolFinding> RatsLike::scan(const std::string& source) {
  // RATS' flavor: overlapping but distinct database; adds random-number
  // and file-handling rules, skips some of Flawfinder's low-risk ones.
  static const RuleMap kRules = {
      {"strcpy", 5},  {"strcat", 5},  {"gets", 5},   {"sprintf", 5},
      {"scanf", 4},   {"memcpy", 3},  {"malloc", 1}, {"realloc", 1},
      {"system", 5},  {"popen", 5},   {"rand", 2},   {"srand", 2},
      {"tmpnam", 4},  {"mktemp", 4},  {"fscanf", 3}, {"wcsncpy", 2},
  };
  return lexical_scan(source, kRules);
}

std::vector<ToolFinding> CheckmarxLike::scan(const std::string& source) {
  std::vector<ToolFinding> findings;
  graph::ProgramGraph program;
  try {
    program = graph::build_program_graph(source);
  } catch (const frontend::LexError&) {
    return findings;
  } catch (const frontend::ParseError&) {
    return findings;
  }

  for (const auto& pdg : program.functions) {
    // "Guarded by X" = some control-dependence ancestor predicate
    // mentions variable X. Path-insensitive: which branch the statement
    // sits in is invisible, exactly the paper's Fig. 1 critique.
    auto guarded_by = [&](int unit, const std::string& var) {
      std::vector<int> work = pdg.control.deps[static_cast<std::size_t>(unit)];
      std::unordered_set<int> seen(work.begin(), work.end());
      while (!work.empty()) {
        int pred = work.back();
        work.pop_back();
        if (pdg.units[static_cast<std::size_t>(pred)].use_def.uses.contains(var)) {
          return true;
        }
        for (int up : pdg.control.deps[static_cast<std::size_t>(pred)]) {
          if (seen.insert(up).second) work.push_back(up);
        }
      }
      return false;
    };

    bool fn_calls_alloc = false;
    for (const auto& unit : pdg.units) {
      for (const auto& callee : unit.use_def.calls) {
        if (callee == "malloc" || callee == "calloc" || callee == "realloc" ||
            callee == "alloca") {
          fn_calls_alloc = true;
        }
      }
    }

    std::unordered_set<std::string> freed;  // pointers freed earlier in line order
    for (const auto& unit : pdg.units) {
      const frontend::Stmt& stmt = *unit.stmt;

      // R1: unconditionally dangerous calls.
      for (const auto& callee : unit.use_def.calls) {
        static const std::unordered_set<std::string> kAlwaysBad = {
            "strcpy", "strcat", "gets", "sprintf", "vsprintf", "system"};
        if (kAlwaysBad.contains(callee)) {
          findings.push_back({unit.line, "dangerous-call:" + callee, 4});
        }
      }

      // R2: bounded copy whose size operand is an unguarded variable.
      for (const auto& callee : unit.use_def.calls) {
        static const std::unordered_set<std::string> kBounded = {
            "strncpy", "strncat", "memcpy", "memmove"};
        if (!kBounded.contains(callee)) continue;
        // A size-like operand is hard to single out lexically; the rule
        // fires when NONE of the used variables is guarded upstream.
        bool any_guarded = false;
        bool has_var_use = false;
        for (const auto& var : unit.use_def.uses) {
          has_var_use = true;
          if (guarded_by(unit.id, var)) any_guarded = true;
        }
        if (has_var_use && !any_guarded) {
          findings.push_back({unit.line, "unchecked-size:" + callee, 3});
        }
      }

      // R3: array subscript with an unguarded variable index.
      // R4: pointer dereference without a null guard.
      // R5: division by an unguarded variable.
      // Implemented via expression inspection below.
      struct ExprRules {
        const graph::StmtUnit& unit;
        const decltype(guarded_by)& guard;
        std::vector<ToolFinding>& findings;
        const std::unordered_set<std::string>& freed;
        bool fn_calls_alloc;

        void walk(const frontend::Expr& e) {
          using frontend::ExprKind;
          switch (e.kind) {
            case ExprKind::Index: {
              const frontend::Expr& idx = *e.children[1];
              if (idx.kind == ExprKind::Ident && !guard(unit.id, idx.text)) {
                findings.push_back({unit.line, "unchecked-index:" + idx.text, 3});
              }
              break;
            }
            case ExprKind::Unary:
              if (e.op == "*" && e.children[0]->kind == ExprKind::Ident) {
                const std::string& p = e.children[0]->text;
                if (freed.contains(p)) {
                  findings.push_back({unit.line, "use-after-free:" + p, 5});
                } else if (!guard(unit.id, p)) {
                  findings.push_back({unit.line, "unchecked-deref:" + p, 3});
                }
              }
              break;
            case ExprKind::Binary:
              if (e.op == "/" && e.children[1]->kind == ExprKind::Ident &&
                  !guard(unit.id, e.children[1]->text)) {
                findings.push_back(
                    {unit.line, "div-by-var:" + e.children[1]->text, 2});
              }
              // R7: possible integer overflow — a multiplication with an
              // unguarded variable operand whose result feeds allocation
              // is flagged; without inter-statement taint the engine
              // approximates by flagging any var*K with alloc in the
              // same function (commercial SAST overflow-check flavor).
              if (e.op == "*" && e.children[0]->kind == ExprKind::Ident &&
                  !guard(unit.id, e.children[0]->text) && fn_calls_alloc) {
                findings.push_back(
                    {unit.line, "mul-overflow:" + e.children[0]->text, 2});
              }
              break;
            default:
              break;
          }
          for (const auto& child : e.children) walk(*child);
        }
      };

      ExprRules rules{unit, guarded_by, findings, freed, fn_calls_alloc};
      if (stmt.kind == frontend::StmtKind::Decl) {
        if (stmt.for_has_init) rules.walk(*stmt.exprs[0]);
      } else {
        for (const auto& e : stmt.exprs) rules.walk(*e);
      }

      // Track frees for R6 (line-order use-after-free).
      for (const auto& callee : unit.use_def.calls) {
        if (callee == "free") {
          for (const auto& var : unit.use_def.uses) freed.insert(var);
        }
      }
    }
  }
  return findings;
}

std::uint64_t VuddyLike::fingerprint(const std::string& function_body) {
  // Abstraction stage: rename identifiers/keep structure, then FNV-1a.
  normalize::NormalizedGadget norm = normalize::normalize_text(function_body);
  std::uint64_t hash = 1469598103934665603ULL;
  for (const auto& token : norm.tokens) {
    for (char c : token) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ULL;
    }
    hash ^= 0xFF;
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

/// Extract each function's raw text (begin..end lines) from a source.
std::vector<std::pair<std::string, int>> function_bodies(const std::string& source) {
  std::vector<std::pair<std::string, int>> out;
  frontend::TranslationUnit unit;
  try {
    unit = frontend::parse(source);
  } catch (const frontend::LexError&) {
    return out;
  } catch (const frontend::ParseError&) {
    return out;
  }
  auto lines = util::split_lines(source);
  for (const auto& fn : unit.functions) {
    std::string body;
    for (int l = fn.range.begin_line; l <= fn.range.end_line; ++l) {
      if (l >= 1 && static_cast<std::size_t>(l) <= lines.size()) {
        body += lines[static_cast<std::size_t>(l - 1)];
        body += '\n';
      }
    }
    out.emplace_back(std::move(body), fn.range.begin_line);
  }
  return out;
}

}  // namespace

void VuddyLike::train(const std::vector<dataset::TestCase>& corpus) {
  std::unordered_set<std::uint64_t> unique;
  for (const auto& tc : corpus) {
    if (!tc.vulnerable) continue;
    for (const auto& [body, line] : function_bodies(tc.source)) {
      // Only fingerprint the function containing a flagged line.
      bool contains_flaw = false;
      for (int flagged : tc.vulnerable_lines) {
        auto lines = util::split_lines(body);
        if (flagged >= line && flagged < line + static_cast<int>(lines.size())) {
          contains_flaw = true;
        }
      }
      if (contains_flaw) unique.insert(fingerprint(body));
    }
  }
  fingerprints_.assign(unique.begin(), unique.end());
}

std::vector<ToolFinding> VuddyLike::scan(const std::string& source) {
  std::vector<ToolFinding> findings;
  std::unordered_set<std::uint64_t> known(fingerprints_.begin(), fingerprints_.end());
  for (const auto& [body, line] : function_bodies(source)) {
    if (known.contains(fingerprint(body))) {
      findings.push_back({line, "clone-of-known-vulnerability", 5});
    }
  }
  return findings;
}

}  // namespace sevuldet::baselines
