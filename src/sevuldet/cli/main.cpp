// sevuldet — command-line interface to the library.
//
//   sevuldet selftrain --out model.txt [--pairs N] [--epochs N]
//       Train a detector on the synthetic SARD-like corpus and save it.
//   sevuldet scan <file.c> --model model.txt
//       Run the detection phase on a C source file; prints findings with
//       line numbers, categories, probabilities and attention tokens.
//   sevuldet gadgets <file.c> [--plain]
//       Print every (path-sensitive) code gadget of a source file.
//   sevuldet fuzz <file.c> [--execs N]
//       AFL-like coverage-guided fuzzing of the file's harness_main().
//   sevuldet train --dir DIR --manifest DIR/manifest.tsv --out model.txt
//       Train on user-supplied .c files labeled by a TSV manifest
//       (file<TAB>line<TAB>cwe per flagged line).
//   sevuldet export-corpus --dir DIR [--pairs N]
//       Write the synthetic SARD-like corpus to disk (+ manifest.tsv).
//   sevuldet explain <file.c> --model model.txt [--json FILE] [--top N]
//       Detection with attention provenance (paper Fig. 6): each finding
//       is traced token-by-token back to original identifiers and source
//       lines through the normalizer's invertible placeholder maps.
//   sevuldet report [--json FILE] [--pairs N] [--epochs N]
//       Train + evaluate on the synthetic corpus and print the quality
//       report (confusion, per-CWE/per-length F1, calibration, drops);
//       --json writes the machine-readable form for check_quality.py.
//   sevuldet serve --model model.bin --socket /tmp/sevuldet.sock
//       Long-lived scan daemon: loads the model once and serves scan /
//       explain / report-status / shutdown requests over a Unix socket,
//       micro-batching gadgets across concurrent requests.
//   sevuldet shutdown --socket /tmp/sevuldet.sock
//       Drain and stop a running daemon.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "sevuldet/baselines/fuzzer.hpp"
#include "sevuldet/core/introspect.hpp"
#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/core/scan.hpp"
#include "sevuldet/dataset/manifest.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/serve/client.hpp"
#include "sevuldet/serve/server.hpp"
#include "sevuldet/slicer/gadget.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/table.hpp"
#include "sevuldet/util/trace.hpp"

using namespace sevuldet;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sevuldet selftrain --out MODEL [--pairs N] [--epochs N]\n"
               "                     [--corpus-cache DIR] [--backend B]\n"
               "  sevuldet scan FILE.c --model MODEL [--daemon SOCK]\n"
               "                [--precision P]\n"
               "  sevuldet scan DIR --model MODEL [--daemon SOCK]\n"
               "                [--json FILE] [--threads N] [--precision P]\n"
               "  sevuldet gadgets FILE.c [--plain]\n"
               "  sevuldet fuzz FILE.c [--execs N]\n"
               "  sevuldet train --dir DIR [--manifest TSV] --out MODEL\n"
               "                 [--backend B]\n"
               "  sevuldet export-corpus --dir DIR [--pairs N]\n"
               "  sevuldet explain FILE.c --model MODEL [--json FILE]\n"
               "                  [--top N] [--precision P]\n"
               "  sevuldet report [--json FILE] [--pairs N] [--epochs N]\n"
               "                  [--precision P] [--backend B]\n"
               "                  [--compare B1,B2]\n"
               "  sevuldet serve --model MODEL --socket SOCK [--threads N]\n"
               "                 [--queue-depth N] [--batch N]\n"
               "                 [--batch-window MS] [--deadline MS]\n"
               "                 [--precision P]\n"
               "  sevuldet shutdown --socket SOCK\n"
               "\n"
               "  scan --daemon SOCK sends the file to a running serve\n"
               "  daemon (same findings, model stays loaded); when no daemon\n"
               "  is listening the scan silently falls back to in-process.\n"
               "\n"
               "  scan DIR walks the tree (.c/.h), preprocesses each file\n"
               "  (includes, macros, conditionals), parses with per-region\n"
               "  error recovery, and scans files in parallel; findings are\n"
               "  identical to a serial scan, and identical through --daemon.\n"
               "  --json FILE writes the full tree result with per-file drop\n"
               "  accounting.\n"
               "\n"
               "  selftrain/train/scan accept --threads N (0 = all cores) to\n"
               "  parallelize preprocessing and detection; results are\n"
               "  identical to --threads 1. --w2v-threads N additionally\n"
               "  parallelizes word2vec pre-training (Hogwild, result is then\n"
               "  nondeterministic; default 1).\n"
               "\n"
               "  --precision P selects the inference precision: fp32 (exact\n"
               "  reference, default), fp16 or int8 (quantized conv/FC GEMMs —\n"
               "  faster, with a small bounded score drift; the quality gate\n"
               "  holds F1/AUC floors for int8). report evaluates its held-out\n"
               "  fold at P; training itself always runs fp32.\n"
               "\n"
               "  --backend B picks the detector backend for commands that\n"
               "  train from scratch: cnn (TextCNN+CBAM, default) or gat\n"
               "  (edge-aware graph attention over the gadget PDG). Saved\n"
               "  models record their backend, so scan/explain/serve load the\n"
               "  right one automatically. report --compare B1,B2 trains each\n"
               "  listed backend on the same corpus and fold and prints a\n"
               "  side-by-side table (--json writes every run's full report).\n"
               "\n"
               "  selftrain/train accept --corpus-cache DIR: memoize per-file\n"
               "  preprocessing (Steps I-III) in a content-addressed cache, so\n"
               "  repeat runs only re-slice changed files. Results are\n"
               "  identical with or without the cache.\n"
               "\n"
               "  every command accepts --metrics-out FILE.json (counters +\n"
               "  latency histograms, see util/metrics.hpp for the schema) and\n"
               "  --trace-out FILE.json (Chrome trace_event phase spans; open\n"
               "  in chrome://tracing or Perfetto). Instrumentation is off\n"
               "  unless one of these flags is given.\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const char* arg_value(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Shared --precision handling for the inference commands. Returns false
/// (after an error message) on an unknown value.
bool apply_precision_flag(int argc, char** argv, models::Precision* out) {
  if (const char* text = arg_value(argc, argv, "--precision")) {
    if (!models::parse_precision(text, out)) {
      std::fprintf(stderr, "bad --precision '%s' (expected fp32|fp16|int8)\n",
                   text);
      return false;
    }
  }
  return true;
}

/// Shared --backend handling for every command that builds or trains a
/// detector. Loading a saved model overrides this with the backend
/// recorded in the file (v1/v2 model files are always the CNN), so the
/// flag matters for the commands that train from scratch.
bool apply_backend_flag(int argc, char** argv, std::string* out) {
  if (const char* text = arg_value(argc, argv, "--backend")) {
    if (!models::valid_backend(text)) {
      std::fprintf(stderr, "bad --backend '%s' (expected %s)\n", text,
                   util::join(models::detector_backends(), "|").c_str());
      return false;
    }
    *out = text;
  }
  return true;
}

/// Shared --threads/--w2v-threads/--corpus-cache handling for the
/// training/scan commands.
void apply_thread_flags(int argc, char** argv, core::PipelineConfig& config) {
  if (const char* threads = arg_value(argc, argv, "--threads")) {
    config.corpus.threads = std::atoi(threads);
  }
  if (const char* w2v = arg_value(argc, argv, "--w2v-threads")) {
    config.word2vec.threads = std::atoi(w2v);
  }
  if (const char* cache = arg_value(argc, argv, "--corpus-cache")) {
    config.corpus.cache_dir = cache;
  }
}

int cmd_selftrain(int argc, char** argv) {
  const char* out = arg_value(argc, argv, "--out");
  if (out == nullptr) return usage();
  dataset::SardConfig corpus_config;
  if (const char* pairs = arg_value(argc, argv, "--pairs")) {
    corpus_config.pairs_per_category = std::atoi(pairs);
  }
  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (const char* epochs = arg_value(argc, argv, "--epochs")) {
    config.train.epochs = std::atoi(epochs);
  } else {
    config.train.epochs = 6;
  }
  config.train.lr = 0.002f;
  config.train.verbose = true;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);

  core::SeVulDet detector(config);
  std::printf("training %s backend on %d pairs/category...\n",
              config.backend.c_str(), corpus_config.pairs_per_category);
  auto result = detector.train(dataset::generate_sard_like(corpus_config));
  std::printf("trained on %zu gadgets in %.1fs (final loss %.4f)\n",
              result.samples, result.seconds, result.epoch_losses.back());
  detector.save(out);
  std::printf("model saved to %s\n", out);
  return 0;
}

int print_findings(const char* path, const std::vector<core::Finding>& findings) {
  if (findings.empty()) {
    std::printf("%s: no findings\n", path);
    return 0;
  }
  for (const auto& finding : findings) {
    std::printf("%s:%d: [%s] suspicious %s '%s' (p=%.3f)\n", path, finding.line,
                slicer::category_name(finding.category),
                finding.category == slicer::TokenCategory::FunctionCall
                    ? "call to"
                    : "use of",
                finding.token.c_str(), finding.probability);
    std::printf("  attention:");
    for (const auto& [token, weight] : finding.top_tokens) {
      std::printf(" %s(%.0f%%)", token.c_str(), weight * 100.0f);
    }
    std::printf("\n");
  }
  return 1;  // findings found => nonzero, CI-friendly
}

/// Directory-scan output: per-file findings in sorted-path order (the
/// single-file format, path-prefixed), then a one-line summary with the
/// frontend drop accounting. Deterministic for any thread count.
int print_tree_scan(const core::TreeScanResult& tree) {
  for (const auto& file : tree.files) {
    if (!file.ok) {
      std::printf("%s: unreadable (%s)\n", file.path.c_str(),
                  file.error.c_str());
      continue;
    }
    if (file.findings.empty()) continue;
    print_findings(file.path.c_str(), file.findings);
  }
  const core::TreeScanStats& s = tree.stats;
  std::printf(
      "scanned %d file(s), %d finding(s) (%d from recovered regions); "
      "%d file(s) recovered, %d unreadable; parse drop %.2f%%, "
      "preprocess drop %.2f%%\n",
      s.files, s.findings, s.fallback_findings, s.files_recovered,
      s.files_failed, s.parse_drop_rate * 100.0,
      s.preprocess_drop_rate * 100.0);
  return s.findings > 0 ? 1 : 0;
}

/// `sevuldet scan DIR`: parallel per-file scan of a source tree through
/// the real-world frontend (mmap + preprocess + error-resilient parse).
/// With --daemon the tree request is served by a running daemon — same
/// scan_tree(), so findings and drop counters are identical.
int cmd_scan_tree(int argc, char** argv) {
  const std::string root = argv[0];
  const char* json_path = arg_value(argc, argv, "--json");

  auto finish = [&](const core::TreeScanResult& tree) {
    if (json_path != nullptr) {
      std::ofstream out(json_path);
      if (!out) {
        throw std::runtime_error(std::string("cannot write ") + json_path);
      }
      out << serve::tree_scan_to_json(tree);
      std::printf("tree scan written to %s\n", json_path);
    }
    return print_tree_scan(tree);
  };

  if (const char* sock = arg_value(argc, argv, "--daemon")) {
    auto client = serve::Client::connect(sock);
    if (client.has_value()) {
      return finish(client->scan_tree(root));
    }
    std::fprintf(stderr, "no daemon at %s; scanning in-process\n", sock);
  }

  const char* model_path = arg_value(argc, argv, "--model");
  if (model_path == nullptr) return usage();
  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  detector.load(model_path);

  core::ScanOptions options;
  if (!apply_precision_flag(argc, argv, &options.detect.precision)) {
    return usage();
  }
  return finish(core::scan_tree(detector, root, options));
}

int cmd_scan(int argc, char** argv) {
  if (argc < 1) return usage();
  if (std::filesystem::is_directory(argv[0])) return cmd_scan_tree(argc, argv);
  const std::string source = read_file(argv[0]);

  // Daemon mode: ship the file to a running `sevuldet serve` (the model
  // stays loaded there — no per-scan load cost). Falls back to the
  // in-process path below when nobody is listening on the socket.
  if (const char* sock = arg_value(argc, argv, "--daemon")) {
    auto client = serve::Client::connect(sock);
    if (client.has_value()) {
      return print_findings(argv[0], client->scan(source));
    }
    std::fprintf(stderr, "no daemon at %s; scanning in-process\n", sock);
  }

  const char* model_path = arg_value(argc, argv, "--model");
  if (model_path == nullptr) return usage();
  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  detector.load(model_path);

  core::DetectOptions options;
  if (!apply_precision_flag(argc, argv, &options.precision)) return usage();
  return print_findings(argv[0], detector.detect(source, options));
}

int cmd_serve(int argc, char** argv) {
  const char* model_path = arg_value(argc, argv, "--model");
  const char* socket_path = arg_value(argc, argv, "--socket");
  if (model_path == nullptr || socket_path == nullptr) return usage();

  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  detector.load(model_path);

  serve::ServeOptions options;
  options.socket_path = socket_path;
  if (const char* threads = arg_value(argc, argv, "--threads")) {
    options.threads = std::atoi(threads);
    if (options.threads <= 0) {  // 0 = all cores, same as the other commands
      options.threads =
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    }
  }
  if (const char* depth = arg_value(argc, argv, "--queue-depth")) {
    options.queue_depth = std::atoi(depth);
  }
  if (const char* batch = arg_value(argc, argv, "--batch")) {
    options.max_batch = std::atoi(batch);
  }
  if (const char* window = arg_value(argc, argv, "--batch-window")) {
    options.batch_window_ms = std::atof(window);
  }
  if (const char* deadline = arg_value(argc, argv, "--deadline")) {
    options.default_deadline_ms = std::atof(deadline);
  }
  if (!apply_precision_flag(argc, argv, &options.precision)) return usage();

  serve::Server server(detector, options);
  std::printf(
      "serving on %s (%d worker(s), queue depth %d, batch %d/%.1fms, %s)\n",
      socket_path, options.threads, options.queue_depth, options.max_batch,
      options.batch_window_ms, models::precision_name(options.precision));
  std::fflush(stdout);
  server.run();
  std::printf("shutdown complete: %s\n", server.status_json().c_str());
  return 0;
}

/// Ask a running daemon to drain and exit (the clean stop CI uses, so
/// the daemon's own --metrics-out/--trace-out snapshots get written).
int cmd_shutdown(int argc, char** argv) {
  const char* socket_path = arg_value(argc, argv, "--socket");
  if (socket_path == nullptr) return usage();
  auto client = serve::Client::connect(socket_path);
  if (!client.has_value()) {
    std::fprintf(stderr, "no daemon at %s\n", socket_path);
    return 1;
  }
  client->shutdown();
  std::printf("daemon at %s is shutting down\n", socket_path);
  return 0;
}

int cmd_gadgets(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string source = read_file(argv[0]);
  graph::ProgramGraph program = graph::build_program_graph(source);
  slicer::GadgetOptions options;
  options.path_sensitive = !has_flag(argc, argv, "--plain");
  auto gadgets = slicer::generate_gadgets(program, options);
  std::printf("%zu gadget(s), %s\n\n", gadgets.size(),
              options.path_sensitive ? "path-sensitive" : "plain");
  for (const auto& gadget : gadgets) {
    std::printf("--- %s '%s' at %s:%d ---\n",
                slicer::category_name(gadget.token.category),
                gadget.token.text.c_str(), gadget.token.function.c_str(),
                gadget.token.line);
    for (const auto& line : gadget.lines) {
      std::printf("  %3d %s %s\n", line.line, line.is_boundary ? "+" : " ",
                  line.text.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string source = read_file(argv[0]);
  auto unit = frontend::parse(source);
  baselines::FuzzConfig config;
  if (const char* execs = arg_value(argc, argv, "--execs")) {
    config.executions = std::atoi(execs);
  }
  auto report = baselines::fuzz_program(unit, config);
  std::printf("executions: %d  coverage edges: %zu  queue: %zu\n",
              report.executions_used, report.coverage_edges, report.queue_size);
  if (!report.found) {
    std::printf("no crash or hang found\n");
    return 0;
  }
  std::printf("FOUND %s at line %d; trigger bytes:",
              interp::outcome_name(report.outcome), report.fault_line);
  for (std::uint8_t b : report.trigger) std::printf(" %02x", b);
  std::printf("\n");
  return 1;
}

int cmd_train(int argc, char** argv) {
  const char* dir = arg_value(argc, argv, "--dir");
  const char* out = arg_value(argc, argv, "--out");
  if (dir == nullptr || out == nullptr) return usage();
  const char* manifest = arg_value(argc, argv, "--manifest");

  auto cases = dataset::load_labeled_directory(dir, manifest ? manifest : "");
  long vulnerable = 0;
  for (const auto& tc : cases) vulnerable += tc.vulnerable ? 1 : 0;
  std::printf("loaded %zu programs (%ld flagged) from %s\n", cases.size(),
              vulnerable, dir);

  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  config.train.epochs = 6;
  config.train.lr = 0.002f;
  config.train.verbose = true;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  auto result = detector.train(cases);
  std::printf("trained on %zu gadgets in %.1fs\n", result.samples, result.seconds);
  detector.save(out);
  std::printf("model saved to %s\n", out);
  return 0;
}

int cmd_export_corpus(int argc, char** argv) {
  const char* dir = arg_value(argc, argv, "--dir");
  if (dir == nullptr) return usage();
  dataset::SardConfig config;
  if (const char* pairs = arg_value(argc, argv, "--pairs")) {
    config.pairs_per_category = std::atoi(pairs);
  }
  auto cases = dataset::generate_sard_like(config);
  dataset::export_corpus(cases, dir);
  std::printf("wrote %zu programs + manifest.tsv to %s\n", cases.size(), dir);
  return 0;
}

int cmd_explain(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* model_path = arg_value(argc, argv, "--model");
  if (model_path == nullptr) return usage();
  const std::string source = read_file(argv[0]);

  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  detector.load(model_path);

  core::DetectOptions options;
  options.explain = true;
  if (!apply_precision_flag(argc, argv, &options.precision)) return usage();
  if (const char* top = arg_value(argc, argv, "--top")) {
    options.top_k = std::atoi(top);
  }
  auto findings = detector.detect(source, options);

  if (const char* json_path = arg_value(argc, argv, "--json")) {
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error(std::string("cannot write ") + json_path);
    out << core::explanations_to_json(argv[0], findings);
    std::printf("explanations written to %s\n", json_path);
  }

  if (findings.empty()) {
    std::printf("%s: no findings\n", argv[0]);
    return 0;
  }
  for (const auto& finding : findings) {
    std::printf("%s:%d: [%s] suspicious '%s' (p=%.3f)\n", argv[0], finding.line,
                slicer::category_name(finding.category), finding.token.c_str(),
                finding.probability);
    util::Table table({"line", "original", "token", "function", "weight"});
    for (const auto& a : finding.attributions) {
      table.add_row({std::to_string(a.line), a.original, a.token, a.function,
                     util::fmt(a.weight, 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 1;  // findings found => nonzero, CI-friendly (same as scan)
}

int cmd_report(int argc, char** argv) {
  core::ReportConfig config;
  // Defaults sized for the example corpus the CI quality gate trains on;
  // keep in sync with bench/QUALITY_baseline.json. Dedup is on so the
  // drop accounting reflects what a real evaluation discards.
  config.corpus.pairs_per_category = 60;
  config.pipeline.corpus.deduplicate = true;
  config.pipeline.model.embed_dim = 24;
  config.pipeline.model.conv_channels = 16;
  config.pipeline.train.epochs = 12;
  config.pipeline.train.lr = 0.002f;
  if (const char* pairs = arg_value(argc, argv, "--pairs")) {
    config.corpus.pairs_per_category = std::atoi(pairs);
  }
  if (const char* epochs = arg_value(argc, argv, "--epochs")) {
    config.pipeline.train.epochs = std::atoi(epochs);
  }
  if (!apply_precision_flag(argc, argv, &config.precision)) return usage();
  if (!apply_backend_flag(argc, argv, &config.pipeline.backend)) return usage();
  apply_thread_flags(argc, argv, config.pipeline);

  // --compare cnn,gat: one full report per backend, same corpus + fold.
  if (const char* compare = arg_value(argc, argv, "--compare")) {
    std::vector<std::string> backends = util::split(compare, ',');
    if (backends.size() < 2) {
      std::fprintf(stderr, "--compare expects 2+ comma-separated backends\n");
      return usage();
    }
    for (const std::string& backend : backends) {
      if (!models::valid_backend(backend)) {
        std::fprintf(stderr, "bad --compare backend '%s' (expected %s)\n",
                     backend.c_str(),
                     util::join(models::detector_backends(), "|").c_str());
        return usage();
      }
    }
    auto comparison = core::run_comparison_report(config, backends);
    if (const char* json_path = arg_value(argc, argv, "--json")) {
      std::ofstream out(json_path);
      if (!out) {
        throw std::runtime_error(std::string("cannot write ") + json_path);
      }
      out << core::comparison_to_json(comparison);
      std::printf("comparison written to %s\n", json_path);
    }
    std::printf("%s", core::comparison_summary(comparison).c_str());
    return 0;
  }

  auto report = core::run_quality_report(config);
  if (const char* json_path = arg_value(argc, argv, "--json")) {
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error(std::string("cannot write ") + json_path);
    out << core::report_to_json(report);
    std::printf("report written to %s\n", json_path);
  }
  std::printf("%s", core::report_summary(report).c_str());
  return 0;
}

/// Enables the observability subsystems when --metrics-out/--trace-out
/// are present and flushes the output files at end of scope — including
/// the error-return paths, so a failing run still leaves its partial
/// metrics behind for diagnosis.
class ObservabilityWriter {
 public:
  ObservabilityWriter(int argc, char** argv) {
    if (const char* path = arg_value(argc, argv, "--metrics-out")) {
      metrics_path_ = path;
      util::metrics::set_enabled(true);
    }
    if (const char* path = arg_value(argc, argv, "--trace-out")) {
      trace_path_ = path;
      util::trace::set_enabled(true);
    }
  }
  ~ObservabilityWriter() {
    try {
      if (!metrics_path_.empty()) util::metrics::write_json(metrics_path_);
      if (!trace_path_.empty()) util::trace::write_json(trace_path_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error writing observability output: %s\n", e.what());
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  ObservabilityWriter observability(argc - 2, argv + 2);
  try {
    if (command == "selftrain") return cmd_selftrain(argc - 2, argv + 2);
    if (command == "scan") return cmd_scan(argc - 2, argv + 2);
    if (command == "gadgets") return cmd_gadgets(argc - 2, argv + 2);
    if (command == "fuzz") return cmd_fuzz(argc - 2, argv + 2);
    if (command == "train") return cmd_train(argc - 2, argv + 2);
    if (command == "export-corpus") return cmd_export_corpus(argc - 2, argv + 2);
    if (command == "explain") return cmd_explain(argc - 2, argv + 2);
    if (command == "report") return cmd_report(argc - 2, argv + 2);
    if (command == "serve") return cmd_serve(argc - 2, argv + 2);
    if (command == "shutdown") return cmd_shutdown(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  return usage();
}
