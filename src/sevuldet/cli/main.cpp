// sevuldet — command-line interface to the library.
//
//   sevuldet selftrain --out model.txt [--pairs N] [--epochs N]
//       Train a detector on the synthetic SARD-like corpus and save it.
//   sevuldet scan <file.c> --model model.txt
//       Run the detection phase on a C source file; prints findings with
//       line numbers, categories, probabilities and attention tokens.
//   sevuldet gadgets <file.c> [--plain]
//       Print every (path-sensitive) code gadget of a source file.
//   sevuldet fuzz <file.c> [--execs N]
//       AFL-like coverage-guided fuzzing of the file's harness_main().
//   sevuldet train --dir DIR --manifest DIR/manifest.tsv --out model.txt
//       Train on user-supplied .c files labeled by a TSV manifest
//       (file<TAB>line<TAB>cwe per flagged line).
//   sevuldet export-corpus --dir DIR [--pairs N]
//       Write the synthetic SARD-like corpus to disk (+ manifest.tsv).
//   sevuldet explain <file.c> --model model.txt [--json FILE] [--top N]
//       Detection with attention provenance (paper Fig. 6): each finding
//       is traced token-by-token back to original identifiers and source
//       lines through the normalizer's invertible placeholder maps.
//   sevuldet report [--json FILE] [--pairs N] [--epochs N]
//       Train + evaluate on the synthetic corpus and print the quality
//       report (confusion, per-CWE/per-length F1, calibration, drops);
//       --json writes the machine-readable form for check_quality.py.
//   sevuldet serve --model model.bin --socket /tmp/sevuldet.sock
//       Long-lived scan daemon: loads the model once and serves scan /
//       explain / report-status / shutdown requests over a Unix socket,
//       micro-batching gadgets across concurrent requests.
//   sevuldet shutdown --socket /tmp/sevuldet.sock
//       Drain and stop a running daemon.
//   sevuldet top --socket /tmp/sevuldet.sock
//       Live view of a running daemon (QPS, latency percentiles, error
//       rates, queue depth, batch occupancy, RSS) by polling the
//       `metrics` op; --json / --prom print one machine-readable scrape.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "sevuldet/baselines/fuzzer.hpp"
#include "sevuldet/core/introspect.hpp"
#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/core/scan.hpp"
#include "sevuldet/dataset/manifest.hpp"
#include "sevuldet/dataset/sard_generator.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/serve/client.hpp"
#include "sevuldet/serve/server.hpp"
#include "sevuldet/slicer/gadget.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/mini_json.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/table.hpp"
#include "sevuldet/util/trace.hpp"

using namespace sevuldet;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sevuldet selftrain --out MODEL [--pairs N] [--epochs N]\n"
               "                     [--corpus-cache DIR] [--backend B]\n"
               "  sevuldet scan FILE.c --model MODEL [--daemon SOCK]\n"
               "                [--precision P]\n"
               "  sevuldet scan DIR --model MODEL [--daemon SOCK]\n"
               "                [--json FILE] [--threads N] [--precision P]\n"
               "  sevuldet gadgets FILE.c [--plain]\n"
               "  sevuldet fuzz FILE.c [--execs N]\n"
               "  sevuldet train --dir DIR [--manifest TSV] --out MODEL\n"
               "                 [--backend B]\n"
               "  sevuldet export-corpus --dir DIR [--pairs N]\n"
               "  sevuldet explain FILE.c --model MODEL [--json FILE]\n"
               "                  [--top N] [--precision P]\n"
               "  sevuldet report [--json FILE] [--pairs N] [--epochs N]\n"
               "                  [--precision P] [--backend B]\n"
               "                  [--compare B1,B2]\n"
               "  sevuldet serve --model MODEL --socket SOCK [--threads N]\n"
               "                 [--queue-depth N] [--batch N]\n"
               "                 [--batch-window MS] [--deadline MS]\n"
               "                 [--precision P] [--no-telemetry]\n"
               "                 [--telemetry-interval MS] [--history N]\n"
               "                 [--access-log FILE [--access-log-max-bytes N]\n"
               "                  [--access-log-max-files N]]\n"
               "                 [--slow-trace-ms MS --slow-trace-dir DIR\n"
               "                  [--slow-trace-max N]]\n"
               "  sevuldet shutdown --socket SOCK\n"
               "  sevuldet top --socket SOCK [--json | --prom]\n"
               "               [--interval SECS] [--count N] [--history N]\n"
               "\n"
               "  serve runs with the live telemetry plane on by default: the\n"
               "  daemon answers the `metrics` op (registry snapshot as JSON or\n"
               "  Prometheus text + a resource-sample history ring), assigns\n"
               "  every request a trace_id, and — when --access-log is set —\n"
               "  writes one schema-v1 JSON line per request to a size-rotated\n"
               "  log. --slow-trace-ms M dumps a Chrome trace (trace_id in the\n"
               "  span args) for every request slower than M ms into\n"
               "  --slow-trace-dir, keeping at most --slow-trace-max files.\n"
               "  scan --trace-id ID tags a daemon scan so its access-log line\n"
               "  and any slow-trace dump are joinable to this invocation.\n"
               "\n"
               "  top polls a daemon's `metrics` op: default is a refreshing\n"
               "  terminal view (every --interval secs, --count polls); --json\n"
               "  prints one raw scrape, --prom one Prometheus exposition.\n"
               "\n"
               "  scan --daemon SOCK sends the file to a running serve\n"
               "  daemon (same findings, model stays loaded); when no daemon\n"
               "  is listening the scan silently falls back to in-process.\n"
               "\n"
               "  scan DIR walks the tree (.c/.h), preprocesses each file\n"
               "  (includes, macros, conditionals), parses with per-region\n"
               "  error recovery, and scans files in parallel; findings are\n"
               "  identical to a serial scan, and identical through --daemon.\n"
               "  --json FILE writes the full tree result with per-file drop\n"
               "  accounting.\n"
               "\n"
               "  selftrain/train/scan accept --threads N (0 = all cores) to\n"
               "  parallelize preprocessing and detection; results are\n"
               "  identical to --threads 1. --w2v-threads N additionally\n"
               "  parallelizes word2vec pre-training (Hogwild, result is then\n"
               "  nondeterministic; default 1).\n"
               "\n"
               "  --precision P selects the inference precision: fp32 (exact\n"
               "  reference, default), fp16 or int8 (quantized conv/FC GEMMs —\n"
               "  faster, with a small bounded score drift; the quality gate\n"
               "  holds F1/AUC floors for int8). report evaluates its held-out\n"
               "  fold at P; training itself always runs fp32.\n"
               "\n"
               "  --backend B picks the detector backend for commands that\n"
               "  train from scratch: cnn (TextCNN+CBAM, default) or gat\n"
               "  (edge-aware graph attention over the gadget PDG). Saved\n"
               "  models record their backend, so scan/explain/serve load the\n"
               "  right one automatically. report --compare B1,B2 trains each\n"
               "  listed backend on the same corpus and fold and prints a\n"
               "  side-by-side table (--json writes every run's full report).\n"
               "\n"
               "  selftrain/train accept --corpus-cache DIR: memoize per-file\n"
               "  preprocessing (Steps I-III) in a content-addressed cache, so\n"
               "  repeat runs only re-slice changed files. Results are\n"
               "  identical with or without the cache.\n"
               "\n"
               "  every command accepts --metrics-out FILE.json (counters +\n"
               "  latency histograms, see util/metrics.hpp for the schema) and\n"
               "  --trace-out FILE.json (Chrome trace_event phase spans; open\n"
               "  in chrome://tracing or Perfetto). Instrumentation is off\n"
               "  unless one of these flags is given.\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const char* arg_value(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Shared --precision handling for the inference commands. Returns false
/// (after an error message) on an unknown value.
bool apply_precision_flag(int argc, char** argv, models::Precision* out) {
  if (const char* text = arg_value(argc, argv, "--precision")) {
    if (!models::parse_precision(text, out)) {
      std::fprintf(stderr, "bad --precision '%s' (expected fp32|fp16|int8)\n",
                   text);
      return false;
    }
  }
  return true;
}

/// Shared --backend handling for every command that builds or trains a
/// detector. Loading a saved model overrides this with the backend
/// recorded in the file (v1/v2 model files are always the CNN), so the
/// flag matters for the commands that train from scratch.
bool apply_backend_flag(int argc, char** argv, std::string* out) {
  if (const char* text = arg_value(argc, argv, "--backend")) {
    if (!models::valid_backend(text)) {
      std::fprintf(stderr, "bad --backend '%s' (expected %s)\n", text,
                   util::join(models::detector_backends(), "|").c_str());
      return false;
    }
    *out = text;
  }
  return true;
}

/// Shared --threads/--w2v-threads/--corpus-cache handling for the
/// training/scan commands.
void apply_thread_flags(int argc, char** argv, core::PipelineConfig& config) {
  if (const char* threads = arg_value(argc, argv, "--threads")) {
    config.corpus.threads = std::atoi(threads);
  }
  if (const char* w2v = arg_value(argc, argv, "--w2v-threads")) {
    config.word2vec.threads = std::atoi(w2v);
  }
  if (const char* cache = arg_value(argc, argv, "--corpus-cache")) {
    config.corpus.cache_dir = cache;
  }
}

int cmd_selftrain(int argc, char** argv) {
  const char* out = arg_value(argc, argv, "--out");
  if (out == nullptr) return usage();
  dataset::SardConfig corpus_config;
  if (const char* pairs = arg_value(argc, argv, "--pairs")) {
    corpus_config.pairs_per_category = std::atoi(pairs);
  }
  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (const char* epochs = arg_value(argc, argv, "--epochs")) {
    config.train.epochs = std::atoi(epochs);
  } else {
    config.train.epochs = 6;
  }
  config.train.lr = 0.002f;
  config.train.verbose = true;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);

  core::SeVulDet detector(config);
  std::printf("training %s backend on %d pairs/category...\n",
              config.backend.c_str(), corpus_config.pairs_per_category);
  auto result = detector.train(dataset::generate_sard_like(corpus_config));
  std::printf("trained on %zu gadgets in %.1fs (final loss %.4f)\n",
              result.samples, result.seconds, result.epoch_losses.back());
  detector.save(out);
  std::printf("model saved to %s\n", out);
  return 0;
}

int print_findings(const char* path, const std::vector<core::Finding>& findings) {
  if (findings.empty()) {
    std::printf("%s: no findings\n", path);
    return 0;
  }
  for (const auto& finding : findings) {
    std::printf("%s:%d: [%s] suspicious %s '%s' (p=%.3f)\n", path, finding.line,
                slicer::category_name(finding.category),
                finding.category == slicer::TokenCategory::FunctionCall
                    ? "call to"
                    : "use of",
                finding.token.c_str(), finding.probability);
    std::printf("  attention:");
    for (const auto& [token, weight] : finding.top_tokens) {
      std::printf(" %s(%.0f%%)", token.c_str(), weight * 100.0f);
    }
    std::printf("\n");
  }
  return 1;  // findings found => nonzero, CI-friendly
}

/// Directory-scan output: per-file findings in sorted-path order (the
/// single-file format, path-prefixed), then a one-line summary with the
/// frontend drop accounting. Deterministic for any thread count.
int print_tree_scan(const core::TreeScanResult& tree) {
  for (const auto& file : tree.files) {
    if (!file.ok) {
      std::printf("%s: unreadable (%s)\n", file.path.c_str(),
                  file.error.c_str());
      continue;
    }
    if (file.findings.empty()) continue;
    print_findings(file.path.c_str(), file.findings);
  }
  const core::TreeScanStats& s = tree.stats;
  std::printf(
      "scanned %d file(s), %d finding(s) (%d from recovered regions); "
      "%d file(s) recovered, %d unreadable; parse drop %.2f%%, "
      "preprocess drop %.2f%%\n",
      s.files, s.findings, s.fallback_findings, s.files_recovered,
      s.files_failed, s.parse_drop_rate * 100.0,
      s.preprocess_drop_rate * 100.0);
  return s.findings > 0 ? 1 : 0;
}

/// `sevuldet scan DIR`: parallel per-file scan of a source tree through
/// the real-world frontend (mmap + preprocess + error-resilient parse).
/// With --daemon the tree request is served by a running daemon — same
/// scan_tree(), so findings and drop counters are identical.
int cmd_scan_tree(int argc, char** argv) {
  const std::string root = argv[0];
  const char* json_path = arg_value(argc, argv, "--json");

  auto finish = [&](const core::TreeScanResult& tree) {
    if (json_path != nullptr) {
      std::ofstream out(json_path);
      if (!out) {
        throw std::runtime_error(std::string("cannot write ") + json_path);
      }
      out << serve::tree_scan_to_json(tree);
      std::printf("tree scan written to %s\n", json_path);
    }
    return print_tree_scan(tree);
  };

  if (const char* sock = arg_value(argc, argv, "--daemon")) {
    auto client = serve::Client::connect(sock);
    if (client.has_value()) {
      return finish(client->scan_tree(root));
    }
    std::fprintf(stderr, "no daemon at %s; scanning in-process\n", sock);
  }

  const char* model_path = arg_value(argc, argv, "--model");
  if (model_path == nullptr) return usage();
  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  detector.load(model_path);

  core::ScanOptions options;
  if (!apply_precision_flag(argc, argv, &options.detect.precision)) {
    return usage();
  }
  return finish(core::scan_tree(detector, root, options));
}

int cmd_scan(int argc, char** argv) {
  if (argc < 1) return usage();
  if (std::filesystem::is_directory(argv[0])) return cmd_scan_tree(argc, argv);
  const std::string source = read_file(argv[0]);

  // Daemon mode: ship the file to a running `sevuldet serve` (the model
  // stays loaded there — no per-scan load cost). Falls back to the
  // in-process path below when nobody is listening on the socket.
  if (const char* sock = arg_value(argc, argv, "--daemon")) {
    auto client = serve::Client::connect(sock);
    if (client.has_value()) {
      const char* trace_id = arg_value(argc, argv, "--trace-id");
      return print_findings(
          argv[0], client->scan(source, 10, false, -1.0, 60000,
                                trace_id != nullptr ? trace_id : ""));
    }
    std::fprintf(stderr, "no daemon at %s; scanning in-process\n", sock);
  }

  const char* model_path = arg_value(argc, argv, "--model");
  if (model_path == nullptr) return usage();
  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  detector.load(model_path);

  core::DetectOptions options;
  if (!apply_precision_flag(argc, argv, &options.precision)) return usage();
  return print_findings(argv[0], detector.detect(source, options));
}

int cmd_serve(int argc, char** argv) {
  const char* model_path = arg_value(argc, argv, "--model");
  const char* socket_path = arg_value(argc, argv, "--socket");
  if (model_path == nullptr || socket_path == nullptr) return usage();

  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  detector.load(model_path);

  serve::ServeOptions options;
  options.socket_path = socket_path;
  if (const char* threads = arg_value(argc, argv, "--threads")) {
    options.threads = std::atoi(threads);
    if (options.threads <= 0) {  // 0 = all cores, same as the other commands
      options.threads =
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    }
  }
  if (const char* depth = arg_value(argc, argv, "--queue-depth")) {
    options.queue_depth = std::atoi(depth);
  }
  if (const char* batch = arg_value(argc, argv, "--batch")) {
    options.max_batch = std::atoi(batch);
  }
  if (const char* window = arg_value(argc, argv, "--batch-window")) {
    options.batch_window_ms = std::atof(window);
  }
  if (const char* deadline = arg_value(argc, argv, "--deadline")) {
    options.default_deadline_ms = std::atof(deadline);
  }
  if (!apply_precision_flag(argc, argv, &options.precision)) return usage();

  // The live telemetry plane defaults ON for the CLI daemon (embedded
  // Server instances in tests/benches keep it off unless asked).
  options.telemetry = !has_flag(argc, argv, "--no-telemetry");
  if (const char* interval = arg_value(argc, argv, "--telemetry-interval")) {
    options.telemetry_interval_ms = std::atof(interval);
  }
  if (const char* history = arg_value(argc, argv, "--history")) {
    options.history_capacity = std::atoi(history);
  }
  if (const char* log_path = arg_value(argc, argv, "--access-log")) {
    options.access_log_path = log_path;
    if (const char* bytes = arg_value(argc, argv, "--access-log-max-bytes")) {
      options.access_log_max_bytes =
          static_cast<std::size_t>(std::atoll(bytes));
    }
    if (const char* files = arg_value(argc, argv, "--access-log-max-files")) {
      options.access_log_max_files = std::atoi(files);
    }
  }
  if (const char* slow = arg_value(argc, argv, "--slow-trace-ms")) {
    options.slow_trace_ms = std::atof(slow);
    const char* dir = arg_value(argc, argv, "--slow-trace-dir");
    if (dir == nullptr) {
      std::fprintf(stderr, "--slow-trace-ms requires --slow-trace-dir\n");
      return usage();
    }
    options.slow_trace_dir = dir;
    if (const char* max_files = arg_value(argc, argv, "--slow-trace-max")) {
      options.slow_trace_max_files = std::atoi(max_files);
    }
  }

  serve::Server server(detector, options);
  std::printf(
      "serving on %s (%d worker(s), queue depth %d, batch %d/%.1fms, %s, "
      "telemetry %s)\n",
      socket_path, options.threads, options.queue_depth, options.max_batch,
      options.batch_window_ms, models::precision_name(options.precision),
      options.telemetry ? "on" : "off");
  std::fflush(stdout);
  server.run();
  std::printf("shutdown complete: %s\n", server.status_json().c_str());
  return 0;
}

/// Ask a running daemon to drain and exit (the clean stop CI uses, so
/// the daemon's own --metrics-out/--trace-out snapshots get written).
int cmd_shutdown(int argc, char** argv) {
  const char* socket_path = arg_value(argc, argv, "--socket");
  if (socket_path == nullptr) return usage();
  auto client = serve::Client::connect(socket_path);
  if (!client.has_value()) {
    std::fprintf(stderr, "no daemon at %s\n", socket_path);
    return 1;
  }
  client->shutdown();
  std::printf("daemon at %s is shutting down\n", socket_path);
  return 0;
}

/// One polled view of a daemon's metrics payload, decoded from the
/// `metrics` op JSON for the terminal renderer.
struct TopSample {
  double polled_at = 0.0;  // client steady-clock seconds
  long long requests = 0;
  long long errors = 0;
  std::map<std::string, long long> errors_by_code;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  long long batch_flushes = 0, batch_gadgets = 0;
  double queue_depth = 0.0, rss_bytes = 0.0;
  double cpu_user = 0.0, cpu_sys = 0.0, open_fds = 0.0;
  /// QPS derived from the daemon's own history ring (last two samples),
  /// so even the first poll can show a rate. <0 = unknown.
  double ring_qps = -1.0;
};

TopSample decode_top_sample(const std::string& payload) {
  using util::mini_json::Parser;
  using util::mini_json::Value;
  TopSample sample;
  sample.polled_at = std::chrono::duration<double>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  Value doc = Parser(payload).parse();
  const Value& metrics = doc.at("metrics");
  if (metrics.has("counters")) {
    for (const auto& [name, value] : metrics.at("counters").object) {
      const long long count = static_cast<long long>(value.number);
      if (name == "serve.requests") sample.requests = count;
      if (name == "serve.batch.flushes") sample.batch_flushes = count;
      if (name == "serve.batch.gadgets") sample.batch_gadgets = count;
      if (name.rfind("serve.errors.", 0) == 0) {
        sample.errors_by_code[name.substr(13)] = count;
        sample.errors += count;
      }
    }
  }
  if (metrics.has("gauges")) {
    const Value& gauges = metrics.at("gauges");
    if (gauges.has("serve.queue_depth")) {
      sample.queue_depth = gauges.at("serve.queue_depth").number;
    }
    if (gauges.has("proc.rss_bytes")) {
      sample.rss_bytes = gauges.at("proc.rss_bytes").number;
    }
    if (gauges.has("proc.cpu_user_seconds")) {
      sample.cpu_user = gauges.at("proc.cpu_user_seconds").number;
    }
    if (gauges.has("proc.cpu_sys_seconds")) {
      sample.cpu_sys = gauges.at("proc.cpu_sys_seconds").number;
    }
    if (gauges.has("proc.open_fds")) {
      sample.open_fds = gauges.at("proc.open_fds").number;
    }
  }
  if (metrics.has("histograms") &&
      metrics.at("histograms").has("serve.request_ms")) {
    const Value& hist = metrics.at("histograms").at("serve.request_ms");
    sample.p50_ms = hist.at("p50").number;
    sample.p95_ms = hist.at("p95").number;
    sample.p99_ms = hist.at("p99").number;
  }
  if (doc.has("history") && doc.at("history").array.size() >= 2) {
    const auto& history = doc.at("history").array;
    const Value& a = history[history.size() - 2];
    const Value& b = history[history.size() - 1];
    const double dt = b.at("unix_seconds").number - a.at("unix_seconds").number;
    if (dt > 0.0) {
      sample.ring_qps =
          (b.at("requests").number - a.at("requests").number) / dt;
    }
  }
  return sample;
}

void render_top(const char* socket_path, const TopSample& now,
                const TopSample* previous, double interval_s, bool clear) {
  if (clear) std::printf("\x1b[2J\x1b[H");  // ANSI clear + home
  double qps = now.ring_qps;
  if (previous != nullptr && now.polled_at > previous->polled_at) {
    qps = static_cast<double>(now.requests - previous->requests) /
          (now.polled_at - previous->polled_at);
  }
  std::printf("sevuldet top — %s (every %.1fs)\n\n", socket_path, interval_s);
  if (qps >= 0.0) {
    std::printf("  qps        %10.1f\n", qps);
  } else {
    std::printf("  qps        %10s\n", "-");
  }
  std::printf("  requests   %10lld   errors %lld\n", now.requests, now.errors);
  std::printf("  latency ms  p50 %.2f   p95 %.2f   p99 %.2f\n", now.p50_ms,
              now.p95_ms, now.p99_ms);
  std::printf("  queue      %10.0f\n", now.queue_depth);
  if (now.batch_flushes > 0) {
    std::printf("  batch      %10.2f gadgets/flush (%lld flushes)\n",
                static_cast<double>(now.batch_gadgets) /
                    static_cast<double>(now.batch_flushes),
                now.batch_flushes);
  } else {
    std::printf("  batch      %10s\n", "-");
  }
  std::printf("  rss        %10.1f MiB\n", now.rss_bytes / (1024.0 * 1024.0));
  std::printf("  cpu        user %.1fs   sys %.1fs   fds %.0f\n", now.cpu_user,
              now.cpu_sys, now.open_fds);
  if (!now.errors_by_code.empty()) {
    std::printf("  errors by code:");
    for (const auto& [code, count] : now.errors_by_code) {
      if (count > 0) std::printf(" %s=%lld", code.c_str(), count);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

/// `sevuldet top`: live view of a running daemon via the metrics op.
int cmd_top(int argc, char** argv) {
  const char* socket_path = arg_value(argc, argv, "--socket");
  if (socket_path == nullptr) return usage();
  const bool json_mode = has_flag(argc, argv, "--json");
  const bool prom_mode = has_flag(argc, argv, "--prom");
  double interval_s = 2.0;
  if (const char* interval = arg_value(argc, argv, "--interval")) {
    interval_s = std::max(0.1, std::atof(interval));
  }
  int history = 120;
  if (const char* h = arg_value(argc, argv, "--history")) {
    history = std::atoi(h);
  }
  int count = json_mode || prom_mode ? 1 : 0;  // 0 = until interrupted
  if (const char* c = arg_value(argc, argv, "--count")) count = std::atoi(c);

  auto client = serve::Client::connect(socket_path);
  if (!client.has_value()) {
    std::fprintf(stderr, "no daemon at %s\n", socket_path);
    return 1;
  }
  if (prom_mode) {
    for (int i = 0; i != count; ++i) {
      const std::string payload = client->metrics("prometheus", history);
      util::mini_json::Value doc = util::mini_json::Parser(payload).parse();
      std::printf("%s", doc.at("exposition").str.c_str());
      std::fflush(stdout);
      if (i + 1 != count) {
        std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
      }
    }
    return 0;
  }
  if (json_mode) {
    for (int i = 0; i != count; ++i) {
      std::printf("%s\n", client->metrics("json", history).c_str());
      std::fflush(stdout);
      if (i + 1 != count) {
        std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
      }
    }
    return 0;
  }
  TopSample previous;
  bool have_previous = false;
  for (int i = 0; i != count; ++i) {
    const TopSample sample =
        decode_top_sample(client->metrics("json", history));
    render_top(socket_path, sample, have_previous ? &previous : nullptr,
               interval_s, /*clear=*/i > 0);
    previous = sample;
    have_previous = true;
    if (i + 1 != count) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
  }
  return 0;
}

int cmd_gadgets(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string source = read_file(argv[0]);
  graph::ProgramGraph program = graph::build_program_graph(source);
  slicer::GadgetOptions options;
  options.path_sensitive = !has_flag(argc, argv, "--plain");
  auto gadgets = slicer::generate_gadgets(program, options);
  std::printf("%zu gadget(s), %s\n\n", gadgets.size(),
              options.path_sensitive ? "path-sensitive" : "plain");
  for (const auto& gadget : gadgets) {
    std::printf("--- %s '%s' at %s:%d ---\n",
                slicer::category_name(gadget.token.category),
                gadget.token.text.c_str(), gadget.token.function.c_str(),
                gadget.token.line);
    for (const auto& line : gadget.lines) {
      std::printf("  %3d %s %s\n", line.line, line.is_boundary ? "+" : " ",
                  line.text.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string source = read_file(argv[0]);
  auto unit = frontend::parse(source);
  baselines::FuzzConfig config;
  if (const char* execs = arg_value(argc, argv, "--execs")) {
    config.executions = std::atoi(execs);
  }
  auto report = baselines::fuzz_program(unit, config);
  std::printf("executions: %d  coverage edges: %zu  queue: %zu\n",
              report.executions_used, report.coverage_edges, report.queue_size);
  if (!report.found) {
    std::printf("no crash or hang found\n");
    return 0;
  }
  std::printf("FOUND %s at line %d; trigger bytes:",
              interp::outcome_name(report.outcome), report.fault_line);
  for (std::uint8_t b : report.trigger) std::printf(" %02x", b);
  std::printf("\n");
  return 1;
}

int cmd_train(int argc, char** argv) {
  const char* dir = arg_value(argc, argv, "--dir");
  const char* out = arg_value(argc, argv, "--out");
  if (dir == nullptr || out == nullptr) return usage();
  const char* manifest = arg_value(argc, argv, "--manifest");

  auto cases = dataset::load_labeled_directory(dir, manifest ? manifest : "");
  long vulnerable = 0;
  for (const auto& tc : cases) vulnerable += tc.vulnerable ? 1 : 0;
  std::printf("loaded %zu programs (%ld flagged) from %s\n", cases.size(),
              vulnerable, dir);

  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  config.train.epochs = 6;
  config.train.lr = 0.002f;
  config.train.verbose = true;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  auto result = detector.train(cases);
  std::printf("trained on %zu gadgets in %.1fs\n", result.samples, result.seconds);
  detector.save(out);
  std::printf("model saved to %s\n", out);
  return 0;
}

int cmd_export_corpus(int argc, char** argv) {
  const char* dir = arg_value(argc, argv, "--dir");
  if (dir == nullptr) return usage();
  dataset::SardConfig config;
  if (const char* pairs = arg_value(argc, argv, "--pairs")) {
    config.pairs_per_category = std::atoi(pairs);
  }
  auto cases = dataset::generate_sard_like(config);
  dataset::export_corpus(cases, dir);
  std::printf("wrote %zu programs + manifest.tsv to %s\n", cases.size(), dir);
  return 0;
}

int cmd_explain(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* model_path = arg_value(argc, argv, "--model");
  if (model_path == nullptr) return usage();
  const std::string source = read_file(argv[0]);

  core::PipelineConfig config;
  config.model.embed_dim = 24;
  config.model.conv_channels = 16;
  if (!apply_backend_flag(argc, argv, &config.backend)) return usage();
  apply_thread_flags(argc, argv, config);
  core::SeVulDet detector(config);
  detector.load(model_path);

  core::DetectOptions options;
  options.explain = true;
  if (!apply_precision_flag(argc, argv, &options.precision)) return usage();
  if (const char* top = arg_value(argc, argv, "--top")) {
    options.top_k = std::atoi(top);
  }
  auto findings = detector.detect(source, options);

  if (const char* json_path = arg_value(argc, argv, "--json")) {
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error(std::string("cannot write ") + json_path);
    out << core::explanations_to_json(argv[0], findings);
    std::printf("explanations written to %s\n", json_path);
  }

  if (findings.empty()) {
    std::printf("%s: no findings\n", argv[0]);
    return 0;
  }
  for (const auto& finding : findings) {
    std::printf("%s:%d: [%s] suspicious '%s' (p=%.3f)\n", argv[0], finding.line,
                slicer::category_name(finding.category), finding.token.c_str(),
                finding.probability);
    util::Table table({"line", "original", "token", "function", "weight"});
    for (const auto& a : finding.attributions) {
      table.add_row({std::to_string(a.line), a.original, a.token, a.function,
                     util::fmt(a.weight, 4)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 1;  // findings found => nonzero, CI-friendly (same as scan)
}

int cmd_report(int argc, char** argv) {
  core::ReportConfig config;
  // Defaults sized for the example corpus the CI quality gate trains on;
  // keep in sync with bench/QUALITY_baseline.json. Dedup is on so the
  // drop accounting reflects what a real evaluation discards.
  config.corpus.pairs_per_category = 60;
  config.pipeline.corpus.deduplicate = true;
  config.pipeline.model.embed_dim = 24;
  config.pipeline.model.conv_channels = 16;
  config.pipeline.train.epochs = 12;
  config.pipeline.train.lr = 0.002f;
  if (const char* pairs = arg_value(argc, argv, "--pairs")) {
    config.corpus.pairs_per_category = std::atoi(pairs);
  }
  if (const char* epochs = arg_value(argc, argv, "--epochs")) {
    config.pipeline.train.epochs = std::atoi(epochs);
  }
  if (!apply_precision_flag(argc, argv, &config.precision)) return usage();
  if (!apply_backend_flag(argc, argv, &config.pipeline.backend)) return usage();
  apply_thread_flags(argc, argv, config.pipeline);

  // --compare cnn,gat: one full report per backend, same corpus + fold.
  if (const char* compare = arg_value(argc, argv, "--compare")) {
    std::vector<std::string> backends = util::split(compare, ',');
    if (backends.size() < 2) {
      std::fprintf(stderr, "--compare expects 2+ comma-separated backends\n");
      return usage();
    }
    for (const std::string& backend : backends) {
      if (!models::valid_backend(backend)) {
        std::fprintf(stderr, "bad --compare backend '%s' (expected %s)\n",
                     backend.c_str(),
                     util::join(models::detector_backends(), "|").c_str());
        return usage();
      }
    }
    auto comparison = core::run_comparison_report(config, backends);
    if (const char* json_path = arg_value(argc, argv, "--json")) {
      std::ofstream out(json_path);
      if (!out) {
        throw std::runtime_error(std::string("cannot write ") + json_path);
      }
      out << core::comparison_to_json(comparison);
      std::printf("comparison written to %s\n", json_path);
    }
    std::printf("%s", core::comparison_summary(comparison).c_str());
    return 0;
  }

  auto report = core::run_quality_report(config);
  if (const char* json_path = arg_value(argc, argv, "--json")) {
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error(std::string("cannot write ") + json_path);
    out << core::report_to_json(report);
    std::printf("report written to %s\n", json_path);
  }
  std::printf("%s", core::report_summary(report).c_str());
  return 0;
}

/// Enables the observability subsystems when --metrics-out/--trace-out
/// are present and flushes the output files at end of scope — including
/// the error-return paths, so a failing run still leaves its partial
/// metrics behind for diagnosis.
class ObservabilityWriter {
 public:
  ObservabilityWriter(int argc, char** argv) {
    if (const char* path = arg_value(argc, argv, "--metrics-out")) {
      metrics_path_ = path;
      util::metrics::set_enabled(true);
    }
    if (const char* path = arg_value(argc, argv, "--trace-out")) {
      trace_path_ = path;
      util::trace::set_enabled(true);
    }
  }
  ~ObservabilityWriter() {
    try {
      if (!metrics_path_.empty()) util::metrics::write_json(metrics_path_);
      if (!trace_path_.empty()) util::trace::write_json(trace_path_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error writing observability output: %s\n", e.what());
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  ObservabilityWriter observability(argc - 2, argv + 2);
  try {
    if (command == "selftrain") return cmd_selftrain(argc - 2, argv + 2);
    if (command == "scan") return cmd_scan(argc - 2, argv + 2);
    if (command == "gadgets") return cmd_gadgets(argc - 2, argv + 2);
    if (command == "fuzz") return cmd_fuzz(argc - 2, argv + 2);
    if (command == "train") return cmd_train(argc - 2, argv + 2);
    if (command == "export-corpus") return cmd_export_corpus(argc - 2, argv + 2);
    if (command == "explain") return cmd_explain(argc - 2, argv + 2);
    if (command == "report") return cmd_report(argc - 2, argv + 2);
    if (command == "serve") return cmd_serve(argc - 2, argv + 2);
    if (command == "shutdown") return cmd_shutdown(argc - 2, argv + 2);
    if (command == "top") return cmd_top(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  return usage();
}
