#include "sevuldet/nn/serialize.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sevuldet::nn {

std::string serialize_params(const ParamStore& store) {
  std::ostringstream out;
  out.precision(std::numeric_limits<float>::max_digits10);
  for (const auto& [name, node] : store.all()) {
    out << name << ' ' << node->value.rows() << ' ' << node->value.cols() << '\n';
    for (std::size_t i = 0; i < node->value.size(); ++i) {
      if (i > 0) out << ' ';
      out << node->value[i];
    }
    out << '\n';
  }
  return out.str();
}

void deserialize_params(ParamStore& store, const std::string& text) {
  std::istringstream in(text);
  std::string name;
  int rows = 0, cols = 0;
  std::size_t loaded = 0;
  while (in >> name >> rows >> cols) {
    NodePtr node = store.find(name);
    if (node == nullptr) {
      throw std::runtime_error("deserialize: unknown parameter " + name);
    }
    if (node->value.rows() != rows || node->value.cols() != cols) {
      throw std::runtime_error("deserialize: shape mismatch for " + name);
    }
    for (std::size_t i = 0; i < node->value.size(); ++i) {
      if (!(in >> node->value[i])) {
        throw std::runtime_error("deserialize: truncated data for " + name);
      }
    }
    ++loaded;
  }
  if (loaded != store.all().size()) {
    throw std::runtime_error("deserialize: expected " +
                             std::to_string(store.all().size()) +
                             " parameters, got " + std::to_string(loaded));
  }
}

void serialize_params_binary(const ParamStore& store, util::ByteWriter& out) {
  out.u32(static_cast<std::uint32_t>(store.all().size()));
  for (const auto& [name, node] : store.all()) {
    out.str(name);
    out.u32(static_cast<std::uint32_t>(node->value.rows()));
    out.u32(static_cast<std::uint32_t>(node->value.cols()));
    out.f32_array(node->value.data(), node->value.size());
  }
}

void deserialize_params_binary(ParamStore& store, util::ByteReader& in) {
  const std::uint32_t count = in.u32();
  if (count != store.all().size()) {
    throw std::runtime_error("deserialize: expected " +
                             std::to_string(store.all().size()) +
                             " parameters, got " + std::to_string(count));
  }
  for (std::uint32_t p = 0; p < count; ++p) {
    const std::string name = in.str();
    NodePtr node = store.find(name);
    if (node == nullptr) {
      throw std::runtime_error("deserialize: unknown parameter " + name);
    }
    const int rows = static_cast<int>(in.u32());
    const int cols = static_cast<int>(in.u32());
    if (node->value.rows() != rows || node->value.cols() != cols) {
      throw std::runtime_error("deserialize: shape mismatch for " + name);
    }
    in.f32_array(node->value.data(), node->value.size());
  }
}

void save_params(const ParamStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << serialize_params(store);
}

void load_params(ParamStore& store, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  deserialize_params(store, buf.str());
}

}  // namespace sevuldet::nn
