#include "sevuldet/nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace sevuldet::nn {

NodePtr ParamStore::add(const std::string& name, Tensor init) {
  for (const auto& [existing, node] : params_) {
    if (existing == name) {
      throw std::invalid_argument("duplicate parameter name: " + name);
    }
  }
  NodePtr node = param(std::move(init));
  params_.emplace_back(name, node);
  return node;
}

NodePtr ParamStore::find(const std::string& name) const {
  for (const auto& [existing, node] : params_) {
    if (existing == name) return node;
  }
  return nullptr;
}

std::size_t ParamStore::parameter_count() const {
  std::size_t total = 0;
  for (const auto& [name, node] : params_) total += node->value.size();
  return total;
}

Tensor xavier_uniform(int fan_in, int fan_out, util::Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(fan_in, fan_out, rng, bound);
}

// ---------------------------------------------------------------------------

Dense::Dense(ParamStore& store, const std::string& name, int in, int out,
             util::Rng& rng)
    : w_(store.add(name + ".w", xavier_uniform(in, out, rng))),
      b_(store.add(name + ".b", Tensor(1, out))) {}

NodePtr Dense::forward(const NodePtr& x) const {
  return add_row(matmul(x, w_), b_);
}

Conv1d::Conv1d(ParamStore& store, const std::string& name, int in, int out,
               int kernel, int pad, util::Rng& rng)
    : w_(store.add(name + ".w", xavier_uniform(kernel * in, out, rng))),
      b_(store.add(name + ".b", Tensor(1, out))),
      kernel_(kernel),
      pad_(pad) {}

NodePtr Conv1d::forward(const NodePtr& x) const {
  return add_row(matmul(im2row(x, kernel_, pad_), w_), b_);
}

// ---------------------------------------------------------------------------

TokenAttention::TokenAttention(ParamStore& store, const std::string& name,
                               int embed_dim, int attn_dim, util::Rng& rng)
    : ww_(store.add(name + ".w", xavier_uniform(embed_dim, attn_dim, rng))),
      bw_(store.add(name + ".b", Tensor(1, attn_dim))),
      // u_w starts at zero: α is uniform and (with the T-scaling below)
      // the layer is exactly the identity at init.
      uw_(store.add(name + ".u", Tensor(attn_dim, 1))) {}

NodePtr TokenAttention::forward(const NodePtr& x) {
  // u_i = tanh(W_w x_i + b_w); α = softmax(u_i · u_w); x̂_i = α_i x_i.
  NodePtr u = tanh_op(add_row(matmul(x, ww_), bw_));  // [T, A]
  NodePtr scores = matmul(u, uw_);                    // [T, 1]
  NodePtr alpha = softmax_col(scores);                // [T, 1]
  last_weights_.assign(alpha->value.data(),
                       alpha->value.data() + alpha->value.size());
  // The paper scales tokens by α directly (eq. 4); multiplying by T keeps
  // activation magnitude independent of sequence length, which matters
  // for flexible-length input feeding a shared conv trunk.
  NodePtr scaled =
      scale(alpha, static_cast<float>(x->value.rows()));
  return mul_col_broadcast(x, scaled);
}

// ---------------------------------------------------------------------------

ChannelAttention::ChannelAttention(ParamStore& store, const std::string& name,
                                   int channels, int reduction, util::Rng& rng) {
  const int mid = std::max(1, channels / reduction);
  w0_ = store.add(name + ".w0", xavier_uniform(channels, mid, rng));
  b0_ = store.add(name + ".b0", Tensor(1, mid));
  w1_ = store.add(name + ".w1", xavier_uniform(mid, channels, rng));
  // Gate bias starts positive so σ(gate) ≈ 0.9 at init: the block is a
  // near-identity and learns to attenuate, instead of halving the signal
  // from step one (the usual gated-block convergence handicap).
  Tensor b1(1, channels);
  b1.fill(2.0f);
  b1_ = store.add(name + ".b1", std::move(b1));
}

NodePtr ChannelAttention::forward(const NodePtr& f) const {
  auto mlp = [this](const NodePtr& v) {
    return add_row(matmul(relu(add_row(matmul(v, w0_), b0_)), w1_), b1_);
  };
  NodePtr avg = reduce_rows_mean(f);  // [1, C]
  NodePtr max = reduce_rows_max(f);   // [1, C]
  NodePtr mc = sigmoid(add(mlp(avg), mlp(max)));
  return mul_row_broadcast(f, mc);  // F' = Mc(F) ⊗ F
}

SpatialAttention::SpatialAttention(ParamStore& store, const std::string& name,
                                   util::Rng& rng, int kernel)
    : conv_(std::make_unique<Conv1d>(store, name + ".conv", 2, 1, kernel,
                                     kernel / 2, rng)) {
  // Same identity-at-init trick as the channel gate.
  NodePtr bias = store.find(name + ".conv.b");
  if (bias != nullptr) bias->value.fill(2.0f);
}

NodePtr SpatialAttention::forward(const NodePtr& f) {
  NodePtr avg = reduce_cols_mean(f);  // [T, 1]
  NodePtr max = reduce_cols_max(f);   // [T, 1]
  NodePtr stacked = concat_cols(avg, max);  // [T, 2]
  NodePtr ms = sigmoid(conv_->forward(stacked));  // [T, 1]
  last_weights_.assign(ms->value.data(), ms->value.data() + ms->value.size());
  return mul_col_broadcast(f, ms);  // F'' = Ms(F') ⊗ F'
}

Cbam::Cbam(ParamStore& store, const std::string& name, int channels,
           int reduction, util::Rng& rng, bool sequential)
    : channel_(store, name + ".channel", channels, reduction, rng),
      spatial_(store, name + ".spatial", rng),
      sequential_(sequential) {}

NodePtr Cbam::forward(const NodePtr& f) {
  if (sequential_) {
    return spatial_.forward(channel_.forward(f));
  }
  // Parallel variant for the ablation: average the two refined maps.
  NodePtr by_channel = channel_.forward(f);
  NodePtr by_spatial = spatial_.forward(f);
  return scale(add(by_channel, by_spatial), 0.5f);
}

// ---------------------------------------------------------------------------

LstmCell::LstmCell(ParamStore& store, const std::string& name, int input,
                   int hidden, util::Rng& rng)
    : w_(store.add(name + ".w", xavier_uniform(input + hidden, 4 * hidden, rng))),
      b_(store.add(name + ".b", Tensor(1, 4 * hidden))),
      input_(input),
      hidden_(hidden) {
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (int j = hidden_; j < 2 * hidden_; ++j) b_->value.at(0, j) = 1.0f;
}

LstmCell::State LstmCell::initial() const {
  return {constant(make_activation(1, hidden_)),
          constant(make_activation(1, hidden_))};
}

LstmCell::State LstmCell::step(const NodePtr& x, const State& prev) const {
  NodePtr xh = concat_cols(x, prev.h);               // [1, input+hidden]
  NodePtr gates = add_row(matmul(xh, w_), b_);       // [1, 4H]
  NodePtr i = sigmoid(slice_cols(gates, 0, hidden_));
  NodePtr f = sigmoid(slice_cols(gates, hidden_, 2 * hidden_));
  NodePtr g = tanh_op(slice_cols(gates, 2 * hidden_, 3 * hidden_));
  NodePtr o = sigmoid(slice_cols(gates, 3 * hidden_, 4 * hidden_));
  NodePtr c = add(mul(f, prev.c), mul(i, g));
  NodePtr h = mul(o, tanh_op(c));
  return {h, c};
}

GruCell::GruCell(ParamStore& store, const std::string& name, int input,
                 int hidden, util::Rng& rng)
    : wz_(store.add(name + ".wz", xavier_uniform(input + hidden, hidden, rng))),
      wr_(store.add(name + ".wr", xavier_uniform(input + hidden, hidden, rng))),
      wh_(store.add(name + ".wh", xavier_uniform(input + hidden, hidden, rng))),
      bz_(store.add(name + ".bz", Tensor(1, hidden))),
      br_(store.add(name + ".br", Tensor(1, hidden))),
      bh_(store.add(name + ".bh", Tensor(1, hidden))),
      input_(input),
      hidden_(hidden) {}

NodePtr GruCell::initial() const {
  return constant(make_activation(1, hidden_));
}

NodePtr GruCell::step(const NodePtr& x, const NodePtr& h_prev) const {
  NodePtr xh = concat_cols(x, h_prev);
  NodePtr z = sigmoid(add_row(matmul(xh, wz_), bz_));
  NodePtr r = sigmoid(add_row(matmul(xh, wr_), br_));
  NodePtr xrh = concat_cols(x, mul(r, h_prev));
  NodePtr h_cand = tanh_op(add_row(matmul(xrh, wh_), bh_));
  // h = (1 - z) * h_prev + z * h_cand
  Tensor ones = make_activation(1, hidden_);
  ones.fill(1.0f);
  NodePtr one_minus_z = sub(constant(std::move(ones)), z);
  return add(mul(one_minus_z, h_prev), mul(z, h_cand));
}

// ---------------------------------------------------------------------------

BiRnn::BiRnn(ParamStore& store, const std::string& name, RnnKind kind,
             int input, int hidden, util::Rng& rng)
    : kind_(kind), hidden_(hidden) {
  if (kind == RnnKind::Lstm) {
    lstm_fwd_ = std::make_unique<LstmCell>(store, name + ".fwd", input, hidden, rng);
    lstm_bwd_ = std::make_unique<LstmCell>(store, name + ".bwd", input, hidden, rng);
  } else {
    gru_fwd_ = std::make_unique<GruCell>(store, name + ".fwd", input, hidden, rng);
    gru_bwd_ = std::make_unique<GruCell>(store, name + ".bwd", input, hidden, rng);
  }
}

NodePtr BiRnn::forward(const NodePtr& x) const {
  const int t = x->value.rows();
  std::vector<NodePtr>& steps = steps_;
  steps.clear();  // keeps capacity across forwards
  for (int i = 0; i < t; ++i) {
    steps.push_back(slice_rows(x, i, i + 1));
  }
  // forward direction
  NodePtr h_fwd, h_bwd;
  if (kind_ == RnnKind::Lstm) {
    auto state = lstm_fwd_->initial();
    for (int i = 0; i < t; ++i) state = lstm_fwd_->step(steps[static_cast<std::size_t>(i)], state);
    h_fwd = state.h;
    state = lstm_bwd_->initial();
    for (int i = t - 1; i >= 0; --i) state = lstm_bwd_->step(steps[static_cast<std::size_t>(i)], state);
    h_bwd = state.h;
  } else {
    NodePtr h = gru_fwd_->initial();
    for (int i = 0; i < t; ++i) h = gru_fwd_->step(steps[static_cast<std::size_t>(i)], h);
    h_fwd = h;
    h = gru_bwd_->initial();
    for (int i = t - 1; i >= 0; --i) h = gru_bwd_->step(steps[static_cast<std::size_t>(i)], h);
    h_bwd = h;
  }
  return concat_cols(h_fwd, h_bwd);
}

}  // namespace sevuldet::nn
