#include "sevuldet/nn/word2vec.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "sevuldet/nn/kernels.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/thread_pool.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::nn {

Word2Vec::Word2Vec(const normalize::Vocabulary& vocab, const Word2VecConfig& config)
    : vocab_(vocab),
      config_(config),
      in_(vocab.size(), config.dim),
      out_(vocab.size(), config.dim),
      rng_(config.seed) {
  // Standard init: input vectors uniform in [-0.5/dim, 0.5/dim], output
  // vectors zero.
  const float bound = 0.5f / static_cast<float>(config_.dim);
  for (int v = normalize::Vocabulary::kUnk; v < vocab.size(); ++v) {
    for (int d = 0; d < config_.dim; ++d) {
      in_.at(v, d) = static_cast<float>(rng_.uniform_real(-bound, bound));
    }
  }
  // Unigram^0.75 table for negative sampling.
  unigram_cdf_.resize(static_cast<std::size_t>(vocab.size()), 0.0);
  double acc = 0.0;
  for (int v = 2; v < vocab.size(); ++v) {  // skip pad/unk
    acc += std::pow(static_cast<double>(vocab.frequency(v)), 0.75);
    unigram_cdf_[static_cast<std::size_t>(v)] = acc;
    total_tokens_ += vocab.frequency(v);
  }
}

int Word2Vec::sample_negative(util::Rng& rng) {
  if (unigram_cdf_.empty() || unigram_cdf_.back() <= 0.0) {
    return normalize::Vocabulary::kUnk;
  }
  const double target = rng.uniform_real() * unigram_cdf_.back();
  auto it = std::lower_bound(unigram_cdf_.begin(), unigram_cdf_.end(), target);
  return static_cast<int>(it - unigram_cdf_.begin());
}

void Word2Vec::train_worker(const std::vector<std::vector<int>>& sentences,
                            std::size_t offset, std::size_t stride,
                            long long total_steps, std::atomic<long long>& step,
                            util::Rng& rng) {
  std::vector<float> grad_center(static_cast<std::size_t>(config_.dim));

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t si = offset; si < sentences.size(); si += stride) {
      const auto& sentence = sentences[si];
      for (std::size_t pos = 0; pos < sentence.size(); ++pos) {
        const long long now = step.fetch_add(1, std::memory_order_relaxed) + 1;
        const int center = sentence[pos];
        if (center <= normalize::Vocabulary::kUnk) continue;
        // Frequent-token subsampling.
        if (config_.subsample > 0.0 && total_tokens_ > 0) {
          const double freq = static_cast<double>(vocab_.frequency(center)) /
                              static_cast<double>(total_tokens_);
          if (freq > config_.subsample) {
            const double keep = std::sqrt(config_.subsample / freq);
            if (rng.uniform_real() > keep) continue;
          }
        }
        const float lr = std::max(
            config_.min_lr,
            config_.lr * (1.0f - static_cast<float>(now) /
                                     static_cast<float>(total_steps)));
        const int window =
            1 + static_cast<int>(rng.uniform(static_cast<std::uint64_t>(config_.window)));
        const std::size_t lo = pos >= static_cast<std::size_t>(window)
                                   ? pos - static_cast<std::size_t>(window)
                                   : 0;
        const std::size_t hi =
            std::min(sentence.size(), pos + static_cast<std::size_t>(window) + 1);
        for (std::size_t ctx_pos = lo; ctx_pos < hi; ++ctx_pos) {
          if (ctx_pos == pos) continue;
          const int context = sentence[ctx_pos];
          if (context <= normalize::Vocabulary::kUnk) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // One positive + k negative examples.
          for (int k = 0; k <= config_.negatives; ++k) {
            int target_id;
            float label;
            if (k == 0) {
              target_id = context;
              label = 1.0f;
            } else {
              target_id = sample_negative(rng);
              if (target_id == context || target_id <= normalize::Vocabulary::kUnk) {
                continue;
              }
              label = 0.0f;
            }
            const std::size_t dim = static_cast<std::size_t>(config_.dim);
            float* in_row = &in_.at(center, 0);
            float* out_row = &out_.at(target_id, 0);
            const float dot = kernels::dot(dim, in_row, out_row);
            const float pred = 1.0f / (1.0f + std::exp(-dot));
            const float g = (pred - label) * lr;
            // grad_center reads out_row before out_row moves, exactly as
            // the fused scalar loop did.
            kernels::axpy(dim, g, out_row, grad_center.data());
            kernels::axpy(dim, -g, in_row, out_row);
          }
          kernels::axpy(static_cast<std::size_t>(config_.dim), -1.0f,
                        grad_center.data(), &in_.at(center, 0));
        }
      }
    }
  }
}

void Word2Vec::train(const std::vector<std::vector<int>>& sentences) {
  util::trace::ScopedSpan span("word2vec.train");
  long long corpus_tokens = 0;
  for (const auto& s : sentences) corpus_tokens += static_cast<long long>(s.size());
  const long long total_steps =
      std::max<long long>(1, corpus_tokens * config_.epochs);
  std::atomic<long long> step{0};
  util::metrics::counter_add("word2vec.sentences",
                             static_cast<long long>(sentences.size()));
  util::metrics::counter_add("word2vec.tokens",
                             corpus_tokens * config_.epochs);

  const int threads = util::resolve_threads(config_.threads);
  if (threads <= 1 || sentences.size() < 2) {
    // Serial path: same RNG, same visit order as ever — bit-exact.
    train_worker(sentences, 0, 1, total_steps, step, rng_);
    return;
  }

  // Hogwild (Niu et al.): workers stripe the sentences and update the
  // shared in_/out_ matrices without locks. Sparse updates rarely
  // collide, so the occasional lost write costs a little accuracy noise
  // but no correctness; the price is bit-level nondeterminism, which is
  // why threads defaults to 1.
  const std::size_t stride =
      std::min<std::size_t>(static_cast<std::size_t>(threads), sentences.size());
  std::vector<util::Rng> rngs;
  rngs.reserve(stride);
  for (std::size_t t = 0; t < stride; ++t) {
    rngs.emplace_back(config_.seed + 0x9E3779B97F4A7C15ULL * (t + 1));
  }
  std::vector<std::thread> workers;
  workers.reserve(stride);
  for (std::size_t t = 0; t < stride; ++t) {
    workers.emplace_back([&, t] {
      train_worker(sentences, t, stride, total_steps, step, rngs[t]);
    });
  }
  for (auto& worker : workers) worker.join();
}

float Word2Vec::similarity(int a, int b) const {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int d = 0; d < config_.dim; ++d) {
    dot += static_cast<double>(in_.at(a, d)) * in_.at(b, d);
    na += static_cast<double>(in_.at(a, d)) * in_.at(a, d);
    nb += static_cast<double>(in_.at(b, d)) * in_.at(b, d);
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

std::vector<int> Word2Vec::nearest(int id, int k) const {
  std::vector<std::pair<float, int>> scored;
  for (int v = 2; v < vocab_.size(); ++v) {
    if (v == id) continue;
    scored.emplace_back(similarity(id, v), v);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<int> out;
  for (int i = 0; i < k && i < static_cast<int>(scored.size()); ++i) {
    out.push_back(scored[static_cast<std::size_t>(i)].second);
  }
  return out;
}

}  // namespace sevuldet::nn
