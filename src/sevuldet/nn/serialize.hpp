// Model parameter serialization. Two formats:
//  - text: a simple self-describing format ("name rows cols\n" followed
//    by whitespace-separated floats printed at max_digits10), kept for
//    readability and v1 model-file back-compat;
//  - binary: length-prefixed names and raw little-endian f32 payloads via
//    util::ByteWriter/ByteReader — the fast path the v2 model format and
//    the compiled-corpus subsystem use.
// Both round-trip bit-faithfully.
#pragma once

#include <string>

#include "sevuldet/nn/layers.hpp"
#include "sevuldet/util/binary_io.hpp"

namespace sevuldet::nn {

std::string serialize_params(const ParamStore& store);

/// Load values into an existing store (shapes must match by name).
/// Throws std::runtime_error on missing names or shape mismatches.
void deserialize_params(ParamStore& store, const std::string& text);

/// Binary fast path: param count, then per parameter a length-prefixed
/// name, u32 rows/cols, and the raw f32 values.
void serialize_params_binary(const ParamStore& store, util::ByteWriter& out);

/// Reads what serialize_params_binary wrote. Throws std::runtime_error on
/// unknown names, shape mismatches, missing parameters, or truncation.
void deserialize_params_binary(ParamStore& store, util::ByteReader& in);

/// File helpers.
void save_params(const ParamStore& store, const std::string& path);
void load_params(ParamStore& store, const std::string& path);

}  // namespace sevuldet::nn
