// Model parameter serialization: a simple self-describing text format
// ("name rows cols\n" followed by whitespace-separated floats) so trained
// detectors can be saved and reloaded across processes. Values round-trip
// through max_digits10 so reload is bit-faithful.
#pragma once

#include <string>

#include "sevuldet/nn/layers.hpp"

namespace sevuldet::nn {

std::string serialize_params(const ParamStore& store);

/// Load values into an existing store (shapes must match by name).
/// Throws std::runtime_error on missing names or shape mismatches.
void deserialize_params(ParamStore& store, const std::string& text);

/// File helpers.
void save_params(const ParamStore& store, const std::string& path);
void load_params(ParamStore& store, const std::string& path);

}  // namespace sevuldet::nn
