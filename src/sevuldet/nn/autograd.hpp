// Tape-based reverse-mode automatic differentiation. A forward pass
// builds a graph of Nodes (shared_ptr-owned); backward() runs the tape
// in reverse topological order and accumulates gradients into every node
// with requires_grad. Long-lived parameter nodes are reused across
// graphs.
//
// Activations have two allocation modes:
//   - heap mode (no Graph active): every node and tensor is a fresh
//     heap allocation, exactly like the original implementation;
//   - graph mode (a GraphScope is open): nodes come from the Graph's
//     recycling pool and tensors from its TensorArena, so a steady-state
//     forward/backward over one sample performs zero heap allocation.
// The two modes are byte-identical in results — the arena only changes
// where the floats live, never the arithmetic (kernels_test asserts
// this bitwise).
//
// Every op validates shapes and carries an explicit backward closure;
// tests verify each against numeric gradients (see autograd_test.cpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "sevuldet/nn/tensor.hpp"
#include "sevuldet/util/rng.hpp"

namespace sevuldet::nn {

class Graph;

/// Fixed-capacity, non-allocating stand-in for std::function<void()>.
/// Backward closures capture only raw pointers and scalars (per-op
/// integer scratch lives on the Node), so they always fit inline —
/// std::function would heap-allocate most of them and defeat the
/// zero-malloc train step.
class BackwardFn {
 public:
  static constexpr std::size_t kCapacity = 64;

  BackwardFn() = default;
  template <typename F>
  BackwardFn(F fn) {  // NOLINT(google-explicit-constructor) — mirrors std::function
    static_assert(sizeof(F) <= kCapacity, "backward closure too large");
    static_assert(std::is_trivially_copyable_v<F> &&
                      std::is_trivially_destructible_v<F>,
                  "backward closures must capture only trivial data");
    std::memcpy(buf_, &fn, sizeof(F));
    invoke_ = [](const void* p) { (*static_cast<const F*>(p))(); };
  }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() const { invoke_(buf_); }

 private:
  void (*invoke_)(const void*) = nullptr;
  alignas(16) unsigned char buf_[kCapacity];
};

struct Node {
  Tensor value;
  Tensor grad;  // allocated on demand, same shape as value
  bool requires_grad = false;
  std::uint64_t visit_epoch = 0;  // backward() DFS marker (replaces a set)
  Graph* home = nullptr;          // owning graph; nullptr = heap mode
  std::vector<std::shared_ptr<Node>> parents;
  std::vector<int> iscratch;      // per-op integer scratch (argmax, token ids)
  BackwardFn backward_fn;         // pushes this->grad into parents

  /// Allocate grad (zeroed, same shape as value) if absent; from the
  /// home graph's arena when the node is graph-owned.
  void ensure_grad();
  /// Zero the gradient, reusing existing storage when shapes match.
  void zero_grad();
};

using NodePtr = std::shared_ptr<Node>;

/// Owns the per-sample autograd storage: a node recycling pool and a
/// TensorArena for activation values/gradients. reset() rewinds both —
/// after the first pass over the largest sample, building and
/// differentiating a graph allocates nothing.
///
/// A Graph is made active with GraphScope (thread-local, so per-worker
/// clones never share one). Parameters (param()) are always heap-owned
/// and survive resets; activation NodePtrs are invalidated by the next
/// reset() and must not be dereferenced across it.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// The graph installed by the innermost live GraphScope on this
  /// thread, or nullptr (heap mode).
  static Graph* current();

  /// Recycle all nodes and rewind the arena. Invalidates every
  /// activation NodePtr handed out since the previous reset.
  void reset();

  /// Zeroed arena-backed activation tensor.
  Tensor alloc(int rows, int cols);
  /// A cleared node from the pool (grows the pool on first use).
  NodePtr acquire_node();

  // Warmup observability (tests assert these stop growing).
  std::size_t nodes_in_use() const { return used_; }
  std::size_t node_capacity() const { return pool_.size(); }
  const TensorArena& arena() const { return arena_; }

 private:
  TensorArena arena_;
  std::vector<NodePtr> pool_;
  std::size_t used_ = 0;
};

/// RAII: resets `graph` and installs it as Graph::current() for the
/// scope's lifetime (restoring the previous graph on exit). Open one
/// scope per sample: everything from forward through backward must run
/// inside it, and values read out must be copied before the next scope.
class GraphScope {
 public:
  explicit GraphScope(Graph& graph);
  ~GraphScope();
  GraphScope(const GraphScope&) = delete;
  GraphScope& operator=(const GraphScope&) = delete;

 private:
  Graph* prev_;
};

/// Activation-storage tensor: arena-backed under an active GraphScope,
/// plain heap tensor otherwise. For layer scratch (dropout masks, GRU
/// constants) that feeds constant().
Tensor make_activation(int rows, int cols);

/// Leaf with no gradient (inputs, labels).
NodePtr constant(Tensor value);
/// Leaf with gradient (model parameter). Always heap-owned, never
/// recycled by a Graph.
NodePtr param(Tensor value);

/// Reverse-mode sweep from a scalar root ([1,1]); seeds d(root)/d(root)=1.
void backward(const NodePtr& root);

// --- arithmetic -----------------------------------------------------------
NodePtr add(const NodePtr& a, const NodePtr& b);        // same shape
NodePtr add_row(const NodePtr& a, const NodePtr& bias); // [m,n] + [1,n]
NodePtr sub(const NodePtr& a, const NodePtr& b);
NodePtr mul(const NodePtr& a, const NodePtr& b);        // elementwise
NodePtr scale(const NodePtr& a, float k);
NodePtr matmul(const NodePtr& a, const NodePtr& b);
NodePtr transpose(const NodePtr& a);

// --- nonlinearities ---------------------------------------------------------
NodePtr tanh_op(const NodePtr& a);
NodePtr sigmoid(const NodePtr& a);
NodePtr relu(const NodePtr& a);
/// Softmax over the rows of a column vector [T,1].
NodePtr softmax_col(const NodePtr& a);

// --- shape ops --------------------------------------------------------------
NodePtr concat_cols(const NodePtr& a, const NodePtr& b);    // [m,p]|[m,q] -> [m,p+q]
NodePtr concat_rows(const std::vector<NodePtr>& parts);     // stack same-width
NodePtr slice_cols(const NodePtr& a, int from, int to);     // [m, to-from)
NodePtr slice_rows(const NodePtr& a, int from, int to);     // [to-from, n]
NodePtr reshape_row(const NodePtr& a);                      // [m,n] -> [1, m*n]

// --- reductions ---------------------------------------------------------
NodePtr sum_all(const NodePtr& a);        // -> [1,1]
NodePtr mean_all(const NodePtr& a);       // -> [1,1]
NodePtr reduce_rows_mean(const NodePtr& a);  // [T,C] -> [1,C]
NodePtr reduce_rows_max(const NodePtr& a);   // [T,C] -> [1,C]
NodePtr reduce_cols_mean(const NodePtr& a);  // [T,C] -> [T,1]
NodePtr reduce_cols_max(const NodePtr& a);   // [T,C] -> [T,1]

// --- broadcast multiplies (attention re-weighting) ------------------------
NodePtr mul_row_broadcast(const NodePtr& a, const NodePtr& row);  // [T,C]*[1,C]
NodePtr mul_col_broadcast(const NodePtr& a, const NodePtr& col);  // [T,C]*[T,1]

// --- embedding / convolution support ------------------------------------
/// Rows of `weights` gathered by token id; backward scatter-adds.
NodePtr embedding(const NodePtr& weights, const std::vector<int>& ids);
/// im2row for 1-D convolution over the row (time) axis with zero
/// padding: [T,C] -> [T+2*pad-k+1, k*C].
NodePtr im2row(const NodePtr& a, int kernel, int pad);
/// Spatial pyramid max pooling over rows: for each bin count in `bins`
/// the rows are partitioned into that many spans and max-pooled; all
/// levels concatenate to [1, (sum bins) * C]. Works for any T >= 1.
NodePtr spp_max(const NodePtr& a, const std::vector<int>& bins);

// --- graph message passing (GAT over gadget PDGs) -------------------------
// All index/offset arguments follow the CSR conventions documented in
// nn/graph_kernels.hpp; forwards call the blocked kernels there, so the
// autograd path inherits the blocked==naive bitwise contract.
/// x > 0 ? x : slope * x (GAT attention-score activation).
NodePtr leaky_relu(const NodePtr& a, float slope);
/// Rows of `a` gathered by index (edge-source lookup); unlike
/// embedding(), `a` is a differentiable activation. [R,C] -> [n,C].
NodePtr gather_rows(const NodePtr& a, const std::vector<int>& idx);
/// out[idx[i],:] += a[i,:] into a fresh zero [rows,C] tensor (edge ->
/// destination-node aggregation). idx must be sorted ascending so every
/// destination row accumulates in ascending-edge order.
NodePtr scatter_sum_rows(const NodePtr& a, const std::vector<int>& idx,
                         int rows);
/// Mean over row spans: out[s,:] = mean of a rows [offsets[s],
/// offsets[s+1]); empty spans give zero rows. [T,C] -> [S,C].
NodePtr segment_mean_rows(const NodePtr& a, const std::vector<int>& offsets);
/// Per-segment softmax over a column vector [E,1] (masked neighborhood
/// softmax: empty segments are untouched).
NodePtr segment_softmax_col(const NodePtr& a, const std::vector<int>& offsets);

// --- regularization / loss --------------------------------------------------
NodePtr dropout(const NodePtr& a, float p, util::Rng& rng, bool train);
/// Numerically stable binary cross-entropy on a logit: target in {0,1}.
NodePtr bce_with_logits(const NodePtr& logit, float target);
/// Numerically stable softmax cross-entropy on a logit row [1, C]
/// against an integer class id (multiclass detection, Fig. 2b's
/// "output vulnerability type").
NodePtr cross_entropy_with_logits(const NodePtr& logits, int target_class);
/// Softmax probabilities of a logit row [1, C] (inference helper; not
/// differentiable w.r.t. callers — use cross_entropy_with_logits to train).
std::vector<float> softmax_row_values(const Tensor& logits);

}  // namespace sevuldet::nn
