// Tape-based reverse-mode automatic differentiation. A forward pass
// builds a graph of Nodes (shared_ptr-owned); backward() runs the tape
// in reverse topological order and accumulates gradients into every node
// with requires_grad. Long-lived parameter nodes are reused across
// graphs — activations are created fresh each forward pass and freed
// when the loss node goes out of scope.
//
// Every op validates shapes and carries an explicit backward closure;
// tests verify each against numeric gradients (see autograd_test.cpp).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sevuldet/nn/tensor.hpp"
#include "sevuldet/util/rng.hpp"

namespace sevuldet::nn {

struct Node {
  Tensor value;
  Tensor grad;  // allocated on demand, same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void()> backward_fn;  // pushes this->grad into parents

  void ensure_grad() {
    if (!grad.same_shape(value)) grad = Tensor(value.rows(), value.cols());
  }
  void zero_grad() { grad = Tensor(value.rows(), value.cols()); }
};

using NodePtr = std::shared_ptr<Node>;

/// Leaf with no gradient (inputs, labels).
NodePtr constant(Tensor value);
/// Leaf with gradient (model parameter).
NodePtr param(Tensor value);

/// Reverse-mode sweep from a scalar root ([1,1]); seeds d(root)/d(root)=1.
void backward(const NodePtr& root);

// --- arithmetic -----------------------------------------------------------
NodePtr add(const NodePtr& a, const NodePtr& b);        // same shape
NodePtr add_row(const NodePtr& a, const NodePtr& bias); // [m,n] + [1,n]
NodePtr sub(const NodePtr& a, const NodePtr& b);
NodePtr mul(const NodePtr& a, const NodePtr& b);        // elementwise
NodePtr scale(const NodePtr& a, float k);
NodePtr matmul(const NodePtr& a, const NodePtr& b);
NodePtr transpose(const NodePtr& a);

// --- nonlinearities ---------------------------------------------------------
NodePtr tanh_op(const NodePtr& a);
NodePtr sigmoid(const NodePtr& a);
NodePtr relu(const NodePtr& a);
/// Softmax over the rows of a column vector [T,1].
NodePtr softmax_col(const NodePtr& a);

// --- shape ops --------------------------------------------------------------
NodePtr concat_cols(const NodePtr& a, const NodePtr& b);    // [m,p]|[m,q] -> [m,p+q]
NodePtr concat_rows(const std::vector<NodePtr>& parts);     // stack same-width
NodePtr slice_cols(const NodePtr& a, int from, int to);     // [m, to-from)
NodePtr slice_rows(const NodePtr& a, int from, int to);     // [to-from, n]
NodePtr reshape_row(const NodePtr& a);                      // [m,n] -> [1, m*n]

// --- reductions ---------------------------------------------------------
NodePtr sum_all(const NodePtr& a);        // -> [1,1]
NodePtr mean_all(const NodePtr& a);       // -> [1,1]
NodePtr reduce_rows_mean(const NodePtr& a);  // [T,C] -> [1,C]
NodePtr reduce_rows_max(const NodePtr& a);   // [T,C] -> [1,C]
NodePtr reduce_cols_mean(const NodePtr& a);  // [T,C] -> [T,1]
NodePtr reduce_cols_max(const NodePtr& a);   // [T,C] -> [T,1]

// --- broadcast multiplies (attention re-weighting) ------------------------
NodePtr mul_row_broadcast(const NodePtr& a, const NodePtr& row);  // [T,C]*[1,C]
NodePtr mul_col_broadcast(const NodePtr& a, const NodePtr& col);  // [T,C]*[T,1]

// --- embedding / convolution support ------------------------------------
/// Rows of `weights` gathered by token id; backward scatter-adds.
NodePtr embedding(const NodePtr& weights, const std::vector<int>& ids);
/// im2row for 1-D convolution over the row (time) axis with zero
/// padding: [T,C] -> [T+2*pad-k+1, k*C].
NodePtr im2row(const NodePtr& a, int kernel, int pad);
/// Spatial pyramid max pooling over rows: for each bin count in `bins`
/// the rows are partitioned into that many spans and max-pooled; all
/// levels concatenate to [1, (sum bins) * C]. Works for any T >= 1.
NodePtr spp_max(const NodePtr& a, const std::vector<int>& bins);

// --- regularization / loss --------------------------------------------------
NodePtr dropout(const NodePtr& a, float p, util::Rng& rng, bool train);
/// Numerically stable binary cross-entropy on a logit: target in {0,1}.
NodePtr bce_with_logits(const NodePtr& logit, float target);
/// Numerically stable softmax cross-entropy on a logit row [1, C]
/// against an integer class id (multiclass detection, Fig. 2b's
/// "output vulnerability type").
NodePtr cross_entropy_with_logits(const NodePtr& logits, int target_class);
/// Softmax probabilities of a logit row [1, C] (inference helper; not
/// differentiable w.r.t. callers — use cross_entropy_with_logits to train).
std::vector<float> softmax_row_values(const Tensor& logits);

}  // namespace sevuldet::nn
