#include "sevuldet/nn/graph_kernels.hpp"

#include <cmath>

#include "sevuldet/nn/kernels.hpp"

namespace sevuldet::nn::kernels {

// The "blocked" variants lean on the vector-width copy/add_inplace
// kernels; both are strictly element-wise in ascending order, so every
// output element's chain matches the scalar oracle exactly.

void gather_rows(std::size_t n, std::size_t cols, const int* idx,
                 const float* src, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    copy(cols, src + static_cast<std::size_t>(idx[i]) * cols, dst + i * cols);
  }
}

void gather_rows_naive(std::size_t n, std::size_t cols, const int* idx,
                       const float* src, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* s = src + static_cast<std::size_t>(idx[i]) * cols;
    float* d = dst + i * cols;
    for (std::size_t j = 0; j < cols; ++j) d[j] = s[j];
  }
}

void scatter_add_rows(std::size_t n, std::size_t cols, const int* idx,
                      const float* src, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    add_inplace(cols, src + i * cols,
                dst + static_cast<std::size_t>(idx[i]) * cols);
  }
}

void scatter_add_rows_naive(std::size_t n, std::size_t cols, const int* idx,
                            const float* src, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* s = src + i * cols;
    float* d = dst + static_cast<std::size_t>(idx[i]) * cols;
    for (std::size_t j = 0; j < cols; ++j) d[j] += s[j];
  }
}

void segment_softmax(std::size_t segments, const int* offsets, const float* x,
                     float* out) {
  for (std::size_t s = 0; s < segments; ++s) {
    const int begin = offsets[s], end = offsets[s + 1];
    if (end <= begin) continue;  // masked: empty neighborhood
    float max_v = x[begin];
    for (int i = begin + 1; i < end; ++i) {
      if (x[i] > max_v) max_v = x[i];
    }
    float sum = 0.0f;
    for (int i = begin; i < end; ++i) {
      out[i] = std::exp(x[i] - max_v);
      sum += out[i];
    }
    for (int i = begin; i < end; ++i) out[i] /= sum;
  }
}

void segment_softmax_naive(std::size_t segments, const int* offsets,
                           const float* x, float* out) {
  for (std::size_t s = 0; s < segments; ++s) {
    const int begin = offsets[s], end = offsets[s + 1];
    if (end <= begin) continue;
    float max_v = x[begin];
    for (int i = begin + 1; i < end; ++i) {
      if (x[i] > max_v) max_v = x[i];
    }
    float sum = 0.0f;
    for (int i = begin; i < end; ++i) {
      out[i] = std::exp(x[i] - max_v);
      sum += out[i];
    }
    for (int i = begin; i < end; ++i) out[i] /= sum;
  }
}

void segment_mean(std::size_t segments, const int* offsets, std::size_t cols,
                  const float* src, float* out) {
  for (std::size_t s = 0; s < segments; ++s) {
    const int begin = offsets[s], end = offsets[s + 1];
    float* row = out + s * cols;
    for (std::size_t j = 0; j < cols; ++j) row[j] = 0.0f;
    if (end <= begin) continue;  // empty span -> zero row
    for (int i = begin; i < end; ++i) {
      add_inplace(cols, src + static_cast<std::size_t>(i) * cols, row);
    }
    const float inv = 1.0f / static_cast<float>(end - begin);
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

void segment_mean_naive(std::size_t segments, const int* offsets,
                        std::size_t cols, const float* src, float* out) {
  for (std::size_t s = 0; s < segments; ++s) {
    const int begin = offsets[s], end = offsets[s + 1];
    float* row = out + s * cols;
    for (std::size_t j = 0; j < cols; ++j) row[j] = 0.0f;
    if (end <= begin) continue;
    for (int i = begin; i < end; ++i) {
      const float* r = src + static_cast<std::size_t>(i) * cols;
      for (std::size_t j = 0; j < cols; ++j) row[j] += r[j];
    }
    const float inv = 1.0f / static_cast<float>(end - begin);
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

}  // namespace sevuldet::nn::kernels
