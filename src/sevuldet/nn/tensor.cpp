#include "sevuldet/nn/tensor.hpp"

namespace sevuldet::nn {

Tensor Tensor::randn(int rows, int cols, util::Rng& rng, float stddev) {
  Tensor t(rows, cols);
  for (auto& x : t.data_) x = static_cast<float>(rng.normal()) * stddev;
  return t;
}

Tensor Tensor::uniform(int rows, int cols, util::Rng& rng, float bound) {
  Tensor t(rows, cols);
  for (auto& x : t.data_) {
    x = static_cast<float>(rng.uniform_real(-bound, bound));
  }
  return t;
}

}  // namespace sevuldet::nn
