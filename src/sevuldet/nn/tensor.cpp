#include "sevuldet/nn/tensor.hpp"

#include <algorithm>
#include <cstring>

namespace sevuldet::nn {

Tensor Tensor::randn(int rows, int cols, util::Rng& rng, float stddev) {
  Tensor t(rows, cols);
  for (auto& x : t.store_) x = static_cast<float>(rng.normal()) * stddev;
  return t;
}

Tensor Tensor::uniform(int rows, int cols, util::Rng& rng, float bound) {
  Tensor t(rows, cols);
  for (auto& x : t.store_) {
    x = static_cast<float>(rng.uniform_real(-bound, bound));
  }
  return t;
}

float* TensorArena::allocate(std::size_t n) {
  // Round every slot to the alignment quantum so consecutive tensors
  // start on cache-line boundaries.
  const std::size_t want = (std::max<std::size_t>(n, 1) + kAlign - 1) &
                           ~(kAlign - 1);
  while (active_ < chunks_.size() && offset_ + want > chunks_[active_].cap) {
    ++active_;
    offset_ = 0;
  }
  if (active_ == chunks_.size()) {
    const std::size_t last = chunks_.empty() ? 0 : chunks_.back().cap;
    const std::size_t cap = std::max({want, last * 2, kMinChunk});
    chunks_.push_back(Chunk{std::make_unique<float[]>(cap), cap});
  }
  float* out = chunks_[active_].data.get() + offset_;
  std::memset(out, 0, want * sizeof(float));
  offset_ += want;
  used_ += want;
  high_water_ = std::max(high_water_, used_);
  return out;
}

void TensorArena::reset() {
  active_ = 0;
  offset_ = 0;
  used_ = 0;
}

std::size_t TensorArena::capacity() const {
  std::size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.cap;
  return total;
}

}  // namespace sevuldet::nn
