// word2vec skip-gram with negative sampling (Mikolov et al.), trained
// from scratch on the normalized gadget corpus — the paper uses a
// pre-trained gensim word2vec for Step IV; this is the same algorithm at
// smaller scale. Manual gradient updates (the standard trick) keep it
// fast; the result is an embedding matrix [vocab, dim] consumed by every
// detection model.
#pragma once

#include <atomic>
#include <vector>

#include "sevuldet/normalize/vocab.hpp"
#include "sevuldet/nn/tensor.hpp"
#include "sevuldet/util/rng.hpp"

namespace sevuldet::nn {

struct Word2VecConfig {
  int dim = 30;        // the paper's Table IV uses dimension 30
  int window = 4;
  int negatives = 5;
  int epochs = 3;
  float lr = 0.025f;
  float min_lr = 0.0001f;
  double subsample = 1e-3;  // frequent-token subsampling threshold
  std::uint64_t seed = 1234;
  /// Training threads. 1 (default) is the serial, bit-exact path; >1 (or
  /// 0 = all hardware threads) trains Hogwild-style — workers stripe the
  /// sentences and update the shared embedding matrices lock-free, like
  /// the original word2vec.c. Embedding quality is equivalent, but the
  /// result is NOT bit-reproducible across runs or thread counts.
  int threads = 1;
};

class Word2Vec {
 public:
  Word2Vec(const normalize::Vocabulary& vocab, const Word2VecConfig& config);

  /// Train on encoded sentences (token-id sequences).
  void train(const std::vector<std::vector<int>>& sentences);

  /// Input-embedding matrix [vocab, dim]; <pad> row stays zero.
  const Tensor& embeddings() const { return in_; }
  int dim() const { return config_.dim; }

  /// Cosine similarity between two token ids.
  float similarity(int a, int b) const;

  /// Ids of the k nearest tokens to `id` by cosine similarity.
  std::vector<int> nearest(int id, int k) const;

 private:
  int sample_negative(util::Rng& rng);
  /// Train every `stride`-th sentence starting at `offset`, for all
  /// epochs. `step` is the shared global step counter driving the
  /// learning-rate decay. Serial training is train_worker(0, 1, rng_).
  void train_worker(const std::vector<std::vector<int>>& sentences,
                    std::size_t offset, std::size_t stride, long long total_steps,
                    std::atomic<long long>& step, util::Rng& rng);

  const normalize::Vocabulary& vocab_;
  Word2VecConfig config_;
  Tensor in_;   // input vectors
  Tensor out_;  // output (context) vectors
  std::vector<double> unigram_cdf_;  // f^0.75 cumulative for negative sampling
  util::Rng rng_;
  long long total_tokens_ = 0;
};

}  // namespace sevuldet::nn
