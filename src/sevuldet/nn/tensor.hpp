// Dense 2-D float tensor (row-major). The whole network stack works in
// 2-D: a token sequence is [T, C], a vector is [1, n], a scalar is
// [1, 1]. Kept deliberately small — shape checks throw, storage is a
// flat float buffer.
//
// A tensor either OWNS its storage (heap vector — parameters, user
// tensors) or BORROWS it from a TensorArena (activations inside an
// autograd Graph). Borrowed tensors are plain views: moving them moves
// the pointer, copying them deep-copies into owned storage, destroying
// them frees nothing. The arena rewinds between samples, which is what
// makes a steady-state train step malloc-free.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sevuldet/util/rng.hpp"

namespace sevuldet::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        store_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               0.0f),
        data_(store_.data()) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("negative tensor shape");
  }
  Tensor(int rows, int cols, std::vector<float> data)
      : rows_(rows), cols_(cols), store_(std::move(data)), data_(store_.data()) {
    if (store_.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
      throw std::invalid_argument("tensor data size mismatch");
    }
  }

  /// View over external storage (a TensorArena slot). The caller
  /// guarantees `data` holds rows*cols zero-initialized floats and
  /// outlives every read through this tensor.
  static Tensor borrowed(int rows, int cols, float* data) {
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.data_ = data;
    return t;
  }

  // Copies deep-copy into owned storage; moves transfer the buffer (or
  // the borrowed pointer) without touching the floats.
  Tensor(const Tensor& other)
      : rows_(other.rows_), cols_(other.cols_),
        store_(other.data_, other.data_ + other.size()), data_(store_.data()) {}
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      store_.assign(other.data_, other.data_ + other.size());
      data_ = store_.data();
    }
    return *this;
  }
  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), store_(std::move(other.store_)),
        data_(other.data_) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_ = nullptr;
    other.store_.clear();
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      store_ = std::move(other.store_);
      data_ = other.data_;
      other.rows_ = 0;
      other.cols_ = 0;
      other.data_ = nullptr;
      other.store_.clear();
    }
    return *this;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }
  bool empty() const { return size() == 0; }
  /// True when storage lives in a TensorArena rather than on this tensor.
  bool borrowed_storage() const { return data_ != nullptr && store_.empty(); }

  float& at(int r, int c) { return data_[index(r, c)]; }
  float at(int r, int c) const { return data_[index(r, c)]; }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(float value) {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) data_[i] = value;
  }

  /// Gaussian init, N(0, stddev^2).
  static Tensor randn(int rows, int cols, util::Rng& rng, float stddev = 1.0f);
  /// Uniform init in [-bound, bound].
  static Tensor uniform(int rows, int cols, util::Rng& rng, float bound);
  static Tensor zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor scalar(float v) {
    Tensor t(1, 1);
    t.at(0, 0) = v;
    return t;
  }

  std::string shape_string() const {
    std::string s = "[";
    s += std::to_string(rows_);
    s += ',';
    s += std::to_string(cols_);
    s += ']';
    return s;
  }

 private:
  std::size_t index(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> store_;      // empty when storage is borrowed
  float* data_ = nullptr;         // always the live element pointer
};

/// Chunked bump allocator backing activation tensors. allocate() hands
/// out zeroed float slots quantized to 64-byte strides; reset() rewinds to empty
/// while keeping every chunk, so after the first pass over the largest
/// sample (warmup) no further heap allocation happens. Chunk capacities
/// double, so even pathological growth costs O(log n) mallocs total.
class TensorArena {
 public:
  float* allocate(std::size_t n);
  void reset();

  /// Floats handed out since the last reset().
  std::size_t used() const { return used_; }
  /// Peak used() across the arena's lifetime.
  std::size_t high_water() const { return high_water_; }
  /// Total float capacity across all chunks.
  std::size_t capacity() const;
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<float[]> data;
    std::size_t cap = 0;
  };
  static constexpr std::size_t kAlign = 16;          // floats (64 bytes)
  static constexpr std::size_t kMinChunk = 1 << 16;  // 256 KiB

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;   // chunk currently bumping
  std::size_t offset_ = 0;   // floats used in the active chunk
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace sevuldet::nn
