// Dense 2-D float tensor (row-major). The whole network stack works in
// 2-D: a token sequence is [T, C], a vector is [1, n], a scalar is
// [1, 1]. Kept deliberately small — shape checks throw, storage is a
// flat std::vector<float>.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "sevuldet/util/rng.hpp"

namespace sevuldet::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("negative tensor shape");
  }
  Tensor(int rows, int cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    if (data_.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
      throw std::invalid_argument("tensor data size mismatch");
    }
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) { return data_[index(r, c)]; }
  float at(int r, int c) const { return data_[index(r, c)]; }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(float value) {
    for (auto& x : data_) x = value;
  }

  /// Gaussian init, N(0, stddev^2).
  static Tensor randn(int rows, int cols, util::Rng& rng, float stddev = 1.0f);
  /// Uniform init in [-bound, bound].
  static Tensor uniform(int rows, int cols, util::Rng& rng, float bound);
  static Tensor zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor scalar(float v) {
    Tensor t(1, 1);
    t.at(0, 0) = v;
    return t;
  }

  std::string shape_string() const {
    return "[" + std::to_string(rows_) + "," + std::to_string(cols_) + "]";
  }

 private:
  std::size_t index(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

}  // namespace sevuldet::nn
