#include "sevuldet/nn/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "sevuldet/util/metrics.hpp"

namespace sevuldet::nn::kernels {

namespace {

// Vector width for the ISA this TU is compiled for. The micro-kernel is
// written with GCC/Clang portable vector extensions instead of relying
// on the loop vectorizer: with a plain float array the compiler keeps
// the accumulator tile in stack memory (a load+store per FMA), which is
// slower than the naive loop. Explicit vector-typed locals are register
// allocated. Lane width never changes results: lanes are independent C
// elements, and each element's accumulation chain stays ascending-p.
#if defined(__AVX512F__)
constexpr int VL = 16;
#elif defined(__AVX__)
constexpr int VL = 8;
#else
constexpr int VL = 4;  // SSE2 baseline of x86-64
#endif
// aligned(4): loads/stores through this type are unaligned (tensor rows
// are not padded to vector boundaries). may_alias: the underlying
// storage is plain float arrays.
typedef float vf __attribute__((vector_size(VL * sizeof(float)), aligned(4),
                                may_alias));

// Register tile: MR rows x NV vectors. 8 vector accumulators + NV B-row
// vectors + a broadcast leave headroom in 16 registers on every ISA.
constexpr int MR = 4;
constexpr int NV = 2;
constexpr int NR = NV * VL;
// Cache tiles keep the A panel (MC*KC) and the active B panel rows
// L2-resident for the shapes SEVulDetNet produces.
constexpr int MC = 64;
constexpr int KC = 256;
constexpr int NC = 256;

// One MR x NR tile of C += A-panel * B-panel over kc reduction steps.
// AT selects the A layout at COMPILE TIME so the indexing folds to a
// constant-stride form the vectorizer can reason about: AT=false reads
// a[ir*lda + p] (normal [m,k]), AT=true reads a[p*lda + ir] (fused
// transpose of a [k,m] matrix).
//
// The tile is loaded from C, accumulated in ascending-p order, and
// stored back — the per-element addition chain is exactly the naive
// reference's, so blocking never changes a bit.
// MRT is the live row count (1..MR): row edges get their own fully
// unrolled instantiation instead of falling back to scalar code, which
// matters because the dense head runs [1,k]x[k,n] products where every
// tile is a row edge.
template <bool AT, int MRT>
inline void micro_full(int kc, const float* __restrict__ a, std::ptrdiff_t lda,
                       const float* __restrict__ b, int ldb,
                       float* __restrict__ c, int ldc) {
  vf acc[MRT][NV];
  for (int ir = 0; ir < MRT; ++ir) {
    for (int jv = 0; jv < NV; ++jv) {
      acc[ir][jv] = *reinterpret_cast<const vf*>(c + ir * ldc + jv * VL);
    }
  }
  for (int p = 0; p < kc; ++p) {
    const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(p) * ldb;
    vf bv[NV];
    for (int jv = 0; jv < NV; ++jv) {
      bv[jv] = *reinterpret_cast<const vf*>(brow + jv * VL);
    }
    for (int ir = 0; ir < MRT; ++ir) {
      const float av = AT ? a[p * lda + ir] : a[ir * lda + p];
      for (int jv = 0; jv < NV; ++jv) acc[ir][jv] += av * bv[jv];
    }
  }
  for (int ir = 0; ir < MRT; ++ir) {
    for (int jv = 0; jv < NV; ++jv) {
      *reinterpret_cast<vf*>(c + ir * ldc + jv * VL) = acc[ir][jv];
    }
  }
}

// Partial tile at the m/n edges; identical accumulation order.
template <bool AT>
inline void micro_edge(int mr, int nr, int kc, const float* __restrict__ a,
                       std::ptrdiff_t lda, const float* __restrict__ b, int ldb,
                       float* __restrict__ c, int ldc) {
  float acc[MR][NR];
  for (int ir = 0; ir < mr; ++ir) {
    for (int jr = 0; jr < nr; ++jr) acc[ir][jr] = c[ir * ldc + jr];
  }
  for (int p = 0; p < kc; ++p) {
    const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(p) * ldb;
    for (int ir = 0; ir < mr; ++ir) {
      const float av = AT ? a[p * lda + ir] : a[ir * lda + p];
      for (int jr = 0; jr < nr; ++jr) acc[ir][jr] += av * brow[jr];
    }
  }
  for (int ir = 0; ir < mr; ++ir) {
    for (int jr = 0; jr < nr; ++jr) c[ir * ldc + jr] = acc[ir][jr];
  }
}

// Shared driver for gemm / gemm_at_b. Loop order jc -> pc -> ic keeps p
// ascending for every output element across KC blocks. lda is the leading
// dimension of A as stored: k for AT=false ([m,k]), m for AT=true ([k,m]).
template <bool AT>
void gemm_blocked(int m, int n, int k, const float* a, std::ptrdiff_t lda,
                  const float* b, float* c) {
  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      for (int ic = 0; ic < m; ic += MC) {
        const int mc = std::min(MC, m - ic);
        for (int j = 0; j < nc; j += NR) {
          const int nr = std::min(NR, nc - j);
          for (int i = 0; i < mc; i += MR) {
            const int mr = std::min(MR, mc - i);
            const float* at = AT ? a + static_cast<std::ptrdiff_t>(pc) * lda + (ic + i)
                                 : a + static_cast<std::ptrdiff_t>(ic + i) * lda + pc;
            const float* bt = b + static_cast<std::ptrdiff_t>(pc) * n + (jc + j);
            float* ct = c + static_cast<std::ptrdiff_t>(ic + i) * n + (jc + j);
            if (nr == NR) {
              switch (mr) {
                case 4: micro_full<AT, 4>(kc, at, lda, bt, n, ct, n); break;
                case 3: micro_full<AT, 3>(kc, at, lda, bt, n, ct, n); break;
                case 2: micro_full<AT, 2>(kc, at, lda, bt, n, ct, n); break;
                default: micro_full<AT, 1>(kc, at, lda, bt, n, ct, n); break;
              }
            } else {
              micro_edge<AT>(mr, nr, kc, at, lda, bt, n, ct, n);
            }
          }
        }
      }
    }
  }
}

// gemm_a_bt microkernels. Each C element is an independent
// single-accumulator dot over the full k extent (matching the reference
// chain: local accumulator from zero, one final add into C), so k is
// never blocked and lanes are never split across one dot. The main path
// packs B^T into a contiguous [k, n] buffer first: the reduction then
// reads unit-stride rows and the MRT x NV vector tile applies, with each
// lane carrying one whole chain.
template <int MRT>
inline void micro_abt(int k, const float* __restrict__ a, int lda,
                      const float* __restrict__ bt, int ldb,
                      float* __restrict__ c, int ldc) {
  vf acc[MRT][NV] = {};
  for (int p = 0; p < k; ++p) {
    const float* __restrict__ brow = bt + static_cast<std::ptrdiff_t>(p) * ldb;
    vf bv[NV];
    for (int jv = 0; jv < NV; ++jv) {
      bv[jv] = *reinterpret_cast<const vf*>(brow + jv * VL);
    }
    for (int ir = 0; ir < MRT; ++ir) {
      const float av = a[ir * lda + p];
      for (int jv = 0; jv < NV; ++jv) acc[ir][jv] += av * bv[jv];
    }
  }
  for (int ir = 0; ir < MRT; ++ir) {
    for (int jv = 0; jv < NV; ++jv) {
      vf* cv = reinterpret_cast<vf*>(c + ir * ldc + jv * VL);
      *cv = *cv + acc[ir][jv];
    }
  }
}

// Column remainder: scalar DR x DC tile of dots against the original
// [n, k] layout (rows are contiguous there, so the loads stay unit
// stride without packing).
constexpr int DR = 2;
constexpr int DC = 4;

inline void micro_dot_edge(int dr, int dc, int k, const float* __restrict__ a,
                           int lda, const float* __restrict__ b, int ldb,
                           float* __restrict__ c, int ldc) {
  float acc[DR][DC] = {};
  for (int p = 0; p < k; ++p) {
    for (int ir = 0; ir < dr; ++ir) {
      const float av = a[static_cast<std::ptrdiff_t>(ir) * lda + p];
      for (int jr = 0; jr < dc; ++jr) {
        acc[ir][jr] += av * b[static_cast<std::ptrdiff_t>(jr) * ldb + p];
      }
    }
  }
  for (int ir = 0; ir < dr; ++ir) {
    for (int jr = 0; jr < dc; ++jr) c[ir * ldc + jr] += acc[ir][jr];
  }
}

constexpr int TS = 32;  // transpose tile (floats); 2 * 4KB per tile pair

}  // namespace

void gemm(int m, int n, int k, const float* a, const float* b, float* c) {
  // GEMM is the NN hot path; the counter costs one relaxed load when
  // metrics are off, and the FLOP tally lets --metrics-out report
  // throughput without instrumenting any caller.
  util::metrics::counter_add("nn.gemm_calls");
  util::metrics::counter_add("nn.gemm_flops", 2LL * m * n * k);
  gemm_blocked<false>(m, n, k, a, /*lda=*/k, b, c);
}

void gemm_at_b(int m, int n, int k, const float* a, const float* b, float* c) {
  util::metrics::counter_add("nn.gemm_calls");
  util::metrics::counter_add("nn.gemm_flops", 2LL * m * n * k);
  gemm_blocked<true>(m, n, k, a, /*lda=*/m, b, c);
}

void gemm_a_bt(int m, int n, int k, const float* a, const float* b, float* c) {
  util::metrics::counter_add("nn.gemm_calls");
  util::metrics::counter_add("nn.gemm_flops", 2LL * m * n * k);
  const int n_main = n - n % NR;
  if (n_main > 0) {
    // Pack the leading n_main rows of B ([n, k] row major) as B^T
    // ([k, n_main]) so the vector microkernel streams unit-stride rows.
    // The buffer is recycled across calls: steady state allocates
    // nothing (same contract as the tensor arena).
    static thread_local std::vector<float> packed;
    packed.resize(static_cast<std::size_t>(k) * n_main);
    transpose_copy(n_main, k, b, packed.data());
    for (int i = 0; i < m; i += MR) {
      const int mr = std::min(MR, m - i);
      const float* at = a + static_cast<std::ptrdiff_t>(i) * k;
      for (int j = 0; j < n_main; j += NR) {
        const float* bt = packed.data() + j;
        float* ct = c + static_cast<std::ptrdiff_t>(i) * n + j;
        switch (mr) {
          case 4: micro_abt<4>(k, at, k, bt, n_main, ct, n); break;
          case 3: micro_abt<3>(k, at, k, bt, n_main, ct, n); break;
          case 2: micro_abt<2>(k, at, k, bt, n_main, ct, n); break;
          default: micro_abt<1>(k, at, k, bt, n_main, ct, n); break;
        }
      }
    }
  }
  for (int i = 0; i < m; i += DR) {
    const int dr = std::min(DR, m - i);
    for (int j = n_main; j < n; j += DC) {
      const int dc = std::min(DC, n - j);
      micro_dot_edge(dr, dc, k, a + static_cast<std::ptrdiff_t>(i) * k, k,
                     b + static_cast<std::ptrdiff_t>(j) * k, k,
                     c + static_cast<std::ptrdiff_t>(i) * n + j, n);
    }
  }
}

void gemm_naive(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    const float* __restrict__ arow = a + static_cast<std::ptrdiff_t>(i) * k;
    float* __restrict__ crow = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b_naive(int m, int n, int k, const float* a, const float* b,
                     float* c) {
  for (int p = 0; p < k; ++p) {
    const float* __restrict__ arow = a + static_cast<std::ptrdiff_t>(p) * m;
    const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      float* __restrict__ crow = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt_naive(int m, int n, int k, const float* a, const float* b,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    const float* __restrict__ arow = a + static_cast<std::ptrdiff_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[static_cast<std::ptrdiff_t>(i) * n + j] += acc;
    }
  }
}

void axpy(std::size_t n, float alpha, const float* __restrict__ x,
          float* __restrict__ y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void add_inplace(std::size_t n, const float* __restrict__ x,
                 float* __restrict__ y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void mul_accumulate(std::size_t n, const float* __restrict__ x,
                    const float* __restrict__ y, float* __restrict__ out) {
  for (std::size_t i = 0; i < n; ++i) out[i] += x[i] * y[i];
}

float dot(std::size_t n, const float* __restrict__ x,
          const float* __restrict__ y) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void copy(std::size_t n, const float* src, float* dst) {
  if (n > 0) std::memcpy(dst, src, n * sizeof(float));
}

void col_sum_add(int rows, int cols, const float* a, float* out) {
  for (int r = 0; r < rows; ++r) {
    add_inplace(static_cast<std::size_t>(cols),
                a + static_cast<std::ptrdiff_t>(r) * cols, out);
  }
}

void row_sum_add(int rows, int cols, const float* a, float* out) {
  for (int r = 0; r < rows; ++r) {
    const float* __restrict__ row = a + static_cast<std::ptrdiff_t>(r) * cols;
    float acc = 0.0f;
    for (int c = 0; c < cols; ++c) acc += row[c];
    out[r] += acc;
  }
}

void transpose_copy(int m, int n, const float* a, float* out) {
  for (int i0 = 0; i0 < m; i0 += TS) {
    const int i1 = std::min(i0 + TS, m);
    for (int j0 = 0; j0 < n; j0 += TS) {
      const int j1 = std::min(j0 + TS, n);
      // j outer / i inner: writes to out row j are unit-stride.
      for (int j = j0; j < j1; ++j) {
        float* __restrict__ orow = out + static_cast<std::ptrdiff_t>(j) * m;
        for (int i = i0; i < i1; ++i) {
          orow[i] = a[static_cast<std::ptrdiff_t>(i) * n + j];
        }
      }
    }
  }
}

void transpose_add(int m, int n, const float* a, float* out) {
  for (int i0 = 0; i0 < m; i0 += TS) {
    const int i1 = std::min(i0 + TS, m);
    for (int j0 = 0; j0 < n; j0 += TS) {
      const int j1 = std::min(j0 + TS, n);
      for (int j = j0; j < j1; ++j) {
        float* __restrict__ orow = out + static_cast<std::ptrdiff_t>(j) * m;
        for (int i = i0; i < i1; ++i) {
          orow[i] += a[static_cast<std::ptrdiff_t>(i) * n + j];
        }
      }
    }
  }
}

}  // namespace sevuldet::nn::kernels
