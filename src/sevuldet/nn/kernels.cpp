#include "sevuldet/nn/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <vector>

#include "sevuldet/util/metrics.hpp"

namespace sevuldet::nn::kernels {

namespace {

// Vector width for the ISA this TU is compiled for. The micro-kernel is
// written with GCC/Clang portable vector extensions instead of relying
// on the loop vectorizer: with a plain float array the compiler keeps
// the accumulator tile in stack memory (a load+store per FMA), which is
// slower than the naive loop. Explicit vector-typed locals are register
// allocated. Lane width never changes results: lanes are independent C
// elements, and each element's accumulation chain stays ascending-p.
#if defined(__AVX512F__)
constexpr int VL = 16;
#elif defined(__AVX__)
constexpr int VL = 8;
#else
constexpr int VL = 4;  // SSE2 baseline of x86-64
#endif
// aligned(4): loads/stores through this type are unaligned (tensor rows
// are not padded to vector boundaries). may_alias: the underlying
// storage is plain float arrays.
typedef float vf __attribute__((vector_size(VL * sizeof(float)), aligned(4),
                                may_alias));

// Register tile: MR rows x NV vectors. 8 vector accumulators + NV B-row
// vectors + a broadcast leave headroom in 16 registers on every ISA.
constexpr int MR = 4;
constexpr int NV = 2;
constexpr int NR = NV * VL;
// Default cache tiles: keep the A panel (MC*KC) and the active B panel
// rows L2-resident for the shapes SEVulDetNet produces. At runtime the
// installed tiles live in relaxed atomics so model load can swap in an
// autotuned set while worker threads keep issuing GEMMs — each driver
// call loads the three values once at entry, so a call always runs with
// one coherent tile set (and tiles never change results, see header).
constexpr int kDefaultMc = 64;
constexpr int kDefaultKc = 256;
constexpr int kDefaultNc = 256;
std::atomic<int> g_mc{kDefaultMc};
std::atomic<int> g_kc{kDefaultKc};
std::atomic<int> g_nc{kDefaultNc};

// One MR x NR tile of C += A-panel * B-panel over kc reduction steps.
// AT selects the A layout at COMPILE TIME so the indexing folds to a
// constant-stride form the vectorizer can reason about: AT=false reads
// a[ir*lda + p] (normal [m,k]), AT=true reads a[p*lda + ir] (fused
// transpose of a [k,m] matrix).
//
// The tile is loaded from C, accumulated in ascending-p order, and
// stored back — the per-element addition chain is exactly the naive
// reference's, so blocking never changes a bit.
// MRT is the live row count (1..MR): row edges get their own fully
// unrolled instantiation instead of falling back to scalar code, which
// matters because the dense head runs [1,k]x[k,n] products where every
// tile is a row edge.
template <bool AT, int MRT>
inline void micro_full(int kc, const float* __restrict__ a, std::ptrdiff_t lda,
                       const float* __restrict__ b, int ldb,
                       float* __restrict__ c, int ldc) {
  vf acc[MRT][NV];
  for (int ir = 0; ir < MRT; ++ir) {
    for (int jv = 0; jv < NV; ++jv) {
      acc[ir][jv] = *reinterpret_cast<const vf*>(c + ir * ldc + jv * VL);
    }
  }
  for (int p = 0; p < kc; ++p) {
    const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(p) * ldb;
    vf bv[NV];
    for (int jv = 0; jv < NV; ++jv) {
      bv[jv] = *reinterpret_cast<const vf*>(brow + jv * VL);
    }
    for (int ir = 0; ir < MRT; ++ir) {
      const float av = AT ? a[p * lda + ir] : a[ir * lda + p];
      for (int jv = 0; jv < NV; ++jv) acc[ir][jv] += av * bv[jv];
    }
  }
  for (int ir = 0; ir < MRT; ++ir) {
    for (int jv = 0; jv < NV; ++jv) {
      *reinterpret_cast<vf*>(c + ir * ldc + jv * VL) = acc[ir][jv];
    }
  }
}

// Partial tile at the m/n edges; identical accumulation order.
template <bool AT>
inline void micro_edge(int mr, int nr, int kc, const float* __restrict__ a,
                       std::ptrdiff_t lda, const float* __restrict__ b, int ldb,
                       float* __restrict__ c, int ldc) {
  float acc[MR][NR];
  for (int ir = 0; ir < mr; ++ir) {
    for (int jr = 0; jr < nr; ++jr) acc[ir][jr] = c[ir * ldc + jr];
  }
  for (int p = 0; p < kc; ++p) {
    const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(p) * ldb;
    for (int ir = 0; ir < mr; ++ir) {
      const float av = AT ? a[p * lda + ir] : a[ir * lda + p];
      for (int jr = 0; jr < nr; ++jr) acc[ir][jr] += av * brow[jr];
    }
  }
  for (int ir = 0; ir < mr; ++ir) {
    for (int jr = 0; jr < nr; ++jr) c[ir * ldc + jr] = acc[ir][jr];
  }
}

// Shared driver for gemm / gemm_at_b. Loop order jc -> pc -> ic keeps p
// ascending for every output element across KC blocks. lda is the leading
// dimension of A as stored: k for AT=false ([m,k]), m for AT=true ([k,m]).
template <bool AT>
void gemm_blocked(int m, int n, int k, const float* a, std::ptrdiff_t lda,
                  const float* b, float* c) {
  const int MC = g_mc.load(std::memory_order_relaxed);
  const int KC = g_kc.load(std::memory_order_relaxed);
  const int NC = g_nc.load(std::memory_order_relaxed);
  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      for (int ic = 0; ic < m; ic += MC) {
        const int mc = std::min(MC, m - ic);
        for (int j = 0; j < nc; j += NR) {
          const int nr = std::min(NR, nc - j);
          for (int i = 0; i < mc; i += MR) {
            const int mr = std::min(MR, mc - i);
            const float* at = AT ? a + static_cast<std::ptrdiff_t>(pc) * lda + (ic + i)
                                 : a + static_cast<std::ptrdiff_t>(ic + i) * lda + pc;
            const float* bt = b + static_cast<std::ptrdiff_t>(pc) * n + (jc + j);
            float* ct = c + static_cast<std::ptrdiff_t>(ic + i) * n + (jc + j);
            if (nr == NR) {
              switch (mr) {
                case 4: micro_full<AT, 4>(kc, at, lda, bt, n, ct, n); break;
                case 3: micro_full<AT, 3>(kc, at, lda, bt, n, ct, n); break;
                case 2: micro_full<AT, 2>(kc, at, lda, bt, n, ct, n); break;
                default: micro_full<AT, 1>(kc, at, lda, bt, n, ct, n); break;
              }
            } else {
              micro_edge<AT>(mr, nr, kc, at, lda, bt, n, ct, n);
            }
          }
        }
      }
    }
  }
}

// gemm_a_bt microkernels. Each C element is an independent
// single-accumulator dot over the full k extent (matching the reference
// chain: local accumulator from zero, one final add into C), so k is
// never blocked and lanes are never split across one dot. The main path
// packs B^T into a contiguous [k, n] buffer first: the reduction then
// reads unit-stride rows and the MRT x NV vector tile applies, with each
// lane carrying one whole chain.
template <int MRT>
inline void micro_abt(int k, const float* __restrict__ a, int lda,
                      const float* __restrict__ bt, int ldb,
                      float* __restrict__ c, int ldc) {
  vf acc[MRT][NV] = {};
  for (int p = 0; p < k; ++p) {
    const float* __restrict__ brow = bt + static_cast<std::ptrdiff_t>(p) * ldb;
    vf bv[NV];
    for (int jv = 0; jv < NV; ++jv) {
      bv[jv] = *reinterpret_cast<const vf*>(brow + jv * VL);
    }
    for (int ir = 0; ir < MRT; ++ir) {
      const float av = a[ir * lda + p];
      for (int jv = 0; jv < NV; ++jv) acc[ir][jv] += av * bv[jv];
    }
  }
  for (int ir = 0; ir < MRT; ++ir) {
    for (int jv = 0; jv < NV; ++jv) {
      vf* cv = reinterpret_cast<vf*>(c + ir * ldc + jv * VL);
      *cv = *cv + acc[ir][jv];
    }
  }
}

// Column remainder: scalar DR x DC tile of dots against the original
// [n, k] layout (rows are contiguous there, so the loads stay unit
// stride without packing).
constexpr int DR = 2;
constexpr int DC = 4;

inline void micro_dot_edge(int dr, int dc, int k, const float* __restrict__ a,
                           int lda, const float* __restrict__ b, int ldb,
                           float* __restrict__ c, int ldc) {
  float acc[DR][DC] = {};
  for (int p = 0; p < k; ++p) {
    for (int ir = 0; ir < dr; ++ir) {
      const float av = a[static_cast<std::ptrdiff_t>(ir) * lda + p];
      for (int jr = 0; jr < dc; ++jr) {
        acc[ir][jr] += av * b[static_cast<std::ptrdiff_t>(jr) * ldb + p];
      }
    }
  }
  for (int ir = 0; ir < dr; ++ir) {
    for (int jr = 0; jr < dc; ++jr) c[ir * ldc + jr] += acc[ir][jr];
  }
}

constexpr int TS = 32;  // transpose tile (floats); 2 * 4KB per tile pair

}  // namespace

void gemm(int m, int n, int k, const float* a, const float* b, float* c) {
  // GEMM is the NN hot path; the counter costs one relaxed load when
  // metrics are off, and the FLOP tally lets --metrics-out report
  // throughput without instrumenting any caller.
  util::metrics::counter_add("nn.gemm_calls");
  util::metrics::counter_add("nn.gemm_flops", 2LL * m * n * k);
  gemm_blocked<false>(m, n, k, a, /*lda=*/k, b, c);
}

void gemm_at_b(int m, int n, int k, const float* a, const float* b, float* c) {
  util::metrics::counter_add("nn.gemm_calls");
  util::metrics::counter_add("nn.gemm_flops", 2LL * m * n * k);
  gemm_blocked<true>(m, n, k, a, /*lda=*/m, b, c);
}

void gemm_a_bt(int m, int n, int k, const float* a, const float* b, float* c) {
  util::metrics::counter_add("nn.gemm_calls");
  util::metrics::counter_add("nn.gemm_flops", 2LL * m * n * k);
  const int n_main = n - n % NR;
  if (n_main > 0) {
    // Pack the leading n_main rows of B ([n, k] row major) as B^T
    // ([k, n_main]) so the vector microkernel streams unit-stride rows.
    // The buffer is recycled across calls: steady state allocates
    // nothing (same contract as the tensor arena).
    static thread_local std::vector<float> packed;
    packed.resize(static_cast<std::size_t>(k) * n_main);
    transpose_copy(n_main, k, b, packed.data());
    for (int i = 0; i < m; i += MR) {
      const int mr = std::min(MR, m - i);
      const float* at = a + static_cast<std::ptrdiff_t>(i) * k;
      for (int j = 0; j < n_main; j += NR) {
        const float* bt = packed.data() + j;
        float* ct = c + static_cast<std::ptrdiff_t>(i) * n + j;
        switch (mr) {
          case 4: micro_abt<4>(k, at, k, bt, n_main, ct, n); break;
          case 3: micro_abt<3>(k, at, k, bt, n_main, ct, n); break;
          case 2: micro_abt<2>(k, at, k, bt, n_main, ct, n); break;
          default: micro_abt<1>(k, at, k, bt, n_main, ct, n); break;
        }
      }
    }
  }
  for (int i = 0; i < m; i += DR) {
    const int dr = std::min(DR, m - i);
    for (int j = n_main; j < n; j += DC) {
      const int dc = std::min(DC, n - j);
      micro_dot_edge(dr, dc, k, a + static_cast<std::ptrdiff_t>(i) * k, k,
                     b + static_cast<std::ptrdiff_t>(j) * k, k,
                     c + static_cast<std::ptrdiff_t>(i) * n + j, n);
    }
  }
}

void gemm_naive(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    const float* __restrict__ arow = a + static_cast<std::ptrdiff_t>(i) * k;
    float* __restrict__ crow = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b_naive(int m, int n, int k, const float* a, const float* b,
                     float* c) {
  for (int p = 0; p < k; ++p) {
    const float* __restrict__ arow = a + static_cast<std::ptrdiff_t>(p) * m;
    const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      float* __restrict__ crow = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt_naive(int m, int n, int k, const float* a, const float* b,
                     float* c) {
  for (int i = 0; i < m; ++i) {
    const float* __restrict__ arow = a + static_cast<std::ptrdiff_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* __restrict__ brow = b + static_cast<std::ptrdiff_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[static_cast<std::ptrdiff_t>(i) * n + j] += acc;
    }
  }
}

void axpy(std::size_t n, float alpha, const float* __restrict__ x,
          float* __restrict__ y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void add_inplace(std::size_t n, const float* __restrict__ x,
                 float* __restrict__ y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void mul_accumulate(std::size_t n, const float* __restrict__ x,
                    const float* __restrict__ y, float* __restrict__ out) {
  for (std::size_t i = 0; i < n; ++i) out[i] += x[i] * y[i];
}

float dot(std::size_t n, const float* __restrict__ x,
          const float* __restrict__ y) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void copy(std::size_t n, const float* src, float* dst) {
  if (n > 0) std::memcpy(dst, src, n * sizeof(float));
}

void col_sum_add(int rows, int cols, const float* a, float* out) {
  for (int r = 0; r < rows; ++r) {
    add_inplace(static_cast<std::size_t>(cols),
                a + static_cast<std::ptrdiff_t>(r) * cols, out);
  }
}

void row_sum_add(int rows, int cols, const float* a, float* out) {
  for (int r = 0; r < rows; ++r) {
    const float* __restrict__ row = a + static_cast<std::ptrdiff_t>(r) * cols;
    float acc = 0.0f;
    for (int c = 0; c < cols; ++c) acc += row[c];
    out[r] += acc;
  }
}

void transpose_copy(int m, int n, const float* a, float* out) {
  for (int i0 = 0; i0 < m; i0 += TS) {
    const int i1 = std::min(i0 + TS, m);
    for (int j0 = 0; j0 < n; j0 += TS) {
      const int j1 = std::min(j0 + TS, n);
      // j outer / i inner: writes to out row j are unit-stride.
      for (int j = j0; j < j1; ++j) {
        float* __restrict__ orow = out + static_cast<std::ptrdiff_t>(j) * m;
        for (int i = i0; i < i1; ++i) {
          orow[i] = a[static_cast<std::ptrdiff_t>(i) * n + j];
        }
      }
    }
  }
}

GemmTiles default_gemm_tiles() { return {kDefaultMc, kDefaultKc, kDefaultNc}; }

GemmTiles gemm_tiles() {
  return {g_mc.load(std::memory_order_relaxed),
          g_kc.load(std::memory_order_relaxed),
          g_nc.load(std::memory_order_relaxed)};
}

void set_gemm_tiles(const GemmTiles& tiles) {
  g_mc.store(std::max(1, tiles.mc), std::memory_order_relaxed);
  g_kc.store(std::max(1, tiles.kc), std::memory_order_relaxed);
  g_nc.store(std::max(1, tiles.nc), std::memory_order_relaxed);
}

void reset_gemm_tiles() { set_gemm_tiles(default_gemm_tiles()); }

namespace {

// Candidate tile sets for the load-time autotuner. The compiled-in
// default is always a candidate, so tuning can never pick something
// slower than "no tuning" (modulo timing noise, which the bench gate
// budgets for). The others trade A-panel height against B-panel width
// around the L1/L2 sizes common on the deployment fleet.
constexpr GemmTiles kTileCandidates[] = {
    {kDefaultMc, kDefaultKc, kDefaultNc},
    {32, 256, 512},
    {128, 128, 256},
    {48, 384, 192},
    {96, 192, 320},
};

double time_shapes_once(const std::vector<GemmShape>& shapes,
                        const std::vector<float>& a, const std::vector<float>& b,
                        std::vector<float>& c) {
  const auto start = std::chrono::steady_clock::now();
  for (const GemmShape& s : shapes) {
    gemm(s.m, s.n, s.k, a.data(), b.data(), c.data());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

GemmTiles autotune_gemm_tiles(const std::vector<GemmShape>& shapes) {
  std::size_t max_a = 1, max_b = 1, max_c = 1;
  std::vector<GemmShape> valid;
  for (const GemmShape& s : shapes) {
    if (s.m <= 0 || s.n <= 0 || s.k <= 0) continue;
    valid.push_back(s);
    max_a = std::max(max_a, static_cast<std::size_t>(s.m) * s.k);
    max_b = std::max(max_b, static_cast<std::size_t>(s.k) * s.n);
    max_c = std::max(max_c, static_cast<std::size_t>(s.m) * s.n);
  }
  if (valid.empty()) return gemm_tiles();
  // Deterministic non-trivial operands; the timing, not the numbers,
  // decides (tiles are result-invariant, so the values don't matter).
  std::vector<float> a(max_a), b(max_b), c(max_c, 0.0f);
  for (std::size_t i = 0; i < max_a; ++i) a[i] = 1.0f + 0.001f * (i % 97);
  for (std::size_t i = 0; i < max_b; ++i) b[i] = 0.5f - 0.002f * (i % 89);

  const GemmTiles previous = gemm_tiles();
  GemmTiles best = previous;
  double best_seconds = -1.0;
  for (const GemmTiles& candidate : kTileCandidates) {
    set_gemm_tiles(candidate);
    time_shapes_once(valid, a, b, c);  // warm caches + page in buffers
    double seconds = time_shapes_once(valid, a, b, c);
    seconds = std::min(seconds, time_shapes_once(valid, a, b, c));
    seconds = std::min(seconds, time_shapes_once(valid, a, b, c));
    if (best_seconds < 0.0 || seconds < best_seconds) {
      best_seconds = seconds;
      best = candidate;
    }
  }
  set_gemm_tiles(previous);
  return best;
}

void autotune_gemm_for_shapes(const std::vector<GemmShape>& shapes) {
  static std::once_flag tuned;
  std::call_once(tuned, [&shapes] {
    const GemmTiles best = autotune_gemm_tiles(shapes);
    set_gemm_tiles(best);
    util::metrics::counter_add("nn.gemm_autotune_runs");
    util::metrics::gauge_set("nn.gemm_tiles.mc", best.mc);
    util::metrics::gauge_set("nn.gemm_tiles.kc", best.kc);
    util::metrics::gauge_set("nn.gemm_tiles.nc", best.nc);
  });
}

void gemm_s8(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
             std::int32_t* c) {
  util::metrics::counter_add("nn.gemm_calls");
  util::metrics::counter_add("nn.gemm_flops", 2LL * m * n * k);
  // i-p-j with widening loads: the inner loop is a unit-stride
  // int8 -> int32 multiply-accumulate the vectorizer handles, and the
  // order matches the naive oracle (moot for integers — exact anyway).
  for (int i = 0; i < m; ++i) {
    const std::int8_t* __restrict__ arow = a + static_cast<std::ptrdiff_t>(i) * k;
    std::int32_t* __restrict__ crow = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const std::int32_t av = arow[p];
      const std::int8_t* __restrict__ brow =
          b + static_cast<std::ptrdiff_t>(p) * n;
      for (int j = 0; j < n; ++j) {
        crow[j] += av * static_cast<std::int32_t>(brow[j]);
      }
    }
  }
}

void gemm_s8_naive(int m, int n, int k, const std::int8_t* a,
                   const std::int8_t* b, std::int32_t* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(a[static_cast<std::ptrdiff_t>(i) * k + p]) *
               static_cast<std::int32_t>(b[static_cast<std::ptrdiff_t>(p) * n + j]);
      }
      c[static_cast<std::ptrdiff_t>(i) * n + j] += acc;
    }
  }
}

std::uint16_t float_to_half(float value) {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const auto sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  f &= 0x7fffffffu;
  if (f >= 0x7f800000u) {  // Inf / NaN: keep class, truncate payload, stay quiet
    const std::uint32_t payload =
        f > 0x7f800000u ? (0x0200u | ((f >> 13) & 0x03ffu)) : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | payload);
  }
  const int exp = static_cast<int>(f >> 23) - 127;
  if (exp > 15) return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow
  if (f < 0x00800000u) return sign;  // float subnormal: far below half range
  const std::uint32_t mant = (f & 0x007fffffu) | 0x00800000u;  // implicit bit
  // Align the 24-bit significand to the half's 11-bit frame (shift grows
  // for subnormal halves) and round once, to nearest even. Reassembling
  // exponent and mantissa by ADDITION lets a rounding carry ripple into
  // the exponent — including 65520 -> Inf.
  const bool normal = exp >= -14;
  const int shift = normal ? 13 : 13 + (-14 - exp);
  if (shift >= 32) return sign;
  std::uint32_t rounded = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (rounded & 1u))) ++rounded;
  const std::uint32_t bits =
      normal ? ((static_cast<std::uint32_t>(exp + 14) << 10) + rounded)
             : rounded;
  return static_cast<std::uint16_t>(sign | bits);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  std::uint32_t exp = (half >> 10) & 0x1fu;
  std::uint32_t mant = half & 0x03ffu;
  std::uint32_t bits;
  if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant == 0) {
    bits = sign;
  } else {  // subnormal: renormalize into the float frame
    std::uint32_t shift = 0;
    while ((mant & 0x0400u) == 0) {
      mant <<= 1;
      ++shift;
    }
    bits = sign | ((113u - shift) << 23) | ((mant & 0x03ffu) << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

void float_to_half_buffer(std::size_t n, const float* src, std::uint16_t* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_half(src[i]);
}

void half_to_float_buffer(std::size_t n, const std::uint16_t* src, float* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_to_float(src[i]);
}

void gemm_f16(int m, int n, int k, const std::uint16_t* a,
              const std::uint16_t* b, float* c) {
  // Widen once into recycled scratch, then reuse the blocked fp32 GEMM:
  // fastest available reduction, and the chain over the widened values
  // is exactly the fp32 contract (so f16 == f16_naive bitwise).
  static thread_local std::vector<float> wa, wb;
  wa.resize(static_cast<std::size_t>(m) * k);
  wb.resize(static_cast<std::size_t>(k) * n);
  half_to_float_buffer(wa.size(), a, wa.data());
  half_to_float_buffer(wb.size(), b, wb.data());
  gemm(m, n, k, wa.data(), wb.data(), c);
}

void gemm_f16_naive(int m, int n, int k, const std::uint16_t* a,
                    const std::uint16_t* b, float* c) {
  std::vector<float> wa(static_cast<std::size_t>(m) * k);
  std::vector<float> wb(static_cast<std::size_t>(k) * n);
  half_to_float_buffer(wa.size(), a, wa.data());
  half_to_float_buffer(wb.size(), b, wb.data());
  gemm_naive(m, n, k, wa.data(), wb.data(), c);
}

void transpose_add(int m, int n, const float* a, float* out) {
  for (int i0 = 0; i0 < m; i0 += TS) {
    const int i1 = std::min(i0 + TS, m);
    for (int j0 = 0; j0 < n; j0 += TS) {
      const int j1 = std::min(j0 + TS, n);
      for (int j = j0; j < j1; ++j) {
        float* __restrict__ orow = out + static_cast<std::ptrdiff_t>(j) * m;
        for (int i = i0; i < i1; ++i) {
          orow[i] += a[static_cast<std::ptrdiff_t>(i) * n + j];
        }
      }
    }
  }
}

}  // namespace sevuldet::nn::kernels
