// Blocked single-precision kernels for the NN hot path. Three GEMM
// variants cover every matmul the autograd tape performs — the two
// transposed forms are fused so no transposed operand is ever
// materialized:
//
//   gemm      C[m,n] += A[m,k]  * B[k,n]   (forward)
//   gemm_at_b C[m,n] += A[k,m]T * B[k,n]   (dB = A^T dOut)
//   gemm_a_bt C[m,n] += A[m,k]  * B[n,k]T  (dA = dOut B^T)
//
// Every kernel is written for compiler auto-vectorization: unit-stride
// inner loops, restrict-qualified pointers, register tiles that fit the
// vector file. Configure with -DSEVULDET_NATIVE=ON for -march=native.
//
// Determinism contract: each output element's floating-point
// accumulation chain is IDENTICAL to the retained *_naive reference
// (terms added in ascending reduction order, one accumulator per
// element). Cache blocking reloads the partial C tile instead of
// re-associating, so blocked and naive results are byte-identical —
// tests/kernels_test.cpp asserts this bitwise over adversarial shapes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sevuldet::nn::kernels {

// --- cache-tile configuration ---------------------------------------------
// The fp32 GEMM drivers block the iteration space with MC/KC/NC cache
// tiles. Tile sizes NEVER change results: blocking reloads the partial C
// tile instead of re-associating, so every output element's accumulation
// chain is the naive reference's regardless of the installed tiles
// (kernels_test pins this bitwise across several tile configurations).
// That result-invariance is what makes runtime autotuning safe.
struct GemmTiles {
  int mc = 0;
  int kc = 0;
  int nc = 0;
};

/// Compiled-in default tiles (the pre-autotune configuration).
GemmTiles default_gemm_tiles();
/// Tiles currently installed for this process.
GemmTiles gemm_tiles();
/// Install new tiles (values clamped to >= 1). Safe to call while other
/// threads run GEMMs: each call reads the tile set once at entry.
void set_gemm_tiles(const GemmTiles& tiles);
/// Restore the compiled-in defaults.
void reset_gemm_tiles();

/// One GEMM problem shape, as seen by the autotuner.
struct GemmShape {
  int m = 0;
  int n = 0;
  int k = 0;
};

/// Benchmark a small fixed candidate set of cache tiles over `shapes`
/// (the model's actual layer shapes) and return the fastest. Pure: does
/// not install the result. Deterministic inputs; wall-clock choice only.
GemmTiles autotune_gemm_tiles(const std::vector<GemmShape>& shapes);

/// Autotune once per process and install the winner; later calls are
/// no-ops (model load is the intended call site — the bucketed batch
/// shapes are known there, and test binaries that load many models pay
/// the tuning cost a single time).
void autotune_gemm_for_shapes(const std::vector<GemmShape>& shapes);

// --- GEMM family (all accumulate into C) ----------------------------------
/// C[m,n] += A[m,k] * B[k,n]; row-major, leading dims = logical widths.
void gemm(int m, int n, int k, const float* a, const float* b, float* c);
/// C[m,n] += A^T * B with A stored [k,m] (no transpose materialized).
void gemm_at_b(int m, int n, int k, const float* a, const float* b, float* c);
/// C[m,n] += A * B^T with B stored [n,k] (dot-product form).
void gemm_a_bt(int m, int n, int k, const float* a, const float* b, float* c);

// Naive references, retained as the exactness oracle (identical
// accumulation chains, no blocking). The forward reference carries no
// sparsity short-circuit: 0 * NaN must propagate (see kernels_test).
void gemm_naive(int m, int n, int k, const float* a, const float* b, float* c);
void gemm_at_b_naive(int m, int n, int k, const float* a, const float* b,
                     float* c);
void gemm_a_bt_naive(int m, int n, int k, const float* a, const float* b,
                     float* c);

// --- quantized GEMMs -------------------------------------------------------
// int8 x int8 -> int32 accumulate. Integer arithmetic is exact, so the
// optimized kernel equals the naive oracle for every input (no rounding
// contract to manage — kernels_test asserts exact equality anyway).
/// C[m,n] += A[m,k] * B[k,n], both operands int8, 32-bit accumulators.
void gemm_s8(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
             std::int32_t* c);
void gemm_s8_naive(int m, int n, int k, const std::int8_t* a,
                   const std::int8_t* b, std::int32_t* c);

// --- IEEE 754 binary16 helpers ---------------------------------------------
// fp16 here is a STORAGE format: operands are quantized to the half
// grid (round-to-nearest-even), then widened back to fp32 for the
// accumulation. That bounds the precision loss to the operand rounding
// while keeping the fp32 determinism contract for the reduction chain.
/// Round-to-nearest-even float -> binary16 (Inf/NaN preserved, NaN
/// payload truncated but kept quiet).
std::uint16_t float_to_half(float value);
/// Exact binary16 -> float widening (every half is representable).
float half_to_float(std::uint16_t half);
/// dst[i] = float_to_half(src[i])
void float_to_half_buffer(std::size_t n, const float* src, std::uint16_t* dst);
/// dst[i] = half_to_float(src[i])
void half_to_float_buffer(std::size_t n, const std::uint16_t* src, float* dst);

/// C[m,n] += widen(A[m,k]) * widen(B[k,n]) with fp32 accumulation —
/// same chain as `gemm` over the widened operands (the optimized path
/// widens once into scratch and reuses the blocked fp32 kernel).
void gemm_f16(int m, int n, int k, const std::uint16_t* a,
              const std::uint16_t* b, float* c);
void gemm_f16_naive(int m, int n, int k, const std::uint16_t* a,
                    const std::uint16_t* b, float* c);

// --- level-1 helpers -------------------------------------------------------
/// y[i] += alpha * x[i]
void axpy(std::size_t n, float alpha, const float* x, float* y);
/// y[i] += x[i]
void add_inplace(std::size_t n, const float* x, float* y);
/// out[i] += x[i] * y[i]
void mul_accumulate(std::size_t n, const float* x, const float* y, float* out);
/// Single-accumulator dot product (ascending order — matches the scalar
/// reference chain, so callers stay bit-reproducible).
float dot(std::size_t n, const float* x, const float* y);
/// dst[i] = src[i]
void copy(std::size_t n, const float* src, float* dst);

// --- rowwise / colwise reductions -----------------------------------------
/// out[c] += sum_r a[r,c], rows accumulated in ascending order.
void col_sum_add(int rows, int cols, const float* a, float* out);
/// out[r] += sum_c a[r,c], cols accumulated in ascending order.
void row_sum_add(int rows, int cols, const float* a, float* out);

// --- transpose -------------------------------------------------------------
/// out[n,m] = a[m,n]^T, cache-tiled.
void transpose_copy(int m, int n, const float* a, float* out);
/// out[n,m] += a[m,n]^T, cache-tiled.
void transpose_add(int m, int n, const float* a, float* out);

}  // namespace sevuldet::nn::kernels
