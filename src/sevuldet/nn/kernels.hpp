// Blocked single-precision kernels for the NN hot path. Three GEMM
// variants cover every matmul the autograd tape performs — the two
// transposed forms are fused so no transposed operand is ever
// materialized:
//
//   gemm      C[m,n] += A[m,k]  * B[k,n]   (forward)
//   gemm_at_b C[m,n] += A[k,m]T * B[k,n]   (dB = A^T dOut)
//   gemm_a_bt C[m,n] += A[m,k]  * B[n,k]T  (dA = dOut B^T)
//
// Every kernel is written for compiler auto-vectorization: unit-stride
// inner loops, restrict-qualified pointers, register tiles that fit the
// vector file. Configure with -DSEVULDET_NATIVE=ON for -march=native.
//
// Determinism contract: each output element's floating-point
// accumulation chain is IDENTICAL to the retained *_naive reference
// (terms added in ascending reduction order, one accumulator per
// element). Cache blocking reloads the partial C tile instead of
// re-associating, so blocked and naive results are byte-identical —
// tests/kernels_test.cpp asserts this bitwise over adversarial shapes.
#pragma once

#include <cstddef>

namespace sevuldet::nn::kernels {

// --- GEMM family (all accumulate into C) ----------------------------------
/// C[m,n] += A[m,k] * B[k,n]; row-major, leading dims = logical widths.
void gemm(int m, int n, int k, const float* a, const float* b, float* c);
/// C[m,n] += A^T * B with A stored [k,m] (no transpose materialized).
void gemm_at_b(int m, int n, int k, const float* a, const float* b, float* c);
/// C[m,n] += A * B^T with B stored [n,k] (dot-product form).
void gemm_a_bt(int m, int n, int k, const float* a, const float* b, float* c);

// Naive references, retained as the exactness oracle (identical
// accumulation chains, no blocking). The forward reference carries no
// sparsity short-circuit: 0 * NaN must propagate (see kernels_test).
void gemm_naive(int m, int n, int k, const float* a, const float* b, float* c);
void gemm_at_b_naive(int m, int n, int k, const float* a, const float* b,
                     float* c);
void gemm_a_bt_naive(int m, int n, int k, const float* a, const float* b,
                     float* c);

// --- level-1 helpers -------------------------------------------------------
/// y[i] += alpha * x[i]
void axpy(std::size_t n, float alpha, const float* x, float* y);
/// y[i] += x[i]
void add_inplace(std::size_t n, const float* x, float* y);
/// out[i] += x[i] * y[i]
void mul_accumulate(std::size_t n, const float* x, const float* y, float* out);
/// Single-accumulator dot product (ascending order — matches the scalar
/// reference chain, so callers stay bit-reproducible).
float dot(std::size_t n, const float* x, const float* y);
/// dst[i] = src[i]
void copy(std::size_t n, const float* src, float* dst);

// --- rowwise / colwise reductions -----------------------------------------
/// out[c] += sum_r a[r,c], rows accumulated in ascending order.
void col_sum_add(int rows, int cols, const float* a, float* out);
/// out[r] += sum_c a[r,c], cols accumulated in ascending order.
void row_sum_add(int rows, int cols, const float* a, float* out);

// --- transpose -------------------------------------------------------------
/// out[n,m] = a[m,n]^T, cache-tiled.
void transpose_copy(int m, int n, const float* a, float* out);
/// out[n,m] += a[m,n]^T, cache-tiled.
void transpose_add(int m, int n, const float* a, float* out);

}  // namespace sevuldet::nn::kernels
