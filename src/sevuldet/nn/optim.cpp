#include "sevuldet/nn/optim.hpp"

#include <cmath>

namespace sevuldet::nn {

void Optimizer::zero_grad() {
  for (const auto& [name, node] : store_->all()) node->zero_grad();
}

float Optimizer::clip_grad_norm(float max_norm) {
  double total = 0.0;
  for (const auto& [name, node] : store_->all()) {
    node->ensure_grad();
    for (std::size_t i = 0; i < node->grad.size(); ++i) {
      total += static_cast<double>(node->grad[i]) * node->grad[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float k = max_norm / norm;
    for (const auto& [name, node] : store_->all()) {
      for (std::size_t i = 0; i < node->grad.size(); ++i) node->grad[i] *= k;
    }
  }
  return norm;
}

Sgd::Sgd(ParamStore& store, float lr, float momentum)
    : Optimizer(store), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    for (const auto& [name, node] : store.all()) {
      velocity_.emplace_back(node->value.rows(), node->value.cols());
    }
  }
}

void Sgd::step() {
  const auto& params = store_->all();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Node& node = *params[p].second;
    node.ensure_grad();
    const std::size_t size = node.value.size();
    float* __restrict__ w = node.value.data();
    const float* __restrict__ g = node.grad.data();
    if (momentum_ > 0.0f) {
      float* __restrict__ vel = velocity_[p].data();
      for (std::size_t i = 0; i < size; ++i) {
        vel[i] = momentum_ * vel[i] + g[i];
        w[i] -= lr_ * vel[i];
      }
    } else {
      for (std::size_t i = 0; i < size; ++i) {
        w[i] -= lr_ * g[i];
      }
    }
  }
}

Adam::Adam(ParamStore& store, float lr, float beta1, float beta2, float eps)
    : Optimizer(store), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (const auto& [name, node] : store.all()) {
    m_.emplace_back(node->value.rows(), node->value.cols());
    v_.emplace_back(node->value.rows(), node->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const auto& params = store_->all();
  // The restrict-qualified raw pointers let the update vectorize (the
  // per-element formula is untouched — packed divide/sqrt round each
  // lane exactly like their scalar forms, so the update stays bitwise
  // identical; only the aliasing proof changes).
  for (std::size_t p = 0; p < params.size(); ++p) {
    Node& node = *params[p].second;
    node.ensure_grad();
    const std::size_t size = node.value.size();
    float* __restrict__ w = node.value.data();
    const float* __restrict__ grad = node.grad.data();
    float* __restrict__ m = m_[p].data();
    float* __restrict__ v = v_[p].data();
    for (std::size_t i = 0; i < size; ++i) {
      const float g = grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      w[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace sevuldet::nn
