// Optimizers over a ParamStore: plain SGD (with optional momentum) and
// Adam. step() consumes the gradients accumulated since the last
// zero_grad(); gradient clipping guards the RNN baselines against
// exploding gradients on long sequences.
#pragma once

#include <vector>

#include "sevuldet/nn/layers.hpp"

namespace sevuldet::nn {

class Optimizer {
 public:
  explicit Optimizer(ParamStore& store) : store_(&store) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

  /// Scale all gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float clip_grad_norm(float max_norm);

 protected:
  ParamStore* store_;
};

class Sgd : public Optimizer {
 public:
  Sgd(ParamStore& store, float lr, float momentum = 0.0f);
  void step() override;
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(ParamStore& store, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);
  void step() override;
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, eps_;
  long long t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace sevuldet::nn
