// Neural-network layers built on the autograd ops. Each layer registers
// its parameters in a ParamStore (named, for the optimizer and for
// serialization) and exposes a forward() that threads NodePtrs.
//
// The layers implement exactly the blocks of the paper's Fig. 2/4:
//   - TokenAttention: eqs. (1)-(4), exposing the α weights (Fig. 6 hook)
//   - ChannelAttention / SpatialAttention / Cbam: eqs. (5)-(8)
//   - Conv1d + spp_max: the SPP-CNN trunk for flexible-length input
//   - LstmCell / GruCell / BiRnn: the BLSTM / BGRU baselines (RQ1)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sevuldet/nn/autograd.hpp"

namespace sevuldet::nn {

/// Named parameter registry. Layers add parameters at construction; the
/// optimizer and the serializer walk the registry.
class ParamStore {
 public:
  NodePtr add(const std::string& name, Tensor init);
  const std::vector<std::pair<std::string, NodePtr>>& all() const { return params_; }
  NodePtr find(const std::string& name) const;
  std::size_t parameter_count() const;

 private:
  std::vector<std::pair<std::string, NodePtr>> params_;
};

/// Xavier-uniform initialization bound for a [fan_in, fan_out] weight.
Tensor xavier_uniform(int fan_in, int fan_out, util::Rng& rng);

// ---------------------------------------------------------------------------

class Dense {
 public:
  Dense(ParamStore& store, const std::string& name, int in, int out,
        util::Rng& rng);
  /// x [m, in] -> [m, out]
  NodePtr forward(const NodePtr& x) const;

 private:
  NodePtr w_, b_;
};

class Conv1d {
 public:
  /// 1-D convolution over the row axis: x [T, in] -> [T_out, out].
  Conv1d(ParamStore& store, const std::string& name, int in, int out,
         int kernel, int pad, util::Rng& rng);
  NodePtr forward(const NodePtr& x) const;
  int kernel() const { return kernel_; }
  int pad() const { return pad_; }

 private:
  NodePtr w_, b_;
  int kernel_;
  int pad_;
};

/// Token attention (Step IV, eqs. 1-4): re-weights each embedded token by
/// a learned importance. Keeps the latest α for visualization (Fig. 6).
class TokenAttention {
 public:
  TokenAttention(ParamStore& store, const std::string& name, int embed_dim,
                 int attn_dim, util::Rng& rng);
  /// x [T, E] -> x̂ [T, E]; fills last_weights() with α (length T).
  NodePtr forward(const NodePtr& x);
  const std::vector<float>& last_weights() const { return last_weights_; }

 private:
  NodePtr ww_, bw_, uw_;
  std::vector<float> last_weights_;
};

/// CBAM channel attention (eq. 5): Mc = σ(MLP(avg) + MLP(max)), applied
/// as F' = F ⊗ Mc.
class ChannelAttention {
 public:
  ChannelAttention(ParamStore& store, const std::string& name, int channels,
                   int reduction, util::Rng& rng);
  NodePtr forward(const NodePtr& f) const;

 private:
  NodePtr w0_, b0_, w1_, b1_;
};

/// CBAM spatial attention (eq. 6): Ms = σ(conv7([avg;max])), applied as
/// F'' = F' ⊗ Ms. Keeps the latest Ms for visualization (Fig. 6), like
/// TokenAttention keeps α.
class SpatialAttention {
 public:
  SpatialAttention(ParamStore& store, const std::string& name, util::Rng& rng,
                   int kernel = 7);
  NodePtr forward(const NodePtr& f);
  const std::vector<float>& last_weights() const { return last_weights_; }

 private:
  std::unique_ptr<Conv1d> conv_;
  std::vector<float> last_weights_;
};

/// Full CBAM block (eqs. 7-8). `sequential` = channel then spatial (the
/// paper notes sequential beats parallel; the ablation bench flips this).
class Cbam {
 public:
  Cbam(ParamStore& store, const std::string& name, int channels, int reduction,
       util::Rng& rng, bool sequential = true);
  NodePtr forward(const NodePtr& f);
  /// Spatial map Ms of the last forward pass, one weight per row (conv
  /// position), in (0, 1).
  const std::vector<float>& last_spatial_weights() const {
    return spatial_.last_weights();
  }

 private:
  ChannelAttention channel_;
  SpatialAttention spatial_;
  bool sequential_;
};

// ---------------------------------------------------------------------------

class LstmCell {
 public:
  LstmCell(ParamStore& store, const std::string& name, int input, int hidden,
           util::Rng& rng);
  struct State {
    NodePtr h;
    NodePtr c;
  };
  State initial() const;
  State step(const NodePtr& x, const State& prev) const;  // x [1, input]
  int hidden() const { return hidden_; }

 private:
  NodePtr w_, b_;  // [input+hidden, 4*hidden], [1, 4*hidden]; gate order i,f,g,o
  int input_, hidden_;
};

class GruCell {
 public:
  GruCell(ParamStore& store, const std::string& name, int input, int hidden,
          util::Rng& rng);
  NodePtr initial() const;
  NodePtr step(const NodePtr& x, const NodePtr& h_prev) const;
  int hidden() const { return hidden_; }

 private:
  NodePtr wz_, wr_, wh_, bz_, br_, bh_;  // each [input+hidden, hidden]
  int input_, hidden_;
};

enum class RnnKind { Lstm, Gru };

/// Bidirectional RNN encoder: runs the sequence forward and backward and
/// returns the concatenated final hidden states [1, 2*hidden].
class BiRnn {
 public:
  BiRnn(ParamStore& store, const std::string& name, RnnKind kind, int input,
        int hidden, util::Rng& rng);
  NodePtr forward(const NodePtr& x) const;  // x [T, input]
  int output_dim() const { return 2 * hidden_; }

 private:
  RnnKind kind_;
  int hidden_;
  std::unique_ptr<LstmCell> lstm_fwd_, lstm_bwd_;
  std::unique_ptr<GruCell> gru_fwd_, gru_bwd_;
  // Per-forward row-slice handles; member so steady-state forwards reuse
  // its capacity instead of reallocating (each model clone owns its own).
  mutable std::vector<NodePtr> steps_;
};

}  // namespace sevuldet::nn
