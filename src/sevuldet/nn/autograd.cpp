#include "sevuldet/nn/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace sevuldet::nn {

namespace {

NodePtr make_node(Tensor value, std::vector<NodePtr> parents) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p->requires_grad) node->requires_grad = true;
  }
  return node;
}

[[noreturn]] void shape_error(const char* op, const Tensor& a, const Tensor& b) {
  throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                              a.shape_string() + " vs " + b.shape_string());
}

}  // namespace

NodePtr constant(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return node;
}

NodePtr param(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->zero_grad();
  return node;
}

void backward(const NodePtr& root) {
  if (root->value.rows() != 1 || root->value.cols() != 1) {
    throw std::invalid_argument("backward: root must be scalar [1,1]");
  }
  // Topological order via iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  for (Node* node : order) {
    if (node != root.get()) node->ensure_grad();
  }
  root->ensure_grad();
  root->grad.fill(0.0f);
  root->grad.at(0, 0) = 1.0f;

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad) node->backward_fn();
  }
}

// ---------------------------------------------------------------------------
// arithmetic
// ---------------------------------------------------------------------------

NodePtr add(const NodePtr& a, const NodePtr& b) {
  if (!a->value.same_shape(b->value)) shape_error("add", a->value, b->value);
  Tensor out = a->value;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += b->value[i];
  auto node = make_node(std::move(out), {a, b});
  Node* n = node.get();
  Node *pa = a.get(), *pb = b.get();
  node->backward_fn = [n, pa, pb]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (std::size_t i = 0; i < n->grad.size(); ++i) pa->grad[i] += n->grad[i];
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      for (std::size_t i = 0; i < n->grad.size(); ++i) pb->grad[i] += n->grad[i];
    }
  };
  return node;
}

NodePtr add_row(const NodePtr& a, const NodePtr& bias) {
  if (bias->value.rows() != 1 || bias->value.cols() != a->value.cols()) {
    shape_error("add_row", a->value, bias->value);
  }
  Tensor out = a->value;
  const int rows = out.rows(), cols = out.cols();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) out.at(r, c) += bias->value.at(0, c);
  }
  auto node = make_node(std::move(out), {a, bias});
  Node* n = node.get();
  Node *pa = a.get(), *pb = bias.get();
  node->backward_fn = [n, pa, pb, rows, cols]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (std::size_t i = 0; i < n->grad.size(); ++i) pa->grad[i] += n->grad[i];
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) pb->grad.at(0, c) += n->grad.at(r, c);
      }
    }
  };
  return node;
}

NodePtr sub(const NodePtr& a, const NodePtr& b) {
  return add(a, scale(b, -1.0f));
}

NodePtr mul(const NodePtr& a, const NodePtr& b) {
  if (!a->value.same_shape(b->value)) shape_error("mul", a->value, b->value);
  Tensor out = a->value;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= b->value[i];
  auto node = make_node(std::move(out), {a, b});
  Node* n = node.get();
  Node *pa = a.get(), *pb = b.get();
  node->backward_fn = [n, pa, pb]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (std::size_t i = 0; i < n->grad.size(); ++i) {
        pa->grad[i] += n->grad[i] * pb->value[i];
      }
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      for (std::size_t i = 0; i < n->grad.size(); ++i) {
        pb->grad[i] += n->grad[i] * pa->value[i];
      }
    }
  };
  return node;
}

NodePtr scale(const NodePtr& a, float k) {
  Tensor out = a->value;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= k;
  auto node = make_node(std::move(out), {a});
  Node* n = node.get();
  Node* pa = a.get();
  node->backward_fn = [n, pa, k]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (std::size_t i = 0; i < n->grad.size(); ++i) pa->grad[i] += n->grad[i] * k;
  };
  return node;
}

NodePtr matmul(const NodePtr& a, const NodePtr& b) {
  if (a->value.cols() != b->value.rows()) shape_error("matmul", a->value, b->value);
  const int m = a->value.rows(), k = a->value.cols(), n = b->value.cols();
  Tensor out(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = &a->value.at(i, 0);
    float* orow = &out.at(i, 0);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = &b->value.at(p, 0);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  auto node = make_node(std::move(out), {a, b});
  Node* nn_ = node.get();
  Node *pa = a.get(), *pb = b.get();
  node->backward_fn = [nn_, pa, pb, m, k, n]() {
    // dA = dOut * B^T ; dB = A^T * dOut — both loops ordered for
    // contiguous row access (this is the training hot path).
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (int i = 0; i < m; ++i) {
        const float* grow = &nn_->grad.at(i, 0);
        float* arow = &pa->grad.at(i, 0);
        for (int p = 0; p < k; ++p) {
          const float* brow = &pb->value.at(p, 0);
          float acc = 0.0f;
          for (int j = 0; j < n; ++j) acc += grow[j] * brow[j];
          arow[p] += acc;
        }
      }
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      for (int i = 0; i < m; ++i) {
        const float* arow = &pa->value.at(i, 0);
        const float* grow = &nn_->grad.at(i, 0);
        for (int p = 0; p < k; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          float* bgrow = &pb->grad.at(p, 0);
          for (int j = 0; j < n; ++j) bgrow[j] += av * grow[j];
        }
      }
    }
  };
  return node;
}

NodePtr transpose(const NodePtr& a) {
  const int m = a->value.rows(), n = a->value.cols();
  Tensor out(n, m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.at(j, i) = a->value.at(i, j);
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, m, n]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) pa->grad.at(i, j) += nd->grad.at(j, i);
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// nonlinearities
// ---------------------------------------------------------------------------

namespace {

template <typename Fwd, typename Bwd>
NodePtr unary_op(const NodePtr& a, Fwd fwd, Bwd bwd) {
  Tensor out = a->value;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = fwd(out[i]);
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, bwd]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (std::size_t i = 0; i < nd->grad.size(); ++i) {
      pa->grad[i] += nd->grad[i] * bwd(pa->value[i], nd->value[i]);
    }
  };
  return node;
}

}  // namespace

NodePtr tanh_op(const NodePtr& a) {
  return unary_op(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

NodePtr sigmoid(const NodePtr& a) {
  return unary_op(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

NodePtr relu(const NodePtr& a) {
  return unary_op(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

NodePtr softmax_col(const NodePtr& a) {
  if (a->value.cols() != 1) {
    throw std::invalid_argument("softmax_col expects [T,1], got " +
                                a->value.shape_string());
  }
  const int t = a->value.rows();
  Tensor out(t, 1);
  float max_v = a->value.at(0, 0);
  for (int i = 1; i < t; ++i) max_v = std::max(max_v, a->value.at(i, 0));
  float sum = 0.0f;
  for (int i = 0; i < t; ++i) {
    out.at(i, 0) = std::exp(a->value.at(i, 0) - max_v);
    sum += out.at(i, 0);
  }
  for (int i = 0; i < t; ++i) out.at(i, 0) /= sum;
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    // dX_i = y_i * (g_i - sum_j g_j y_j)
    float dot = 0.0f;
    for (int j = 0; j < t; ++j) dot += nd->grad.at(j, 0) * nd->value.at(j, 0);
    for (int i = 0; i < t; ++i) {
      pa->grad.at(i, 0) += nd->value.at(i, 0) * (nd->grad.at(i, 0) - dot);
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// shape ops
// ---------------------------------------------------------------------------

NodePtr concat_cols(const NodePtr& a, const NodePtr& b) {
  if (a->value.rows() != b->value.rows()) {
    shape_error("concat_cols", a->value, b->value);
  }
  const int m = a->value.rows(), p = a->value.cols(), q = b->value.cols();
  Tensor out(m, p + q);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < p; ++c) out.at(r, c) = a->value.at(r, c);
    for (int c = 0; c < q; ++c) out.at(r, p + c) = b->value.at(r, c);
  }
  auto node = make_node(std::move(out), {a, b});
  Node* nd = node.get();
  Node *pa = a.get(), *pb = b.get();
  node->backward_fn = [nd, pa, pb, m, p, q]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < p; ++c) pa->grad.at(r, c) += nd->grad.at(r, c);
      }
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < q; ++c) pb->grad.at(r, c) += nd->grad.at(r, p + c);
      }
    }
  };
  return node;
}

NodePtr concat_rows(const std::vector<NodePtr>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_rows: empty");
  const int cols = parts[0]->value.cols();
  int rows = 0;
  for (const auto& p : parts) {
    if (p->value.cols() != cols) shape_error("concat_rows", parts[0]->value, p->value);
    rows += p->value.rows();
  }
  Tensor out(rows, cols);
  int offset = 0;
  for (const auto& p : parts) {
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.at(offset + r, c) = p->value.at(r, c);
    }
    offset += p->value.rows();
  }
  auto node = make_node(std::move(out), parts);
  Node* nd = node.get();
  std::vector<Node*> raw;
  raw.reserve(parts.size());
  for (const auto& p : parts) raw.push_back(p.get());
  node->backward_fn = [nd, raw, cols]() {
    int offset = 0;
    for (Node* p : raw) {
      if (p->requires_grad) {
        p->ensure_grad();
        for (int r = 0; r < p->value.rows(); ++r) {
          for (int c = 0; c < cols; ++c) {
            p->grad.at(r, c) += nd->grad.at(offset + r, c);
          }
        }
      }
      offset += p->value.rows();
    }
  };
  return node;
}

NodePtr slice_cols(const NodePtr& a, int from, int to) {
  if (from < 0 || to > a->value.cols() || from >= to) {
    throw std::invalid_argument("slice_cols: bad range");
  }
  const int m = a->value.rows(), w = to - from;
  Tensor out(m, w);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < w; ++c) out.at(r, c) = a->value.at(r, from + c);
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, m, w, from]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < w; ++c) pa->grad.at(r, from + c) += nd->grad.at(r, c);
    }
  };
  return node;
}

NodePtr slice_rows(const NodePtr& a, int from, int to) {
  if (from < 0 || to > a->value.rows() || from >= to) {
    throw std::invalid_argument("slice_rows: bad range");
  }
  const int h = to - from, n = a->value.cols();
  Tensor out(h, n);
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < n; ++c) out.at(r, c) = a->value.at(from + r, c);
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, h, n, from]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int r = 0; r < h; ++r) {
      for (int c = 0; c < n; ++c) pa->grad.at(from + r, c) += nd->grad.at(r, c);
    }
  };
  return node;
}

NodePtr reshape_row(const NodePtr& a) {
  const int m = a->value.rows(), n = a->value.cols();
  Tensor out(1, m * n);
  for (std::size_t i = 0; i < a->value.size(); ++i) out[i] = a->value[i];
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (std::size_t i = 0; i < nd->grad.size(); ++i) pa->grad[i] += nd->grad[i];
  };
  return node;
}

// ---------------------------------------------------------------------------
// reductions
// ---------------------------------------------------------------------------

NodePtr sum_all(const NodePtr& a) {
  float total = 0.0f;
  for (std::size_t i = 0; i < a->value.size(); ++i) total += a->value[i];
  auto node = make_node(Tensor::scalar(total), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    const float g = nd->grad.at(0, 0);
    for (std::size_t i = 0; i < pa->grad.size(); ++i) pa->grad[i] += g;
  };
  return node;
}

NodePtr mean_all(const NodePtr& a) {
  return scale(sum_all(a), 1.0f / static_cast<float>(a->value.size()));
}

NodePtr reduce_rows_mean(const NodePtr& a) {
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out(1, c);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < c; ++j) out.at(0, j) += a->value.at(i, j);
  }
  for (int j = 0; j < c; ++j) out.at(0, j) /= static_cast<float>(t);
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < t; ++i) {
      for (int j = 0; j < c; ++j) {
        pa->grad.at(i, j) += nd->grad.at(0, j) / static_cast<float>(t);
      }
    }
  };
  return node;
}

NodePtr reduce_rows_max(const NodePtr& a) {
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out(1, c);
  std::vector<int> arg(static_cast<std::size_t>(c), 0);
  for (int j = 0; j < c; ++j) {
    float best = a->value.at(0, j);
    for (int i = 1; i < t; ++i) {
      if (a->value.at(i, j) > best) {
        best = a->value.at(i, j);
        arg[static_cast<std::size_t>(j)] = i;
      }
    }
    out.at(0, j) = best;
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, arg, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int j = 0; j < c; ++j) {
      pa->grad.at(arg[static_cast<std::size_t>(j)], j) += nd->grad.at(0, j);
    }
  };
  return node;
}

NodePtr reduce_cols_mean(const NodePtr& a) {
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out(t, 1);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < c; ++j) out.at(i, 0) += a->value.at(i, j);
  }
  for (int i = 0; i < t; ++i) out.at(i, 0) /= static_cast<float>(c);
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < t; ++i) {
      for (int j = 0; j < c; ++j) {
        pa->grad.at(i, j) += nd->grad.at(i, 0) / static_cast<float>(c);
      }
    }
  };
  return node;
}

NodePtr reduce_cols_max(const NodePtr& a) {
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out(t, 1);
  std::vector<int> arg(static_cast<std::size_t>(t), 0);
  for (int i = 0; i < t; ++i) {
    float best = a->value.at(i, 0);
    for (int j = 1; j < c; ++j) {
      if (a->value.at(i, j) > best) {
        best = a->value.at(i, j);
        arg[static_cast<std::size_t>(i)] = j;
      }
    }
    out.at(i, 0) = best;
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, arg, t]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < t; ++i) {
      pa->grad.at(i, arg[static_cast<std::size_t>(i)]) += nd->grad.at(i, 0);
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// broadcast multiplies
// ---------------------------------------------------------------------------

NodePtr mul_row_broadcast(const NodePtr& a, const NodePtr& row) {
  if (row->value.rows() != 1 || row->value.cols() != a->value.cols()) {
    shape_error("mul_row_broadcast", a->value, row->value);
  }
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out(t, c);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < c; ++j) out.at(i, j) = a->value.at(i, j) * row->value.at(0, j);
  }
  auto node = make_node(std::move(out), {a, row});
  Node* nd = node.get();
  Node *pa = a.get(), *pr = row.get();
  node->backward_fn = [nd, pa, pr, t, c]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (int i = 0; i < t; ++i) {
        for (int j = 0; j < c; ++j) {
          pa->grad.at(i, j) += nd->grad.at(i, j) * pr->value.at(0, j);
        }
      }
    }
    if (pr->requires_grad) {
      pr->ensure_grad();
      for (int i = 0; i < t; ++i) {
        for (int j = 0; j < c; ++j) {
          pr->grad.at(0, j) += nd->grad.at(i, j) * pa->value.at(i, j);
        }
      }
    }
  };
  return node;
}

NodePtr mul_col_broadcast(const NodePtr& a, const NodePtr& col) {
  if (col->value.cols() != 1 || col->value.rows() != a->value.rows()) {
    shape_error("mul_col_broadcast", a->value, col->value);
  }
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out(t, c);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < c; ++j) out.at(i, j) = a->value.at(i, j) * col->value.at(i, 0);
  }
  auto node = make_node(std::move(out), {a, col});
  Node* nd = node.get();
  Node *pa = a.get(), *pc = col.get();
  node->backward_fn = [nd, pa, pc, t, c]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (int i = 0; i < t; ++i) {
        for (int j = 0; j < c; ++j) {
          pa->grad.at(i, j) += nd->grad.at(i, j) * pc->value.at(i, 0);
        }
      }
    }
    if (pc->requires_grad) {
      pc->ensure_grad();
      for (int i = 0; i < t; ++i) {
        for (int j = 0; j < c; ++j) {
          pc->grad.at(i, 0) += nd->grad.at(i, j) * pa->value.at(i, j);
        }
      }
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// embedding / conv support
// ---------------------------------------------------------------------------

NodePtr embedding(const NodePtr& weights, const std::vector<int>& ids) {
  const int v = weights->value.rows(), e = weights->value.cols();
  const int t = static_cast<int>(ids.size());
  Tensor out(t, e);
  for (int i = 0; i < t; ++i) {
    const int id = ids[static_cast<std::size_t>(i)];
    if (id < 0 || id >= v) throw std::out_of_range("embedding: id out of range");
    for (int j = 0; j < e; ++j) out.at(i, j) = weights->value.at(id, j);
  }
  auto node = make_node(std::move(out), {weights});
  Node* nd = node.get();
  Node* pw = weights.get();
  node->backward_fn = [nd, pw, ids, e]() {
    if (!pw->requires_grad) return;
    pw->ensure_grad();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (int j = 0; j < e; ++j) {
        pw->grad.at(ids[i], j) += nd->grad.at(static_cast<int>(i), j);
      }
    }
  };
  return node;
}

NodePtr im2row(const NodePtr& a, int kernel, int pad) {
  const int t = a->value.rows(), c = a->value.cols();
  const int t_out = t + 2 * pad - kernel + 1;
  if (t_out < 1) {
    throw std::invalid_argument("im2row: sequence shorter than kernel");
  }
  Tensor out(t_out, kernel * c);
  for (int i = 0; i < t_out; ++i) {
    for (int k = 0; k < kernel; ++k) {
      const int src = i + k - pad;
      if (src < 0 || src >= t) continue;  // zero padding
      for (int j = 0; j < c; ++j) out.at(i, k * c + j) = a->value.at(src, j);
    }
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t, c, t_out, kernel, pad]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < t_out; ++i) {
      for (int k = 0; k < kernel; ++k) {
        const int src = i + k - pad;
        if (src < 0 || src >= t) continue;
        for (int j = 0; j < c; ++j) {
          pa->grad.at(src, j) += nd->grad.at(i, k * c + j);
        }
      }
    }
  };
  return node;
}

NodePtr spp_max(const NodePtr& a, const std::vector<int>& bins) {
  const int t = a->value.rows(), c = a->value.cols();
  if (t < 1) throw std::invalid_argument("spp_max: empty sequence");
  int total_bins = 0;
  for (int b : bins) total_bins += b;
  Tensor out(1, total_bins * c);
  std::vector<int> arg(static_cast<std::size_t>(total_bins) * static_cast<std::size_t>(c));
  int bin_offset = 0;
  for (int nb : bins) {
    for (int b = 0; b < nb; ++b) {
      int start = (b * t) / nb;
      int end = ((b + 1) * t + nb - 1) / nb;  // ceil
      if (end <= start) end = start + 1;
      if (start >= t) start = t - 1;
      if (end > t) end = t;
      for (int j = 0; j < c; ++j) {
        float best = a->value.at(start, j);
        int best_i = start;
        for (int i = start + 1; i < end; ++i) {
          if (a->value.at(i, j) > best) {
            best = a->value.at(i, j);
            best_i = i;
          }
        }
        out.at(0, (bin_offset + b) * c + j) = best;
        arg[static_cast<std::size_t>(bin_offset + b) * static_cast<std::size_t>(c) +
            static_cast<std::size_t>(j)] = best_i;
      }
    }
    bin_offset += nb;
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, arg, total_bins, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int b = 0; b < total_bins; ++b) {
      for (int j = 0; j < c; ++j) {
        const int src = arg[static_cast<std::size_t>(b) * static_cast<std::size_t>(c) +
                            static_cast<std::size_t>(j)];
        pa->grad.at(src, j) += nd->grad.at(0, b * c + j);
      }
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// regularization / loss
// ---------------------------------------------------------------------------

NodePtr dropout(const NodePtr& a, float p, util::Rng& rng, bool train) {
  if (!train || p <= 0.0f) return a;
  const float keep = 1.0f - p;
  Tensor mask(a->value.rows(), a->value.cols());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;  // inverted dropout
  }
  return mul(a, constant(std::move(mask)));
}

NodePtr bce_with_logits(const NodePtr& logit, float target) {
  if (logit->value.rows() != 1 || logit->value.cols() != 1) {
    throw std::invalid_argument("bce_with_logits expects scalar logit");
  }
  const float z = logit->value.at(0, 0);
  // loss = max(z,0) - z*t + log(1 + exp(-|z|))
  const float loss =
      std::max(z, 0.0f) - z * target + std::log1p(std::exp(-std::fabs(z)));
  auto node = make_node(Tensor::scalar(loss), {logit});
  Node* nd = node.get();
  Node* pl = logit.get();
  node->backward_fn = [nd, pl, target]() {
    if (!pl->requires_grad) return;
    pl->ensure_grad();
    const float z = pl->value.at(0, 0);
    const float sig = 1.0f / (1.0f + std::exp(-z));
    pl->grad.at(0, 0) += nd->grad.at(0, 0) * (sig - target);
  };
  return node;
}

NodePtr cross_entropy_with_logits(const NodePtr& logits, int target_class) {
  if (logits->value.rows() != 1) {
    throw std::invalid_argument("cross_entropy_with_logits expects [1,C]");
  }
  const int c = logits->value.cols();
  if (target_class < 0 || target_class >= c) {
    throw std::out_of_range("cross_entropy_with_logits: bad target class");
  }
  float max_v = logits->value.at(0, 0);
  for (int j = 1; j < c; ++j) max_v = std::max(max_v, logits->value.at(0, j));
  float sum_exp = 0.0f;
  for (int j = 0; j < c; ++j) sum_exp += std::exp(logits->value.at(0, j) - max_v);
  const float log_z = max_v + std::log(sum_exp);
  const float loss = log_z - logits->value.at(0, target_class);

  auto node = make_node(Tensor::scalar(loss), {logits});
  Node* nd = node.get();
  Node* pl = logits.get();
  node->backward_fn = [nd, pl, target_class, c, max_v, sum_exp]() {
    if (!pl->requires_grad) return;
    pl->ensure_grad();
    const float g = nd->grad.at(0, 0);
    for (int j = 0; j < c; ++j) {
      const float p = std::exp(pl->value.at(0, j) - max_v) / sum_exp;
      pl->grad.at(0, j) += g * (p - (j == target_class ? 1.0f : 0.0f));
    }
  };
  return node;
}

std::vector<float> softmax_row_values(const Tensor& logits) {
  const int c = logits.cols();
  std::vector<float> out(static_cast<std::size_t>(c));
  float max_v = logits.at(0, 0);
  for (int j = 1; j < c; ++j) max_v = std::max(max_v, logits.at(0, j));
  float sum = 0.0f;
  for (int j = 0; j < c; ++j) {
    out[static_cast<std::size_t>(j)] = std::exp(logits.at(0, j) - max_v);
    sum += out[static_cast<std::size_t>(j)];
  }
  for (float& v : out) v /= sum;
  return out;
}

}  // namespace sevuldet::nn
