#include "sevuldet/nn/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sevuldet/nn/graph_kernels.hpp"
#include "sevuldet/nn/kernels.hpp"
#include "sevuldet/util/metrics.hpp"

namespace sevuldet::nn {

namespace {

thread_local Graph* tls_graph = nullptr;
// Monotone DFS epoch; marking nodes replaces a per-backward hash set.
thread_local std::uint64_t tls_epoch = 0;

/// Pooled node under an active GraphScope, heap node otherwise.
NodePtr fresh_node() {
  Graph* graph = Graph::current();
  return graph ? graph->acquire_node() : std::make_shared<Node>();
}

/// Zeroed activation tensor: arena-backed in graph mode, heap otherwise.
Tensor ctx_alloc(int rows, int cols) {
  Graph* graph = Graph::current();
  return graph ? graph->alloc(rows, cols) : Tensor(rows, cols);
}

Tensor ctx_scalar(float v) {
  Tensor t = ctx_alloc(1, 1);
  t.at(0, 0) = v;
  return t;
}

/// Copy of `src` in activation storage.
Tensor ctx_clone(const Tensor& src) {
  Tensor out = ctx_alloc(src.rows(), src.cols());
  kernels::copy(src.size(), src.data(), out.data());
  return out;
}

NodePtr make_node(Tensor value, std::initializer_list<NodePtr> parents) {
  NodePtr node = fresh_node();
  node->value = std::move(value);
  for (const auto& p : parents) {
    if (p->requires_grad) node->requires_grad = true;
    node->parents.push_back(p);
  }
  return node;
}

NodePtr make_node(Tensor value, const std::vector<NodePtr>& parents) {
  NodePtr node = fresh_node();
  node->value = std::move(value);
  for (const auto& p : parents) {
    if (p->requires_grad) node->requires_grad = true;
    node->parents.push_back(p);
  }
  return node;
}

[[noreturn]] void shape_error(const char* op, const Tensor& a, const Tensor& b) {
  throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                              a.shape_string() + " vs " + b.shape_string());
}

}  // namespace

// ---------------------------------------------------------------------------
// Node / Graph / GraphScope
// ---------------------------------------------------------------------------

void Node::ensure_grad() {
  if (grad.same_shape(value) && (grad.data() != nullptr || value.empty())) {
    return;
  }
  grad = home != nullptr ? home->alloc(value.rows(), value.cols())
                         : Tensor(value.rows(), value.cols());
}

void Node::zero_grad() {
  if (grad.same_shape(value) && (grad.data() != nullptr || value.empty())) {
    grad.fill(0.0f);
    return;
  }
  grad = home != nullptr ? home->alloc(value.rows(), value.cols())
                         : Tensor(value.rows(), value.cols());
}

Graph* Graph::current() { return tls_graph; }

void Graph::reset() {
  for (std::size_t i = 0; i < used_; ++i) {
    Node& node = *pool_[i];
    node.value = Tensor();
    node.grad = Tensor();
    node.requires_grad = false;
    node.backward_fn = BackwardFn();
    node.parents.clear();    // keeps capacity
    // iscratch keeps capacity AND contents; every op that reads it
    // rewrites it first.
  }
  util::metrics::counter_add("nn.graph_resets");
  util::metrics::counter_add("nn.nodes_recycled",
                             static_cast<long long>(used_));
  util::metrics::counter_add("nn.arena_floats_recycled",
                             static_cast<long long>(arena_.used()));
  used_ = 0;
  arena_.reset();
}

Tensor Graph::alloc(int rows, int cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative tensor shape");
  const std::size_t n =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  return Tensor::borrowed(rows, cols, arena_.allocate(n));
}

NodePtr Graph::acquire_node() {
  if (used_ == pool_.size()) pool_.push_back(std::make_shared<Node>());
  NodePtr node = pool_[used_++];
  node->home = this;
  return node;
}

GraphScope::GraphScope(Graph& graph) : prev_(tls_graph) {
  graph.reset();
  tls_graph = &graph;
}

GraphScope::~GraphScope() { tls_graph = prev_; }

Tensor make_activation(int rows, int cols) { return ctx_alloc(rows, cols); }

NodePtr constant(Tensor value) {
  NodePtr node = fresh_node();
  node->value = std::move(value);
  return node;
}

NodePtr param(Tensor value) {
  // Parameters are long-lived and shared across graphs: always heap.
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->zero_grad();
  return node;
}

void backward(const NodePtr& root) {
  if (root->value.rows() != 1 || root->value.cols() != 1) {
    throw std::invalid_argument("backward: root must be scalar [1,1]");
  }
  // Topological order via iterative post-order DFS. The scratch vectors
  // are thread-local and the visited set is an epoch stamp on the nodes,
  // so a steady-state sweep allocates nothing.
  static thread_local std::vector<Node*> order;
  static thread_local std::vector<std::pair<Node*, std::size_t>> stack;
  order.clear();
  stack.clear();
  const std::uint64_t epoch = ++tls_epoch;
  stack.emplace_back(root.get(), 0);
  root->visit_epoch = epoch;
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx++].get();
      if (parent->requires_grad && parent->visit_epoch != epoch) {
        parent->visit_epoch = epoch;
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  for (Node* node : order) {
    if (node != root.get()) node->ensure_grad();
  }
  root->ensure_grad();
  root->grad.fill(0.0f);
  root->grad.at(0, 0) = 1.0f;

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad) node->backward_fn();
  }
}

// ---------------------------------------------------------------------------
// arithmetic
// ---------------------------------------------------------------------------

NodePtr add(const NodePtr& a, const NodePtr& b) {
  if (!a->value.same_shape(b->value)) shape_error("add", a->value, b->value);
  Tensor out = ctx_clone(a->value);
  kernels::add_inplace(out.size(), b->value.data(), out.data());
  auto node = make_node(std::move(out), {a, b});
  Node* n = node.get();
  Node *pa = a.get(), *pb = b.get();
  node->backward_fn = [n, pa, pb]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      kernels::add_inplace(n->grad.size(), n->grad.data(), pa->grad.data());
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      kernels::add_inplace(n->grad.size(), n->grad.data(), pb->grad.data());
    }
  };
  return node;
}

NodePtr add_row(const NodePtr& a, const NodePtr& bias) {
  if (bias->value.rows() != 1 || bias->value.cols() != a->value.cols()) {
    shape_error("add_row", a->value, bias->value);
  }
  const int rows = a->value.rows(), cols = a->value.cols();
  Tensor out = ctx_clone(a->value);
  for (int r = 0; r < rows; ++r) {
    kernels::add_inplace(static_cast<std::size_t>(cols), bias->value.data(),
                         &out.at(r, 0));
  }
  auto node = make_node(std::move(out), {a, bias});
  Node* n = node.get();
  Node *pa = a.get(), *pb = bias.get();
  node->backward_fn = [n, pa, pb, rows, cols]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      kernels::add_inplace(n->grad.size(), n->grad.data(), pa->grad.data());
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      kernels::col_sum_add(rows, cols, n->grad.data(), pb->grad.data());
    }
  };
  return node;
}

NodePtr sub(const NodePtr& a, const NodePtr& b) {
  return add(a, scale(b, -1.0f));
}

NodePtr mul(const NodePtr& a, const NodePtr& b) {
  if (!a->value.same_shape(b->value)) shape_error("mul", a->value, b->value);
  Tensor out = ctx_alloc(a->value.rows(), a->value.cols());
  const std::size_t n_elems = out.size();
  for (std::size_t i = 0; i < n_elems; ++i) out[i] = a->value[i] * b->value[i];
  auto node = make_node(std::move(out), {a, b});
  Node* n = node.get();
  Node *pa = a.get(), *pb = b.get();
  node->backward_fn = [n, pa, pb]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      kernels::mul_accumulate(n->grad.size(), n->grad.data(), pb->value.data(),
                              pa->grad.data());
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      kernels::mul_accumulate(n->grad.size(), n->grad.data(), pa->value.data(),
                              pb->grad.data());
    }
  };
  return node;
}

NodePtr scale(const NodePtr& a, float k) {
  Tensor out = ctx_alloc(a->value.rows(), a->value.cols());
  const std::size_t n_elems = out.size();
  for (std::size_t i = 0; i < n_elems; ++i) out[i] = a->value[i] * k;
  auto node = make_node(std::move(out), {a});
  Node* n = node.get();
  Node* pa = a.get();
  node->backward_fn = [n, pa, k]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    kernels::axpy(n->grad.size(), k, n->grad.data(), pa->grad.data());
  };
  return node;
}

NodePtr matmul(const NodePtr& a, const NodePtr& b) {
  if (a->value.cols() != b->value.rows()) shape_error("matmul", a->value, b->value);
  const int m = a->value.rows(), k = a->value.cols(), n = b->value.cols();
  Tensor out = ctx_alloc(m, n);
  kernels::gemm(m, n, k, a->value.data(), b->value.data(), out.data());
  auto node = make_node(std::move(out), {a, b});
  Node* nn_ = node.get();
  Node *pa = a.get(), *pb = b.get();
  node->backward_fn = [nn_, pa, pb, m, k, n]() {
    // dA = dOut * B^T ; dB = A^T * dOut — both transposes fused into the
    // kernel's access pattern (this is the training hot path).
    if (pa->requires_grad) {
      pa->ensure_grad();
      kernels::gemm_a_bt(m, k, n, nn_->grad.data(), pb->value.data(),
                         pa->grad.data());
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      kernels::gemm_at_b(k, n, m, pa->value.data(), nn_->grad.data(),
                         pb->grad.data());
    }
  };
  return node;
}

NodePtr transpose(const NodePtr& a) {
  const int m = a->value.rows(), n = a->value.cols();
  Tensor out = ctx_alloc(n, m);
  kernels::transpose_copy(m, n, a->value.data(), out.data());
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, m, n]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    // grad is [n,m]; accumulate its transpose into the [m,n] parent with
    // unit-stride writes.
    kernels::transpose_add(n, m, nd->grad.data(), pa->grad.data());
  };
  return node;
}

// ---------------------------------------------------------------------------
// nonlinearities
// ---------------------------------------------------------------------------

namespace {

template <typename Fwd, typename Bwd>
NodePtr unary_op(const NodePtr& a, Fwd fwd, Bwd bwd) {
  Tensor out = ctx_alloc(a->value.rows(), a->value.cols());
  const std::size_t n_elems = out.size();
  for (std::size_t i = 0; i < n_elems; ++i) out[i] = fwd(a->value[i]);
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, bwd]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (std::size_t i = 0; i < nd->grad.size(); ++i) {
      pa->grad[i] += nd->grad[i] * bwd(pa->value[i], nd->value[i]);
    }
  };
  return node;
}

}  // namespace

NodePtr tanh_op(const NodePtr& a) {
  return unary_op(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

NodePtr sigmoid(const NodePtr& a) {
  return unary_op(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

NodePtr relu(const NodePtr& a) {
  return unary_op(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

NodePtr softmax_col(const NodePtr& a) {
  if (a->value.cols() != 1) {
    throw std::invalid_argument("softmax_col expects [T,1], got " +
                                a->value.shape_string());
  }
  const int t = a->value.rows();
  Tensor out = ctx_alloc(t, 1);
  float max_v = a->value.at(0, 0);
  for (int i = 1; i < t; ++i) max_v = std::max(max_v, a->value.at(i, 0));
  float sum = 0.0f;
  for (int i = 0; i < t; ++i) {
    out.at(i, 0) = std::exp(a->value.at(i, 0) - max_v);
    sum += out.at(i, 0);
  }
  for (int i = 0; i < t; ++i) out.at(i, 0) /= sum;
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    // dX_i = y_i * (g_i - sum_j g_j y_j)
    const float dot =
        kernels::dot(static_cast<std::size_t>(t), nd->grad.data(), nd->value.data());
    for (int i = 0; i < t; ++i) {
      pa->grad.at(i, 0) += nd->value.at(i, 0) * (nd->grad.at(i, 0) - dot);
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// shape ops
// ---------------------------------------------------------------------------

NodePtr concat_cols(const NodePtr& a, const NodePtr& b) {
  if (a->value.rows() != b->value.rows()) {
    shape_error("concat_cols", a->value, b->value);
  }
  const int m = a->value.rows(), p = a->value.cols(), q = b->value.cols();
  Tensor out = ctx_alloc(m, p + q);
  for (int r = 0; r < m; ++r) {
    kernels::copy(static_cast<std::size_t>(p), &a->value.at(r, 0), &out.at(r, 0));
    kernels::copy(static_cast<std::size_t>(q), &b->value.at(r, 0), &out.at(r, p));
  }
  auto node = make_node(std::move(out), {a, b});
  Node* nd = node.get();
  Node *pa = a.get(), *pb = b.get();
  node->backward_fn = [nd, pa, pb, m, p, q]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (int r = 0; r < m; ++r) {
        kernels::add_inplace(static_cast<std::size_t>(p), &nd->grad.at(r, 0),
                             &pa->grad.at(r, 0));
      }
    }
    if (pb->requires_grad) {
      pb->ensure_grad();
      for (int r = 0; r < m; ++r) {
        kernels::add_inplace(static_cast<std::size_t>(q), &nd->grad.at(r, p),
                             &pb->grad.at(r, 0));
      }
    }
  };
  return node;
}

NodePtr concat_rows(const std::vector<NodePtr>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_rows: empty");
  const int cols = parts[0]->value.cols();
  int rows = 0;
  for (const auto& p : parts) {
    if (p->value.cols() != cols) shape_error("concat_rows", parts[0]->value, p->value);
    rows += p->value.rows();
  }
  Tensor out = ctx_alloc(rows, cols);
  int offset = 0;
  for (const auto& p : parts) {
    kernels::copy(p->value.size(), p->value.data(), &out.at(offset, 0));
    offset += p->value.rows();
  }
  auto node = make_node(std::move(out), parts);
  Node* nd = node.get();
  node->backward_fn = [nd]() {
    int offset = 0;
    for (const auto& p : nd->parents) {
      if (p->requires_grad) {
        p->ensure_grad();
        kernels::add_inplace(p->value.size(), &nd->grad.at(offset, 0),
                             p->grad.data());
      }
      offset += p->value.rows();
    }
  };
  return node;
}

NodePtr slice_cols(const NodePtr& a, int from, int to) {
  if (from < 0 || to > a->value.cols() || from >= to) {
    throw std::invalid_argument("slice_cols: bad range");
  }
  const int m = a->value.rows(), w = to - from;
  Tensor out = ctx_alloc(m, w);
  for (int r = 0; r < m; ++r) {
    kernels::copy(static_cast<std::size_t>(w), &a->value.at(r, from),
                  &out.at(r, 0));
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, m, w, from]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int r = 0; r < m; ++r) {
      kernels::add_inplace(static_cast<std::size_t>(w), &nd->grad.at(r, 0),
                           &pa->grad.at(r, from));
    }
  };
  return node;
}

NodePtr slice_rows(const NodePtr& a, int from, int to) {
  if (from < 0 || to > a->value.rows() || from >= to) {
    throw std::invalid_argument("slice_rows: bad range");
  }
  const int h = to - from, n = a->value.cols();
  Tensor out = ctx_alloc(h, n);
  kernels::copy(out.size(), &a->value.at(from, 0), out.data());
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, from]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    kernels::add_inplace(nd->grad.size(), nd->grad.data(),
                         &pa->grad.at(from, 0));
  };
  return node;
}

NodePtr reshape_row(const NodePtr& a) {
  const int m = a->value.rows(), n = a->value.cols();
  Tensor out = ctx_alloc(1, m * n);
  kernels::copy(a->value.size(), a->value.data(), out.data());
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    kernels::add_inplace(nd->grad.size(), nd->grad.data(), pa->grad.data());
  };
  return node;
}

// ---------------------------------------------------------------------------
// reductions
// ---------------------------------------------------------------------------

NodePtr sum_all(const NodePtr& a) {
  float total = 0.0f;
  for (std::size_t i = 0; i < a->value.size(); ++i) total += a->value[i];
  auto node = make_node(ctx_scalar(total), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    const float g = nd->grad.at(0, 0);
    for (std::size_t i = 0; i < pa->grad.size(); ++i) pa->grad[i] += g;
  };
  return node;
}

NodePtr mean_all(const NodePtr& a) {
  return scale(sum_all(a), 1.0f / static_cast<float>(a->value.size()));
}

NodePtr reduce_rows_mean(const NodePtr& a) {
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out = ctx_alloc(1, c);
  kernels::col_sum_add(t, c, a->value.data(), out.data());
  for (int j = 0; j < c; ++j) out.at(0, j) /= static_cast<float>(t);
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < t; ++i) {
      for (int j = 0; j < c; ++j) {
        pa->grad.at(i, j) += nd->grad.at(0, j) / static_cast<float>(t);
      }
    }
  };
  return node;
}

NodePtr reduce_rows_max(const NodePtr& a) {
  const int t = a->value.rows(), c = a->value.cols();
  auto node = make_node(ctx_alloc(1, c), {a});
  node->iscratch.resize(static_cast<std::size_t>(c));
  for (int j = 0; j < c; ++j) {
    float best = a->value.at(0, j);
    int arg = 0;
    for (int i = 1; i < t; ++i) {
      if (a->value.at(i, j) > best) {
        best = a->value.at(i, j);
        arg = i;
      }
    }
    node->value.at(0, j) = best;
    node->iscratch[static_cast<std::size_t>(j)] = arg;
  }
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int j = 0; j < c; ++j) {
      pa->grad.at(nd->iscratch[static_cast<std::size_t>(j)], j) +=
          nd->grad.at(0, j);
    }
  };
  return node;
}

NodePtr reduce_cols_mean(const NodePtr& a) {
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out = ctx_alloc(t, 1);
  kernels::row_sum_add(t, c, a->value.data(), out.data());
  for (int i = 0; i < t; ++i) out.at(i, 0) /= static_cast<float>(c);
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < t; ++i) {
      for (int j = 0; j < c; ++j) {
        pa->grad.at(i, j) += nd->grad.at(i, 0) / static_cast<float>(c);
      }
    }
  };
  return node;
}

NodePtr reduce_cols_max(const NodePtr& a) {
  const int t = a->value.rows(), c = a->value.cols();
  auto node = make_node(ctx_alloc(t, 1), {a});
  node->iscratch.resize(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) {
    float best = a->value.at(i, 0);
    int arg = 0;
    for (int j = 1; j < c; ++j) {
      if (a->value.at(i, j) > best) {
        best = a->value.at(i, j);
        arg = j;
      }
    }
    node->value.at(i, 0) = best;
    node->iscratch[static_cast<std::size_t>(i)] = arg;
  }
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < t; ++i) {
      pa->grad.at(i, nd->iscratch[static_cast<std::size_t>(i)]) +=
          nd->grad.at(i, 0);
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// broadcast multiplies
// ---------------------------------------------------------------------------

NodePtr mul_row_broadcast(const NodePtr& a, const NodePtr& row) {
  if (row->value.rows() != 1 || row->value.cols() != a->value.cols()) {
    shape_error("mul_row_broadcast", a->value, row->value);
  }
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out = ctx_alloc(t, c);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < c; ++j) out.at(i, j) = a->value.at(i, j) * row->value.at(0, j);
  }
  auto node = make_node(std::move(out), {a, row});
  Node* nd = node.get();
  Node *pa = a.get(), *pr = row.get();
  node->backward_fn = [nd, pa, pr, t, c]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (int i = 0; i < t; ++i) {
        kernels::mul_accumulate(static_cast<std::size_t>(c), &nd->grad.at(i, 0),
                                pr->value.data(), &pa->grad.at(i, 0));
      }
    }
    if (pr->requires_grad) {
      pr->ensure_grad();
      for (int i = 0; i < t; ++i) {
        kernels::mul_accumulate(static_cast<std::size_t>(c), &nd->grad.at(i, 0),
                                &pa->value.at(i, 0), pr->grad.data());
      }
    }
  };
  return node;
}

NodePtr mul_col_broadcast(const NodePtr& a, const NodePtr& col) {
  if (col->value.cols() != 1 || col->value.rows() != a->value.rows()) {
    shape_error("mul_col_broadcast", a->value, col->value);
  }
  const int t = a->value.rows(), c = a->value.cols();
  Tensor out = ctx_alloc(t, c);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < c; ++j) out.at(i, j) = a->value.at(i, j) * col->value.at(i, 0);
  }
  auto node = make_node(std::move(out), {a, col});
  Node* nd = node.get();
  Node *pa = a.get(), *pc = col.get();
  node->backward_fn = [nd, pa, pc, t, c]() {
    if (pa->requires_grad) {
      pa->ensure_grad();
      for (int i = 0; i < t; ++i) {
        kernels::axpy(static_cast<std::size_t>(c), pc->value.at(i, 0),
                      &nd->grad.at(i, 0), &pa->grad.at(i, 0));
      }
    }
    if (pc->requires_grad) {
      pc->ensure_grad();
      for (int i = 0; i < t; ++i) {
        pc->grad.at(i, 0) += kernels::dot(static_cast<std::size_t>(c),
                                          &nd->grad.at(i, 0), &pa->value.at(i, 0));
      }
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// embedding / conv support
// ---------------------------------------------------------------------------

NodePtr embedding(const NodePtr& weights, const std::vector<int>& ids) {
  const int v = weights->value.rows(), e = weights->value.cols();
  const int t = static_cast<int>(ids.size());
  auto node = make_node(ctx_alloc(t, e), {weights});
  node->iscratch.assign(ids.begin(), ids.end());
  for (int i = 0; i < t; ++i) {
    const int id = ids[static_cast<std::size_t>(i)];
    if (id < 0 || id >= v) throw std::out_of_range("embedding: id out of range");
    kernels::copy(static_cast<std::size_t>(e), &weights->value.at(id, 0),
                  &node->value.at(i, 0));
  }
  Node* nd = node.get();
  Node* pw = weights.get();
  node->backward_fn = [nd, pw, e]() {
    if (!pw->requires_grad) return;
    pw->ensure_grad();
    for (std::size_t i = 0; i < nd->iscratch.size(); ++i) {
      kernels::add_inplace(static_cast<std::size_t>(e),
                           &nd->grad.at(static_cast<int>(i), 0),
                           &pw->grad.at(nd->iscratch[i], 0));
    }
  };
  return node;
}

NodePtr im2row(const NodePtr& a, int kernel, int pad) {
  const int t = a->value.rows(), c = a->value.cols();
  const int t_out = t + 2 * pad - kernel + 1;
  if (t_out < 1) {
    throw std::invalid_argument("im2row: sequence shorter than kernel");
  }
  Tensor out = ctx_alloc(t_out, kernel * c);
  for (int i = 0; i < t_out; ++i) {
    for (int k = 0; k < kernel; ++k) {
      const int src = i + k - pad;
      if (src < 0 || src >= t) continue;  // zero padding
      kernels::copy(static_cast<std::size_t>(c), &a->value.at(src, 0),
                    &out.at(i, k * c));
    }
  }
  auto node = make_node(std::move(out), {a});
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, t, c, t_out, kernel, pad]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < t_out; ++i) {
      for (int k = 0; k < kernel; ++k) {
        const int src = i + k - pad;
        if (src < 0 || src >= t) continue;
        kernels::add_inplace(static_cast<std::size_t>(c), &nd->grad.at(i, k * c),
                             &pa->grad.at(src, 0));
      }
    }
  };
  return node;
}

NodePtr spp_max(const NodePtr& a, const std::vector<int>& bins) {
  const int t = a->value.rows(), c = a->value.cols();
  if (t < 1) throw std::invalid_argument("spp_max: empty sequence");
  int total_bins = 0;
  for (int b : bins) total_bins += b;
  auto node = make_node(ctx_alloc(1, total_bins * c), {a});
  node->iscratch.resize(static_cast<std::size_t>(total_bins) *
                        static_cast<std::size_t>(c));
  int bin_offset = 0;
  for (int nb : bins) {
    for (int b = 0; b < nb; ++b) {
      int start = (b * t) / nb;
      int end = ((b + 1) * t + nb - 1) / nb;  // ceil
      if (end <= start) end = start + 1;
      if (start >= t) start = t - 1;
      if (end > t) end = t;
      for (int j = 0; j < c; ++j) {
        float best = a->value.at(start, j);
        int best_i = start;
        for (int i = start + 1; i < end; ++i) {
          if (a->value.at(i, j) > best) {
            best = a->value.at(i, j);
            best_i = i;
          }
        }
        node->value.at(0, (bin_offset + b) * c + j) = best;
        node->iscratch[static_cast<std::size_t>(bin_offset + b) *
                           static_cast<std::size_t>(c) +
                       static_cast<std::size_t>(j)] = best_i;
      }
    }
    bin_offset += nb;
  }
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, total_bins, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int b = 0; b < total_bins; ++b) {
      for (int j = 0; j < c; ++j) {
        const int src = nd->iscratch[static_cast<std::size_t>(b) *
                                         static_cast<std::size_t>(c) +
                                     static_cast<std::size_t>(j)];
        pa->grad.at(src, j) += nd->grad.at(0, b * c + j);
      }
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// graph message passing
//
// Index/offset arrays live in the Node's iscratch so the backward
// closures stay raw-pointer-only. Forwards call the blocked kernels in
// graph_kernels.hpp; backwards keep the same ascending-index
// accumulation discipline, so blocked==naive holds through training.
// ---------------------------------------------------------------------------

NodePtr leaky_relu(const NodePtr& a, float slope) {
  return unary_op(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

NodePtr gather_rows(const NodePtr& a, const std::vector<int>& idx) {
  const int rows = a->value.rows(), c = a->value.cols();
  const int n = static_cast<int>(idx.size());
  for (int i : idx) {
    if (i < 0 || i >= rows) {
      throw std::out_of_range("gather_rows: index out of range");
    }
  }
  auto node = make_node(ctx_alloc(n, c), {a});
  node->iscratch.assign(idx.begin(), idx.end());
  kernels::gather_rows(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(c), node->iscratch.data(),
                       a->value.data(), node->value.data());
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, n, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    kernels::scatter_add_rows(static_cast<std::size_t>(n),
                              static_cast<std::size_t>(c), nd->iscratch.data(),
                              nd->grad.data(), pa->grad.data());
  };
  return node;
}

NodePtr scatter_sum_rows(const NodePtr& a, const std::vector<int>& idx,
                         int rows) {
  const int n = a->value.rows(), c = a->value.cols();
  if (static_cast<int>(idx.size()) != n) {
    throw std::invalid_argument("scatter_sum_rows: idx size != rows");
  }
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] < 0 || idx[i] >= rows) {
      throw std::out_of_range("scatter_sum_rows: index out of range");
    }
    if (i > 0 && idx[i] < idx[i - 1]) {
      throw std::invalid_argument("scatter_sum_rows: idx must be ascending");
    }
  }
  auto node = make_node(ctx_alloc(rows, c), {a});
  node->iscratch.assign(idx.begin(), idx.end());
  kernels::scatter_add_rows(static_cast<std::size_t>(n),
                            static_cast<std::size_t>(c), node->iscratch.data(),
                            a->value.data(), node->value.data());
  Node* nd = node.get();
  Node* pa = a.get();
  // d(out[idx[i]])/d(a[i]) = I: gather the destination-row gradients
  // back to edges, accumulating in ascending-i order.
  node->backward_fn = [nd, pa, n, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int i = 0; i < n; ++i) {
      kernels::add_inplace(
          static_cast<std::size_t>(c),
          nd->grad.data() + static_cast<std::size_t>(nd->iscratch[i]) * c,
          pa->grad.data() + static_cast<std::size_t>(i) * c);
    }
  };
  return node;
}

NodePtr segment_mean_rows(const NodePtr& a, const std::vector<int>& offsets) {
  const int t = a->value.rows(), c = a->value.cols();
  const int segs = static_cast<int>(offsets.size()) - 1;
  if (segs < 0 || offsets.front() != 0 || offsets.back() != t) {
    throw std::invalid_argument("segment_mean_rows: bad offsets");
  }
  auto node = make_node(ctx_alloc(segs, c), {a});
  node->iscratch.assign(offsets.begin(), offsets.end());
  kernels::segment_mean(static_cast<std::size_t>(segs), node->iscratch.data(),
                        static_cast<std::size_t>(c), a->value.data(),
                        node->value.data());
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, segs, c]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    for (int s = 0; s < segs; ++s) {
      const int begin = nd->iscratch[s], end = nd->iscratch[s + 1];
      if (end <= begin) continue;
      const float inv = 1.0f / static_cast<float>(end - begin);
      const float* g = nd->grad.data() + static_cast<std::size_t>(s) * c;
      for (int i = begin; i < end; ++i) {
        kernels::axpy(static_cast<std::size_t>(c), inv, g,
                      pa->grad.data() + static_cast<std::size_t>(i) * c);
      }
    }
  };
  return node;
}

NodePtr segment_softmax_col(const NodePtr& a, const std::vector<int>& offsets) {
  if (a->value.cols() != 1) {
    throw std::invalid_argument("segment_softmax_col expects [E,1], got " +
                                a->value.shape_string());
  }
  const int e = a->value.rows();
  const int segs = static_cast<int>(offsets.size()) - 1;
  if (segs < 0 || offsets.front() != 0 || offsets.back() != e) {
    throw std::invalid_argument("segment_softmax_col: bad offsets");
  }
  auto node = make_node(ctx_alloc(e, 1), {a});
  node->iscratch.assign(offsets.begin(), offsets.end());
  kernels::segment_softmax(static_cast<std::size_t>(segs),
                           node->iscratch.data(), a->value.data(),
                           node->value.data());
  Node* nd = node.get();
  Node* pa = a.get();
  node->backward_fn = [nd, pa, segs]() {
    if (!pa->requires_grad) return;
    pa->ensure_grad();
    // Per segment: dX_i = y_i * (g_i - sum_j g_j y_j), as softmax_col.
    for (int s = 0; s < segs; ++s) {
      const int begin = nd->iscratch[s], end = nd->iscratch[s + 1];
      if (end <= begin) continue;
      const float dot = kernels::dot(static_cast<std::size_t>(end - begin),
                                     nd->grad.data() + begin,
                                     nd->value.data() + begin);
      for (int i = begin; i < end; ++i) {
        pa->grad.at(i, 0) +=
            nd->value.at(i, 0) * (nd->grad.at(i, 0) - dot);
      }
    }
  };
  return node;
}

// ---------------------------------------------------------------------------
// regularization / loss
// ---------------------------------------------------------------------------

NodePtr dropout(const NodePtr& a, float p, util::Rng& rng, bool train) {
  if (!train || p <= 0.0f) return a;
  const float keep = 1.0f - p;
  Tensor mask = ctx_alloc(a->value.rows(), a->value.cols());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;  // inverted dropout
  }
  return mul(a, constant(std::move(mask)));
}

NodePtr bce_with_logits(const NodePtr& logit, float target) {
  if (logit->value.rows() != 1 || logit->value.cols() != 1) {
    throw std::invalid_argument("bce_with_logits expects scalar logit");
  }
  const float z = logit->value.at(0, 0);
  // loss = max(z,0) - z*t + log(1 + exp(-|z|))
  const float loss =
      std::max(z, 0.0f) - z * target + std::log1p(std::exp(-std::fabs(z)));
  auto node = make_node(ctx_scalar(loss), {logit});
  Node* nd = node.get();
  Node* pl = logit.get();
  node->backward_fn = [nd, pl, target]() {
    if (!pl->requires_grad) return;
    pl->ensure_grad();
    const float z = pl->value.at(0, 0);
    const float sig = 1.0f / (1.0f + std::exp(-z));
    pl->grad.at(0, 0) += nd->grad.at(0, 0) * (sig - target);
  };
  return node;
}

NodePtr cross_entropy_with_logits(const NodePtr& logits, int target_class) {
  if (logits->value.rows() != 1) {
    throw std::invalid_argument("cross_entropy_with_logits expects [1,C]");
  }
  const int c = logits->value.cols();
  if (target_class < 0 || target_class >= c) {
    throw std::out_of_range("cross_entropy_with_logits: bad target class");
  }
  float max_v = logits->value.at(0, 0);
  for (int j = 1; j < c; ++j) max_v = std::max(max_v, logits->value.at(0, j));
  float sum_exp = 0.0f;
  for (int j = 0; j < c; ++j) sum_exp += std::exp(logits->value.at(0, j) - max_v);
  const float log_z = max_v + std::log(sum_exp);
  const float loss = log_z - logits->value.at(0, target_class);

  auto node = make_node(ctx_scalar(loss), {logits});
  Node* nd = node.get();
  Node* pl = logits.get();
  node->backward_fn = [nd, pl, target_class, c, max_v, sum_exp]() {
    if (!pl->requires_grad) return;
    pl->ensure_grad();
    const float g = nd->grad.at(0, 0);
    for (int j = 0; j < c; ++j) {
      const float p = std::exp(pl->value.at(0, j) - max_v) / sum_exp;
      pl->grad.at(0, j) += g * (p - (j == target_class ? 1.0f : 0.0f));
    }
  };
  return node;
}

std::vector<float> softmax_row_values(const Tensor& logits) {
  const int c = logits.cols();
  std::vector<float> out(static_cast<std::size_t>(c));
  float max_v = logits.at(0, 0);
  for (int j = 1; j < c; ++j) max_v = std::max(max_v, logits.at(0, j));
  float sum = 0.0f;
  for (int j = 0; j < c; ++j) {
    out[static_cast<std::size_t>(j)] = std::exp(logits.at(0, j) - max_v);
    sum += out[static_cast<std::size_t>(j)];
  }
  for (float& v : out) v /= sum;
  return out;
}

}  // namespace sevuldet::nn
