// Message-passing kernels for graph attention over gadget PDGs:
// row gather/scatter by edge list, masked segment-softmax over
// in-neighborhoods, and segment mean pooling (token spans -> node
// features). Same determinism contract as kernels.hpp:
//
//   - every output element has exactly one accumulator, filled in
//     ascending index order (edges ascending within a destination
//     segment, rows ascending within a token span), so results are
//     BITWISE identical to the *_naive scalar references regardless of
//     build flags — the library is compiled with -ffp-contract=off (see
//     nn/CMakeLists.txt) so no FMA contraction can split blocked and
//     naive chains apart;
//   - no kernel allocates; callers own every buffer.
//
// Segment conventions: `offsets` is a CSR-style array of `segments + 1`
// ascending ints; segment s spans [offsets[s], offsets[s+1]). Empty
// segments are legal (softmax leaves them untouched, mean writes a zero
// row) — that is the "masked" part of the segment-softmax: a node with
// no in-edges contributes nothing and receives nothing.
//
// bench/micro_gat.cpp bit-compares every kernel against its oracle and
// exits nonzero on the first mismatch; tests/gat_test.cpp does the same
// under the unit suite.
#pragma once

#include <cstddef>

namespace sevuldet::nn::kernels {

/// dst[i,:] = src[idx[i],:] for i in [0,n). `src` has `cols`-wide rows;
/// idx values must be valid row indices of src.
void gather_rows(std::size_t n, std::size_t cols, const int* idx,
                 const float* src, float* dst);
void gather_rows_naive(std::size_t n, std::size_t cols, const int* idx,
                       const float* src, float* dst);

/// dst[idx[i],:] += src[i,:] for i ascending in [0,n). Callers zero (or
/// pre-seed) dst. Ascending-i accumulation gives every destination row a
/// single deterministic chain when idx is sorted (edge lists are sorted
/// by destination — see graph/gadget_graph.hpp).
void scatter_add_rows(std::size_t n, std::size_t cols, const int* idx,
                      const float* src, float* dst);
void scatter_add_rows_naive(std::size_t n, std::size_t cols, const int* idx,
                            const float* src, float* dst);

/// Per-segment numerically-stable softmax over a flat score array:
/// out[i] = exp(x[i] - max_seg) / sum_seg for i in segment s. Empty
/// segments write nothing.
void segment_softmax(std::size_t segments, const int* offsets, const float* x,
                     float* out);
void segment_softmax_naive(std::size_t segments, const int* offsets,
                           const float* x, float* out);

/// out[s,:] = mean of src rows [offsets[s], offsets[s+1]); empty
/// segments yield a zero row. Ascending-row accumulation per column.
void segment_mean(std::size_t segments, const int* offsets, std::size_t cols,
                  const float* src, float* out);
void segment_mean_naive(std::size_t segments, const int* offsets,
                        std::size_t cols, const float* src, float* out);

}  // namespace sevuldet::nn::kernels
