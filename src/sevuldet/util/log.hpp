// Minimal leveled logger. Benches run with Info; tests silence it by
// setting the level to Error. Thread-safe: the level is atomic and the
// sink is serialized by a mutex, so parallel corpus builds and Hogwild
// word2vec workers can log without interleaving lines (the original
// "single-threaded per experiment" assumption died with the PR 1
// thread pool).
//
// The sink is swappable at runtime (set_log_sink): the default writes
// "[LEVEL] message" lines to stderr; a RotatingFileSink redirects the
// same lines to a size-rotated file set for long-lived daemons. Swaps
// happen under the same mutex that serializes writes, so a concurrent
// logger never races a sink teardown — it either finishes on the old
// sink or starts on the new one, and lines are never torn. Error-level
// messages are flushed through the sink immediately (flush-on-fatal),
// so the tail of the log survives an abort().
#pragma once

#include <cstddef>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace sevuldet::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

const char* log_level_name(LogLevel level);

/// Process-wide minimum level; messages below it are dropped. Safe to
/// call from any thread at any time.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Destination for formatted log lines. write() receives one complete
/// line (no trailing newline); the global logger serializes calls, so
/// implementations only need to be internally consistent when they are
/// also used directly (RotatingFileSink::append_line has its own lock
/// for that).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(LogLevel level, std::string_view line) = 0;
  virtual void flush() {}
};

/// Size-rotated file sink for long-lived processes. Lines append to
/// `path`; once the file would exceed `max_bytes` it is rotated:
/// path.(N-1) is dropped, path.i renames to path.(i+1), and the live
/// file reopens empty — keeping at most `max_files` files (the live one
/// plus max_files-1 rotated). Error-level writes flush immediately.
/// Thread-safe on its own mutex, so it can serve both as the global
/// logger sink and as a standalone structured-log writer (the serve
/// access log) at the same time.
class RotatingFileSink : public LogSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  RotatingFileSink(std::string path, std::size_t max_bytes = 8u << 20,
                   int max_files = 4);
  ~RotatingFileSink() override;

  RotatingFileSink(const RotatingFileSink&) = delete;
  RotatingFileSink& operator=(const RotatingFileSink&) = delete;

  void write(LogLevel level, std::string_view line) override;
  void flush() override;

  /// Append one raw line (a newline is added) with rotation, flushing
  /// immediately when `flush_now`. This is the structured-log entry
  /// point: no level prefix, one JSON document per line.
  void append_line(std::string_view line, bool flush_now = false);

  const std::string& path() const { return path_; }
  /// Number of rotations performed since construction.
  long long rotations() const;

 private:
  void rotate_locked();
  void append_locked(std::string_view line, bool flush_now);

  mutable std::mutex mutex_;
  std::string path_;
  std::size_t max_bytes_;
  int max_files_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_ = 0;
  long long rotations_ = 0;
};

/// Swap the global sink; nullptr restores the default stderr sink.
/// Returns the previous sink (nullptr when it was the default). The
/// swap synchronizes with concurrent log() calls, so the old sink is
/// safe to destroy as soon as this returns.
std::shared_ptr<LogSink> set_log_sink(std::shared_ptr<LogSink> sink);

void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::Debug, m); }
inline void log_info(std::string_view m) { log(LogLevel::Info, m); }
inline void log_warn(std::string_view m) { log(LogLevel::Warn, m); }
inline void log_error(std::string_view m) { log(LogLevel::Error, m); }

}  // namespace sevuldet::util
