// Minimal leveled logger. Benches run with Info; tests silence it by
// setting the level to Error. Thread-safe: the level is atomic and the
// stderr sink is serialized by a mutex, so parallel corpus builds and
// Hogwild word2vec workers can log without interleaving lines (the
// original "single-threaded per experiment" assumption died with the
// PR 1 thread pool).
#pragma once

#include <string_view>

namespace sevuldet::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are dropped. Safe to
/// call from any thread at any time.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::Debug, m); }
inline void log_info(std::string_view m) { log(LogLevel::Info, m); }
inline void log_warn(std::string_view m) { log(LogLevel::Warn, m); }
inline void log_error(std::string_view m) { log(LogLevel::Error, m); }

}  // namespace sevuldet::util
