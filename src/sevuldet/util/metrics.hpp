// Process-wide metrics registry: named monotonic counters, last-write
// gauges, string labels, and fixed-bucket latency histograms with
// p50/p95/p99. Designed for the pipeline hot paths:
//
//  - Zero-cost when disabled (the default): every record call is a
//    single relaxed atomic load and an early return — no allocation, no
//    lock, no thread-local construction. Instrumentation can therefore
//    live inside per-gadget and per-GEMM code without a build flag.
//  - Contention-free when enabled: counters and histogram observations
//    go to a per-thread shard (its mutex is only ever contended by a
//    concurrent snapshot), so the PR 1 thread pool records freely.
//    Shards of exited threads are folded into a retired accumulator, so
//    nothing is lost when a ThreadPool is destroyed before snapshot().
//  - Deterministic merge: snapshot() sums counters and histogram
//    buckets across shards, which is order-independent, so a threaded
//    run reports exactly what the equivalent serial run would.
//
// The JSON snapshot (to_json / write_json) is the stable schema every
// bench and the CLI emit under --metrics-out, and what
// tools/check_bench.py compares against the recorded BENCH_*.json
// baselines:
//
//   { "schema_version": 1,
//     "counters":   { "name": int, ... },
//     "gauges":     { "name": double, ... },
//     "labels":     { "name": "string", ... },
//     "histograms": { "name": { "unit": "ms", "count": n, "sum": s,
//                               "min": m, "max": M,
//                               "p50": p, "p95": p, "p99": p,
//                               "buckets": [[le_ms, count], ...] } } }
//
// Buckets are fixed and log-spaced (sqrt(2) ratio from 100ns to ~300s),
// so histograms from different shards, runs, and machines always merge
// and compare bucket-for-bucket; only non-empty buckets are emitted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sevuldet::util::metrics {

/// Number of fixed histogram buckets; bucket_bound_ms(i) gives the
/// inclusive upper bound of bucket i in milliseconds. Values above the
/// last bound clamp into the last bucket.
inline constexpr int kHistogramBuckets = 64;
double bucket_bound_ms(int bucket);

/// Master switch. Off by default; record calls are no-ops (and perform
/// no allocation) while off. Values recorded while enabled stay in the
/// registry until reset().
void set_enabled(bool enabled);
bool enabled();

/// Drop every recorded value (counters, gauges, labels, histograms) and
/// the retired-thread accumulator. Does not change enabled().
void reset();

/// Monotonic counter: add `delta` (may be any sign, but conventionally
/// positive) to the named counter.
void counter_add(std::string_view name, long long delta = 1);

/// Gauge: last write wins.
void gauge_set(std::string_view name, double value);

/// String label: last write wins. Used for run identity values a gauge
/// cannot carry (fingerprints, format versions).
void label_set(std::string_view name, std::string_view value);

/// Record one latency observation, in milliseconds, into the named
/// fixed-bucket histogram.
void observe_ms(std::string_view name, double ms);

/// Merged view of one histogram. `buckets` holds (upper_bound_ms,
/// count) pairs for non-empty buckets only, in ascending bound order.
struct HistogramSnapshot {
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::pair<double, long long>> buckets;

  /// Percentile estimate (p in [0,100]) by linear interpolation inside
  /// the owning bucket, clamped to [min, max]. Returns 0 when empty.
  double percentile(double p) const;
};

/// Deterministic merged snapshot of the whole registry (sorted maps, so
/// two identical runs produce byte-identical JSON).
struct Snapshot {
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::string> labels;
  std::map<std::string, HistogramSnapshot> histograms;

  std::string to_json() const;
};

Snapshot snapshot();

/// snapshot().to_json() convenience.
std::string to_json();

/// Write the snapshot JSON to `path`; throws std::runtime_error when the
/// file cannot be written.
void write_json(const std::string& path);

}  // namespace sevuldet::util::metrics
