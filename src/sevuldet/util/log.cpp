#include "sevuldet/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sevuldet::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  // One fprintf per message is atomic enough on POSIX, but the mutex
  // also keeps messages whole if the sink ever becomes line-buffered or
  // multi-write; it is uncontended in the common single-logger case.
  std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace sevuldet::util
