#include "sevuldet/util/log.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace sevuldet::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};

std::mutex& sink_mutex() {
  static std::mutex* m = new std::mutex;  // leaked: usable during exit
  return *m;
}

std::shared_ptr<LogSink>& sink_slot() {
  static std::shared_ptr<LogSink>* slot = new std::shared_ptr<LogSink>;
  return *slot;
}
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::shared_ptr<LogSink> set_log_sink(std::shared_ptr<LogSink> sink) {
  std::lock_guard lock(sink_mutex());
  std::shared_ptr<LogSink> previous = std::move(sink_slot());
  sink_slot() = std::move(sink);
  return previous;
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  // The mutex both keeps messages whole and makes sink swaps safe: a
  // writer holds it for the whole write, so set_log_sink cannot retire
  // the sink mid-line. It is uncontended in the common single-logger
  // case.
  std::lock_guard lock(sink_mutex());
  LogSink* sink = sink_slot().get();
  if (sink != nullptr) {
    sink->write(level, message);
    if (level >= LogLevel::Error) sink->flush();
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", log_level_name(level),
               static_cast<int>(message.size()), message.data());
  if (level >= LogLevel::Error) std::fflush(stderr);
}

RotatingFileSink::RotatingFileSink(std::string path, std::size_t max_bytes,
                                   int max_files)
    : path_(std::move(path)),
      max_bytes_(max_bytes > 0 ? max_bytes : 1),
      max_files_(max_files > 0 ? max_files : 1) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("log: cannot open " + path_);
  }
  long size = 0;
  if (std::fseek(file_, 0, SEEK_END) == 0) size = std::ftell(file_);
  bytes_ = size > 0 ? static_cast<std::size_t>(size) : 0;
}

RotatingFileSink::~RotatingFileSink() {
  std::lock_guard lock(mutex_);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void RotatingFileSink::write(LogLevel level, std::string_view line) {
  std::string formatted;
  formatted.reserve(line.size() + 16);
  formatted += '[';
  formatted += log_level_name(level);
  formatted += "] ";
  formatted.append(line.data(), line.size());
  append_line(formatted, level >= LogLevel::Error);
}

void RotatingFileSink::flush() {
  std::lock_guard lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

void RotatingFileSink::append_line(std::string_view line, bool flush_now) {
  std::lock_guard lock(mutex_);
  append_locked(line, flush_now);
}

long long RotatingFileSink::rotations() const {
  std::lock_guard lock(mutex_);
  return rotations_;
}

void RotatingFileSink::rotate_locked() {
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  // path.(max_files-1) falls off the end; everything else shifts up.
  for (int i = max_files_ - 1; i >= 1; --i) {
    const std::string from =
        i == 1 ? path_ : path_ + "." + std::to_string(i - 1);
    const std::string to = path_ + "." + std::to_string(i);
    std::remove(to.c_str());
    std::rename(from.c_str(), to.c_str());
  }
  if (max_files_ == 1) std::remove(path_.c_str());
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("log: cannot reopen " + path_ + " after rotation");
  }
  bytes_ = 0;
  ++rotations_;
}

void RotatingFileSink::append_locked(std::string_view line, bool flush_now) {
  if (file_ == nullptr) return;
  const std::size_t needed = line.size() + 1;
  if (bytes_ > 0 && bytes_ + needed > max_bytes_) rotate_locked();
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  bytes_ += needed;
  if (flush_now) std::fflush(file_);
}

}  // namespace sevuldet::util
