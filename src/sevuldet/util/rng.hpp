// Deterministic pseudo-random number generation for reproducible
// experiments. Wraps xoshiro256** with convenience helpers (uniform ints,
// reals, normals, shuffles, weighted choice). Every experiment in the
// bench suite seeds one Rng so reruns produce identical corpora and
// identical training trajectories.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

namespace sevuldet::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), a small, fast, high-quality generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via splitmix64 so that
  /// nearby seeds yield uncorrelated streams.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform_real() < p; }

  /// Index drawn proportionally to non-negative weights. Returns
  /// weights.size() - 1 if all weights are zero.
  std::size_t weighted(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    std::iota(p.begin(), p.end(), std::size_t{0});
    shuffle(p);
    return p;
  }

  /// Pick one element of a non-empty vector uniformly.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[uniform(v.size())];
  }

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sevuldet::util
