// Read-only memory-mapped file with RAII unmapping. The scan frontend
// lexes straight out of the mapping (Token carries string_views into
// it), so opening a file for scanning costs one mmap instead of a heap
// buffer plus a copy of every token. Falls back to an owned heap buffer
// when mmap cannot serve the file (empty files, pipes, filesystems
// without mmap support) — view() is valid either way, so callers never
// branch on the mechanism.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace sevuldet::util {

class MmapFile {
 public:
  /// Map `path` read-only. Throws std::runtime_error (with errno text)
  /// when the file cannot be opened or stat'd.
  static MmapFile open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The file's bytes. Valid until this object is destroyed or moved
  /// from; stable across moves of the owning object.
  std::string_view view() const { return {data_, size_}; }
  std::size_t size() const { return size_; }
  bool mapped() const { return mapped_; }  // mmap vs heap fallback

 private:
  void release() noexcept;

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                    // true: munmap on destruction
  std::unique_ptr<char[]> fallback_;       // owns bytes when !mapped_
};

}  // namespace sevuldet::util
