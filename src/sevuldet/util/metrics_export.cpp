#include "sevuldet/util/metrics_export.hpp"

#include <cctype>
#include <cstdio>

namespace sevuldet::util::metrics {

namespace {

/// Shortest exact number spelling, matching util/json's convention:
/// integral values without a decimal point, otherwise %.17g.
void append_value(std::string& out, double value) {
  char buffer[64];
  if (value == static_cast<long long>(value) && value >= -1e15 && value <= 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  out += buffer;
}

bool legal_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "sevuldet_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += legal_name_char(c) ? c : '_';
  return out;
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom;
    out += ' ';
    append_value(out, static_cast<double>(value));
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom;
    out += ' ';
    append_value(out, value);
    out += '\n';
  }
  if (!snapshot.labels.empty()) {
    out += "# TYPE sevuldet_label_info gauge\n";
    for (const auto& [name, value] : snapshot.labels) {
      out += "sevuldet_label_info{name=\"" + prometheus_escape_label(name) +
             "\",value=\"" + prometheus_escape_label(value) + "\"} 1\n";
    }
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " histogram\n";
    // The registry stores per-bucket counts for non-empty buckets only;
    // the exposition format wants cumulative counts per upper bound.
    long long cumulative = 0;
    for (const auto& [bound_ms, count] : histogram.buckets) {
      cumulative += count;
      out += prom + "_bucket{le=\"";
      append_value(out, bound_ms);
      out += "\"} ";
      append_value(out, static_cast<double>(cumulative));
      out += '\n';
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    append_value(out, static_cast<double>(histogram.count));
    out += '\n';
    out += prom + "_sum ";
    append_value(out, histogram.sum);
    out += '\n';
    out += prom + "_count ";
    append_value(out, static_cast<double>(histogram.count));
    out += '\n';
  }
  return out;
}

std::string to_prometheus() { return to_prometheus(snapshot()); }

}  // namespace sevuldet::util::metrics
