// Little-endian binary serialization primitives shared by the compiled
// corpus format, the per-testcase preprocessing cache, and the v2 model
// format: a growable ByteWriter, a bounds-checked ByteReader that throws
// on any read past the end (so truncated files fail loudly instead of
// yielding zero-padded data), and a streaming 64-bit FNV-1a hasher used
// both for payload checksums and for content-addressed cache keys.
//
// All integers are written as fixed-width little-endian regardless of
// host byte order, so files are portable and byte-identical across
// machines.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

namespace sevuldet::util {

/// Streaming FNV-1a (64-bit). The seed parameter lets callers derive
/// independent hash streams from the same bytes (the cache key uses two
/// seeds for a 128-bit key).
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ull;

  explicit Fnv1a(std::uint64_t seed = kOffsetBasis) : state_(seed) {}

  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
    state_ = h;
  }
  void update(std::string_view bytes) { update(bytes.data(), bytes.size()); }
  template <typename T>
  void update_value(T value) {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
    update(&value, sizeof(value));
  }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_;
};

/// One-shot convenience over Fnv1a.
std::uint64_t fnv1a(std::string_view bytes,
                    std::uint64_t seed = Fnv1a::kOffsetBasis);

/// Fixed-width hex spelling of a 64-bit hash (16 lowercase digits).
std::string hex64(std::uint64_t value);

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  void f32_array(const float* data, std::size_t n);
  /// Length-prefixed (u64) byte string.
  void str(std::string_view s) {
    u64(s.size());
    bytes(s);
  }
  /// Raw bytes, no length prefix.
  void bytes(std::string_view s) { buffer_.append(s.data(), s.size()); }

  const std::string& data() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buffer_;
};

/// Reads the formats ByteWriter produces. Every accessor throws
/// std::runtime_error("truncated binary data...") when fewer bytes remain
/// than requested — callers never see silently short reads.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  void f32_array(float* out, std::size_t n);
  std::string str();
  std::string_view bytes(std::size_t n);

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  template <typename T>
  T read_le() {
    std::string_view raw = bytes(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(raw[i])) << (8 * i);
    }
    return v;
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// Frame a payload for disk: magic (raw bytes) + u32 version + u64 payload
/// size + payload + u64 FNV-1a checksum of the payload. The matching
/// reader verifies all four and throws std::runtime_error naming `what`
/// on a wrong magic, an unsupported version, a truncated file, or a
/// checksum mismatch.
std::string frame_payload(std::string_view magic, std::uint32_t version,
                          std::string_view payload);
std::string unframe_payload(std::string_view magic, std::uint32_t version,
                            std::string_view file_bytes, std::string_view what);

/// Whole-file helpers (binary mode). read_file/write_file throw
/// std::runtime_error when the file cannot be opened or fully written.
std::string read_binary_file(const std::string& path);
void write_binary_file(const std::string& path, std::string_view bytes);

}  // namespace sevuldet::util
