#include "sevuldet/util/metrics.hpp"

#include "sevuldet/util/json.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace sevuldet::util::metrics {

namespace {

// Heterogeneous string maps: record calls look up by string_view and
// only materialize a std::string on first insertion of a name.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
template <typename V>
using NameMap =
    std::unordered_map<std::string, V, StringHash, std::equal_to<>>;

template <typename V, typename U>
V& named(NameMap<V>& map, std::string_view name, U&& init) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::forward<U>(init)).first;
  }
  return it->second;
}

const std::array<double, kHistogramBuckets>& bucket_bounds() {
  static const std::array<double, kHistogramBuckets> bounds = [] {
    std::array<double, kHistogramBuckets> b{};
    for (int i = 0; i < kHistogramBuckets; ++i) {
      // 100ns * sqrt(2)^i, in ms: bucket 0 ends at 1e-4 ms, bucket 63
      // at ~3e5 ms (~5 minutes) — anything slower clamps.
      b[static_cast<std::size_t>(i)] =
          1e-4 * std::pow(2.0, static_cast<double>(i) / 2.0);
    }
    return b;
  }();
  return bounds;
}

struct Histogram {
  std::array<long long, kHistogramBuckets> counts{};
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void observe(double ms) {
    const auto& bounds = bucket_bounds();
    auto it = std::lower_bound(bounds.begin(), bounds.end(), ms);
    const std::size_t bucket =
        it == bounds.end() ? static_cast<std::size_t>(kHistogramBuckets - 1)
                           : static_cast<std::size_t>(it - bounds.begin());
    ++counts[bucket];
    if (count == 0 || ms < min) min = ms;
    if (count == 0 || ms > max) max = ms;
    ++count;
    sum += ms;
  }

  void merge(const Histogram& other) {
    if (other.count == 0) return;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      counts[static_cast<std::size_t>(i)] +=
          other.counts[static_cast<std::size_t>(i)];
    }
    if (count == 0 || other.min < min) min = other.min;
    if (count == 0 || other.max > max) max = other.max;
    count += other.count;
    sum += other.sum;
  }
};

/// One thread's private store. The mutex is held for nanoseconds by the
/// owning thread per record; only snapshot() and reset() ever contend.
struct Shard {
  std::mutex mu;
  NameMap<long long> counters;
  NameMap<Histogram> histograms;

  void clear() {
    counters.clear();
    histograms.clear();
  }
};

struct Registry {
  std::atomic<bool> enabled{false};
  std::mutex mu;  // guards everything below
  std::vector<Shard*> live;
  Shard retired;  // merged shards of exited threads
  NameMap<double> gauges;
  NameMap<std::string> labels;
};

// Leaked singleton: must outlive thread-local shard destructors of late
// threads and any atexit JSON writers, so it is never destroyed.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

void merge_shard_into(Shard& dst, Shard& src) {
  for (const auto& [name, value] : src.counters) {
    named(dst.counters, name, 0LL) += value;
  }
  for (const auto& [name, hist] : src.histograms) {
    named(dst.histograms, name, Histogram{}).merge(hist);
  }
}

/// Registers with the registry on construction (first record on this
/// thread) and folds its contents into the retired accumulator on
/// thread exit.
struct ThreadShard {
  Shard shard;

  ThreadShard() {
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    reg.live.push_back(&shard);
  }

  ~ThreadShard() {
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    merge_shard_into(reg.retired, shard);
    reg.live.erase(std::find(reg.live.begin(), reg.live.end(), &shard));
  }
};

Shard& local_shard() {
  thread_local ThreadShard ts;
  return ts.shard;
}

using json::append_number;
using json::append_string;

}  // namespace

double bucket_bound_ms(int bucket) {
  return bucket_bounds()[static_cast<std::size_t>(
      std::clamp(bucket, 0, kHistogramBuckets - 1))];
}

void set_enabled(bool enabled) {
  registry().enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() {
  return registry().enabled.load(std::memory_order_relaxed);
}

void reset() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (Shard* shard : reg.live) {
    std::lock_guard shard_lock(shard->mu);
    shard->clear();
  }
  reg.retired.clear();
  reg.gauges.clear();
  reg.labels.clear();
}

void counter_add(std::string_view name, long long delta) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mu);
  named(shard.counters, name, 0LL) += delta;
}

void gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  named(reg.gauges, name, 0.0) = value;
}

void label_set(std::string_view name, std::string_view value) {
  if (!enabled()) return;
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  named(reg.labels, name, std::string()) = std::string(value);
}

void observe_ms(std::string_view name, double ms) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mu);
  named(shard.histograms, name, Histogram{}).observe(ms);
}

double HistogramSnapshot::percentile(double p) const {
  if (count <= 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(count);
  long long cumulative = 0;
  for (const auto& [bound, n] : buckets) {
    if (static_cast<double>(cumulative + n) >= rank) {
      // Interpolate inside this bucket between its lower and upper
      // bound. The lower bound is the previous fixed bucket's bound
      // (not the previous *non-empty* one), found from the fixed scale.
      double lower = 0.0;
      for (int i = 0; i < kHistogramBuckets; ++i) {
        if (bucket_bound_ms(i) == bound) {
          lower = i == 0 ? 0.0 : bucket_bound_ms(i - 1);
          break;
        }
      }
      const double fraction =
          n == 0 ? 0.0
                 : (rank - static_cast<double>(cumulative)) /
                       static_cast<double>(n);
      const double estimate = lower + fraction * (bound - lower);
      return std::clamp(estimate, min, max);
    }
    cumulative += n;
  }
  return max;
}

Snapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);

  Shard merged;
  merge_shard_into(merged, reg.retired);
  for (Shard* shard : reg.live) {
    std::lock_guard shard_lock(shard->mu);
    merge_shard_into(merged, *shard);
  }

  Snapshot snap;
  for (const auto& [name, value] : merged.counters) snap.counters[name] = value;
  for (const auto& [name, value] : reg.gauges) snap.gauges[name] = value;
  for (const auto& [name, value] : reg.labels) snap.labels[name] = value;
  for (const auto& [name, hist] : merged.histograms) {
    HistogramSnapshot h;
    h.count = hist.count;
    h.sum = hist.sum;
    h.min = hist.min;
    h.max = hist.max;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      const long long n = hist.counts[static_cast<std::size_t>(i)];
      if (n > 0) h.buckets.emplace_back(bucket_bound_ms(i), n);
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

std::string Snapshot::to_json() const {
  std::string out;
  out += "{\n  \"schema_version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_string(out, name);
    out += ": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_string(out, name);
    out += ": ";
    append_number(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"labels\": {";
  first = true;
  for (const auto& [name, value] : labels) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_string(out, name);
    out += ": ";
    append_string(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_string(out, name);
    out += ": {\"unit\": \"ms\", \"count\": ";
    append_number(out, static_cast<double>(h.count));
    out += ", \"sum\": ";
    append_number(out, h.sum);
    out += ", \"min\": ";
    append_number(out, h.min);
    out += ", \"max\": ";
    append_number(out, h.max);
    out += ", \"p50\": ";
    append_number(out, h.percentile(50.0));
    out += ", \"p95\": ";
    append_number(out, h.percentile(95.0));
    out += ", \"p99\": ";
    append_number(out, h.percentile(99.0));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [bound, n] : h.buckets) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += '[';
      append_number(out, bound);
      out += ", ";
      append_number(out, static_cast<double>(n));
      out += ']';
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string to_json() { return snapshot().to_json(); }

void write_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("metrics: cannot open for write: " + path);
  const std::string json = to_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) throw std::runtime_error("metrics: short write: " + path);
}

}  // namespace sevuldet::util::metrics
