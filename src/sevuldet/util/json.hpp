// Shared JSON emission helpers for the repo's hand-written emitters
// (util/metrics, util/trace, core/introspect). Numbers print as the
// shortest exact form (integers without a decimal point, otherwise
// %.17g so doubles round-trip); strings get ASCII escaping. The
// documents these helpers build are readable back with
// util/mini_json.hpp.
#pragma once

#include <string>
#include <string_view>

namespace sevuldet::util::json {

/// Append `value` as a JSON number: integral values without a decimal
/// point, others as %.17g (round-trip exact for doubles).
void append_number(std::string& out, double value);

/// Append `s` as a quoted JSON string with ", \, control characters and
/// non-printable bytes escaped.
void append_string(std::string& out, std::string_view s);

}  // namespace sevuldet::util::json
