#include "sevuldet/util/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace sevuldet::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string rule = "|";
  for (std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += '|';
  }
  rule += '\n';

  std::string out = render_row(header_);
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace sevuldet::util
