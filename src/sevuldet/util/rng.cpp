#include "sevuldet/util/rng.hpp"

#include <cassert>
#include <cmath>

namespace sevuldet::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() {
  // 53-bit mantissa construction for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform_real();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform_real();
  } while (u1 <= 0.0);
  const double u2 = uniform_real();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::size_t Rng::weighted(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size() - 1;
  double target = uniform_real() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace sevuldet::util
