// Prometheus text-exposition rendering of a metrics::Snapshot — the
// wire format the serve daemon's `metrics` op returns so a standard
// scraper (or `sevuldet top --prom`) can ingest the registry live,
// instead of waiting for the dump-at-exit --metrics-out JSON.
//
// Mapping rules (deterministic — sorted maps in, sorted text out):
//
//  - Names: the registry's dotted names ("serve.request_ms") are not
//    legal Prometheus names, so every exported metric is spelled
//    "sevuldet_" + name with each character outside [a-zA-Z0-9_:]
//    replaced by '_' ("sevuldet_serve_request_ms").
//  - Counters  -> `# TYPE <n> counter` + one un-labeled sample.
//  - Gauges    -> `# TYPE <n> gauge` + one un-labeled sample.
//  - Labels    -> a single `sevuldet_label_info` gauge with one sample
//    per registry label: {name="<registry name>",value="<value>"} 1.
//    Label values are escaped per the exposition spec (\\, \", \n).
//  - Histograms (registry unit: milliseconds) -> `# TYPE <n> histogram`
//    with cumulative `<n>_bucket{le="<bound_ms>"}` samples over the
//    snapshot's non-empty buckets, a final le="+Inf" bucket equal to
//    the observation count, then `<n>_sum` and `<n>_count`.
//
// Validated by tools/check_metrics.py (charset, bucket cumulativity,
// counter monotonicity across scrapes) in the CI obs-gate job.
#pragma once

#include <string>
#include <string_view>

#include "sevuldet/util/metrics.hpp"

namespace sevuldet::util::metrics {

/// "sevuldet_" + `name` with illegal characters replaced by '_'.
std::string prometheus_name(std::string_view name);

/// Escape a label value per the text exposition format: backslash,
/// double quote, and newline become \\, \", and \n.
std::string prometheus_escape_label(std::string_view value);

/// Render a full snapshot as Prometheus text exposition (version 0.0.4
/// text format). Deterministic for a given snapshot.
std::string to_prometheus(const Snapshot& snapshot);

/// to_prometheus(snapshot()) convenience on the live registry.
std::string to_prometheus();

}  // namespace sevuldet::util::metrics
