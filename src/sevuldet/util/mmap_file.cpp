#include "sevuldet/util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace sevuldet::util {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error(path + ": " + what + ": " + std::strerror(errno));
}

}  // namespace

MmapFile MmapFile::open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "fstat");
  }
  MmapFile file;
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0 && S_ISREG(st.st_mode)) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      file.data_ = static_cast<const char*>(addr);
      file.size_ = size;
      file.mapped_ = true;
      ::close(fd);
      return file;
    }
  }
  // Heap fallback: empty files (zero-length mmap is invalid), pipes, and
  // filesystems that refuse PROT_READ mappings.
  std::string buffer;
  char chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      fail(path, "read");
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  file.fallback_ = std::make_unique<char[]>(buffer.size() + 1);
  std::memcpy(file.fallback_.get(), buffer.data(), buffer.size());
  file.data_ = file.fallback_.get();
  file.size_ = buffer.size();
  return file;
}

MmapFile::~MmapFile() { release(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MmapFile::release() noexcept {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  mapped_ = false;
  data_ = nullptr;
  size_ = 0;
  fallback_.reset();
}

}  // namespace sevuldet::util
