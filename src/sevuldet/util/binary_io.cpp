#include "sevuldet/util/binary_io.hpp"

#include <fstream>
#include <stdexcept>

namespace sevuldet::util {

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  Fnv1a hasher(seed);
  hasher.update(bytes);
  return hasher.digest();
}

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

void ByteWriter::f32_array(const float* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) f32(data[i]);
}

std::uint8_t ByteReader::u8() {
  return static_cast<std::uint8_t>(bytes(1)[0]);
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void ByteReader::f32_array(float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f32();
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (n > remaining()) throw std::runtime_error("truncated binary data: string");
  return std::string(bytes(static_cast<std::size_t>(n)));
}

std::string_view ByteReader::bytes(std::size_t n) {
  if (n > remaining()) throw std::runtime_error("truncated binary data");
  std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::string frame_payload(std::string_view magic, std::uint32_t version,
                          std::string_view payload) {
  ByteWriter out;
  out.bytes(magic);
  out.u32(version);
  out.u64(payload.size());
  out.bytes(payload);
  out.u64(fnv1a(payload));
  return out.data();
}

std::string unframe_payload(std::string_view magic, std::uint32_t version,
                            std::string_view file_bytes, std::string_view what) {
  const std::string name(what);
  ByteReader in(file_bytes);
  try {
    if (in.bytes(magic.size()) != magic) {
      throw std::runtime_error(name + ": bad magic (not a " + name + " file)");
    }
    const std::uint32_t file_version = in.u32();
    if (file_version != version) {
      throw std::runtime_error(name + ": unsupported format version " +
                               std::to_string(file_version) + " (expected " +
                               std::to_string(version) + ")");
    }
    const std::uint64_t payload_size = in.u64();
    if (payload_size > in.remaining()) {
      throw std::runtime_error(name + ": truncated (payload short)");
    }
    std::string payload(in.bytes(static_cast<std::size_t>(payload_size)));
    const std::uint64_t checksum = in.u64();
    if (!in.done()) {
      throw std::runtime_error(name + ": trailing bytes after checksum");
    }
    if (checksum != fnv1a(payload)) {
      throw std::runtime_error(name + ": checksum mismatch (corrupt file)");
    }
    return payload;
  } catch (const std::runtime_error& e) {
    // ByteReader's generic truncation errors get the file kind prepended
    // so "corpus file: truncated binary data" names the culprit.
    const std::string message = e.what();
    if (message.rfind(name, 0) == 0) throw;
    throw std::runtime_error(name + ": " + message);
  }
}

std::string read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return bytes;
}

void write_binary_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace sevuldet::util
