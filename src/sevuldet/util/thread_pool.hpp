// Deterministic fixed-size thread pool for the preprocessing and
// evaluation hot paths. No work stealing: a parallel_for hands out
// contiguous index blocks from a shared atomic cursor, and every helper
// writes only to its own output slot, so results are independent of
// scheduling — parallel_map returns exactly what a serial loop would
// return, in input order. Nested parallel regions (a task that itself
// calls parallel_for) execute inline on the calling thread, which makes
// composition deadlock-free by construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace sevuldet::util {

/// std::thread::hardware_concurrency(), clamped to at least 1.
int hardware_threads();

/// Resolve a user-facing thread-count knob: <= 0 means "all hardware
/// threads", anything else is taken literally.
int resolve_threads(int requested);

class ThreadPool {
 public:
  /// threads <= 0 selects hardware_threads(). A pool of size 1 starts no
  /// worker threads and runs every parallel region inline.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Fixed worker count chosen at construction.
  int size() const { return size_; }

  /// True while the current thread is executing inside a parallel
  /// region (worker task or participating caller).
  static bool in_parallel_region();

  /// Run fn(i) for every i in [0, n); blocks until all indices complete.
  /// The calling thread participates. If any fn(i) throws, the exception
  /// thrown at the smallest observed index is rethrown here after all
  /// runners stop (remaining indices are then skipped best-effort).
  /// Called from inside a parallel region, it degrades to a plain serial
  /// loop so nested submission can never deadlock.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Split [0, n) into size() contiguous ranges and run
  /// fn(worker, begin, end) — at most one concurrent call per worker
  /// index, so callers can keep per-worker scratch state (for example a
  /// cloned model) without locking. Ranges preserve input order:
  /// worker w always gets a range that starts before worker w+1's.
  void parallel_chunks(
      std::size_t n,
      const std::function<void(int worker, std::size_t begin, std::size_t end)>& fn);

  /// Order-preserving map: out[i] = fn(i), computed concurrently.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using R = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Batch;
  void worker_loop();
  void enqueue(std::function<void()> job);

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace sevuldet::util
