// Unix-domain stream sockets with checksummed length-prefixed framing —
// the transport under `sevuldet serve`. Built on the binary_io
// primitives: a frame is
//
//   "SVDF" magic (4 bytes) | u32 payload size (LE) | payload bytes |
//   u64 FNV-1a checksum of the payload (LE)
//
// so a reader can never mistake a truncated, corrupt, or oversized
// frame for a short message: recv_frame() throws FrameError naming the
// defect (bad magic / oversized / checksum mismatch / mid-frame EOF)
// and returns nullopt only on a clean EOF at a frame boundary.
//
// All blocking operations take a timeout (poll-based), so a hung peer
// can never stall a caller forever — the serve tests and CI watchdogs
// rely on this. File descriptors are RAII-owned (FdHandle); there is no
// path that leaks an fd on error.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sevuldet::util {

/// Frame-level protocol violation (distinct from SocketError so callers
/// can reply with a typed "bad frame" error before closing).
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// OS-level socket failure (connect refused, send on closed peer, ...).
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Owning file-descriptor handle; closes on destruction, move-only.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }
  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept;
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Magic prefix of every frame on the wire.
inline constexpr std::string_view kFrameMagic = "SVDF";
/// Default cap on a single frame's payload (16 MiB) — a source file to
/// scan plus JSON envelope fits comfortably; anything larger is a
/// protocol violation, not a bigger buffer.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{16} << 20;

/// Connected Unix-domain stream (client side or an accepted peer).
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(FdHandle fd) : fd_(std::move(fd)) {}

  /// Connect to a listening socket at `path`. Returns nullopt when
  /// nobody is listening (ECONNREFUSED / ENOENT — the client-mode
  /// fallback probe); throws SocketError on any other failure.
  static std::optional<UnixStream> connect(const std::string& path);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  void close() { fd_.reset(); }

  /// Wait up to timeout_ms for the stream to become readable (data or
  /// EOF). Returns false on timeout. Lets a server poll a connection in
  /// short slices so it can notice shutdown between frames.
  bool wait_readable(int timeout_ms);

  /// Write one framed payload. Throws FrameError if the payload exceeds
  /// `max_frame` and SocketError on I/O failure.
  void send_frame(std::string_view payload,
                  std::size_t max_frame = kDefaultMaxFrameBytes);

  /// Read one framed payload. Returns nullopt on clean EOF before the
  /// first header byte; throws FrameError on a malformed frame (bad
  /// magic, oversized length, checksum mismatch, EOF mid-frame) and
  /// SocketError when the poll timeout expires or the read fails.
  std::optional<std::string> recv_frame(
      std::size_t max_frame = kDefaultMaxFrameBytes, int timeout_ms = 30000);

 private:
  void write_all(const char* data, std::size_t n);
  /// Reads exactly n bytes; returns bytes actually read before EOF.
  std::size_t read_exact(char* out, std::size_t n, int timeout_ms);

  FdHandle fd_;
};

/// Listening Unix-domain socket. bind() unlinks a stale socket file at
/// `path` first (daemons that crashed leave one behind) and unlinks it
/// again on destruction.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(UnixListener&&) noexcept = default;
  UnixListener& operator=(UnixListener&&) noexcept = default;

  /// Bind + listen. Throws SocketError on failure (path too long for
  /// sun_path, permission denied, ...).
  static UnixListener bind(const std::string& path, int backlog = 64);

  bool valid() const { return fd_.valid(); }
  const std::string& path() const { return path_; }

  /// Wait up to timeout_ms for a connection. Returns nullopt on
  /// timeout; throws SocketError on failure.
  std::optional<UnixStream> accept(int timeout_ms);

  void close();

 private:
  FdHandle fd_;
  std::string path_;
};

}  // namespace sevuldet::util
