#include "sevuldet/util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace sevuldet::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) out.emplace_back(text.substr(start));
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

bool is_ascii(std::string_view text) {
  for (unsigned char c : text) {
    if (c != '\t' && c != '\n' && (c < 0x20 || c > 0x7E)) return false;
  }
  return true;
}

std::string strip_non_ascii(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    if (c == '\t' || c == '\n' || (c >= 0x20 && c <= 0x7E)) {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) break;
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  out.append(text.substr(pos));
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace sevuldet::util
