// Minimal recursive-descent JSON parser shared by the introspection
// report renderer (core/introspect.hpp consumes its own quality-report
// JSON through this parser, so the committed schema is provably
// machine-readable), the observability test suites, and anything else
// that needs to read the repo's hand-emitted JSON documents back.
// Throws std::runtime_error on malformed input. Handles the subset of
// JSON our emitters produce (ASCII escapes, finite numbers) — not a
// general-purpose parser.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace sevuldet::util::mini_json {

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool has(const std::string& key) const {
    return type == Type::Object && object.count(key) > 0;
  }
  const Value& at(const std::string& key) const {
    if (type != Type::Object) throw std::runtime_error("not an object");
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  const Value& at(std::size_t index) const {
    if (type != Type::Array) throw std::runtime_error("not an array");
    if (index >= array.size()) throw std::runtime_error("index out of range");
    return array[index];
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at offset " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true", [](Value& v) {
        v.type = Value::Type::Bool;
        v.boolean = true;
      });
      case 'f': return parse_literal("false", [](Value& v) {
        v.type = Value::Type::Bool;
        v.boolean = false;
      });
      case 'n':
        return parse_literal("null", [](Value& v) { v.type = Value::Type::Null; });
      default: return parse_number();
    }
  }

  template <typename Fill>
  Value parse_literal(const char* word, Fill fill) {
    skip_ws();
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      throw std::runtime_error(std::string("bad literal, expected ") + word);
    }
    pos_ += len;
    Value v;
    fill(v);
    return v;
  }

  Value parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double n = std::strtod(begin, &end);
    if (end == begin || !std::isfinite(n)) {
      throw std::runtime_error("bad number at offset " + std::to_string(pos_));
    }
    pos_ += static_cast<std::size_t>(end - begin);
    Value v;
    v.type = Value::Type::Number;
    v.number = n;
    return v;
  }

  Value parse_string() {
    expect('"');
    Value v;
    v.type = Value::Type::String;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            // Tests only need round-tripping of control characters, so
            // decode the code unit as a single byte (all emitters here
            // escape only ASCII).
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            v.str += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
        continue;
      }
      v.str += c;
    }
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') throw std::runtime_error("expected ',' or ']'");
    }
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const Value key = parse_string();
      expect(':');
      v.object[key.str] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') throw std::runtime_error("expected ',' or '}'");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace sevuldet::util::mini_json
