// Phase tracing: RAII ScopedSpan timers that record a Chrome
// trace_event-compatible JSON timeline ("X" complete events), viewable
// in chrome://tracing or https://ui.perfetto.dev. Spans are recorded
// into per-thread buffers (no contention on the hot path) and merged at
// write_json() time; buffers of exited threads are retained, so spans
// emitted from ThreadPool workers survive the pool's destruction.
//
// Zero-cost when disabled (the default): a ScopedSpan whose subsystems
// are all off performs no clock read, no allocation, and no locking.
// When metrics are enabled (util/metrics.hpp), every span additionally
// feeds the "span.<name>" latency histogram, so --metrics-out gets
// per-phase p50/p95/p99 even without a trace file.
//
// The event store is bounded (set_capacity, default 1<<17 events): once
// full, new spans are counted in dropped() and skipped, so tracing a
// long benchmark loop cannot exhaust memory. Timestamps are
// microseconds since the first enabled span in the process.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace sevuldet::util::trace {

/// Master switch for the timeline. Off by default.
void set_enabled(bool enabled);
bool enabled();

/// Drop all recorded events and the dropped-event count; resets the
/// per-process timestamp origin. Does not change enabled() or capacity.
void reset();

/// Cap on stored events across all threads (default 1 << 17). Spans
/// recorded beyond the cap are dropped and counted.
void set_capacity(std::size_t max_events);
std::size_t capacity();

/// Events dropped since the last reset() because the store was full.
std::size_t dropped();

/// One merged, completed span. `tid` is a small per-thread ordinal
/// (assigned in first-span order), `ts_us`/`dur_us` are microseconds.
struct Event {
  const char* name = "";
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Merged snapshot of all per-thread buffers, sorted by start time.
std::vector<Event> events();

/// Chrome trace_event JSON: {"schema_version":1, "displayTimeUnit":"ms",
/// "dropped_events":n, "traceEvents":[{"name","cat","ph":"X","pid",
/// "tid","ts","dur"},...]}.
std::string to_json();

/// Write to_json() to `path`; throws std::runtime_error on I/O failure.
void write_json(const std::string& path);

/// Record an explicit [start, end) span on the calling thread. This is
/// the non-RAII escape hatch for durations whose endpoints live on
/// different threads (e.g. a queue wait measured from enqueue on a
/// connection thread to dequeue on a worker): the thread that observes
/// the end calls record_span with the start timestamp it was handed.
/// Same behavior as ScopedSpan — a trace event when tracing is enabled,
/// a "span.<name>" histogram observation when metrics are enabled,
/// nothing when both are off. `name` must be a string literal.
void record_span(const char* name, std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end);

/// RAII phase timer. `name` must outlive the tracing subsystem — pass a
/// string literal. Records a trace event when tracing is enabled and a
/// "span.<name>" histogram observation when metrics are enabled; does
/// nothing (and allocates nothing) when both are off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr => disarmed
  bool to_trace_ = false;
  bool to_metrics_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sevuldet::util::trace
