#include "sevuldet/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

namespace sevuldet::util {

namespace {
thread_local int tl_parallel_depth = 0;

/// RAII marker for "this thread is currently inside a parallel region".
struct RegionGuard {
  RegionGuard() { ++tl_parallel_depth; }
  ~RegionGuard() { --tl_parallel_depth; }
};
}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_threads(int requested) {
  return requested <= 0 ? hardware_threads() : requested;
}

bool ThreadPool::in_parallel_region() { return tl_parallel_depth > 0; }

/// Shared state of one parallel_for call. Runners (helpers + the
/// calling thread) pull contiguous index blocks from `next`; the last
/// runner to finish wakes the caller.
struct ThreadPool::Batch {
  std::size_t n = 0;
  std::size_t block = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> aborted{false};
  int remaining = 0;  // runners still active, guarded by m
  std::mutex m;
  std::condition_variable done;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  void run() {
    RegionGuard in_region;
    for (;;) {
      const std::size_t begin = next.fetch_add(block, std::memory_order_relaxed);
      if (begin >= n || aborted.load(std::memory_order_relaxed)) break;
      const std::size_t end = std::min(begin + block, n);
      for (std::size_t i = begin; i < end; ++i) {
        if (aborted.load(std::memory_order_relaxed)) break;
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(m);
          if (i < error_index) {
            error = std::current_exception();
            error_index = i;
          }
          aborted.store(true, std::memory_order_relaxed);
        }
      }
    }
    std::lock_guard<std::mutex> lock(m);
    if (--remaining == 0) done.notify_all();
  }
};

ThreadPool::ThreadPool(int threads) : size_(resolve_threads(threads)) {
  for (int t = 1; t < size_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size_ <= 1 || n == 1 || in_parallel_region()) {
    RegionGuard in_region;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  // Several blocks per runner so uneven per-index cost still balances
  // without work stealing.
  const std::size_t runners = std::min<std::size_t>(static_cast<std::size_t>(size_), n);
  batch->block = std::max<std::size_t>(1, n / (runners * 4));
  batch->remaining = static_cast<int>(runners);

  for (std::size_t t = 1; t < runners; ++t) {
    enqueue([batch] { batch->run(); });
  }
  batch->run();  // the caller is runner 0

  std::unique_lock<std::mutex> lock(batch->m);
  batch->done.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::parallel_chunks(
    std::size_t n,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min<std::size_t>(static_cast<std::size_t>(size_), n);
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    fn(static_cast<int>(c), begin, end);
  });
}

}  // namespace sevuldet::util
