#include "sevuldet/util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "sevuldet/util/json.hpp"
#include "sevuldet/util/metrics.hpp"

namespace sevuldet::util::trace {

namespace {

struct RawEvent {
  const char* name;
  double ts_us;
  double dur_us;
};

struct ThreadBuffer {
  std::mutex mu;
  int tid = 0;
  std::vector<RawEvent> events;
};

struct Registry {
  std::atomic<bool> enabled{false};
  std::atomic<std::size_t> stored{0};
  std::atomic<std::size_t> dropped{0};
  std::atomic<std::size_t> capacity{std::size_t{1} << 17};
  std::atomic<int> next_tid{0};
  std::mutex mu;  // guards live/retired lists and the epoch origin
  std::vector<ThreadBuffer*> live;
  std::vector<ThreadBuffer*> retired;  // buffers of exited threads
  bool have_origin = false;
  std::chrono::steady_clock::time_point origin;
};

// Leaked: outlives thread-local buffer destructors and atexit writers.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// Microseconds since the first recorded span after the last reset().
double since_origin_us(std::chrono::steady_clock::time_point t) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  if (!reg.have_origin) {
    reg.have_origin = true;
    reg.origin = t;
  }
  return std::chrono::duration<double, std::micro>(t - reg.origin).count();
}

struct LocalBuffer {
  ThreadBuffer* buffer;

  LocalBuffer() : buffer(new ThreadBuffer()) {
    Registry& reg = registry();
    buffer->tid = reg.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(reg.mu);
    reg.live.push_back(buffer);
  }

  ~LocalBuffer() {
    // Keep the buffer's events readable after the thread exits: move the
    // pointer to the retired list (the registry now owns it).
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    reg.live.erase(std::find(reg.live.begin(), reg.live.end(), buffer));
    reg.retired.push_back(buffer);
  }
};

ThreadBuffer& local_buffer() {
  thread_local LocalBuffer local;
  return *local.buffer;
}

void record_event(const char* name,
                  std::chrono::steady_clock::time_point start, double dur_us) {
  Registry& reg = registry();
  // Reserve a slot under the cap; back out on overflow.
  if (reg.stored.fetch_add(1, std::memory_order_relaxed) >=
      reg.capacity.load(std::memory_order_relaxed)) {
    reg.stored.fetch_sub(1, std::memory_order_relaxed);
    reg.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double ts_us = since_origin_us(start);
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard lock(buffer.mu);
  buffer.events.push_back(RawEvent{name, ts_us, dur_us});
}

}  // namespace

void set_enabled(bool enabled) {
  registry().enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() {
  return registry().enabled.load(std::memory_order_relaxed);
}

void reset() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (ThreadBuffer* buffer : reg.live) {
    std::lock_guard buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  for (ThreadBuffer* buffer : reg.retired) delete buffer;
  reg.retired.clear();
  reg.stored.store(0, std::memory_order_relaxed);
  reg.dropped.store(0, std::memory_order_relaxed);
  reg.have_origin = false;
}

void set_capacity(std::size_t max_events) {
  registry().capacity.store(max_events, std::memory_order_relaxed);
}

std::size_t capacity() {
  return registry().capacity.load(std::memory_order_relaxed);
}

std::size_t dropped() {
  return registry().dropped.load(std::memory_order_relaxed);
}

std::vector<Event> events() {
  Registry& reg = registry();
  std::vector<Event> out;
  {
    std::lock_guard lock(reg.mu);
    auto collect = [&](ThreadBuffer* buffer) {
      std::lock_guard buffer_lock(buffer->mu);
      for (const RawEvent& e : buffer->events) {
        out.push_back(Event{e.name, buffer->tid, e.ts_us, e.dur_us});
      }
    };
    for (ThreadBuffer* buffer : reg.retired) collect(buffer);
    for (ThreadBuffer* buffer : reg.live) collect(buffer);
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return b.dur_us < a.dur_us;  // parents (longer) before children
  });
  return out;
}

std::string to_json() {
  const std::vector<Event> merged = events();
  std::string out;
  out += "{\n  \"schema_version\": 1,\n  \"displayTimeUnit\": \"ms\",\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  \"dropped_events\": %zu,\n", dropped());
  out += buf;
  out += "  \"traceEvents\": [";
  bool first = true;
  for (const Event& e : merged) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    json::append_string(out, e.name);
    std::snprintf(buf, sizeof(buf),
                  ", \"cat\": \"sevuldet\", \"ph\": \"X\", \"pid\": 1, "
                  "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                  e.tid, e.ts_us, e.dur_us);
    out += buf;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void write_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open for write: " + path);
  const std::string json = to_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) throw std::runtime_error("trace: short write: " + path);
}

void record_span(const char* name, std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  const bool to_trace = enabled();
  const bool to_metrics = metrics::enabled();
  if (!to_trace && !to_metrics) return;
  const double dur_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  if (to_trace) record_event(name, start, dur_us);
  if (to_metrics) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "span.%s", name);
    metrics::observe_ms(buf, dur_us / 1000.0);
  }
}

ScopedSpan::ScopedSpan(const char* name) {
  to_trace_ = enabled();
  to_metrics_ = metrics::enabled();
  if (!to_trace_ && !to_metrics_) return;
  name_ = name;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const double dur_us =
      std::chrono::duration<double, std::micro>(end - start_).count();
  if (to_trace_) record_event(name_, start_, dur_us);
  if (to_metrics_) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "span.%s", name_);
    metrics::observe_ms(buf, dur_us / 1000.0);
  }
}

}  // namespace sevuldet::util::trace
