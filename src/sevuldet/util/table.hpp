// Plain-text table rendering used by the benchmark harness to print the
// paper's tables (Table I .. Table VII) in an aligned, diff-friendly way.
#pragma once

#include <string>
#include <vector>

namespace sevuldet::util {

/// Column-aligned ASCII table. Rows are free-form strings; the renderer
/// pads every column to its widest cell and draws a header rule.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with single-space-padded, pipe-separated columns.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sevuldet::util
