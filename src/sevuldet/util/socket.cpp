#include "sevuldet/util/socket.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sevuldet/util/binary_io.hpp"

namespace sevuldet::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

/// Wait for readability/writability; returns false on timeout.
bool wait_fd(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("socket path too long (" + std::to_string(path.size()) +
                      " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) +
                      "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) reset(other.release());
  return *this;
}

int FdHandle::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void FdHandle::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::optional<UnixStream> UnixStream::connect(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno == ECONNREFUSED || errno == ENOENT) return std::nullopt;
    throw_errno("connect " + path);
  }
  return UnixStream(std::move(fd));
}

bool UnixStream::wait_readable(int timeout_ms) {
  return wait_fd(fd_.get(), POLLIN, timeout_ms);
}

void UnixStream::write_all(const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE (thrown as
    // SocketError) instead of killing the daemon with SIGPIPE.
    const ssize_t rc =
        ::send(fd_.get(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_fd(fd_.get(), POLLOUT, 30000)) {
          throw SocketError("send: timed out");
        }
        continue;
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(rc);
  }
}

std::size_t UnixStream::read_exact(char* out, std::size_t n, int timeout_ms) {
  std::size_t got = 0;
  while (got < n) {
    if (!wait_fd(fd_.get(), POLLIN, timeout_ms)) {
      throw SocketError("recv: timed out waiting for peer");
    }
    const ssize_t rc = ::recv(fd_.get(), out + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (rc == 0) break;  // EOF
    got += static_cast<std::size_t>(rc);
  }
  return got;
}

void UnixStream::send_frame(std::string_view payload, std::size_t max_frame) {
  if (payload.size() > max_frame) {
    throw FrameError("frame payload too large (" +
                     std::to_string(payload.size()) + " > " +
                     std::to_string(max_frame) + " bytes)");
  }
  ByteWriter frame;
  frame.bytes(kFrameMagic);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.bytes(payload);
  frame.u64(fnv1a(payload));
  write_all(frame.data().data(), frame.size());
}

std::optional<std::string> UnixStream::recv_frame(std::size_t max_frame,
                                                  int timeout_ms) {
  // Header: magic + u32 size.
  char header[8];
  const std::size_t header_got = read_exact(header, sizeof(header), timeout_ms);
  if (header_got == 0) return std::nullopt;  // clean EOF between frames
  if (header_got < sizeof(header)) {
    throw FrameError("truncated frame header (" + std::to_string(header_got) +
                     " of 8 bytes)");
  }
  if (std::string_view(header, kFrameMagic.size()) != kFrameMagic) {
    throw FrameError("bad frame magic");
  }
  ByteReader size_reader(std::string_view(header + 4, 4));
  const std::uint32_t size = size_reader.u32();
  if (size > max_frame) {
    throw FrameError("oversized frame (" + std::to_string(size) + " > " +
                     std::to_string(max_frame) + " bytes)");
  }
  std::string payload(size, '\0');
  if (read_exact(payload.data(), size, timeout_ms) != size) {
    throw FrameError("truncated frame payload");
  }
  char trailer[8];
  if (read_exact(trailer, sizeof(trailer), timeout_ms) != sizeof(trailer)) {
    throw FrameError("truncated frame checksum");
  }
  ByteReader checksum_reader(std::string_view(trailer, sizeof(trailer)));
  if (checksum_reader.u64() != fnv1a(payload)) {
    throw FrameError("frame checksum mismatch");
  }
  return payload;
}

UnixListener::~UnixListener() { close(); }

UnixListener UnixListener::bind(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  ::unlink(path.c_str());  // a crashed daemon leaves a stale socket file
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen " + path);
  UnixListener listener;
  listener.fd_ = std::move(fd);
  listener.path_ = path;
  return listener;
}

std::optional<UnixStream> UnixListener::accept(int timeout_ms) {
  if (!wait_fd(fd_.get(), POLLIN, timeout_ms)) return std::nullopt;
  const int peer = ::accept(fd_.get(), nullptr, nullptr);
  if (peer < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return std::nullopt;
    }
    throw_errno("accept");
  }
  return UnixStream(FdHandle(peer));
}

void UnixListener::close() {
  if (fd_.valid()) {
    fd_.reset();
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

}  // namespace sevuldet::util
