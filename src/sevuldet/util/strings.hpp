// Small string utilities shared across the project: splitting, trimming,
// joining, predicates, and simple formatting. All functions are pure and
// allocation-conscious (string_view in, owned strings out only where the
// caller needs ownership).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sevuldet::util {

/// Split on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view text, char sep);

/// Split on any whitespace run; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view text);

/// Split into lines ('\n' separated; a trailing newline does not produce
/// an extra empty line).
std::vector<std::string> split_lines(std::string_view text);

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);

/// True if every byte is printable ASCII, tab, or newline.
bool is_ascii(std::string_view text);

/// Drop all bytes outside printable ASCII / tab / newline.
std::string strip_non_ascii(std::string_view text);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// printf-style double formatting with fixed decimals, e.g. fmt(3.14159, 1)
/// == "3.1".
std::string fmt(double value, int decimals);

}  // namespace sevuldet::util
