#include "sevuldet/util/json.hpp"

#include <cmath>
#include <cstdio>

namespace sevuldet::util::json {

void append_number(std::string& out, double value) {
  char buf[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

void append_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace sevuldet::util::json
